//! Data-parallel mapping with `|||` on *real* OS threads.
//!
//! The simulated GPU gives the paper's timing story; the threaded CPU
//! backend proves the same interpreter parallelizes for real. This example
//! maps a polynomial over a vector both ways and cross-checks results,
//! then demonstrates worker isolation (the paper's "values stored in a
//! worker's environment do not affect other workers").
//!
//! ```text
//! cargo run --release --example parallel_map
//! ```

use culi::prelude::*;

fn main() {
    let poly = "(defun poly (x) (+ (* 3 x x) (* -2 x) 7))";
    let xs: Vec<i64> = (1..=64).collect();
    let xs_str = xs.iter().map(i64::to_string).collect::<Vec<_>>().join(" ");
    let call = format!("(||| {} poly ({xs_str}))", xs.len());

    // Reference: plain Rust.
    let expect: Vec<i64> = xs.iter().map(|&x| 3 * x * x - 2 * x + 7).collect();
    let expect_str = format!(
        "({})",
        expect
            .iter()
            .map(i64::to_string)
            .collect::<Vec<_>>()
            .join(" ")
    );

    // 1. Real threads on this machine.
    let mut threaded = Session::cpu_threaded(culi::sim::device::intel_e5_2620(), 8);
    threaded.submit(poly).unwrap();
    let t0 = std::time::Instant::now();
    let reply = threaded.submit(&call).unwrap();
    let wall = t0.elapsed();
    assert_eq!(reply.output, expect_str, "threaded backend result mismatch");
    println!("threaded CPU  : 64 polynomials in {wall:?} (8 OS threads), results verified");

    // 2. Simulated GPU, same program, same answer.
    let mut gpu = Session::for_device(culi::sim::device::tesla_m40());
    gpu.submit(poly).unwrap();
    let greply = gpu.submit(&call).unwrap();
    assert_eq!(greply.output, expect_str, "GPU backend result mismatch");
    println!(
        "simulated M40 : same result; device time {:.3} ms across {} block(s)",
        greply.phases.execution_ms(),
        greply.sections[0].blocks_used
    );

    // 3. Worker isolation: each worker let-binds `scale` locally; bindings
    //    never leak between workers or back to the master.
    let mut iso = Session::cpu_threaded(culi::sim::device::intel_e5_2620(), 4);
    iso.submit("(setq scale 1000)").unwrap();
    iso.submit("(defun scaled (x) (progn (let scale (* x 10)) (* x scale)))")
        .unwrap();
    let reply = iso.submit("(||| 4 scaled (1 2 3 4))").unwrap();
    assert_eq!(reply.output, "(10 40 90 160)");
    assert_eq!(iso.submit("scale").unwrap().output, "1000");
    println!("isolation     : worker lets shadowed locally, master's `scale` untouched");
}
