//! The CuLi experience: an interactive REPL whose evaluation runs on a
//! simulated GPU, with the host doing only read and print — exactly the
//! paper's split. Multi-line input is uploaded only once the parentheses
//! balance, as the original host loop does.
//!
//! ```text
//! cargo run --example interactive_repl [device-name]
//! echo '(+ 1 2)' | cargo run --example interactive_repl gtx480
//! ```

use culi::prelude::*;
use culi::strlib::scan::paren_balance;
use std::io::{BufRead, Write};

fn main() {
    let device = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "GTX1080".to_string());
    let Some(spec) = device_by_name(&device) else {
        eprintln!("unknown device {device:?}; try one of:");
        for d in all_devices() {
            eprintln!("  {}", d.name);
        }
        std::process::exit(1);
    };

    let mut session = Session::for_device(spec);
    eprintln!(
        "CuLi on {} — ^D to quit, :time toggles phase timing",
        spec.name
    );

    let stdin = std::io::stdin();
    let mut show_time = false;
    let mut pending = String::new();
    prompt(&pending);
    for line in stdin.lock().lines() {
        let line = line.expect("stdin read failed");
        if line.trim() == ":time" {
            show_time = !show_time;
            eprintln!("timing {}", if show_time { "on" } else { "off" });
            prompt(&pending);
            continue;
        }
        pending.push_str(&line);
        pending.push('\n');
        // Host-side gate (paper §III-C a): upload only when the parens
        // balance; unbalanced-negative can never recover, so reset.
        match paren_balance(pending.as_bytes()) {
            Some(0) => {}
            Some(_) => {
                prompt(&pending);
                continue;
            }
            None => {
                eprintln!("error: unmatched ')'");
                pending.clear();
                prompt(&pending);
                continue;
            }
        }
        let input = std::mem::take(&mut pending);
        if input.trim().is_empty() {
            prompt(&pending);
            continue;
        }
        match session.submit(&input) {
            Ok(reply) => {
                println!("{}", reply.output);
                if show_time {
                    eprintln!(
                        "  parse {:.4} ms | eval {:.4} ms | print {:.4} ms | total {:.4} ms",
                        reply.phases.parse_ms(),
                        reply.phases.eval_ms(),
                        reply.phases.print_ms(),
                        reply.phases.runtime_ms()
                    );
                }
            }
            Err(e) => eprintln!("device error: {e}"),
        }
        prompt(&pending);
    }
    let base = session.shutdown();
    eprintln!("\nbye — launch+teardown cost {base:.3} ms");
}

fn prompt(pending: &str) {
    if pending.is_empty() {
        eprint!("culi> ");
    } else {
        eprint!("....> ");
    }
    std::io::stderr().flush().ok();
}
