//! The warp-divergence livelocks of paper §III-D, demonstrated.
//!
//! CuLi needs two mitigations to survive on real warps:
//!
//! 1. masking the master block's worker threads (paper Fig. 12), and
//! 2. the per-block synchronization flag (paper Fig. 13 / Alg. 1).
//!
//! This example disables each one and shows the exact livelock the paper
//! describes — detected structurally by the simulator, with the diagnosis
//! naming the offending block.
//!
//! ```text
//! cargo run --example livelock_demo
//! ```

use culi::prelude::*;
use culi::sim::SimError;

const FIB: &str = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

fn try_config(label: &str, kernel: KernelConfig, workers: usize) {
    let mut session = Session::gpu_with_kernel_config(culi::sim::device::gtx1080(), kernel);
    session.submit(FIB).unwrap();
    let args = vec!["5"; workers].join(" ");
    let input = format!("(||| {workers} fib ({args}))");
    print!("{label:<58} → ");
    match session.submit(&input) {
        Ok(reply) if reply.ok => println!("ok: {} results", workers),
        Ok(reply) => println!("lisp error: {}", reply.output),
        Err(RuntimeError::Device(SimError::Livelock { cause, .. })) => {
            println!("LIVELOCK\n{:>60} {cause}", "↳")
        }
        Err(e) => println!("error: {e}"),
    }
    session.shutdown();
}

fn main() {
    println!("workload: (||| n fib (5 … 5)) on a simulated GTX 1080\n");

    try_config(
        "baseline (both mitigations on), 33 jobs",
        KernelConfig::default(),
        33,
    );
    try_config(
        "no master-block masking (Fig. 12 removed), 4 jobs",
        KernelConfig {
            mask_master_block: false,
            ..Default::default()
        },
        4,
    );
    try_config(
        "no block sync flag (Fig. 13 removed), 33 jobs (partial warp)",
        KernelConfig {
            block_sync_flag: false,
            ..Default::default()
        },
        33,
    );
    try_config(
        "no block sync flag, 64 jobs (full warps — paper: 'no problem')",
        KernelConfig {
            block_sync_flag: false,
            ..Default::default()
        },
        64,
    );
}
