//! Device sweep: run the paper's fib(5) workload on all eight evaluated
//! devices and print a Fig. 15-style comparison, including the headline
//! result — current CPUs still beat the GPU build by an order of
//! magnitude, but newer GPU generations close the evaluation gap.
//!
//! ```text
//! cargo run --release --example device_sweep
//! ```

use culi::prelude::*;

const FIB: &str = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

fn fib_input(n: usize) -> String {
    let args = vec!["5"; n].join(" ");
    format!("(||| {n} fib ({args}))")
}

fn main() {
    let threads = [1usize, 32, 256, 1024, 4096];

    println!("{:<16} {:>10}", "device", "base ms");
    for spec in all_devices() {
        println!(
            "{:<16} {:>10.4}",
            spec.name,
            Session::measure_base_latency_ms(spec)
        );
    }

    println!("\nruntime in ms (paper Fig. 15 shape):");
    print!("{:<16}", "device");
    for n in threads {
        print!(" {n:>9}");
    }
    println!();

    let mut best_cpu = f64::INFINITY;
    let mut best_gpu = f64::INFINITY;
    for spec in all_devices() {
        let mut session = Session::for_device(spec);
        session.submit(FIB).unwrap();
        print!("{:<16}", spec.name);
        for n in threads {
            let reply = session.submit(&fib_input(n)).unwrap();
            assert!(reply.ok, "{}", reply.output);
            let ms = reply.phases.runtime_ms();
            print!(" {ms:>9.4}");
            if n == 4096 {
                match spec.kind {
                    DeviceKind::Cpu => best_cpu = best_cpu.min(ms),
                    DeviceKind::Gpu => best_gpu = best_gpu.min(ms),
                }
            }
        }
        println!();
        session.shutdown();
    }

    println!(
        "\nat 4096 threads the best CPU ({best_cpu:.2} ms) beats the best GPU \
         ({best_gpu:.2} ms) by {:.1}x — the paper's 'CPUs still win' result",
        best_gpu / best_cpu
    );
}
