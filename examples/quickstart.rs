//! Quickstart: boot CuLi on a simulated GTX 1080, define a function,
//! fan work out with `|||`, and look at where the device time went.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use culi::prelude::*;

fn main() {
    // The paper's flagship device pairing: a modern GPU vs its own numbers.
    let spec = culi::sim::device::gtx1080();
    let mut session = Session::for_device(spec);
    println!(
        "booted CuLi on {} ({} worker threads)\n",
        spec.name,
        spec.grid_workers() - 32
    );

    // The host uploads each line through the command buffer; the persistent
    // kernel parses, evaluates and prints entirely "on the device".
    let inputs = [
        "(* 2 (+ 4 3) 6)",
        "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
        "(||| 8 fib (1 2 3 4 5 6 7 8))",
        "(let parallel-sum (||| 4 + (1 2 3 4) (10 20 30 40)))",
        "(length parallel-sum)",
    ];

    for input in inputs {
        let reply = session.submit(input).expect("device failure");
        println!("culi> {input}");
        println!("      {}", reply.output);
        println!(
            "      [parse {:.4} ms | eval {:.4} ms | print {:.4} ms]",
            reply.phases.parse_ms(),
            reply.phases.eval_ms(),
            reply.phases.print_ms()
        );
        for (i, s) in reply.sections.iter().enumerate() {
            println!(
                "      ||| section {i}: {} block(s), {} round(s), {} cycles",
                s.blocks_used,
                s.rounds,
                s.total_cycles()
            );
        }
        println!();
    }

    let base = session.shutdown();
    println!("graceful stop; total launch+teardown: {base:.3} ms (paper Fig. 14)");
}
