//! # CuLi — a Lisp interpreter running on a (simulated) GPU
//!
//! Rust reproduction of *"And Now for Something Completely Different:
//! Running Lisp on GPUs"* (Süß, Döring, Brinkmann, Nagel — IEEE CLUSTER
//! 2018). This facade crate re-exports the whole workspace:
//!
//! * [`core`] (`culi-core`) — the interpreter: node arena, environments,
//!   parser, evaluator, printer, builtins, `|||`.
//! * [`strlib`] (`culi-strlib`) — the freestanding string library.
//! * [`sim`] (`culi-gpu-sim`) — device catalog and the persistent-kernel /
//!   CPU machine models.
//! * [`runtime`] (`culi-runtime`) — the GPU and CPU REPLs and the
//!   [`runtime::Session`] facade.
//!
//! ## Quickstart
//!
//! ```
//! use culi::prelude::*;
//!
//! // Boot CuLi on a simulated GTX 1080 and use it like the paper does.
//! let mut session = Session::for_device(culi::sim::device::gtx1080());
//! session.submit("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))").unwrap();
//! let reply = session.submit("(||| 4 fib (5 6 7 8))").unwrap();
//! assert_eq!(reply.output, "(5 8 13 21)");
//! println!("device time: {:.3} ms", reply.phases.execution_ms());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use culi_core as core;
pub use culi_gpu_sim as sim;
pub use culi_runtime as runtime;
pub use culi_strlib as strlib;

/// The most common imports in one place.
pub mod prelude {
    pub use culi_core::{CuliError, Interp, InterpConfig, SequentialHook};
    pub use culi_gpu_sim::{
        all_cpus, all_devices, all_gpus, device_by_name, DeviceKind, DeviceSpec, KernelConfig,
    };
    pub use culi_runtime::{
        CpuMode, CpuRepl, CpuReplConfig, GpuRepl, GpuReplConfig, Reply, RuntimeError, Session,
    };
}
