//! The paper's headline claims, verified end-to-end on the reproduction
//! (fast subset; the full figure regeneration lives in `culi-bench`).

use culi::prelude::*;
use culi::sim::device;

const FIB: &str = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

fn fib_input(n: usize) -> String {
    let args = vec!["5"; n].join(" ");
    format!("(||| {n} fib ({args}))")
}

fn runtime_ms(spec: DeviceSpec, n: usize) -> f64 {
    let mut session = Session::for_device(spec);
    session.submit(FIB).unwrap();
    let reply = session.submit(&fib_input(n)).unwrap();
    assert!(reply.ok, "{}: {}", spec.name, reply.output);
    reply.phases.runtime_ms()
}

/// §I / §IV: "At the moment, Lisp programs running on CPUs outperform Lisp
/// programs on GPUs" — by at least an order of magnitude at scale.
#[test]
fn cpus_outperform_gpus_at_scale() {
    let n = 1024;
    let best_cpu = all_cpus()
        .into_iter()
        .map(|d| runtime_ms(d, n))
        .fold(f64::INFINITY, f64::min);
    for gpu in all_gpus() {
        let t = runtime_ms(gpu, n);
        assert!(
            t / best_cpu > 5.0,
            "{}: {t:.3} ms vs best CPU {best_cpu:.3} ms",
            gpu.name
        );
    }
}

/// Fig. 14: "the newer the GPU, the higher the base latency", GTX 680
/// about six times lower than GTX 1080 / M40, CPUs > 30× faster still.
#[test]
fn base_latency_trend() {
    let lat = |d: DeviceSpec| Session::measure_base_latency_ms(d);
    assert!(lat(device::gtx680()) < lat(device::tesla_k20()));
    assert!(lat(device::tesla_k20()) < lat(device::tesla_m40()));
    let ratio = lat(device::gtx1080()) / lat(device::gtx680());
    assert!((3.0..10.0).contains(&ratio), "{ratio}");
    for cpu in all_cpus() {
        assert!(lat(device::gtx680()) / lat(cpu) > 30.0, "{}", cpu.name);
    }
}

/// §IV-b: "This result can be explained by the good string parsing
/// performance of Fermi GPUs."
#[test]
fn fermi_parsing_advantage() {
    let parse_ms = |spec: DeviceSpec| -> f64 {
        let mut session = Session::for_device(spec);
        session.submit(FIB).unwrap();
        session.submit(&fib_input(512)).unwrap().phases.parse_ms()
    };
    let fermi = parse_ms(device::gtx480()).max(parse_ms(device::tesla_c2075()));
    for post in [
        device::tesla_k20(),
        device::tesla_m40(),
        device::gtx680(),
        device::gtx1080(),
    ] {
        let t = parse_ms(post);
        assert!(t > 3.0 * fermi, "{}: {t:.4} vs fermi {fermi:.4}", post.name);
    }
}

/// §IV-c: "the trend of the evaluation phase shows that the newer the GPU,
/// the lower the computation time."
#[test]
fn evaluation_improves_with_gpu_generation() {
    let eval_ms = |spec: DeviceSpec| -> f64 {
        let mut session = Session::for_device(spec);
        session.submit(FIB).unwrap();
        session.submit(&fib_input(1024)).unwrap().phases.eval_ms()
    };
    let fermi = eval_ms(device::tesla_c2075());
    let kepler = eval_ms(device::tesla_k20()) * device::tesla_k20().clock_mhz as f64
        / device::tesla_c2075().clock_mhz as f64; // clock-normalized
    let maxwell = eval_ms(device::tesla_m40());
    let pascal = eval_ms(device::gtx1080());
    assert!(fermi > maxwell, "{fermi} vs {maxwell}");
    assert!(maxwell > pascal, "{maxwell} vs {pascal}");
    assert!(kepler > pascal, "{kepler} vs {pascal}");
}

/// §IV intro: uploads are "not bounded by the bandwidth limits of PCIe" —
/// even the 8 KB input transfers in well under the device compute time.
#[test]
fn transfers_are_not_the_bottleneck() {
    let mut session = Session::for_device(device::gtx1080());
    session.submit(FIB).unwrap();
    let reply = session.submit(&fib_input(4096)).unwrap();
    let transfer_ms = reply.phases.transfer_ns as f64 / 1e6;
    assert!(
        transfer_ms * 100.0 < reply.phases.execution_ms(),
        "transfer {transfer_ms} ms vs execution {} ms",
        reply.phases.execution_ms()
    );
}

/// §I: "a complete Lisp interpreter running on the GPU … the host side
/// only for input and output" — device-side time accounts for the whole
/// pipeline except the handshake.
#[test]
fn host_does_only_io() {
    let mut repl = GpuRepl::launch(device::tesla_m40(), GpuReplConfig::default());
    let before = repl.elapsed_device_ns();
    let reply = repl.submit("(+ 1 2)").unwrap();
    let device_ns = repl.elapsed_device_ns() - before;
    // All three phases happened on the device clock.
    let phase_ns = reply.phases.execution_ms() * 1e6;
    assert!(
        (device_ns - phase_ns).abs() < 1.0,
        "{device_ns} vs {phase_ns}"
    );
}
