//! Cross-backend differential harness: seedable randomly generated
//! programs — global defines and overwrites, shadowing redefinitions,
//! `|||` sections (nested ones included, plus computed worker counts,
//! `(list …)` operands and conditional operands that exercise the
//! effect-analysis staging rule), worker errors, short-list errors and
//! GC-pressure loops — run through four `|||` backends:
//!
//! 1. **sequential** — the modeled CPU pipeline (jobs evaluate inline on
//!    the master, separated by the model hook);
//! 2. **fork-per-section** — PR 1's whole-interpreter-clone baseline;
//! 3. **pooled** — the persistent worker pool, one rendezvous per
//!    command (`submit` loop);
//! 4. **pipelined** — the same pool driven through the shared
//!    `BatchScheduler` (`submit_batch`);
//! 5. **fork-batched** — the fork-per-section baseline driven through
//!    the same scheduler (PR 5: every parallel backend implements the
//!    `ExecQueue` staging hooks);
//! 6. **gpu×{1,2,4}** — the simulated-GPU session's batched command
//!    buffers at one, two and four sharded devices (PR 5: round-robined
//!    runs must be bit-identical to the single-device path and to the
//!    modeled-sequential reference — sharding may only move modeled
//!    time between device clocks).
//!
//! Every command's printed reply (error text included) must be
//! byte-identical across all arms, and every *successful* command's
//! paper-model meter charges ([`culi::runtime::CommandCounters`]) must
//! be bit-identical too — parse, master-eval, per-job and print counters
//! alike. (Failed commands stop at backend-dependent points — a chunked
//! worker keeps evaluating its own jobs past the globally-first error —
//! so only their replies and parse counters are comparable.)

use culi::core::fault::{FaultKind, FaultPlan, FaultSite};
use culi::core::{ErrorCode, InterpConfig};
use culi::runtime::{
    CacheConfig, CommandCache, CpuMode, CpuRepl, CpuReplConfig, GpuRepl, GpuReplConfig, Reply,
};
use culi::sim::device::{gtx1080, intel_e5_2620};
use std::time::Duration;

/// splitmix64: deterministic seedable program generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.below((hi - lo) as u64)) as i64
    }
}

const PRELUDE: &[&str] = &[
    "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
    "(defun plus (a b) (+ a b))",
    "(defun addg (x) (+ x g))",
    "(defun fibj (x) (fib (mod x 8)))",
    "(defun boom (x) (/ 100 x))",
    "(defun nest (x) (||| 2 plus (list x g) (3 4)))",
    "(setq g 1)",
    "(setq xs (list 3 4 5 6 7 8))",
];

/// One generated command. Jobs never mutate persistent state: the
/// sequential reference runs them on the master interpreter, where a
/// mutation would (by design) behave differently from the isolated
/// worker backends.
fn command(rng: &mut Rng) -> String {
    match rng.below(16) {
        // Global overwrite between sections.
        0 => format!("(setq g {})", rng.int(-50, 50)),
        // Fresh definition (sync-log growth).
        1 => format!("(setq v{} {})", rng.below(24), rng.int(0, 1000)),
        // Shadowing redefinition (structure-faithfulness stress).
        2 => {
            let op = if rng.below(2) == 0 { "+" } else { "-" };
            format!("(defun addg (x) ({op} x g))")
        }
        // GC-pressure loop: transient garbage inside one command.
        3 => format!("(dotimes (k {}) (fib (mod k 7)))", rng.int(4, 12)),
        // A burst of definitions in one multi-form command: pushes the
        // sync log over the compaction threshold, stranding cold seats
        // behind the faithfulness frontier.
        4 => (0..70)
            .map(|i| format!("(setq b{i} {})", rng.int(0, 9)))
            .collect::<Vec<_>>()
            .join(" "),
        // Section over the global list (symbol operand).
        5 => format!("(||| {} addg xs)", rng.int(1, 6)),
        // Worker errors: boom divides by its argument.
        6 => {
            let n = rng.int(1, 5);
            let args: Vec<String> = (0..n).map(|_| rng.int(0, 3).to_string()).collect();
            format!("(||| {n} boom ({}))", args.join(" "))
        }
        // Short argument list (master-side section error).
        7 => "(||| 5 plus (1 2 3) (1 2 3 4 5))".to_string(),
        // Nested ||| inside each worker.
        8 => {
            let n = rng.int(1, 4);
            let args: Vec<String> = (0..n).map(|_| rng.int(-8, 8).to_string()).collect();
            format!("(||| {n} nest ({}))", args.join(" "))
        }
        // Computed worker count: a pure arithmetic expression the effect
        // classifier stages (a barrier under PR 3's syntactic rule).
        12 => {
            let k = rng.int(1, 4);
            let args: Vec<String> = (0..=k).map(|_| rng.int(-8, 8).to_string()).collect();
            format!("(||| (+ 1 {k}) fibj ({}))", args.join(" "))
        }
        // Computed argument lists: `(list …)` constructors reading the
        // global `g` (stageable under effect analysis).
        13 => {
            let n = rng.int(1, 5);
            let args: Vec<String> = (0..n)
                .map(|_| {
                    if rng.below(3) == 0 {
                        "g".to_string()
                    } else {
                        rng.int(-8, 8).to_string()
                    }
                })
                .collect();
            let second: Vec<String> = (0..n).map(|i| i.to_string()).collect();
            format!(
                "(||| {n} plus (list {}) ({}))",
                args.join(" "),
                second.join(" ")
            )
        }
        // Conditional operand over the global state (stageable).
        14 => {
            let t = rng.int(-20, 20);
            format!("(||| 2 fibj (if (< g {t}) (1 2) (3 4)))")
        }
        // An operand that *calls a user form*: impure, so the pipelined
        // dispatcher must barrier — and the reply must still match.
        15 => {
            let a = rng.int(-5, 5);
            format!("(||| 2 plus (list (plus {a} 1) 2) (3 4))")
        }
        // Plain sections over the pure prelude functions.
        _ => {
            let n = rng.int(1, 6);
            let args: Vec<String> = (0..n).map(|_| rng.int(-8, 8).to_string()).collect();
            let list = args.join(" ");
            match rng.below(3) {
                0 => {
                    let second: Vec<String> = (0..n).map(|i| i.to_string()).collect();
                    format!("(||| {n} plus ({list}) ({}))", second.join(" "))
                }
                1 => format!("(||| {n} fibj ({list}))"),
                _ => format!("(||| {n} addg ({list}))"),
            }
        }
    }
}

fn repl(mode: CpuMode) -> CpuRepl {
    CpuRepl::launch(
        intel_e5_2620(),
        CpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 17,
                ..Default::default()
            },
            mode,
            ..Default::default()
        },
    )
}

fn gpu_repl(devices: usize) -> GpuRepl {
    GpuRepl::launch(
        gtx1080(),
        GpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 17,
                ..Default::default()
            },
            device_count: devices,
            ..Default::default()
        },
    )
}

/// A pipelined CPU arm with the PR 8 structural-hash command cache
/// enabled. The cache handle is passed in so arms can share verdict and
/// template tiers through [`CommandCache::tenant_view`], the way the
/// session server shares them across tenants.
fn repl_cached(cache: CommandCache) -> CpuRepl {
    CpuRepl::launch(
        intel_e5_2620(),
        CpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 17,
                ..Default::default()
            },
            mode: CpuMode::Threaded { threads: 4 },
            cache: Some(cache),
            ..Default::default()
        },
    )
}

fn gpu_repl_cached(cache: CommandCache) -> GpuRepl {
    GpuRepl::launch(
        gtx1080(),
        GpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 17,
                ..Default::default()
            },
            device_count: 1,
            cache: Some(cache),
            ..Default::default()
        },
    )
}

fn check_program(seed: u64) {
    let mut rng = Rng(seed);
    let len = 4 + rng.below(8) as usize;
    let commands: Vec<String> = (0..len).map(|_| command(&mut rng)).collect();

    let mut sequential = repl(CpuMode::Modeled);
    let mut forked = repl(CpuMode::ForkPerSection { threads: 4 });
    let mut pooled = repl(CpuMode::Threaded { threads: 4 });
    let mut pipelined = repl(CpuMode::Threaded { threads: 4 });
    let mut fork_batched = repl(CpuMode::ForkPerSection { threads: 4 });
    let mut gpus: Vec<GpuRepl> = [1, 2, 4].map(gpu_repl).into_iter().collect();
    // Cache arms (PR 8): one shared cache, tenant views per backend — the
    // CPU and GPU arms share verdict/template tiers but keep private
    // reply tiers, exactly like server tenants.
    let shared_cache = CommandCache::new(CacheConfig::default());
    let mut cached = repl_cached(shared_cache.tenant_view());
    let mut cached_gpu = gpu_repl_cached(shared_cache.tenant_view());
    for line in PRELUDE {
        sequential.submit(line).unwrap();
        forked.submit(line).unwrap();
        pooled.submit(line).unwrap();
        pipelined.submit(line).unwrap();
        fork_batched.submit(line).unwrap();
        cached.submit(line).unwrap();
        cached_gpu.submit(line).unwrap();
        for gpu in &mut gpus {
            gpu.submit(line).unwrap();
        }
    }

    let inputs: Vec<&str> = commands.iter().map(String::as_str).collect();
    let batched = pipelined.submit_batch(&inputs).unwrap();
    assert_eq!(batched.len(), inputs.len());
    let fork_batch = fork_batched.submit_batch(&inputs).unwrap();
    let gpu_batches: Vec<Vec<Reply>> = gpus
        .iter_mut()
        .map(|gpu| gpu.submit_batch(&inputs).unwrap())
        .collect();
    // Cache arms run the stream twice: the cold pass is compared against
    // the sequential reference, the warm pass (served from the cache
    // wherever commands repeat or recur across passes) is compared
    // against a second uncached pass over the same state.
    let cached_cold = cached.submit_batch(&inputs).unwrap();
    let cached_gpu_cold = cached_gpu.submit_batch(&inputs).unwrap();
    let batched_warm = pipelined.submit_batch(&inputs).unwrap();
    let gpu_warm = gpus[0].submit_batch(&inputs).unwrap();
    let cached_warm = cached.submit_batch(&inputs).unwrap();
    let cached_gpu_warm = cached_gpu.submit_batch(&inputs).unwrap();

    for (k, src) in inputs.iter().enumerate() {
        let a = sequential.submit(src).unwrap();
        let b = forked.submit(src).unwrap();
        let c = pooled.submit(src).unwrap();
        let d = &batched[k];
        let tag = |name: &str| format!("seed {seed} cmd {k} [{name}]: {src}");
        compare_replies(&a, &b, &tag("fork-per-section"));
        compare_replies(&a, &c, &tag("pooled"));
        compare_replies(&a, d, &tag("pipelined"));
        compare_replies(&a, &fork_batch[k], &tag("fork-batched"));
        compare_replies(&a, &cached_cold[k], &tag("pipelined+cache cold"));
        compare_replies(&a, &cached_gpu_cold[k], &tag("gpu+cache cold"));
        compare_replies(
            &batched_warm[k],
            &cached_warm[k],
            &tag("pipelined+cache warm"),
        );
        compare_replies(&gpu_warm[k], &cached_gpu_warm[k], &tag("gpu+cache warm"));
        for (devices, replies) in [1usize, 2, 4].iter().zip(&gpu_batches) {
            compare_replies(&a, &replies[k], &tag(&format!("gpu x{devices}")));
        }
    }
}

fn compare_replies(reference: &Reply, got: &Reply, context: &str) {
    assert_eq!(reference.output, got.output, "{context}");
    assert_eq!(reference.ok, got.ok, "{context}");
    // Parse work is backend-independent even on failures.
    assert_eq!(
        reference.counters.parse, got.counters.parse,
        "parse charges — {context}"
    );
    if reference.ok {
        assert_eq!(
            reference.counters, got.counters,
            "paper-model charges — {context}"
        );
    }
}

/// Seeds to run, configurable for CI depth: `CULI_DIFF_SEEDS` (default
/// 100, minimum 4). The work is split into four chunks so the default
/// test runner parallelizes them; CI's deep job sets `CULI_DIFF_SEEDS=500`.
fn seed_count() -> u64 {
    std::env::var("CULI_DIFF_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
        .max(4)
}

fn check_chunk(chunk: u64) {
    let n = seed_count();
    for seed in (chunk * n / 4)..((chunk + 1) * n / 4) {
        check_program(seed);
    }
}

#[test]
fn differential_seeds_chunk_0_of_4() {
    check_chunk(0);
}

#[test]
fn differential_seeds_chunk_1_of_4() {
    check_chunk(1);
}

#[test]
fn differential_seeds_chunk_2_of_4() {
    check_chunk(2);
}

#[test]
fn differential_seeds_chunk_3_of_4() {
    check_chunk(3);
}

// --------------------------------------------------------------------
// Fault sweep (PR 6): the same generated command streams run through
// fault-injected sessions. Injected infrastructure failures — worker
// panics, hangs past the watchdog deadline, garbled and dropped replies,
// dropped GPU reply handshakes — must be *invisible* in the reply
// stream: byte-identical output/ok/counters in submission order against
// the un-faulted sequential reference. Only `Reply::code` may differ
// (deliberately: `Degraded` marks answers produced by the fallback).

/// A real-threads CPU session with a scripted fault plan and a watchdog
/// deadline short enough to keep injected hangs cheap.
fn faulted_cpu(plan: FaultPlan, cache: Option<CommandCache>) -> CpuRepl {
    CpuRepl::launch(
        intel_e5_2620(),
        CpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 17,
                ..Default::default()
            },
            mode: CpuMode::Threaded { threads: 4 },
            reply_deadline: Duration::from_millis(100),
            fault_plan: plan,
            cache,
            ..Default::default()
        },
    )
}

fn faulted_gpu(plan: FaultPlan) -> GpuRepl {
    GpuRepl::launch(
        gtx1080(),
        GpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 17,
                ..Default::default()
            },
            fault_plan: plan,
            ..Default::default()
        },
    )
}

/// Replies must match in everything *except* `code`: a degraded slot
/// carries the same bytes with `ErrorCode::Degraded`.
fn compare_faulted(reference: &Reply, got: &Reply, context: &str) {
    compare_replies(reference, got, context);
    assert!(
        got.code == reference.code || got.code == ErrorCode::Degraded,
        "unexpected code {:?} — {context}",
        got.code
    );
}

/// One seeded program through a fault-injected CPU batch (and, when the
/// plan has device triggers, a fault-injected GPU batch) against the
/// un-faulted sequential reference.
fn check_faulted_program(seed: u64, cpu_plan: FaultPlan, gpu_plan: FaultPlan) {
    let mut rng = Rng(seed);
    let len = 4 + rng.below(8) as usize;
    let commands: Vec<String> = (0..len).map(|_| command(&mut rng)).collect();
    let inputs: Vec<&str> = commands.iter().map(String::as_str).collect();

    let mut reference = repl(CpuMode::Modeled);
    let mut cpu = faulted_cpu(cpu_plan, None);
    // Cache arm: its own seed-derived plan (plans share trigger state
    // across clones, so the primary arm's plan cannot be reused) and the
    // PR 8 command cache enabled. Faults may land at different events —
    // cache hits skip pool work — but must stay just as invisible.
    let mut cpu_cached = faulted_cpu(
        FaultPlan::from_seed(seed ^ 0xca54_e0e5),
        Some(CommandCache::new(CacheConfig::default())),
    );
    let mut gpu = faulted_gpu(gpu_plan);
    for line in PRELUDE {
        reference.submit(line).unwrap();
        cpu.submit(line).unwrap();
        cpu_cached.submit(line).unwrap();
        gpu.submit(line).unwrap();
    }
    let cpu_batch = cpu.submit_batch(&inputs).unwrap();
    let gpu_batch = gpu.submit_batch(&inputs).unwrap();
    // Two passes through the cached arm: cold, then warm from the cache.
    let cached_cold = cpu_cached.submit_batch(&inputs).unwrap();
    let cached_warm = cpu_cached.submit_batch(&inputs).unwrap();
    assert_eq!(cpu_batch.len(), inputs.len());
    assert_eq!(gpu_batch.len(), inputs.len());
    for (k, src) in inputs.iter().enumerate() {
        let want = reference.submit(src).unwrap();
        let tag = |name: &str| format!("fault seed {seed} cmd {k} [{name}]: {src}");
        compare_faulted(&want, &cpu_batch[k], &tag("cpu faulted"));
        compare_faulted(&want, &gpu_batch[k], &tag("gpu faulted"));
        compare_faulted(&want, &cached_cold[k], &tag("cpu faulted+cache cold"));
    }
    // Warm pass: the reference re-runs the stream from the same state the
    // cached arm reached after its cold pass.
    for (k, src) in inputs.iter().enumerate() {
        let want = reference.submit(src).unwrap();
        let tag = format!("fault seed {seed} cmd {k} [cpu faulted+cache warm]: {src}");
        compare_faulted(&want, &cached_warm[k], &tag);
    }
}

/// Seeded sweep: scripted fault plans (kind, site and event index all
/// seed-derived) over the generated program space. `CULI_FAULT_SEEDS`
/// deepens it in CI (default 12, minimum 4).
#[test]
fn fault_sweep_seeded_plans_are_invisible_in_replies() {
    let n: u64 = std::env::var("CULI_FAULT_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
        .max(4);
    for seed in 0..n {
        check_faulted_program(
            seed,
            FaultPlan::from_seed(seed),
            FaultPlan::from_seed(seed ^ 0x5eed),
        );
    }
}

/// Directed sweep: every worker fault kind at several early section
/// events, so each recovery path (panic respawn, watchdog detach,
/// garbled-reply write-off, dropped-reply write-off) provably runs.
#[test]
fn fault_sweep_every_worker_fault_kind_and_site() {
    let mut injected = 0;
    for kind in [
        FaultKind::Panic,
        FaultKind::Hang,
        FaultKind::Garbage,
        FaultKind::DropReply,
    ] {
        for at in [0, 1, 3] {
            let plan = FaultPlan::single(FaultSite::WorkerSection, kind, at);
            check_faulted_program(7, plan.clone(), FaultPlan::none());
            injected += plan.injected_count();
        }
    }
    assert!(
        injected >= 8,
        "directed plans barely fired ({injected}); sweep lost its teeth"
    );
}

/// Directed GPU arm: a drop burst longer than the handshake retry budget
/// forces the scheduler's sequential fallback on the device path.
#[test]
fn fault_sweep_gpu_drop_burst_degrades_and_matches() {
    let plan = FaultPlan::burst(FaultSite::DeviceReply, FaultKind::DropReply, 0, 4);
    check_faulted_program(11, FaultPlan::none(), plan.clone());
    assert!(plan.injected_count() >= 3, "{}", plan.injected_count());
}

/// A deliberate runaway under a fuel budget comes back as a prompt,
/// well-formed fuel error — the session survives and the abort happens
/// in interpreter time, far inside the watchdog deadline.
#[test]
fn runaway_under_fuel_budget_is_contained_promptly() {
    let mut cpu = CpuRepl::launch(
        intel_e5_2620(),
        CpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 17,
                fuel_budget: 100_000,
                ..Default::default()
            },
            mode: CpuMode::Threaded { threads: 4 },
            ..Default::default()
        },
    );
    let started = std::time::Instant::now();
    let reply = cpu.submit("(dotimes (i 1000000000) (+ i i))").unwrap();
    assert!(!reply.ok);
    assert_eq!(reply.code, ErrorCode::Fuel);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "containment latency {:?}",
        started.elapsed()
    );
    assert_eq!(cpu.submit("(+ 1 2)").unwrap().output, "3");
}

/// Server arm of the fault sweep (PR 7): three tenants share one
/// [`culi::runtime::SessionServer`] under warm-set churn (immediate
/// promotion, one warm slot), with tenant 0 carrying a seeded
/// tenant-scoped fault plan that substitutes hostile commands (runaway
/// fuel, oversized payloads, unbounded loops) for its own stream. The
/// healthy tenants' replies must stay **byte-identical** — output, ok,
/// code and full counters — and in submission order against isolated
/// [`culi::runtime::Session::tenant`] reference sessions: tenant-scoped
/// faults may never leak across the admission boundary.
#[test]
fn fault_sweep_server_healthy_tenants_stay_byte_identical() {
    use culi::runtime::{ServerConfig, Session, SessionServer, TenantSessionConfig};

    let n: u64 = std::env::var("CULI_FAULT_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
        .max(4);
    for seed in 0..n {
        let mut rng = Rng(seed ^ 0x07e4_a4e7);
        let healthy_cfg = TenantSessionConfig {
            fuel_budget: 10_000_000,
            arena_capacity: 1 << 17,
            ..Default::default()
        };
        let noisy_plan = FaultPlan::from_seed_tenant(seed);
        let noisy_cfg = TenantSessionConfig {
            // Tight budgets keep substituted runaways cheap to contain
            // (the arena bound caps oversized-payload churn, the fuel
            // bound caps compute runaways) while still letting the
            // prelude and most generated commands through.
            fuel_budget: 60_000,
            arena_capacity: 1 << 15,
            fault_plan: noisy_plan.clone(),
            ..Default::default()
        };
        let mut srv = SessionServer::new(
            intel_e5_2620(),
            ServerConfig {
                // Immediate promotion + a single warm slot: every tenant
                // rides the pooled route and they continually evict each
                // other, so re-warm transparency is under test too.
                promote_after: 0,
                warm_limit: 1,
                ..Default::default()
            },
        );
        let noisy = srv.admit(noisy_cfg);
        let healthy: Vec<_> = (0..2).map(|_| srv.admit(healthy_cfg.clone())).collect();

        let streams: Vec<Vec<String>> = (0..3)
            .map(|_| {
                let len = 4 + rng.below(8) as usize;
                let mut stream: Vec<String> = PRELUDE.iter().map(|s| s.to_string()).collect();
                stream.extend((0..len).map(|_| command(&mut rng)));
                stream
            })
            .collect();
        let ids = [noisy, healthy[0], healthy[1]];
        // Interleave submissions so every round mixes tenants.
        let longest = streams.iter().map(Vec::len).max().unwrap();
        for k in 0..longest {
            for (t, stream) in streams.iter().enumerate() {
                if let Some(cmd) = stream.get(k) {
                    assert!(srv.enqueue(ids[t], cmd).is_none(), "seed {seed}");
                }
            }
        }
        let mut replies: Vec<Vec<Reply>> = vec![Vec::new(); 3];
        for (id, r) in srv.drain() {
            let t = ids.iter().position(|i| *i == id).unwrap();
            replies[t].push(r);
        }
        assert!(
            noisy_plan.injected_count() >= 1,
            "seed {seed}: tenant plan never fired"
        );

        for (t, id) in ids.iter().enumerate().skip(1) {
            assert_eq!(replies[t].len(), streams[t].len(), "seed {seed}");
            let mut isolated = Session::tenant(intel_e5_2620(), &healthy_cfg);
            for (k, src) in streams[t].iter().enumerate() {
                let want = isolated.submit(src).unwrap();
                let got = &replies[t][k];
                let tag = format!("fault seed {seed} tenant {id} cmd {k} [server]: {src}");
                compare_replies(&want, got, &tag);
                assert_eq!(want.code, got.code, "{tag}");
            }
            isolated.shutdown();
        }
        srv.shutdown();
    }
}

/// A directed worst case the generator only sometimes hits: definition
/// bursts past the compaction threshold with shadowing redefinitions,
/// then sections on every backend — cold seats must resynchronize via
/// snapshot and still charge identically.
#[test]
fn differential_survives_compaction_and_snapshot_resync() {
    let burst: String = (0..80).map(|i| format!("(setq c{i} {i}) ")).collect();
    let program = [
        "(||| 2 fibj (1 2))",
        burst.as_str(),
        "(defun addg (x) (* x g))",
        "(defun addg (x) (+ x g))",
        "(||| 5 addg (1 2 3 4 5))",
        "(||| 1 addg (9))",
        "(||| (+ 2 3) addg (list g 2 g 4 5))", // computed count + operand
        "(||| 5 fibj (1 2 3 4 5))",
    ];
    let mut sequential = repl(CpuMode::Modeled);
    let mut forked = repl(CpuMode::ForkPerSection { threads: 4 });
    let mut pooled = repl(CpuMode::Threaded { threads: 4 });
    let mut pipelined = repl(CpuMode::Threaded { threads: 4 });
    for line in PRELUDE {
        sequential.submit(line).unwrap();
        forked.submit(line).unwrap();
        pooled.submit(line).unwrap();
        pipelined.submit(line).unwrap();
    }
    let batched = pipelined.submit_batch(&program).unwrap();
    for (k, src) in program.iter().enumerate() {
        let a = sequential.submit(src).unwrap();
        let b = forked.submit(src).unwrap();
        let c = pooled.submit(src).unwrap();
        compare_replies(&a, &b, &format!("cmd {k} [fork]"));
        compare_replies(&a, &c, &format!("cmd {k} [pooled]"));
        compare_replies(&a, &batched[k], &format!("cmd {k} [pipelined]"));
    }
}
