//! Invariants of the machine simulation observed through the runtime:
//! timing monotonicity, phase accounting, livelock matrix, statistics.

use culi::prelude::*;
use culi::sim::device;
use culi::sim::{LivelockCause, SimError};

const FIB: &str = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

fn fib_input(n: usize) -> String {
    let args = vec!["5"; n].join(" ");
    format!("(||| {n} fib ({args}))")
}

#[test]
fn more_jobs_never_cost_less() {
    for spec in [device::gtx1080(), device::amd_6272()] {
        let mut session = Session::for_device(spec);
        session.submit(FIB).unwrap();
        let mut prev = 0.0;
        for n in [1usize, 8, 64, 512, 2048] {
            let reply = session.submit(&fib_input(n)).unwrap();
            let t = reply.phases.execution_ms();
            assert!(
                t >= prev,
                "{}: execution time decreased at n={n}: {t} < {prev}",
                spec.name
            );
            prev = t;
        }
    }
}

#[test]
fn longer_inputs_never_parse_faster() {
    let mut session = Session::for_device(device::tesla_k20());
    let mut prev = 0.0;
    for n in [1usize, 16, 256, 4096] {
        let input = format!("(list {})", vec!["1"; n].join(" "));
        let reply = session.submit(&input).unwrap();
        let t = reply.phases.parse_ms();
        assert!(t >= prev, "parse time decreased at n={n}");
        prev = t;
    }
}

#[test]
fn phase_proportions_are_a_partition() {
    let mut session = Session::for_device(device::gtx480());
    session.submit(FIB).unwrap();
    for n in [1usize, 32, 1024] {
        let reply = session.submit(&fib_input(n)).unwrap();
        let (p, e, pr) = reply.phases.proportions();
        assert!((p + e + pr - 1.0).abs() < 1e-9, "n={n}: {p}+{e}+{pr}");
        assert!(p >= 0.0 && e >= 0.0 && pr >= 0.0);
        let total = reply.phases.parse_ms() + reply.phases.eval_ms() + reply.phases.print_ms();
        assert!((total - reply.phases.execution_ms()).abs() < 1e-9);
    }
}

#[test]
fn livelock_matrix_matches_the_paper() {
    let spec = device::gtx1080();
    // (mask, flag, jobs) → livelocks?
    let cases = [
        (true, true, 33, false), // the shipped design
        (true, true, 64, false),
        (false, true, 4, true),   // Fig. 12 ablation
        (true, false, 33, true),  // Fig. 13 ablation, partial warp
        (true, false, 64, false), // multiple of 32: paper says fine
        (true, false, 4096, false),
    ];
    for (mask, flag, jobs, expect_livelock) in cases {
        let mut session = Session::gpu_with_kernel_config(
            spec,
            KernelConfig {
                mask_master_block: mask,
                block_sync_flag: flag,
            },
        );
        session.submit(FIB).unwrap();
        let result = session.submit(&fib_input(jobs));
        let livelocked = matches!(result, Err(RuntimeError::Device(SimError::Livelock { .. })));
        assert_eq!(
            livelocked, expect_livelock,
            "mask={mask} flag={flag} jobs={jobs}: got {result:?}"
        );
    }
}

#[test]
fn livelock_diagnosis_names_the_block() {
    let mut session = Session::gpu_with_kernel_config(
        device::gtx680(),
        KernelConfig {
            block_sync_flag: false,
            ..Default::default()
        },
    );
    session.submit(FIB).unwrap();
    match session.submit(&fib_input(40)) {
        Err(RuntimeError::Device(SimError::Livelock {
            cause: LivelockCause::PartialWarpWithoutBlockFlag { assigned, .. },
            ..
        })) => assert_eq!(assigned, 8, "40 jobs = 32 + 8"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn atomic_traffic_scales_with_jobs() {
    let spec = device::tesla_m40();
    let count_atomics = |n: usize| -> u64 {
        let mut repl = GpuRepl::launch(spec, GpuReplConfig::default());
        repl.submit(FIB).unwrap();
        repl.submit(&fib_input(n)).unwrap();
        repl.stats().atomic_ops
    };
    let a32 = count_atomics(32);
    let a1024 = count_atomics(1024);
    // 6 postbox atomics per job plus per-block flag traffic.
    assert!(a1024 > a32 * 20, "atomics {a32} → {a1024}");
    assert!(a1024 >= 6 * 1024, "at least 6 atomics per job: {a1024}");
}

#[test]
fn spin_counters_record_idle_burn() {
    // Paper §II-C: busy-waiting workers burn cycles while the master
    // parses. A long serial command must grow the spin counter.
    let spec = device::gtx1080();
    let mut repl = GpuRepl::launch(spec, GpuReplConfig::default());
    let before = repl.stats().spin_iterations;
    repl.submit(&format!("(length (list {}))", vec!["1"; 2000].join(" ")))
        .unwrap();
    let after = repl.stats().spin_iterations;
    assert!(
        after > before,
        "spin iterations must grow: {before} → {after}"
    );
}

#[test]
fn base_latency_is_independent_of_work_done() {
    let spec = device::tesla_k20();
    let idle = Session::measure_base_latency_ms(spec);
    let mut busy = Session::for_device(spec);
    busy.submit(FIB).unwrap();
    busy.submit(&fib_input(128)).unwrap();
    let after_work = busy.shutdown();
    assert!((idle - after_work).abs() < 1e-9, "{idle} vs {after_work}");
}

#[test]
fn sm_oversubscription_grows_execute_time_linearly() {
    let spec = device::gtx1080(); // 20 SMs
    let mut repl = GpuRepl::launch(spec, GpuReplConfig::default());
    repl.submit(FIB).unwrap();
    let exec = |repl: &mut GpuRepl, blocks: usize| -> u64 {
        let reply = repl.submit(&fib_input(32 * blocks)).unwrap();
        reply.sections[0].execute_cycles
    };
    let one_wave = exec(&mut repl, 20); // 1 block per SM
    let four_waves = exec(&mut repl, 80); // 4 blocks per SM
    let ratio = four_waves as f64 / one_wave as f64;
    assert!(
        (3.0..5.5).contains(&ratio),
        "4 blocks/SM should take ~4× one: {one_wave} → {four_waves} ({ratio:.2}×)"
    );
}
