//! Property-based tests over the whole stack.

use culi::core::{Interp, InterpConfig};
use culi::prelude::*;
use culi::sim::device;
use proptest::prelude::*;

/// Strategy: a rendered CuLi value expression with a predictable printed
/// form, built bottom-up (ints, floats kept to exact halves, strings,
/// symbols, quoted nested lists).
fn value_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|v| v.to_string()),
        (-1000i32..1000).prop_map(|v| format!("{}.5", v)),
        "[a-z][a-z0-9-]{0,6}".prop_map(|s| s),
        "[a-z ]{0,8}".prop_map(|s| format!("\"{s}\"")),
        Just("nil".to_string()),
        Just("T".to_string()),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop::collection::vec(inner, 0..5).prop_map(|items| format!("({})", items.join(" ")))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print(parse(x)) is idempotent: whatever a quoted value prints as,
    /// re-reading and re-printing it reproduces the same text.
    #[test]
    fn print_parse_roundtrip_is_idempotent(expr in value_expr()) {
        let mut lisp = Interp::default();
        let once = lisp.eval_str(&format!("(quote {expr})")).unwrap();
        let mut lisp2 = Interp::default();
        let twice = lisp2.eval_str(&format!("(quote {once})")).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// Arbitrary printable input never panics the full GPU pipeline — it
    /// parses+evaluates or reports a clean error.
    #[test]
    fn arbitrary_input_never_panics_the_repl(input in "[ -~]{0,120}") {
        let mut repl = GpuRepl::launch(
            device::gtx680(),
            GpuReplConfig {
                interp: InterpConfig {
                    arena_capacity: 1 << 14,
                    max_depth: 64,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let _ = repl.submit(&input); // Ok(reply) or Err — never a panic
    }

    /// Integer arithmetic agrees with a Rust reference model.
    #[test]
    fn int_arithmetic_matches_reference(
        a in -10_000i64..10_000,
        b in -10_000i64..10_000,
        c in 1i64..100,
    ) {
        let mut lisp = Interp::default();
        let cases = [
            (format!("(+ {a} {b})"), (a + b).to_string()),
            (format!("(- {a} {b})"), (a - b).to_string()),
            (format!("(* {a} {c})"), (a * c).to_string()),
            (format!("(mod {a} {c})"), a.rem_euclid(c).to_string()),
            (format!("(min {a} {b})"), a.min(b).to_string()),
            (format!("(max {a} {b})"), a.max(b).to_string()),
        ];
        for (expr, want) in cases {
            prop_assert_eq!(lisp.eval_str(&expr).unwrap(), want, "{}", expr);
        }
    }

    /// Comparison chains agree with Rust's comparison operators.
    #[test]
    fn comparisons_match_reference(a in -100i64..100, b in -100i64..100) {
        let mut lisp = Interp::default();
        let tf = |v: bool| if v { "T" } else { "nil" };
        let cases = [
            (format!("(< {a} {b})"), tf(a < b)),
            (format!("(> {a} {b})"), tf(a > b)),
            (format!("(<= {a} {b})"), tf(a <= b)),
            (format!("(>= {a} {b})"), tf(a >= b)),
            (format!("(= {a} {b})"), tf(a == b)),
        ];
        for (expr, want) in cases {
            prop_assert_eq!(lisp.eval_str(&expr).unwrap(), want, "{}", expr);
        }
    }

    /// `(||| n + xs ys)` equals element-wise addition, for any n and data.
    #[test]
    fn parallel_add_matches_elementwise(
        pairs in prop::collection::vec((-1000i64..1000, -1000i64..1000), 1..40)
    ) {
        let n = pairs.len();
        let xs: Vec<String> = pairs.iter().map(|p| p.0.to_string()).collect();
        let ys: Vec<String> = pairs.iter().map(|p| p.1.to_string()).collect();
        let want: Vec<String> = pairs.iter().map(|p| (p.0 + p.1).to_string()).collect();
        let input = format!("(||| {n} + ({}) ({}))", xs.join(" "), ys.join(" "));
        let mut lisp = Interp::default();
        prop_assert_eq!(lisp.eval_str(&input).unwrap(), format!("({})", want.join(" ")));
    }

    /// Every backend produces the identical reply for a random value
    /// expression (quoted, so evaluation is printing-only).
    #[test]
    fn backends_agree_on_arbitrary_values(expr in value_expr()) {
        let input = format!("(quote {expr})");
        let mut reference: Option<String> = None;
        for spec in [device::gtx1080(), device::tesla_c2075(), device::intel_e5_2620()] {
            let mut session = Session::for_device(spec);
            let reply = session.submit(&input).unwrap();
            prop_assert!(reply.ok);
            match &reference {
                None => reference = Some(reply.output),
                Some(r) => prop_assert_eq!(r, &reply.output, "{}", spec.name),
            }
        }
    }

    /// list/length/reverse/append laws hold for arbitrary int lists.
    #[test]
    fn list_laws(xs in prop::collection::vec(-100i64..100, 0..12)) {
        let mut lisp = Interp::default();
        let body = xs.iter().map(i64::to_string).collect::<Vec<_>>().join(" ");
        lisp.eval_str(&format!("(setq xs (list {body}))")).unwrap();
        // length
        prop_assert_eq!(lisp.eval_str("(length xs)").unwrap(), xs.len().to_string());
        // reverse . reverse = id
        prop_assert_eq!(
            lisp.eval_str("(equal (reverse (reverse xs)) xs)").unwrap(),
            "T"
        );
        // length (append xs xs) = 2 * length xs
        prop_assert_eq!(
            lisp.eval_str("(length (append xs xs))").unwrap(),
            (2 * xs.len()).to_string()
        );
        // cons/car/cdr inverse
        if !xs.is_empty() {
            prop_assert_eq!(
                lisp.eval_str("(equal (cons (car xs) (cdr xs)) xs)").unwrap(),
                "T"
            );
        }
    }

    /// GC never changes observable results: evaluate, collect, re-evaluate.
    #[test]
    fn gc_preserves_semantics(seed in 0u64..1000) {
        let mut lisp = Interp::new(InterpConfig { arena_capacity: 1 << 14, ..Default::default() });
        lisp.eval_str(&format!("(setq x {seed})")).unwrap();
        lisp.eval_str("(defun probe () (* x 3))").unwrap();
        let before = lisp.eval_str("(probe)").unwrap();
        culi::core::gc::collect(&mut lisp, &[]);
        let after = lisp.eval_str("(probe)").unwrap();
        prop_assert_eq!(before, after);
    }
}
