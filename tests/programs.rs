//! Real Lisp programs running end-to-end on the simulated GPU — the
//! acceptance suite: if CuLi is "a complete Lisp interpreter", these must
//! just work. Note the careful variable naming: CuLi is dynamically
//! scoped (environments chain to the *caller*), so free variables in
//! lambdas resolve against the dynamic chain.

use culi::prelude::*;
use culi::sim::device;

fn session() -> Session {
    Session::for_device(device::gtx1080())
}

#[test]
fn quicksort() {
    let mut s = session();
    s.submit(
        "(defun filter (pred lst) \
           (if (null lst) nil \
             (if (funcall pred (car lst)) \
               (cons (car lst) (filter pred (cdr lst))) \
               (filter pred (cdr lst)))))",
    )
    .unwrap();
    s.submit(
        "(defun qs (xs) \
           (if (null xs) nil \
             (let* ((pivot (car xs)) (rest (cdr xs))) \
               (append \
                 (qs (filter (lambda (y) (< y pivot)) rest)) \
                 (list pivot) \
                 (qs (filter (lambda (y) (>= y pivot)) rest))))))",
    )
    .unwrap();
    let reply = s.submit("(qs (list 3 1 4 1 5 9 2 6 5 3 5))").unwrap();
    assert_eq!(reply.output, "(1 1 2 3 3 4 5 5 5 6 9)");
    assert_eq!(s.submit("(qs nil)").unwrap().output, "nil");
    assert_eq!(s.submit("(qs (list 42))").unwrap().output, "(42)");
}

#[test]
fn ackermann() {
    let mut s = session();
    s.submit(
        "(defun ack (m n) \
           (cond ((= m 0) (+ n 1)) \
                 ((= n 0) (ack (- m 1) 1)) \
                 (T (ack (- m 1) (ack m (- n 1))))))",
    )
    .unwrap();
    assert_eq!(s.submit("(ack 1 3)").unwrap().output, "5");
    assert_eq!(s.submit("(ack 2 3)").unwrap().output, "9");
    assert_eq!(s.submit("(ack 3 3)").unwrap().output, "61");
}

#[test]
fn fizzbuzz_via_mapcar_and_cond() {
    let mut s = session();
    s.submit(
        "(defun fizz (n) \
           (cond ((= 0 (mod n 15)) \"fizzbuzz\") \
                 ((= 0 (mod n 3)) \"fizz\") \
                 ((= 0 (mod n 5)) \"buzz\") \
                 (T n)))",
    )
    .unwrap();
    let reply = s.submit("(mapcar fizz (list 1 3 5 15 7))").unwrap();
    assert_eq!(reply.output, "(1 \"fizz\" \"buzz\" \"fizzbuzz\" 7)");
}

#[test]
fn map_reduce_with_parallel_map() {
    // The |||-parallel map feeds a sequential reduce — the paper's
    // motivating usage pattern.
    let mut s = session();
    s.submit("(defun sq (x) (* x x))").unwrap();
    s.submit("(setq squares (||| 10 sq (1 2 3 4 5 6 7 8 9 10)))")
        .unwrap();
    assert_eq!(s.submit("(apply + squares)").unwrap().output, "385");
    assert_eq!(s.submit("(apply max squares)").unwrap().output, "100");
}

#[test]
fn iterative_fibonacci_with_while() {
    let mut s = session();
    s.submit(
        "(defun fib-iter (n) \
           (let* ((a 0) (b 1) (i 0)) \
             (progn \
               (while (< i n) \
                 (let tmp b) \
                 (setq b (+ a b)) \
                 (setq a tmp) \
                 (setq i (+ i 1))) \
               a)))",
    )
    .unwrap();
    assert_eq!(s.submit("(fib-iter 10)").unwrap().output, "55");
    assert_eq!(s.submit("(fib-iter 30)").unwrap().output, "832040");
}

#[test]
fn macro_generated_control_flow() {
    let mut s = session();
    // A `for` macro expanding to dotimes + body splice.
    s.submit("(defmacro for (var n body) `(dotimes (,var ,n) ,body))")
        .unwrap();
    s.submit("(setq total 0)").unwrap();
    s.submit("(for k 10 (setq total (+ total k)))").unwrap();
    assert_eq!(s.submit("total").unwrap().output, "45");
}

#[test]
fn association_list_database() {
    let mut s = session();
    s.submit(
        "(setq db (list (list \"fermi\" 2010) (list \"kepler\" 2012) \
                        (list \"maxwell\" 2014) (list \"pascal\" 2016)))",
    )
    .unwrap();
    assert_eq!(
        s.submit("(car (cdr (assoc \"kepler\" db)))")
            .unwrap()
            .output,
        "2012"
    );
    assert_eq!(s.submit("(assoc \"volta\" db)").unwrap().output, "nil");
    assert_eq!(s.submit("(length db)").unwrap().output, "4");
    // Insert and look up again.
    s.submit("(setq db (cons (list \"volta\" 2017) db))")
        .unwrap();
    assert_eq!(
        s.submit("(car (cdr (assoc \"volta\" db)))").unwrap().output,
        "2017"
    );
}

#[test]
fn higher_order_composition_and_the_funarg_problem() {
    let mut s = session();
    s.submit("(setq add3 (lambda (x) (+ x 3)))").unwrap();
    s.submit("(setq dbl (lambda (x) (* x 2)))").unwrap();

    // Composition works while f and g are live on the dynamic chain.
    s.submit("(defun compose-call (f g x) (funcall f (funcall g x)))")
        .unwrap();
    assert_eq!(s.submit("(compose-call add3 dbl 10)").unwrap().output, "23");

    // CuLi is dynamically scoped (environments chain to the caller, paper
    // §III-B), so a lambda that *escapes* the binding of its free
    // variables exhibits the classic upward funarg problem: f and g are
    // gone by the time the escaped lambda runs. This is faithful
    // behavior, pinned here as a regression test.
    s.submit("(defun compose (f g) (lambda (x) (funcall f (funcall g x))))")
        .unwrap();
    let reply = s.submit("(funcall (compose add3 dbl) 10)").unwrap();
    assert!(
        !reply.ok,
        "escaped lambda must not find f/g: {}",
        reply.output
    );
    assert!(reply.output.contains("funcall"), "{}", reply.output);
}

#[test]
fn string_processing_pipeline() {
    let mut s = session();
    s.submit("(setq words (list \"running\" \"lisp\" \"on\" \"gpus\"))")
        .unwrap();
    s.submit(
        "(defun join (lst) (if (null lst) \"\" \
            (if (null (cdr lst)) (car lst) \
              (concat (car lst) \" \" (join (cdr lst))))))",
    )
    .unwrap();
    assert_eq!(
        s.submit("(join words)").unwrap().output,
        "\"running lisp on gpus\""
    );
    assert_eq!(
        s.submit("(string-length (join words))").unwrap().output,
        "20"
    );
    assert_eq!(
        s.submit("(mapcar string-length words)").unwrap().output,
        "(7 4 2 4)"
    );
}

#[test]
fn the_whole_suite_also_runs_on_a_cpu_backend() {
    // Cross-backend determinism spot check with the most intricate program.
    let mut s = Session::for_device(device::amd_6272());
    s.submit(
        "(defun filter (pred lst) \
           (if (null lst) nil \
             (if (funcall pred (car lst)) \
               (cons (car lst) (filter pred (cdr lst))) \
               (filter pred (cdr lst)))))",
    )
    .unwrap();
    s.submit(
        "(defun qs (xs) \
           (if (null xs) nil \
             (let* ((pivot (car xs)) (rest (cdr xs))) \
               (append \
                 (qs (filter (lambda (y) (< y pivot)) rest)) \
                 (list pivot) \
                 (qs (filter (lambda (y) (>= y pivot)) rest))))))",
    )
    .unwrap();
    assert_eq!(
        s.submit("(qs (list 9 8 7 6 5 4 3 2 1 0))").unwrap().output,
        "(0 1 2 3 4 5 6 7 8 9)"
    );
}
