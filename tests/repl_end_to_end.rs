//! End-to-end REPL behavior across every backend: same programs, same
//! outputs, persistent environments, graceful error recovery.

use culi::prelude::*;
use culi::sim::device;

/// A session program exercising definitions, scoping, lists, strings,
/// macros and parallel sections, with the expected output per line.
fn script() -> Vec<(&'static str, &'static str)> {
    vec![
        ("(* 2 (+ 4 3) 6)", "84"),
        (
            "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
            "fib",
        ),
        ("(fib 10)", "55"),
        ("(setq xs (list 1 2 3 4))", "(1 2 3 4)"),
        ("(append xs (reverse xs))", "(1 2 3 4 4 3 2 1)"),
        ("(car (cdr xs))", "2"),
        ("(let ((a 2) (b 3)) (* a b))", "6"),
        ("(defmacro twice (e) (list '+ e e))", "twice"),
        ("(twice (fib 6))", "16"),
        ("(concat \"cu\" \"li\")", "\"culi\""),
        ("(||| 4 fib (4 5 6 7))", "(3 5 8 13)"),
        ("(cond ((> 1 2) 'no) ((< 1 2) 'yes))", "yes"),
        ("(and T (or nil 42))", "42"),
        ("(string-to-number (number-to-string 3.5))", "3.5"),
    ]
}

#[test]
fn script_agrees_on_all_eight_devices() {
    for spec in all_devices() {
        let mut session = Session::for_device(spec);
        for (input, want) in script() {
            let reply = session.submit(input).unwrap();
            assert!(reply.ok, "{}: {input} → {}", spec.name, reply.output);
            assert_eq!(reply.output, want, "{}: {input}", spec.name);
        }
        session.shutdown();
    }
}

#[test]
fn script_agrees_on_real_threads() {
    let mut session = Session::cpu_threaded(device::intel_e5_2620(), 4);
    for (input, want) in script() {
        let reply = session.submit(input).unwrap();
        assert!(reply.ok, "{input} → {}", reply.output);
        assert_eq!(reply.output, want, "{input}");
    }
}

#[test]
fn gpu_session_recovers_from_every_error_class() {
    let mut session = Session::for_device(device::gtx680());
    let errors = [
        "(+ 1",                      // parse: unbalanced
        "(\"never closed",           // parse: unterminated string
        "(/ 1 0)",                   // eval: division by zero
        "(car 5)",                   // eval: type error
        "(cons 1)",                  // eval: arity error
        "(+ 9223372036854775807 1)", // eval: overflow
    ];
    for bad in errors {
        let reply = session.submit(bad).unwrap();
        assert!(!reply.ok, "{bad} should fail, got {}", reply.output);
        assert!(
            reply.output.starts_with("error: "),
            "{bad} → {}",
            reply.output
        );
    }
    // Session fully functional afterwards.
    assert_eq!(session.submit("(+ 20 22)").unwrap().output, "42");
}

#[test]
fn environment_persists_until_termination() {
    // Paper §I: the environment built up interactively persists until the
    // interpreter is terminated.
    let mut session = Session::for_device(device::tesla_m40());
    session.submit("(setq counter 0)").unwrap();
    for _ in 0..10 {
        session.submit("(setq counter (+ counter 1))").unwrap();
    }
    assert_eq!(session.submit("counter").unwrap().output, "10");
    session.shutdown();
    assert!(matches!(
        session.submit("counter"),
        Err(RuntimeError::SessionClosed)
    ));
}

#[test]
fn long_interactive_sessions_stay_within_the_arena() {
    // 500 commands through a deliberately small arena: the GC keeps the
    // fixed node array (the paper's stated limitation) from exhausting.
    let cfg = GpuReplConfig {
        interp: InterpConfig {
            arena_capacity: 4096,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut repl = GpuRepl::launch(device::gtx480(), cfg);
    repl.submit("(defun sq (x) (* x x))").unwrap();
    for i in 0..500 {
        let reply = repl.submit(&format!("(sq {i})")).unwrap();
        assert_eq!(reply.output, (i * i).to_string(), "command {i}");
    }
}

#[test]
fn transfer_costs_scale_with_io_size() {
    let mut session = Session::for_device(device::gtx1080());
    let small = session.submit("(+ 1 2)").unwrap();
    let big_list = format!("(list {})", vec!["7"; 1000].join(" "));
    let big = session.submit(&big_list).unwrap();
    assert!(big.phases.transfer_ns > small.phases.transfer_ns);
}

#[test]
fn unbound_symbols_echo_like_the_paper_says() {
    let mut session = Session::for_device(device::tesla_k20());
    assert_eq!(session.submit("mystery").unwrap().output, "mystery");
    assert_eq!(
        session.submit("(1 mystery 3)").unwrap().output,
        "(1 mystery 3)"
    );
}
