//! Semantics of `|||` across backends: equivalence with sequential
//! evaluation, ordering, worker isolation, multi-round distribution.

use culi::prelude::*;
use culi::sim::device;

const FIB: &str = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

/// `(||| n f xs)` must equal mapping f over the first n xs sequentially.
#[test]
fn parallel_equals_sequential_map() {
    let xs: Vec<i64> = (0..48).collect();
    let xs_str = xs.iter().map(i64::to_string).collect::<Vec<_>>().join(" ");

    // Sequential reference on a plain interpreter.
    let mut reference = Interp::default();
    reference.eval_str(FIB).unwrap();
    let mut expected = Vec::new();
    for &x in &xs {
        expected.push(reference.eval_str(&format!("(fib (mod {x} 10))")).unwrap());
    }
    let expected = format!("({})", expected.join(" "));

    for spec in all_devices() {
        let mut session = Session::for_device(spec);
        session.submit(FIB).unwrap();
        session.submit("(defun job (x) (fib (mod x 10)))").unwrap();
        let reply = session.submit(&format!("(||| 48 job ({xs_str}))")).unwrap();
        assert_eq!(reply.output, expected, "{}", spec.name);
    }
}

#[test]
fn multi_round_distribution_beyond_grid_capacity() {
    // Fermi's grid holds 3552 workers; 4096 jobs need two distribution
    // rounds (the worker loop of Alg. 1 loops for exactly this reason).
    let spec = device::tesla_c2075();
    let mut repl = GpuRepl::launch(spec, GpuReplConfig::default());
    repl.submit(FIB).unwrap();
    let n = repl.worker_count() + 100;
    let args = vec!["3"; n].join(" ");
    let reply = repl.submit(&format!("(||| {n} fib ({args}))")).unwrap();
    assert!(reply.ok, "{}", reply.output);
    assert_eq!(reply.sections.len(), 1);
    assert_eq!(
        reply.sections[0].rounds, 2,
        "expected two distribution rounds"
    );
    assert_eq!(reply.output.matches('2').count(), n, "fib(3)=2, n results");
}

#[test]
fn results_preserve_distribution_order_everywhere() {
    for spec in all_devices() {
        let mut session = Session::for_device(spec);
        let reply = session
            .submit("(||| 6 - (60 50 40 30 20 10) (1 2 3 4 5 6))")
            .unwrap();
        assert_eq!(reply.output, "(59 48 37 26 15 4)", "{}", spec.name);
    }
}

#[test]
fn worker_environments_are_isolated_from_each_other() {
    // Paper §III-D b: "Values stored in a worker's environment do not
    // affect other workers."
    let mut session = Session::for_device(device::gtx1080());
    session
        .submit("(defun stash (x) (progn (let mine x) (* mine mine)))")
        .unwrap();
    let reply = session.submit("(||| 5 stash (1 2 3 4 5))").unwrap();
    assert_eq!(reply.output, "(1 4 9 16 25)");
    // `mine` never escaped to the global environment.
    assert_eq!(session.submit("mine").unwrap().output, "mine");
}

#[test]
fn workers_see_the_global_environment() {
    // Paper §III-D b: each worker chains through the |||-expression's
    // environment to the global one.
    let mut session = Session::for_device(device::tesla_m40());
    session.submit("(setq offset 100)").unwrap();
    session.submit("(defun shift (x) (+ x offset))").unwrap();
    assert_eq!(
        session.submit("(||| 3 shift (1 2 3))").unwrap().output,
        "(101 102 103)"
    );
}

#[test]
fn nested_parallel_sections_run_on_every_backend() {
    for spec in [device::gtx680(), device::amd_6272()] {
        let mut session = Session::for_device(spec);
        session
            .submit("(defun inner (x) (||| 2 * (list x x) (1 2)))")
            .unwrap();
        let reply = session.submit("(||| 2 inner (3 4))").unwrap();
        assert_eq!(reply.output, "((3 6) (4 8))", "{}", spec.name);
    }
}

#[test]
fn too_short_argument_lists_error_cleanly() {
    let mut session = Session::for_device(device::gtx480());
    let reply = session.submit("(||| 5 + (1 2 3) (1 2 3 4 5))").unwrap();
    assert!(!reply.ok);
    assert!(reply.output.contains("|||"), "{}", reply.output);
    // Session survives.
    assert_eq!(session.submit("(+ 1 1)").unwrap().output, "2");
}

#[test]
fn threaded_backend_scales_down_to_one_thread() {
    let mut one = Session::cpu_threaded(device::intel_e5_2620(), 1);
    one.submit(FIB).unwrap();
    assert_eq!(
        one.submit("(||| 4 fib (5 5 5 5))").unwrap().output,
        "(5 5 5 5)"
    );
}

#[test]
fn threaded_and_modeled_agree_on_a_mixed_program() {
    let program = [FIB, "(setq base 1000)", "(defun job (x) (+ base (fib x)))"];
    let call = "(||| 6 job (1 2 3 4 5 6))";
    let mut modeled = Session::for_device(device::amd_6272());
    let mut threaded = Session::cpu_threaded(device::amd_6272(), 6);
    for line in program {
        modeled.submit(line).unwrap();
        threaded.submit(line).unwrap();
    }
    let a = modeled.submit(call).unwrap().output;
    let b = threaded.submit(call).unwrap().output;
    assert_eq!(a, b);
    assert_eq!(a, "(1001 1001 1002 1003 1005 1008)");
}
