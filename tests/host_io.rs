//! The paper's future-work feature end-to-end: device-side file I/O
//! routed through the host, on every backend.

use culi::prelude::*;
use culi::runtime::VirtualFs;
use culi::sim::device;

fn gpu_with_fs() -> (GpuRepl, culi::core::hostio::HostIoHandle) {
    let handle = VirtualFs::new().into_handle();
    let repl = GpuRepl::launch(
        device::gtx1080(),
        GpuReplConfig {
            host_io: Some(handle.clone()),
            ..Default::default()
        },
    );
    (repl, handle)
}

#[test]
fn write_read_roundtrip_on_gpu() {
    let (mut repl, _fs) = gpu_with_fs();
    assert_eq!(
        repl.submit("(write-file \"out.txt\" \"from the device\")")
            .unwrap()
            .output,
        "T"
    );
    assert_eq!(
        repl.submit("(read-file \"out.txt\")").unwrap().output,
        "\"from the device\""
    );
    assert_eq!(
        repl.submit("(file-exists \"out.txt\")").unwrap().output,
        "T"
    );
    assert_eq!(
        repl.submit("(file-exists \"other\")").unwrap().output,
        "nil"
    );
}

#[test]
fn host_side_prepared_files_visible_to_device() {
    let fs = VirtualFs::new();
    fs.preload(b"config.lisp", b"(5 10 15)");
    let mut repl = GpuRepl::launch(
        device::tesla_m40(),
        GpuReplConfig {
            host_io: Some(fs.into_handle()),
            ..Default::default()
        },
    );
    // Device reads the file, evals its content via the reader builtins.
    repl.submit("(setq raw (read-file \"config.lisp\"))")
        .unwrap();
    let reply = repl.submit("(string-length raw)").unwrap();
    assert_eq!(reply.output, "9");
}

#[test]
fn io_failures_are_printed_lisp_errors() {
    let (mut repl, _fs) = gpu_with_fs();
    let reply = repl.submit("(read-file \"missing.txt\")").unwrap();
    assert!(!reply.ok);
    assert!(reply.output.contains("no such file"), "{}", reply.output);
    // REPL keeps going.
    assert_eq!(repl.submit("(+ 1 1)").unwrap().output, "2");
}

#[test]
fn no_services_attached_is_a_clean_error() {
    let mut session = Session::for_device(device::gtx480());
    let reply = session.submit("(read-file \"x\")").unwrap();
    assert!(!reply.ok);
    assert!(reply.output.contains("no host I/O"), "{}", reply.output);
}

#[test]
fn threaded_workers_share_the_virtual_fs() {
    let handle = VirtualFs::new().into_handle();
    let mut repl = CpuRepl::launch(
        device::intel_e5_2620(),
        CpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 16,
                ..Default::default()
            },
            mode: CpuMode::Threaded { threads: 4 },
            host_io: Some(handle.clone()),
            ..Default::default()
        },
    );
    // Every worker writes its own file, named after its argument.
    repl.submit(
        "(defun emit (n) (write-file (concat \"w\" (number-to-string n)) (number-to-string (* n n))))",
    )
    .unwrap();
    let reply = repl.submit("(||| 4 emit (1 2 3 4))").unwrap();
    assert_eq!(reply.output, "(T T T T)");
    for (n, sq) in [(1, "1"), (2, "4"), (3, "9"), (4, "16")] {
        let data = handle.0.read_file(format!("w{n}").as_bytes()).unwrap();
        assert_eq!(data, sq.as_bytes(), "file w{n}");
    }
}

#[test]
fn io_traffic_charges_device_time() {
    let (mut repl, _fs) = gpu_with_fs();
    let big = "x".repeat(5000);
    repl.submit(&format!("(write-file \"big\" \"{big}\")"))
        .unwrap();
    let small_read = repl.submit("(file-exists \"big\")").unwrap();
    let big_read = repl.submit("(read-file \"big\")").unwrap();
    assert!(
        big_read.phases.eval_cycles > small_read.phases.eval_cycles,
        "reading 5 KB must cost more than an existence probe"
    );
}
