//! Failure injection: resource exhaustion and limit violations in the
//! middle of realistic work, and the session's recovery behavior.

use culi::prelude::*;
use culi::sim::device;

#[test]
fn arena_exhaustion_mid_parallel_section_is_recoverable() {
    // An arena big enough for the builtins and small programs, but far too
    // small for a 256-worker section.
    let cfg = GpuReplConfig {
        interp: InterpConfig {
            arena_capacity: 2000,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut repl = GpuRepl::launch(device::gtx1080(), cfg);
    repl.submit("(defun burn (x) (list x x x x x x x x))")
        .unwrap();
    let args = vec!["9"; 256].join(" ");
    let reply = repl.submit(&format!("(||| 256 burn ({args}))")).unwrap();
    assert!(!reply.ok, "section must exhaust the arena");
    assert!(reply.output.contains("arena"), "{}", reply.output);
    // GC between commands reclaims the partial allocations; the session
    // keeps working at a size that fits.
    let reply = repl.submit("(||| 4 burn (1 2 3 4))").unwrap();
    assert!(reply.ok, "{}", reply.output);
}

#[test]
fn worker_recursion_limit_reports_the_worker() {
    let cfg = GpuReplConfig {
        interp: InterpConfig {
            max_depth: 48,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut repl = GpuRepl::launch(device::gtx680(), cfg);
    repl.submit("(defun spin (n) (if (< n 1) 0 (spin (- n 1))))")
        .unwrap();
    // Worker 1 gets a depth that exceeds the limit; worker 0 stays shallow.
    let reply = repl.submit("(||| 2 spin (1 500))").unwrap();
    assert!(!reply.ok);
    assert!(reply.output.contains("worker 1"), "{}", reply.output);
    assert!(reply.output.contains("recursion"), "{}", reply.output);
    assert_eq!(
        repl.submit("(spin 3)").unwrap().output,
        "0",
        "session survives"
    );
}

#[test]
fn output_buffer_overflow_is_a_printed_error() {
    let cfg = GpuReplConfig {
        interp: InterpConfig {
            output_capacity: 64,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut repl = GpuRepl::launch(device::tesla_m40(), cfg);
    let reply = repl
        .submit(&format!("(list {})", vec!["7"; 200].join(" ")))
        .unwrap();
    assert!(!reply.ok);
    assert!(reply.output.contains("output buffer"), "{}", reply.output);
    assert_eq!(repl.submit("(+ 1 1)").unwrap().output, "2");
}

#[test]
fn reply_exceeding_the_command_buffer_is_a_device_error() {
    // Misconfiguration: the interpreter's output fits its own buffer but
    // not the shared command buffer — a protocol violation, not a Lisp
    // error.
    let cfg = GpuReplConfig {
        cmdbuf_capacity: 4096,
        ..Default::default()
    };
    let mut repl = GpuRepl::launch(device::gtx480(), cfg);
    // Build a >4 KB result from a tiny input so only the reply overflows.
    repl.submit("(setq xs nil)").unwrap();
    repl.submit("(dotimes (i 600) (setq xs (cons 12345678 xs)))")
        .unwrap();
    match repl.submit("xs") {
        Err(RuntimeError::Device(culi::sim::SimError::Protocol(_))) => {}
        other => panic!("expected protocol violation, got {other:?}"),
    }
}

#[test]
fn parse_depth_limit_guards_pathological_nesting() {
    let cfg = GpuReplConfig {
        interp: InterpConfig {
            max_depth: 32,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut repl = GpuRepl::launch(device::gtx1080(), cfg);
    let deep = format!("{}1{}", "(".repeat(100), ")".repeat(100));
    let reply = repl.submit(&deep).unwrap();
    assert!(!reply.ok);
    assert!(reply.output.contains("recursion"), "{}", reply.output);
}

#[test]
fn threaded_backend_survives_a_failing_chunk() {
    let mut session = Session::cpu_threaded(device::intel_e5_2620(), 3);
    session.submit("(defun risky (x) (/ 100 x))").unwrap();
    let reply = session.submit("(||| 5 risky (1 2 0 4 5))").unwrap();
    assert!(!reply.ok);
    assert!(reply.output.contains("worker 2"), "{}", reply.output);
    assert_eq!(session.submit("(risky 4)").unwrap().output, "25");
}

#[test]
fn gc_restores_capacity_after_repeated_failures() {
    let cfg = GpuReplConfig {
        interp: InterpConfig {
            arena_capacity: 1500,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut repl = GpuRepl::launch(device::gtx1080(), cfg);
    for round in 0..50 {
        // Alternate failing oversized work with small successes.
        let too_big = format!("(list {})", vec!["1"; 2000].join(" "));
        let reply = repl.submit(&too_big).unwrap();
        assert!(!reply.ok, "round {round} should exhaust");
        let ok = repl.submit("(+ 1 2 3)").unwrap();
        assert_eq!(ok.output, "6", "round {round} should recover");
    }
}

#[test]
fn empty_parallel_argument_lists() {
    let mut session = Session::for_device(device::amd_6272());
    let reply = session.submit("(||| 1 + () ())").unwrap();
    assert!(
        !reply.ok,
        "empty lists cannot feed 1 worker: {}",
        reply.output
    );
    assert!(reply.output.contains("|||"));
}
