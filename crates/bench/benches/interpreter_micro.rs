//! Microbenchmarks of the interpreter itself (real wall time): tokenizer
//! throughput, arena allocation, environment lookup depth, recursive
//! evaluation, number formatting. These are the hot paths behind every
//! figure.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use culi_core::{Interp, InterpConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Tokenizer throughput over the paper's largest input (~8 KiB).
    {
        let input = culi_bench::workload::fib_input(4096);
        let mut group = c.benchmark_group("tokenizer");
        group.throughput(Throughput::Bytes(input.len() as u64));
        group.bench_function("scan_8k_input", |b| {
            b.iter(|| {
                black_box(culi_strlib::scan::tokenize_all(black_box(input.as_bytes())).unwrap())
            })
        });
        group.finish();
    }

    // Parser end-to-end on the same input.
    {
        let input = culi_bench::workload::fib_input(4096);
        let mut group = c.benchmark_group("parser");
        group.sample_size(20);
        group.throughput(Throughput::Bytes(input.len() as u64));
        group.bench_function("parse_8k_input", |b| {
            b.iter_batched(
                || Interp::new(InterpConfig::default()),
                |mut i| {
                    black_box(culi_core::parser::parse(&mut i, input.as_bytes()).unwrap());
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    // Recursive evaluation: fib(15) through the full interpreter.
    {
        let mut group = c.benchmark_group("evaluator");
        group.sample_size(20);
        group.bench_function("fib_15", |b| {
            b.iter_batched(
                || {
                    let mut i = Interp::new(InterpConfig::default());
                    i.eval_str(culi_bench::workload::FIB_DEFUN).unwrap();
                    i
                },
                |mut i| black_box(i.eval_str("(fib 15)").unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    // Number formatting (the printer's dominant cost).
    {
        let mut group = c.benchmark_group("fmt_num");
        group.bench_function("format_f64_shortest", |b| {
            let mut buf = [0u8; 32];
            b.iter(|| {
                black_box(culi_strlib::fmt_num::format_f64(
                    black_box(core::f64::consts::PI),
                    &mut buf,
                ))
            })
        });
        group.bench_function("format_i64", |b| {
            let mut buf = [0u8; 20];
            b.iter(|| {
                black_box(culi_strlib::fmt_num::format_i64(
                    black_box(-1234567890123i64),
                    &mut buf,
                ))
            })
        });
        group.finish();
    }

    // GC over a loaded arena.
    {
        let mut group = c.benchmark_group("gc");
        group.sample_size(20);
        group.bench_function("collect_after_4096_jobs", |b| {
            b.iter_batched(
                || {
                    let mut i = Interp::new(InterpConfig::default());
                    i.eval_str(culi_bench::workload::FIB_DEFUN).unwrap();
                    i.eval_str(&culi_bench::workload::fib_input(1024)).unwrap();
                    i
                },
                |mut i| black_box(culi_core::gc::collect(&mut i, &[])),
                criterion::BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    // Environment lookup at increasing chain depth, against a global env
    // sized like the real one (every builtin registered). Exercises the
    // indexed fast path; `legacy_scan` pins the faithful-walk baseline it
    // replaced, so the win is visible in one report.
    {
        let mut group = c.benchmark_group("env_lookup");
        for depth in [1usize, 8, 64] {
            let (interp, env, sym) = culi_bench::workload::env_chain_fixture(depth);
            group.bench_function(&format!("indexed_depth_{depth}"), |b| {
                let mut meter = culi_core::cost::Meter::new();
                b.iter(|| black_box(interp.envs.lookup(env, sym, &interp.strings, &mut meter)))
            });
            group.bench_function(&format!("legacy_scan_depth_{depth}"), |b| {
                let mut meter = culi_core::cost::Meter::new();
                b.iter(|| {
                    black_box(
                        interp
                            .envs
                            .lookup_legacy(env, sym, &interp.strings, &mut meter),
                    )
                })
            });
        }
        group.finish();
    }

    // Arena allocation on a fragmented arena: 50% freed, interleaved. The
    // free-list allocator is O(1) here; the seed's wrapping scan was O(n)
    // per alloc once the cursor sat in a dense region.
    {
        let mut group = c.benchmark_group("arena_alloc");
        group.bench_function("fragmented_50pct_alloc_free", |b| {
            let (mut arena, mut meter) = culi_bench::workload::fragmented_arena(1 << 16);
            b.iter(|| {
                let id = arena
                    .alloc(culi_core::node::Node::int(7), &mut meter)
                    .expect("fragmented arena has free slots");
                arena.free(black_box(id), &mut meter);
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
