//! Multi-command `|||` throughput (real wall time): PR 2's per-command
//! rendezvous (`submit` loop) vs PR 3's pipelined multi-section batch
//! dispatch (`submit_batch`) on the same persistent pool, plus the
//! snapshot-resync path under a worker-global-mutating workload. Each
//! iteration processes a whole 16-command batch, mirroring a warm REPL
//! command stream.

use criterion::{criterion_group, criterion_main, Criterion};
use culi_core::InterpConfig;
use culi_runtime::{CpuMode, CpuRepl, CpuReplConfig};
use std::hint::black_box;

const SECTION: &str = "(||| 8 + (1 2 3 4 5 6 7 8) (1 2 3 4 5 6 7 8))";
const BATCH: usize = 16;

fn repl(threads: usize) -> CpuRepl {
    let mut repl = CpuRepl::launch(
        culi_gpu_sim::device::intel_e5_2620(),
        CpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 16,
                ..Default::default()
            },
            mode: CpuMode::Threaded { threads },
            ..Default::default()
        },
    );
    repl.submit(culi_bench::workload::FIB_DEFUN).unwrap();
    repl
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipelined_section");
    group.sample_size(20);

    {
        let mut r = repl(8);
        r.submit(SECTION).unwrap(); // warm the pool
        group.bench_function("rendezvous_16_commands_8w", |b| {
            b.iter(|| {
                for _ in 0..BATCH {
                    black_box(r.submit(SECTION).unwrap());
                }
            })
        });
    }

    {
        let mut r = repl(8);
        let batch: Vec<&str> = vec![SECTION; BATCH];
        r.submit_batch(&batch).unwrap(); // warm the pool
        group.bench_function("batched_16_commands_8w", |b| {
            b.iter(|| black_box(r.submit_batch(&batch).unwrap()))
        });
    }

    {
        // Every section dirties its seats: the whole batch runs on
        // snapshot resyncs (zero clones — asserted by tests).
        let mut r = repl(4);
        r.submit("(setq total 100)").unwrap();
        r.submit("(defun bump (x) (progn (setq total (+ total x)) total))")
            .unwrap();
        let batch: Vec<&str> = vec!["(||| 4 bump (1 2 3 4))"; BATCH];
        r.submit_batch(&batch).unwrap();
        group.bench_function("dirty_batched_16_commands_4w", |b| {
            b.iter(|| black_box(r.submit_batch(&batch).unwrap()))
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
