//! Bench + regeneration for paper Fig. 14 (base latency per device).
//!
//! Prints the figure's rows (simulated ms), then benchmarks the real cost
//! of a launch/shutdown cycle in the simulator for each device.

use criterion::{criterion_group, criterion_main, Criterion};
use culi_bench::figures;
use culi_gpu_sim::all_devices;
use culi_runtime::Session;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", figures::render_fig14(&figures::fig14()));

    let mut group = c.benchmark_group("fig14_base_latency");
    group.sample_size(20);
    for spec in all_devices() {
        group.bench_function(spec.name, |b| {
            b.iter(|| black_box(Session::measure_base_latency_ms(black_box(spec))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
