//! Ablation bench: the two warp-divergence mitigations (paper Figs. 12/13).
//!
//! Prints the livelock/no-livelock matrix, then benchmarks the simulator's
//! parallel-section choreography with the block flag on (the off-state
//! livelocks, so only its *detection* is benchmarked).

use criterion::{criterion_group, criterion_main, Criterion};
use culi_bench::figures;
use culi_gpu_sim::device::gtx1080;
use culi_gpu_sim::{KernelConfig, PersistentKernel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", figures::render_ablations(&figures::ablations()));

    let mut group = c.benchmark_group("ablation_sync");
    group.sample_size(20);

    group.bench_function("section_1024_jobs_with_block_flag", |b| {
        b.iter_batched(
            || PersistentKernel::launch(gtx1080(), KernelConfig::default()),
            |mut k| black_box(k.parallel_section(&vec![10_000u64; 1024]).unwrap()),
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("livelock_detection_partial_warp", |b| {
        b.iter_batched(
            || {
                PersistentKernel::launch(
                    gtx1080(),
                    KernelConfig {
                        block_sync_flag: false,
                        ..Default::default()
                    },
                )
            },
            |mut k| black_box(k.parallel_section(&vec![10_000u64; 33]).unwrap_err()),
            criterion::BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
