//! Bench + regeneration for paper Fig. 17 (proportional kernel runtime on
//! post-Fermi vs Fermi GPUs).

use criterion::{criterion_group, criterion_main, Criterion};
use culi_bench::figures;
use culi_bench::workload::{fib_input, FIB_DEFUN};
use culi_gpu_sim::device::{gtx1080, tesla_c2075};
use culi_runtime::{GpuRepl, GpuReplConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = figures::fig17();
    println!(
        "{}",
        figures::render_proportions(
            &points,
            "Fig. 17 — Proportional kernel runtime (M40/GTX1080 vs Fermi C2075)"
        )
    );

    let input = fib_input(512);
    let mut group = c.benchmark_group("fig17_gpu_submit_n512");
    group.sample_size(10);
    for spec in [tesla_c2075(), gtx1080()] {
        group.bench_function(spec.name, |b| {
            b.iter_batched(
                || {
                    let mut r = GpuRepl::launch(spec, GpuReplConfig::default());
                    r.submit(FIB_DEFUN).unwrap();
                    r
                },
                |mut r| black_box(r.submit(&input).unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
