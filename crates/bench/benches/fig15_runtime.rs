//! Bench + regeneration for paper Fig. 15 (runtime vs thread count).
//!
//! Prints the full device × thread-count runtime matrix (simulated ms),
//! then benchmarks the simulator's wall cost of one full REPL command with
//! a 256-worker `|||` on each device.

use criterion::{criterion_group, criterion_main, Criterion};
use culi_bench::figures;
use culi_bench::workload::{fib_input, FIB_DEFUN};
use culi_gpu_sim::all_devices;
use culi_runtime::Session;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = figures::sweep();
    println!("{}", figures::render_sweep(&points, "runtime"));

    let input = fib_input(256);
    let mut group = c.benchmark_group("fig15_submit_n256");
    group.sample_size(10);
    for spec in all_devices() {
        group.bench_function(spec.name, |b| {
            b.iter_batched(
                || {
                    let mut s = Session::for_device(spec);
                    s.submit(FIB_DEFUN).unwrap();
                    s
                },
                |mut s| black_box(s.submit(&input).unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
