//! Ablation bench: atomic postbox traffic (experiment A3, paper §III-C).
//!
//! Prints the atomic-vs-direct protocol pricing table, then benchmarks the
//! postbox array's deposit/poll/complete cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use culi_bench::figures;
use culi_gpu_sim::{JobSlot, PostboxArray};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", figures::render_atomics(&figures::atomics_overhead()));

    let mut group = c.benchmark_group("ablation_atomics");
    group.sample_size(30);
    group.bench_function("postbox_cycle_1024", |b| {
        b.iter_batched(
            || PostboxArray::new(1024),
            |mut arr| {
                for t in 0..1024 {
                    arr.deposit(
                        t,
                        JobSlot {
                            job: t as u32,
                            cycles: 1,
                        },
                    );
                }
                for t in 0..1024 {
                    black_box(arr.poll_sync(t));
                    black_box(arr.complete(t));
                }
                arr
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
