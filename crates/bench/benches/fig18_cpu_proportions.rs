//! Bench + regeneration for paper Fig. 18 (proportional runtime on the
//! 64-core AMD 6272: evaluation dominates, parse/print negligible).

use criterion::{criterion_group, criterion_main, Criterion};
use culi_bench::figures;
use culi_bench::workload::{fib_input, FIB_DEFUN};
use culi_gpu_sim::device::amd_6272;
use culi_runtime::{CpuRepl, CpuReplConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = figures::fig18();
    println!(
        "{}",
        figures::render_proportions(
            &points,
            "Fig. 18 — Proportional runtime on the AMD 6272 (64 threads)"
        )
    );

    let input = fib_input(512);
    let mut group = c.benchmark_group("fig18_cpu_submit_n512");
    group.sample_size(10);
    group.bench_function("AMD 6272 (modeled)", |b| {
        b.iter_batched(
            || {
                let mut r = CpuRepl::launch(amd_6272(), CpuReplConfig::default());
                r.submit(FIB_DEFUN).unwrap();
                r
            },
            |mut r| black_box(r.submit(&input).unwrap()),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
