//! Bench + regeneration for paper Figs. 16a–d (execution / parsing /
//! evaluation / printing time per device and thread count).
//!
//! Prints all four matrices (simulated ms), then benchmarks the real wall
//! cost of the interpreter's three phases in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use culi_bench::figures;
use culi_bench::workload::{fib_input, FIB_DEFUN};
use culi_core::{Interp, InterpConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let points = figures::sweep();
    for metric in ["execution", "parse", "eval", "print"] {
        println!("{}", figures::render_sweep(&points, metric));
    }

    let input = fib_input(1024);
    let mut group = c.benchmark_group("fig16_interpreter_phases");
    group.sample_size(20);

    group.bench_function("parse_1024_jobs", |b| {
        b.iter_batched(
            || Interp::new(InterpConfig::default()),
            |mut i| {
                black_box(culi_core::parser::parse(&mut i, input.as_bytes()).unwrap());
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("eval_1024_jobs_sequential", |b| {
        b.iter_batched(
            || {
                let mut i = Interp::new(InterpConfig::default());
                i.eval_str(FIB_DEFUN).unwrap();
                let forms = culi_core::parser::parse(&mut i, input.as_bytes()).unwrap();
                (i, forms[0])
            },
            |(mut i, form)| {
                let mut hook = culi_core::SequentialHook;
                let global = i.global;
                black_box(culi_core::eval(&mut i, &mut hook, form, global, 0).unwrap());
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("print_1024_results", |b| {
        b.iter_batched(
            || {
                let mut i = Interp::new(InterpConfig::default());
                i.eval_str(FIB_DEFUN).unwrap();
                let forms = culi_core::parser::parse(&mut i, input.as_bytes()).unwrap();
                let mut hook = culi_core::SequentialHook;
                let global = i.global;
                let result = culi_core::eval(&mut i, &mut hook, forms[0], global, 0).unwrap();
                (i, result)
            },
            |(mut i, result)| {
                black_box(culi_core::printer::print(&mut i, result).unwrap());
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
