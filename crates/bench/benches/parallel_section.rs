//! `|||` section throughput across CPU backends (real wall time): the
//! persistent pooled backend vs. PR 1's fork-per-section baseline vs. the
//! sequential reference. Sections run through `eval_str_with` followed by
//! a collection, mirroring a REPL's per-command cycle; the pooled backend
//! is warmed before timing so the numbers show steady-state sections.

use criterion::{criterion_group, criterion_main, Criterion};
use culi_core::eval::SequentialHook;
use culi_core::{Interp, InterpConfig};
use culi_runtime::{ForkPerSectionHook, ThreadedHook};
use std::hint::black_box;

const SECTION: &str = "(||| 8 fib (4 4 4 4 4 4 4 4))";

fn session() -> Interp {
    // Small arena: generous to the fork baseline (clone cost scales with
    // capacity) and still far above the workload's needs.
    let mut i = Interp::new(InterpConfig {
        arena_capacity: 1 << 16,
        ..Default::default()
    });
    i.eval_str(culi_bench::workload::FIB_DEFUN).unwrap();
    i
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_section");
    group.sample_size(20);

    {
        let mut i = session();
        let mut hook = ThreadedHook::new(8);
        i.eval_str_with(SECTION, &mut hook).unwrap(); // fork the pool
        group.bench_function("pooled_8_workers", |b| {
            b.iter(|| {
                black_box(i.eval_str_with(SECTION, &mut hook).unwrap());
                culi_core::gc::collect(&mut i, &[]);
            })
        });
    }

    {
        let mut i = session();
        let mut hook = ForkPerSectionHook::new(8);
        group.bench_function("fork_per_section_8_workers", |b| {
            b.iter(|| {
                black_box(i.eval_str_with(SECTION, &mut hook).unwrap());
                culi_core::gc::collect(&mut i, &[]);
            })
        });
    }

    {
        let mut i = session();
        group.bench_function("sequential", |b| {
            b.iter(|| {
                black_box(i.eval_str_with(SECTION, &mut SequentialHook).unwrap());
                culi_core::gc::collect(&mut i, &[]);
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
