//! Regeneration of every figure in the paper's evaluation (§IV).
//!
//! Each `fig*` function produces the same rows/series the paper plots;
//! `render_*` functions format them as text tables. The `figures` binary
//! drives these and can also dump JSON. Absolute values come from the
//! calibrated cost model — the claims under test are the *shapes*
//! (orderings, ratios, crossovers), which `tests` in this module and
//! `EXPERIMENTS.md` pin down.

use crate::jsonout::{Json, ToJson};
use crate::workload::{expected_output, fib_input, thread_counts, FIB_DEFUN};
use culi_gpu_sim::{all_devices, DeviceSpec, KernelConfig, LivelockCause, SimError};
use culi_runtime::{GpuRepl, GpuReplConfig, Reply, RuntimeError, Session};

/// Fig. 14: base latency (launch + graceful stop) per device.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Device name.
    pub device: String,
    /// Milliseconds.
    pub base_latency_ms: f64,
}

/// One point of the thread-count sweeps (Figs. 15 and 16a–d).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Device name.
    pub device: String,
    /// Worker count (the paper's x-axis, "threads").
    pub threads: usize,
    /// Parse phase, ms (Fig. 16b).
    pub parse_ms: f64,
    /// Evaluation phase, ms (Fig. 16c).
    pub eval_ms: f64,
    /// Print phase, ms (Fig. 16d).
    pub print_ms: f64,
    /// Kernel execution time, ms (Fig. 16a).
    pub execution_ms: f64,
    /// Total runtime including host transfer, ms (Fig. 15).
    pub runtime_ms: f64,
}

/// One point of the proportional-runtime charts (Figs. 17/18).
#[derive(Debug, Clone)]
pub struct ProportionPoint {
    /// Device name.
    pub device: String,
    /// Worker count.
    pub threads: usize,
    /// Parse share of kernel time, 0–1.
    pub parse: f64,
    /// Evaluation share.
    pub eval: f64,
    /// Print share.
    pub print: f64,
}

/// Outcome of one ablation run (experiments A1/A2).
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Ablation id (A1, A2, …).
    pub id: String,
    /// What was disabled.
    pub config: String,
    /// Workload description.
    pub workload: String,
    /// Outcome: "ok (…)" or the livelock diagnosis.
    pub outcome: String,
    /// `true` when the run livelocked.
    pub livelocked: bool,
}

/// Experiment A3: atomic-access overhead in the `|||` machinery.
#[derive(Debug, Clone)]
pub struct AtomicsRow {
    /// Device name.
    pub device: String,
    /// Worker count.
    pub threads: usize,
    /// Atomic operations issued by the postbox protocol.
    pub atomic_ops: u64,
    /// Distribution+collection cycles with atomic pricing.
    pub protocol_cycles_atomic: u64,
    /// The same traffic re-priced as plain (cached) accesses.
    pub protocol_cycles_direct: u64,
    /// Slowdown factor atomics impose on the protocol path.
    pub atomic_penalty: f64,
}

impl ToJson for Fig14Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("device", Json::Str(self.device.clone())),
            ("base_latency_ms", Json::Num(self.base_latency_ms)),
        ])
    }
}

impl ToJson for SweepPoint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("device", Json::Str(self.device.clone())),
            ("threads", Json::UInt(self.threads as u64)),
            ("parse_ms", Json::Num(self.parse_ms)),
            ("eval_ms", Json::Num(self.eval_ms)),
            ("print_ms", Json::Num(self.print_ms)),
            ("execution_ms", Json::Num(self.execution_ms)),
            ("runtime_ms", Json::Num(self.runtime_ms)),
        ])
    }
}

impl ToJson for ProportionPoint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("device", Json::Str(self.device.clone())),
            ("threads", Json::UInt(self.threads as u64)),
            ("parse", Json::Num(self.parse)),
            ("eval", Json::Num(self.eval)),
            ("print", Json::Num(self.print)),
        ])
    }
}

impl ToJson for AblationRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("config", Json::Str(self.config.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("outcome", Json::Str(self.outcome.clone())),
            ("livelocked", Json::Bool(self.livelocked)),
        ])
    }
}

impl ToJson for AtomicsRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("device", Json::Str(self.device.clone())),
            ("threads", Json::UInt(self.threads as u64)),
            ("atomic_ops", Json::UInt(self.atomic_ops)),
            (
                "protocol_cycles_atomic",
                Json::UInt(self.protocol_cycles_atomic),
            ),
            (
                "protocol_cycles_direct",
                Json::UInt(self.protocol_cycles_direct),
            ),
            ("atomic_penalty", Json::Num(self.atomic_penalty)),
        ])
    }
}

impl ToJson for ProjectionRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("device", Json::Str(self.device.clone())),
            ("generation", Json::Str(self.generation.clone())),
            ("eval_ms", Json::Num(self.eval_ms)),
            ("runtime_ms", Json::Num(self.runtime_ms)),
            ("gap_vs_best_cpu", Json::Num(self.gap_vs_best_cpu)),
            (
                "livelock_free_without_mitigations",
                Json::Bool(self.livelock_free_without_mitigations),
            ),
        ])
    }
}

fn session_for(spec: DeviceSpec) -> Session {
    Session::for_device(spec)
}

fn submit_checked(session: &mut Session, input: &str, expect: Option<&str>) -> Reply {
    let reply = session
        .submit(input)
        .expect("device failure during figure run");
    assert!(reply.ok, "lisp error during figure run: {}", reply.output);
    if let Some(want) = expect {
        assert_eq!(reply.output, want, "wrong result during figure run");
    }
    reply
}

/// Generates Fig. 14 rows for all eight devices.
pub fn fig14() -> Vec<Fig14Row> {
    all_devices()
        .into_iter()
        .map(|spec| Fig14Row {
            device: spec.name.to_string(),
            base_latency_ms: Session::measure_base_latency_ms(spec),
        })
        .collect()
}

/// Runs the fib(5) sweep on every device (shared series behind Figs. 15
/// and 16a–d).
pub fn sweep() -> Vec<SweepPoint> {
    sweep_on(&all_devices())
}

/// Runs the fib(5) sweep on the given devices.
pub fn sweep_on(devices: &[DeviceSpec]) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &spec in devices {
        let mut session = session_for(spec);
        submit_checked(&mut session, FIB_DEFUN, Some("fib"));
        for n in thread_counts() {
            let reply = submit_checked(&mut session, &fib_input(n), Some(&expected_output(n)));
            out.push(SweepPoint {
                device: spec.name.to_string(),
                threads: n,
                parse_ms: reply.phases.parse_ms(),
                eval_ms: reply.phases.eval_ms(),
                print_ms: reply.phases.print_ms(),
                execution_ms: reply.phases.execution_ms(),
                runtime_ms: reply.phases.runtime_ms(),
            });
        }
        session.shutdown();
    }
    out
}

/// Proportional runtimes (Figs. 17/18) for the named devices, derived from
/// the same sweep.
pub fn proportions(device_names: &[&str]) -> Vec<ProportionPoint> {
    let devices: Vec<DeviceSpec> = all_devices()
        .into_iter()
        .filter(|d| device_names.contains(&d.name))
        .collect();
    let mut out = Vec::new();
    for &spec in &devices {
        let mut session = session_for(spec);
        submit_checked(&mut session, FIB_DEFUN, Some("fib"));
        for n in thread_counts() {
            let reply = submit_checked(&mut session, &fib_input(n), Some(&expected_output(n)));
            let (parse, eval, print) = reply.phases.proportions();
            out.push(ProportionPoint {
                device: spec.name.to_string(),
                threads: n,
                parse,
                eval,
                print,
            });
        }
        session.shutdown();
    }
    out
}

/// Fig. 17: the paper shows Tesla M40 + GTX 1080 (representative
/// post-Fermi GPUs) against Tesla C2075 (Fermi).
pub fn fig17() -> Vec<ProportionPoint> {
    proportions(&["TeslaM40", "GTX1080", "TeslaC2075"])
}

/// Fig. 18: AMD 6272 proportions.
pub fn fig18() -> Vec<ProportionPoint> {
    proportions(&["AMD 6272"])
}

/// Ablations A1/A2: disable each livelock mitigation and demonstrate the
/// mechanical livelock the paper's Figs. 12/13 prevent.
pub fn ablations() -> Vec<AblationRow> {
    let spec = culi_gpu_sim::device::gtx1080();
    let mut rows = Vec::new();

    // A1: master block not masked.
    let mut s = Session::gpu_with_kernel_config(
        spec,
        KernelConfig {
            mask_master_block: false,
            ..Default::default()
        },
    );
    submit_checked(&mut s, FIB_DEFUN, Some("fib"));
    rows.push(ablation_row(
        "A1",
        "mask_master_block = false (paper Fig. 12 removed)",
        "(||| 4 fib (5 5 5 5))",
        s.submit(&fib_input(4)),
    ));
    s.shutdown();

    // A2: block sync flag disabled, job count not a multiple of 32.
    let mut s = Session::gpu_with_kernel_config(
        spec,
        KernelConfig {
            block_sync_flag: false,
            ..Default::default()
        },
    );
    submit_checked(&mut s, FIB_DEFUN, Some("fib"));
    rows.push(ablation_row(
        "A2",
        "block_sync_flag = false (paper Fig. 13 / Alg. 1 removed)",
        "(||| 33 fib (5 … 5)) — 33 jobs, partial warp",
        s.submit(&fib_input(33)),
    ));
    s.shutdown();

    // A2-control: same ablation, but full warps — survives, as the paper
    // notes ("no problem as long as the number of jobs is a multiple of 32").
    let mut s = Session::gpu_with_kernel_config(
        spec,
        KernelConfig {
            block_sync_flag: false,
            ..Default::default()
        },
    );
    submit_checked(&mut s, FIB_DEFUN, Some("fib"));
    rows.push(ablation_row(
        "A2-control",
        "block_sync_flag = false, full warps",
        "(||| 64 fib (5 … 5)) — 64 jobs, two full warps",
        s.submit(&fib_input(64)),
    ));
    s.shutdown();

    // Baseline: both mitigations on.
    let mut s = Session::gpu_with_kernel_config(spec, KernelConfig::default());
    submit_checked(&mut s, FIB_DEFUN, Some("fib"));
    rows.push(ablation_row(
        "baseline",
        "both mitigations enabled (the paper's design)",
        "(||| 33 fib (5 … 5))",
        s.submit(&fib_input(33)),
    ));
    s.shutdown();

    rows
}

fn ablation_row(
    id: &str,
    config: &str,
    workload: &str,
    result: culi_runtime::Result<Reply>,
) -> AblationRow {
    let (outcome, livelocked) = match result {
        Ok(reply) if reply.ok => (
            format!("ok ({} chars of output)", reply.output.len()),
            false,
        ),
        Ok(reply) => (format!("lisp error: {}", reply.output), false),
        Err(RuntimeError::Device(SimError::Livelock { cause, .. })) => {
            let kind = match cause {
                LivelockCause::MasterBlockUnmasked => "LIVELOCK: master block unmasked",
                LivelockCause::PartialWarpWithoutBlockFlag { .. } => {
                    "LIVELOCK: partial warp without block flag"
                }
            };
            (format!("{kind} — {cause}"), true)
        }
        Err(e) => (format!("device error: {e}"), false),
    };
    AblationRow {
        id: id.to_string(),
        config: config.to_string(),
        workload: workload.to_string(),
        outcome,
        livelocked,
    }
}

/// Experiment A3: how much the atomic postbox traffic costs versus
/// hypothetical plain cached accesses (paper §III-C: atomics "prevent
/// CUDA's transparent caching … this implies a performance penalty").
pub fn atomics_overhead() -> Vec<AtomicsRow> {
    let mut out = Vec::new();
    for spec in [
        culi_gpu_sim::device::tesla_c2075(),
        culi_gpu_sim::device::gtx1080(),
    ] {
        for n in [32usize, 1024, 4096] {
            let mut repl = GpuRepl::launch(spec, GpuReplConfig::default());
            let defun = repl.submit(FIB_DEFUN).unwrap();
            assert!(defun.ok);
            let reply = repl.submit(&fib_input(n)).unwrap();
            assert!(reply.ok);
            let stats = repl.stats();
            let protocol_atomic: u64 = reply
                .sections
                .iter()
                .map(|s| s.distribute_cycles + s.collect_cycles)
                .sum();
            // Re-price: every atomic in the protocol becomes a plain read
            // (spin_iter is the cached-access cycle count in the table).
            let saved = stats.atomic_ops * (spec.costs.atomic_rmw - spec.costs.spin_iter);
            let protocol_direct = protocol_atomic.saturating_sub(saved);
            out.push(AtomicsRow {
                device: spec.name.to_string(),
                threads: n,
                atomic_ops: stats.atomic_ops,
                protocol_cycles_atomic: protocol_atomic,
                protocol_cycles_direct: protocol_direct,
                atomic_penalty: protocol_atomic as f64 / protocol_direct.max(1) as f64,
            });
            repl.shutdown();
        }
    }
    out
}

/// One generation point of the conclusion's projection experiment.
#[derive(Debug, Clone)]
pub struct ProjectionRow {
    /// Device name.
    pub device: String,
    /// Architecture generation label.
    pub generation: String,
    /// Evaluation-phase time at 4096 threads, ms (the trend the paper
    /// extrapolates in §IV-c / §V).
    pub eval_ms: f64,
    /// Total runtime at 4096 threads, ms.
    pub runtime_ms: f64,
    /// Ratio to the best CPU's runtime (>1 ⇒ CPU still wins).
    pub gap_vs_best_cpu: f64,
    /// Whether the device survives both §III-D ablations (independent
    /// thread scheduling).
    pub livelock_free_without_mitigations: bool,
}

/// Experiment P1 — the conclusion's projection: per-generation evaluation
/// time and the shrinking CPU gap, extended one generation past the paper
/// with the Volta-class [`culi_gpu_sim::device::volta_sim`] device
/// (independent thread scheduling + configurable L1).
pub fn projection() -> Vec<ProjectionRow> {
    let n = 4096;
    // Best CPU runtime as the bar.
    let mut best_cpu = f64::INFINITY;
    for spec in culi_gpu_sim::all_cpus() {
        let mut s = session_for(spec);
        submit_checked(&mut s, FIB_DEFUN, Some("fib"));
        let reply = submit_checked(&mut s, &fib_input(n), Some(&expected_output(n)));
        best_cpu = best_cpu.min(reply.phases.runtime_ms());
        s.shutdown();
    }
    let gpus = [
        culi_gpu_sim::device::tesla_c2075(),
        culi_gpu_sim::device::tesla_k20(),
        culi_gpu_sim::device::tesla_m40(),
        culi_gpu_sim::device::gtx1080(),
        culi_gpu_sim::device::volta_sim(),
    ];
    gpus.iter()
        .map(|&spec| {
            let mut s = session_for(spec);
            submit_checked(&mut s, FIB_DEFUN, Some("fib"));
            let reply = submit_checked(&mut s, &fib_input(n), Some(&expected_output(n)));
            s.shutdown();
            // Ablation survival: both mitigations off, partial warp.
            let mut ab = Session::gpu_with_kernel_config(
                spec,
                KernelConfig {
                    mask_master_block: false,
                    block_sync_flag: false,
                },
            );
            submit_checked(&mut ab, FIB_DEFUN, Some("fib"));
            let survives = matches!(ab.submit(&fib_input(33)), Ok(r) if r.ok);
            ProjectionRow {
                device: spec.name.to_string(),
                generation: format!("{:?}", spec.arch),
                eval_ms: reply.phases.eval_ms(),
                runtime_ms: reply.phases.runtime_ms(),
                gap_vs_best_cpu: reply.phases.runtime_ms() / best_cpu,
                livelock_free_without_mitigations: survives,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

/// Renders the projection experiment.
pub fn render_projection(rows: &[ProjectionRow]) -> String {
    let mut s =
        String::from("P1 — Generation projection (paper §V: the CPU/GPU gap per generation)\n");
    s.push_str(&format!(
        "{:<12} {:<9} {:>10} {:>12} {:>14} {:>12}\n",
        "device", "arch", "eval ms", "runtime ms", "gap vs CPU", "ITS-safe"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:<9} {:>10.3} {:>12.3} {:>13.1}x {:>12}\n",
            r.device,
            r.generation,
            r.eval_ms,
            r.runtime_ms,
            r.gap_vs_best_cpu,
            if r.livelock_free_without_mitigations {
                "yes"
            } else {
                "no"
            }
        ));
    }
    s
}

/// Renders Fig. 14 as a text table.
pub fn render_fig14(rows: &[Fig14Row]) -> String {
    let mut s = String::from("Fig. 14 — Base latency (launch + graceful stop)\n");
    s.push_str(&format!("{:<16} {:>16}\n", "device", "base latency ms"));
    for r in rows {
        s.push_str(&format!("{:<16} {:>16.4}\n", r.device, r.base_latency_ms));
    }
    s
}

/// Renders one metric of the sweep as a device × threads matrix.
pub fn render_sweep(points: &[SweepPoint], metric: &str) -> String {
    let pick = |p: &SweepPoint| -> f64 {
        match metric {
            "runtime" => p.runtime_ms,
            "execution" => p.execution_ms,
            "parse" => p.parse_ms,
            "eval" => p.eval_ms,
            "print" => p.print_ms,
            other => panic!("unknown metric {other}"),
        }
    };
    let title = match metric {
        "runtime" => "Fig. 15 — Runtime (ms, includes host transfer)",
        "execution" => "Fig. 16a — Execution time (ms)",
        "parse" => "Fig. 16b — Parsing time (ms)",
        "eval" => "Fig. 16c — Evaluation time (ms)",
        "print" => "Fig. 16d — Printing time (ms)",
        other => other,
    };
    let mut devices: Vec<String> = Vec::new();
    for p in points {
        if !devices.contains(&p.device) {
            devices.push(p.device.clone());
        }
    }
    let threads = thread_counts();
    let mut s = format!("{title}\n{:<16}", "device");
    for n in &threads {
        s.push_str(&format!(" {n:>9}"));
    }
    s.push('\n');
    for d in &devices {
        s.push_str(&format!("{d:<16}"));
        for &n in &threads {
            let v = points
                .iter()
                .find(|p| &p.device == d && p.threads == n)
                .map(pick)
                .unwrap_or(f64::NAN);
            s.push_str(&format!(" {v:>9.4}"));
        }
        s.push('\n');
    }
    s
}

/// Renders proportional runtimes (Figs. 17/18).
pub fn render_proportions(points: &[ProportionPoint], title: &str) -> String {
    let mut s = format!(
        "{title}\n{:<16} {:>8} {:>8} {:>8} {:>8}\n",
        "device", "threads", "parse%", "eval%", "print%"
    );
    for p in points {
        s.push_str(&format!(
            "{:<16} {:>8} {:>7.1}% {:>7.1}% {:>7.1}%\n",
            p.device,
            p.threads,
            100.0 * p.parse,
            100.0 * p.eval,
            100.0 * p.print
        ));
    }
    s
}

/// Renders the ablation outcomes.
pub fn render_ablations(rows: &[AblationRow]) -> String {
    let mut s = String::from("Ablations — warp-divergence mitigations (paper Figs. 12/13)\n");
    for r in rows {
        s.push_str(&format!(
            "[{}] {}\n    workload: {}\n    outcome:  {}\n",
            r.id, r.config, r.workload, r.outcome
        ));
    }
    s
}

/// Renders the atomics-overhead experiment.
pub fn render_atomics(rows: &[AtomicsRow]) -> String {
    let mut s = String::from(
        "A3 — Atomic postbox traffic vs hypothetical cached accesses (paper §III-C)\n",
    );
    s.push_str(&format!(
        "{:<14} {:>8} {:>12} {:>16} {:>16} {:>9}\n",
        "device", "threads", "atomic ops", "protocol(atomic)", "protocol(direct)", "penalty"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<14} {:>8} {:>12} {:>16} {:>16} {:>8.2}x\n",
            r.device,
            r.threads,
            r.atomic_ops,
            r.protocol_cycles_atomic,
            r.protocol_cycles_direct,
            r.atomic_penalty
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point<'a>(points: &'a [SweepPoint], device: &str, threads: usize) -> &'a SweepPoint {
        points
            .iter()
            .find(|p| p.device == device && p.threads == threads)
            .unwrap_or_else(|| panic!("missing {device}@{threads}"))
    }

    /// Whole-figure shape assertions, one sweep shared across them (the
    /// sweep is the expensive part).
    #[test]
    fn sweep_reproduces_paper_shapes() {
        let points = sweep();

        // Fig. 15: CPUs beat every GPU by ≥ 10× at 4096 threads.
        let cpu_best = ["Intel E5-2620", "AMD 6272"]
            .iter()
            .map(|d| point(&points, d, 4096).runtime_ms)
            .fold(f64::INFINITY, f64::min);
        for gpu in [
            "TeslaC2075",
            "TeslaK20",
            "TeslaM40",
            "GTX480",
            "GTX680",
            "GTX1080",
        ] {
            let t = point(&points, gpu, 4096).runtime_ms;
            assert!(
                t / cpu_best >= 8.0,
                "{gpu}: {t:.3} ms vs cpu {cpu_best:.3} ms"
            );
        }

        // Fig. 15: plateau from 1 to 64, then clear growth to 4096.
        for d in ["GTX1080", "TeslaM40", "Intel E5-2620"] {
            let t1 = point(&points, d, 1).runtime_ms;
            let t64 = point(&points, d, 64).runtime_ms;
            let t4096 = point(&points, d, 4096).runtime_ms;
            assert!(t64 / t1 < 4.0, "{d}: plateau broken ({t1:.4} → {t64:.4})");
            assert!(t4096 / t64 > 5.0, "{d}: no growth ({t64:.4} → {t4096:.4})");
        }

        // Fig. 15: GTX480 is the fastest GPU at scale, GTX1080 second.
        let gpus_at = |n: usize| -> Vec<(String, f64)> {
            [
                "TeslaC2075",
                "TeslaK20",
                "TeslaM40",
                "GTX480",
                "GTX680",
                "GTX1080",
            ]
            .iter()
            .map(|d| (d.to_string(), point(&points, d, n).runtime_ms))
            .collect()
        };
        let mut ranked = gpus_at(4096);
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
        assert_eq!(ranked[0].0, "GTX480", "{ranked:?}");
        assert_eq!(ranked[1].0, "GTX1080", "{ranked:?}");

        // Fig. 16b: Fermi parses ≥ 4× faster than every post-Fermi GPU.
        let fermi_worst = ["TeslaC2075", "GTX480"]
            .iter()
            .map(|d| point(&points, d, 4096).parse_ms)
            .fold(0.0, f64::max);
        for d in ["TeslaK20", "TeslaM40", "GTX680", "GTX1080"] {
            let t = point(&points, d, 4096).parse_ms;
            assert!(
                t / fermi_worst >= 4.0,
                "{d}: parse {t:.3} vs fermi {fermi_worst:.3}"
            );
        }

        // Fig. 16c: evaluation time drops with the GPU generation.
        let eval_of = |d: &str| point(&points, d, 4096).eval_ms;
        assert!(eval_of("TeslaC2075") > eval_of("TeslaM40"));
        assert!(eval_of("TeslaM40") > eval_of("GTX1080"));

        // Fig. 16d: GPU printing is orders of magnitude above CPU printing.
        assert!(
            point(&points, "GTX1080", 4096).print_ms / point(&points, "AMD 6272", 4096).print_ms
                > 20.0
        );
    }

    #[test]
    fn fig14_rows_cover_all_devices() {
        let rows = fig14();
        assert_eq!(rows.len(), 8);
        let gtx680 = rows.iter().find(|r| r.device == "GTX680").unwrap();
        let gtx1080 = rows.iter().find(|r| r.device == "GTX1080").unwrap();
        assert!(gtx1080.base_latency_ms / gtx680.base_latency_ms > 4.0);
    }

    #[test]
    fn fig17_parse_dominates_post_fermi_only() {
        let points = fig17();
        let at = |d: &str, n: usize| {
            points
                .iter()
                .find(|p| p.device == d && p.threads == n)
                .unwrap()
        };
        // Post-Fermi: parse > 50% of kernel time at scale.
        assert!(
            at("TeslaM40", 4096).parse > 0.5,
            "{}",
            at("TeslaM40", 4096).parse
        );
        assert!(
            at("GTX1080", 4096).parse > 0.5,
            "{}",
            at("GTX1080", 4096).parse
        );
        // Fermi: parse never exceeds ~11%.
        for n in thread_counts() {
            let p = at("TeslaC2075", n).parse;
            assert!(p <= 0.12, "C2075@{n}: parse share {p}");
        }
    }

    #[test]
    fn fig18_eval_dominates_on_cpu() {
        let points = fig18();
        for p in &points {
            if p.threads >= 64 {
                assert!(p.eval > 0.55, "AMD@{}: eval share {}", p.threads, p.eval);
                assert!(p.parse < 0.25, "AMD@{}: parse share {}", p.threads, p.parse);
                assert!(p.print < 0.25, "AMD@{}: print share {}", p.threads, p.print);
            }
        }
    }

    #[test]
    fn ablations_livelock_exactly_where_the_paper_says() {
        let rows = ablations();
        let by_id = |id: &str| rows.iter().find(|r| r.id == id).unwrap();
        assert!(by_id("A1").livelocked);
        assert!(by_id("A2").livelocked);
        assert!(!by_id("A2-control").livelocked);
        assert!(!by_id("baseline").livelocked);
    }

    #[test]
    fn projection_shows_the_gap_closing() {
        let rows = projection();
        assert_eq!(rows.len(), 5);
        // The gap to the best CPU shrinks monotonically across
        // generations (Kepler's low clock makes it worse than Fermi, as in
        // the paper's own data — compare within the Tesla line after it).
        let gap = |d: &str| rows.iter().find(|r| r.device == d).unwrap().gap_vs_best_cpu;
        assert!(gap("TeslaK20") > gap("TeslaM40"));
        assert!(gap("TeslaM40") > gap("GTX1080"));
        assert!(gap("GTX1080") > gap("V100sim"));
        // Only the ITS generation survives with the mitigations removed.
        for r in &rows {
            assert_eq!(
                r.livelock_free_without_mitigations,
                r.device == "V100sim",
                "{}",
                r.device
            );
        }
        // Still above the CPU — the paper predicts convergence, not a win.
        assert!(gap("V100sim") > 1.0);
    }

    #[test]
    fn atomics_carry_a_real_penalty() {
        let rows = atomics_overhead();
        for r in &rows {
            assert!(
                r.atomic_penalty > 1.0,
                "{}@{}: {}",
                r.device,
                r.threads,
                r.atomic_penalty
            );
            assert!(r.atomic_ops > 0);
        }
    }

    #[test]
    fn rendering_is_well_formed() {
        let rows = fig14();
        let table = render_fig14(&rows);
        assert!(table.contains("GTX1080"));
        let sw = sweep_on(&[culi_gpu_sim::device::gtx680()]);
        for metric in ["runtime", "execution", "parse", "eval", "print"] {
            let t = render_sweep(&sw, metric);
            assert!(t.contains("GTX680"), "{metric}");
            assert!(t.contains("4096"), "{metric}");
        }
    }
}
