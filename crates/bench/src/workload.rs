//! The paper's evaluation workload (§IV).
//!
//! *"In our test all threads compute the 5th Fibonacci number recursively"*;
//! thread counts sweep 1,2,4,…,4096, and the resulting REPL input strings
//! are *"17 to 8207 characters per transfer, around 8 KB in size"*. This
//! module generates exactly those inputs.

/// The recursive Fibonacci definition submitted once per session.
pub const FIB_DEFUN: &str =
    "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

/// Which Fibonacci index every worker computes (the paper uses the 5th).
pub const FIB_INDEX: u32 = 5;

/// The paper's thread-count sweep: 1, 2, 4, …, 4096.
pub fn thread_counts() -> Vec<usize> {
    (0..=12).map(|p| 1usize << p).collect()
}

/// Builds the `(||| n fib (5 5 … 5))` input for `n` workers.
pub fn fib_input(n: usize) -> String {
    let mut args = String::with_capacity(2 * n);
    for i in 0..n {
        if i > 0 {
            args.push(' ');
        }
        args.push_str(&FIB_INDEX.to_string());
    }
    format!("(||| {n} fib ({args}))")
}

/// Expected result list, for output validation: fib(5) = 5, n times.
pub fn expected_output(n: usize) -> String {
    let vals = vec!["5"; n];
    format!("({})", vals.join(" "))
}

/// Reference Fibonacci for validation.
pub fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper() {
        let t = thread_counts();
        assert_eq!(t.first(), Some(&1));
        assert_eq!(t.last(), Some(&4096));
        assert_eq!(t.len(), 13);
        for w in t.windows(2) {
            assert_eq!(w[1], 2 * w[0]);
        }
    }

    /// Experiment T1: the paper reports 17–8207 characters per transfer.
    #[test]
    fn input_sizes_match_paper() {
        let small = fib_input(1);
        let large = fib_input(4096);
        assert!(
            (14..=20).contains(&small.len()),
            "1-thread input is {} chars: {small}",
            small.len()
        );
        assert!(
            (8190..=8220).contains(&large.len()),
            "4096-thread input is {} chars (paper: 8207)",
            large.len()
        );
    }

    #[test]
    fn inputs_are_valid_culi() {
        let mut lisp = culi_core::Interp::default();
        lisp.eval_str(FIB_DEFUN).unwrap();
        assert_eq!(lisp.eval_str(&fib_input(4)).unwrap(), expected_output(4));
    }

    #[test]
    fn fib_reference() {
        assert_eq!(fib(5), 5);
        assert_eq!(fib(10), 55);
    }
}
