//! The paper's evaluation workload (§IV).
//!
//! *"In our test all threads compute the 5th Fibonacci number recursively"*;
//! thread counts sweep 1,2,4,…,4096, and the resulting REPL input strings
//! are *"17 to 8207 characters per transfer, around 8 KB in size"*. This
//! module generates exactly those inputs.

/// The recursive Fibonacci definition submitted once per session.
pub const FIB_DEFUN: &str = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

/// Which Fibonacci index every worker computes (the paper uses the 5th).
pub const FIB_INDEX: u32 = 5;

/// The paper's thread-count sweep: 1, 2, 4, …, 4096.
pub fn thread_counts() -> Vec<usize> {
    (0..=12).map(|p| 1usize << p).collect()
}

/// Builds the `(||| n fib (5 5 … 5))` input for `n` workers.
pub fn fib_input(n: usize) -> String {
    let mut args = String::with_capacity(2 * n);
    for i in 0..n {
        if i > 0 {
            args.push(' ');
        }
        args.push_str(&FIB_INDEX.to_string());
    }
    format!("(||| {n} fib ({args}))")
}

/// Expected result list, for output validation: fib(5) = 5, n times.
pub fn expected_output(n: usize) -> String {
    let vals = vec!["5"; n];
    format!("({})", vals.join(" "))
}

/// Reference Fibonacci for validation.
pub fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

/// Benchmark fixture: a full interpreter (global env holds every builtin),
/// a chain of `depth` child environments each carrying one local binding,
/// and the symbol `+` as the lookup target. `+` is registered *first*, so
/// it sits at the very tail of the global binding list: the faithful scan
/// walks the chain, then every builtin; the indexed lookup walks the chain
/// and resolves the global hit in O(1). This is exactly the shape of every
/// builtin resolution the evaluator performs.
pub fn env_chain_fixture(depth: usize) -> (culi_core::Interp, culi_core::EnvId, culi_core::StrId) {
    let mut interp = culi_core::Interp::default();
    let target = interp.strings.intern(b"+");
    let mut env = interp.global;
    for i in 0..depth {
        env = interp.envs.push(Some(env));
        let local = interp.strings.intern(format!("local-{i}").as_bytes());
        interp
            .envs
            .define(env, local, culi_core::NodeId::new(i + 1), &interp.strings);
    }
    (interp, env, target)
}

/// Benchmark fixture: an arena filled to capacity and then 50% freed in an
/// interleaved (every-other-slot) pattern — the worst case for the seed's
/// wrapping-scan allocator.
pub fn fragmented_arena(capacity: usize) -> (culi_core::arena::NodeArena, culi_core::cost::Meter) {
    let mut arena = culi_core::arena::NodeArena::with_capacity(capacity);
    let mut meter = culi_core::cost::Meter::new();
    let ids: Vec<culi_core::NodeId> = (0..capacity)
        .map(|i| {
            arena
                .alloc(culi_core::node::Node::int(i as i64), &mut meter)
                .unwrap()
        })
        .collect();
    for id in ids.into_iter().step_by(2) {
        arena.free(id, &mut meter);
    }
    (arena, meter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper() {
        let t = thread_counts();
        assert_eq!(t.first(), Some(&1));
        assert_eq!(t.last(), Some(&4096));
        assert_eq!(t.len(), 13);
        for w in t.windows(2) {
            assert_eq!(w[1], 2 * w[0]);
        }
    }

    /// Experiment T1: the paper reports 17–8207 characters per transfer.
    #[test]
    fn input_sizes_match_paper() {
        let small = fib_input(1);
        let large = fib_input(4096);
        assert!(
            (14..=20).contains(&small.len()),
            "1-thread input is {} chars: {small}",
            small.len()
        );
        assert!(
            (8190..=8220).contains(&large.len()),
            "4096-thread input is {} chars (paper: 8207)",
            large.len()
        );
    }

    #[test]
    fn inputs_are_valid_culi() {
        let mut lisp = culi_core::Interp::default();
        lisp.eval_str(FIB_DEFUN).unwrap();
        assert_eq!(lisp.eval_str(&fib_input(4)).unwrap(), expected_output(4));
    }

    #[test]
    fn fib_reference() {
        assert_eq!(fib(5), 5);
        assert_eq!(fib(10), 55);
    }
}
