//! Minimal JSON emission **and parsing** for the figure/benchmark
//! binaries.
//!
//! The offline build environment cannot resolve `serde`/`serde_json`, and
//! the only serialization this crate needs is pretty-printing flat rows of
//! figures data plus reading committed baseline files back for the CI
//! bench-regression gate, so two ~hundred-line value types cover it.
//! Field order in objects is preserved (it mirrors struct declaration
//! order, like serde's derive would). [`Json`] emits with `&'static`
//! keys; [`JsonValue`] is the owned-key result of [`JsonValue::parse`].

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string.
    Str(String),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float (shortest round-trip formatting; non-finite becomes null,
    /// as serde_json does).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered object.
    Obj(Vec<(&'static str, Json)>),
    /// An array.
    Arr(Vec<Json>),
}

impl Json {
    /// Pretty-prints with two-space indentation (serde_json style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Str(s) => write_escaped(out, s),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    v.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value (owned keys — the dual of the emission-only
/// [`Json`]). Covers the full JSON grammar the emitter produces.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also what non-finite floats were emitted as).
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (integers parse into the same representation).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, field order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document. Errors carry the byte offset and a short
    /// description.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                let start = *pos;
                while matches!(bytes.get(*pos), Some(b) if *b != b'"' && *b != b'\\') {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

/// Pretty-prints a slice of rows as a JSON array.
pub fn pretty_rows<T: ToJson>(rows: &[T]) -> String {
    Json::Arr(rows.iter().map(ToJson::to_json).collect()).pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escaping() {
        assert_eq!(Json::Int(-3).pretty(), "-3");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Num(1.5).pretty(), "1.5");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Str("a\"b\\c\n".into()).pretty(), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn object_layout() {
        let v = Json::Obj(vec![
            ("device", Json::Str("GTX 1080".into())),
            ("ms", Json::Num(0.25)),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"device\": \"GTX 1080\",\n  \"ms\": 0.25\n}"
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn parse_roundtrips_emitted_documents() {
        let doc = Json::Obj(vec![
            ("name", Json::Str("pipeline/tiny \"jobs\"\n".into())),
            ("speedup", Json::Num(4.25)),
            ("count", Json::UInt(32)),
            ("neg", Json::Int(-7)),
            ("ok", Json::Bool(true)),
            ("bad", Json::Num(f64::NAN)),
            (
                "rows",
                Json::Arr(vec![Json::Num(1e-3), Json::Obj(vec![]), Json::Arr(vec![])]),
            ),
        ]);
        let parsed = JsonValue::parse(&doc.pretty()).unwrap();
        assert_eq!(
            parsed.get("name").unwrap().as_str().unwrap(),
            "pipeline/tiny \"jobs\"\n"
        );
        assert_eq!(parsed.get("speedup").unwrap().as_f64(), Some(4.25));
        assert_eq!(parsed.get("count").unwrap().as_f64(), Some(32.0));
        assert_eq!(parsed.get("neg").unwrap().as_f64(), Some(-7.0));
        assert_eq!(parsed.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(parsed.get("bad"), Some(&JsonValue::Null));
        let rows = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].as_f64(), Some(0.001));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad}");
        }
    }
}
