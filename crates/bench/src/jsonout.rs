//! Minimal JSON emission for the figure/benchmark binaries.
//!
//! The offline build environment cannot resolve `serde`/`serde_json`, and
//! the only serialization this crate needs is pretty-printing flat rows of
//! figures data, so a ~hundred-line value type covers it. Field order in
//! objects is preserved (it mirrors struct declaration order, like serde's
//! derive would).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string.
    Str(String),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float (shortest round-trip formatting; non-finite becomes null,
    /// as serde_json does).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered object.
    Obj(Vec<(&'static str, Json)>),
    /// An array.
    Arr(Vec<Json>),
}

impl Json {
    /// Pretty-prints with two-space indentation (serde_json style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Str(s) => write_escaped(out, s),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    v.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

/// Pretty-prints a slice of rows as a JSON array.
pub fn pretty_rows<T: ToJson>(rows: &[T]) -> String {
    Json::Arr(rows.iter().map(ToJson::to_json).collect()).pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escaping() {
        assert_eq!(Json::Int(-3).pretty(), "-3");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Num(1.5).pretty(), "1.5");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::Str("a\"b\\c\n".into()).pretty(), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn object_layout() {
        let v = Json::Obj(vec![
            ("device", Json::Str("GTX 1080".into())),
            ("ms", Json::Num(0.25)),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"device\": \"GTX 1080\",\n  \"ms\": 0.25\n}"
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }
}
