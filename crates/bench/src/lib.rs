//! # culi-bench — workloads and figure regeneration for the CuLi paper
//!
//! [`workload`] generates the paper's fib(5) inputs (§IV); [`figures`]
//! reruns every figure of the evaluation on the simulated devices and
//! renders the same rows/series the paper reports. The `figures` binary is
//! the command-line entry point; the Criterion benches under `benches/`
//! measure the real-machine cost of the simulator and interpreter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod jsonout;
pub mod workload;
