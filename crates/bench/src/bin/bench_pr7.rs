//! `bench_pr7` — emits the PR-7 multi-tenant serving baseline as JSON,
//! and acts as the CI bench-regression gate for the session server.
//!
//! Measures the [`culi_runtime::SessionServer`] against the **naive
//! one-pool-per-session baseline** it replaces: N independent
//! [`culi_runtime::Session::tenant`] sessions, each booting its own
//! worker pool on first `|||` section, served round-robin by direct
//! `submit` calls. Every tenant runs the same short mixed stream (a
//! definition, env mutation, a parallel section, scalar reads), so the
//! arms do identical interpreter work — the difference is pure serving
//! harness: per-session pool forks and rendezvous vs the server's
//! cold-route reference execution with fair-share admission.
//!
//! * **`multi_tenant_speedup`** — sustained commands/sec, server ÷ naive,
//!   at 256 concurrent sessions. Hard floor **≥ 2×** (the PR's
//!   acceptance bar), plus a baseline-relative regression band.
//! * **`noisy_p99_ratio`** — healthy tenants' p99 completion latency
//!   with a fuel-exhausting noisy neighbor admitted ÷ the same 64-tenant
//!   population without it. Per-tenant fuel budgets abort the runaways
//!   in interpreter time, so the shift must stay inside the tolerance
//!   band (gated against `max(baseline × band, 3.0)` — the absolute
//!   floor absorbs scheduler jitter on sub-millisecond p99s).
//! * **`mt/<n>/…`** rows — per-scale ns/command and p50/p99 completion
//!   latencies for both arms at 64, 256 and (full mode only) 1024
//!   sessions; `CULI_BENCH_FAST=1` skips the 1024 arm.
//!
//! ```text
//! cargo run --release -p culi-bench --bin bench_pr7 [out.json]
//! cargo run --release -p culi-bench --bin bench_pr7 [out.json] --gate BENCH_pr7.json [band]
//! ```

use culi_bench::jsonout::{Json, JsonValue, ToJson};
use culi_runtime::{ServerConfig, Session, SessionServer, TenantSessionConfig};
use std::time::Instant;

struct BenchRow {
    name: String,
    median_ns: f64,
    samples: usize,
}

impl ToJson for BenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("median_ns", Json::Num(self.median_ns)),
            ("samples", Json::UInt(self.samples as u64)),
        ])
    }
}

fn fast_mode() -> bool {
    std::env::var("CULI_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The per-tenant command stream: definition, env mutation, one `|||`
/// section (this is what forks a pool in the naive arm), scalar reads.
fn tenant_stream(t: usize) -> Vec<String> {
    vec![
        "(defun sq (x) (* x x))".to_string(),
        format!("(setq v {})", t % 50),
        "(||| 2 sq (2 3))".to_string(),
        "(+ v 9)".to_string(),
        "(list v v)".to_string(),
        "(* v 3)".to_string(),
    ]
}

fn tenant_cfg() -> TenantSessionConfig {
    TenantSessionConfig {
        arena_capacity: 1 << 13,
        ..Default::default()
    }
}

/// Latency distribution of one arm's run: total wall ns plus sorted
/// per-command completion times (ns since the arm started serving).
struct ArmTimes {
    total_ns: f64,
    completions_ns: Vec<f64>,
}

impl ArmTimes {
    fn percentile(&self, p: f64) -> f64 {
        let k = ((self.completions_ns.len() - 1) as f64 * p).round() as usize;
        self.completions_ns[k]
    }
}

/// Naive arm: one full session (own interpreter, own worker pool) per
/// tenant, served round-robin with direct submits. Session boot is
/// outside the timed region; the per-session pool fork triggered by the
/// first `|||` command is inside it — that fork IS the naive serving
/// cost the server amortizes away.
fn run_naive(sessions: usize) -> ArmTimes {
    let spec = culi_gpu_sim::device::intel_e5_2620();
    let cfg = tenant_cfg();
    let streams: Vec<Vec<String>> = (0..sessions).map(tenant_stream).collect();
    let mut pool: Vec<Session> = (0..sessions).map(|_| Session::tenant(spec, &cfg)).collect();
    let len = streams[0].len();
    let mut completions_ns = Vec::with_capacity(sessions * len);
    let t0 = Instant::now();
    for k in 0..len {
        for (stream, session) in streams.iter().zip(pool.iter_mut()) {
            let reply = session.submit(&stream[k]).expect("naive submit");
            assert!(reply.ok, "{}", reply.output);
            completions_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }
    let total_ns = t0.elapsed().as_nanos() as f64;
    for mut s in pool {
        s.shutdown();
    }
    let mut times = ArmTimes {
        total_ns,
        completions_ns,
    };
    times.completions_ns.sort_by(|a, b| a.total_cmp(b));
    times
}

/// Server arm: the same tenant population admitted onto one
/// [`SessionServer`], streams enqueued round-robin, drained through
/// fair-share rounds. `extra_noisy` additionally admits one
/// tightly-fueled tenant whose whole stream is runaway loops; only the
/// healthy tenants' completions are reported. Three sampled healthy
/// tenants (first, middle, last admitted) are verified byte-identical —
/// output, ok flag, code and full counters — against isolated
/// [`Session::tenant`] reference sessions, so the gate run itself
/// asserts the byte-identity guarantee at every scale it measures.
fn run_server(sessions: usize, extra_noisy: bool) -> ArmTimes {
    let spec = culi_gpu_sim::device::intel_e5_2620();
    let cfg = tenant_cfg();
    let streams: Vec<Vec<String>> = (0..sessions).map(tenant_stream).collect();
    let len = streams[0].len();
    let mut srv = SessionServer::new(
        spec,
        ServerConfig {
            queue_capacity: len,
            global_queue_capacity: (sessions + 1) * len,
            // A small quantum spreads each tenant's stream over several
            // rounds, so completion timestamps (stamped per round) show
            // real p50/p99 structure instead of one global barrier.
            quantum: 2,
            ..Default::default()
        },
    );
    let ids: Vec<_> = (0..sessions).map(|_| srv.admit(cfg.clone())).collect();
    let noisy = extra_noisy.then(|| {
        srv.admit(TenantSessionConfig {
            // Tight budget: each runaway aborts in interpreter time,
            // keeping the healthy-p99 shift small and stable.
            fuel_budget: 2_000,
            ..tenant_cfg()
        })
    });
    let sampled = [0, sessions / 2, sessions - 1];
    let mut sampled_replies: Vec<Vec<culi_runtime::Reply>> =
        sampled.iter().map(|_| Vec::new()).collect();
    let mut completions_ns = Vec::with_capacity(sessions * len);
    let t0 = Instant::now();
    for k in 0..len {
        for (stream, id) in streams.iter().zip(&ids) {
            assert!(srv.enqueue(*id, &stream[k]).is_none(), "refused");
        }
        if let Some(noisy) = noisy {
            assert!(srv
                .enqueue(noisy, "(dotimes (j 1000000000) (* j j))")
                .is_none());
        }
    }
    loop {
        let round = srv.pump_round();
        if round.is_empty() {
            break;
        }
        let now_ns = t0.elapsed().as_nanos() as f64;
        for (id, reply) in round {
            if Some(id) == noisy {
                assert!(!reply.ok, "runaways must abort");
                continue;
            }
            assert!(reply.ok, "{}", reply.output);
            completions_ns.push(now_ns);
            if let Some(s) = sampled.iter().position(|&t| ids[t] == id) {
                sampled_replies[s].push(reply);
            }
        }
    }
    let total_ns = t0.elapsed().as_nanos() as f64;
    assert_eq!(completions_ns.len(), sessions * len);
    srv.shutdown();
    // Byte-identity spot check (outside the timed region): the sampled
    // tenants' reply streams must match isolated sessions exactly.
    for (s, &t) in sampled.iter().enumerate() {
        let mut isolated = Session::tenant(spec, &cfg);
        assert_eq!(sampled_replies[s].len(), len);
        for (got, src) in sampled_replies[s].iter().zip(&streams[t]) {
            let want = isolated.submit(src).expect("reference submit");
            assert_eq!(got.output, want.output, "{src}");
            assert_eq!(got.ok, want.ok, "{src}");
            assert_eq!(got.code, want.code, "{src}");
            assert_eq!(got.counters, want.counters, "{src}");
        }
        isolated.shutdown();
    }
    let mut times = ArmTimes {
        total_ns,
        completions_ns,
    };
    times.completions_ns.sort_by(|a, b| a.total_cmp(b));
    times
}

/// Fresh metrics the gate compares; returned alongside the JSON rows.
struct Metrics {
    multi_tenant_speedup: f64,
    noisy_p99_ratio: f64,
}

fn run_benchmarks(rows: &mut Vec<BenchRow>, samples: usize) -> Metrics {
    let scales: &[usize] = if fast_mode() {
        &[64, 256]
    } else {
        &[64, 256, 1024]
    };
    let mut speedup_at_256 = 0.0;
    for &n in scales {
        // The 256 arm feeds the gate: take the best of `samples` runs of
        // each side so one scheduler hiccup cannot fail CI; larger scales
        // run once (they are informational and slow).
        let reps = if n == 256 { samples } else { 1 };
        let mut naive_best: Option<ArmTimes> = None;
        let mut server_best: Option<ArmTimes> = None;
        for _ in 0..reps {
            let naive = run_naive(n);
            if naive_best
                .as_ref()
                .is_none_or(|b| naive.total_ns < b.total_ns)
            {
                naive_best = Some(naive);
            }
            let server = run_server(n, false);
            if server_best
                .as_ref()
                .is_none_or(|b| server.total_ns < b.total_ns)
            {
                server_best = Some(server);
            }
        }
        let naive = naive_best.unwrap();
        let server = server_best.unwrap();
        let commands = server.completions_ns.len() as f64;
        if n == 256 {
            speedup_at_256 = naive.total_ns / server.total_ns;
        }
        for (arm, times) in [("naive", &naive), ("server", &server)] {
            rows.push(BenchRow {
                name: format!("mt/{n}/{arm}_ns_per_cmd"),
                median_ns: times.total_ns / commands,
                samples: reps,
            });
            rows.push(BenchRow {
                name: format!("mt/{n}/{arm}_p50"),
                median_ns: times.percentile(0.50),
                samples: reps,
            });
            rows.push(BenchRow {
                name: format!("mt/{n}/{arm}_p99"),
                median_ns: times.percentile(0.99),
                samples: reps,
            });
        }
    }

    // --- Noisy-neighbor isolation at 64 tenants ------------------------
    // Best-of-N on both sides for the same jitter reason; the noisy
    // tenant's own (failing) replies are excluded from the distribution.
    let mut base_p99 = f64::INFINITY;
    let mut noisy_p99 = f64::INFINITY;
    for _ in 0..samples {
        base_p99 = base_p99.min(run_server(64, false).percentile(0.99));
        noisy_p99 = noisy_p99.min(run_server(64, true).percentile(0.99));
    }
    let noisy_p99_ratio = noisy_p99 / base_p99;
    rows.push(BenchRow {
        name: "noisy/64/healthy_p99_alone".into(),
        median_ns: base_p99,
        samples,
    });
    rows.push(BenchRow {
        name: "noisy/64/healthy_p99_beside_noisy".into(),
        median_ns: noisy_p99,
        samples,
    });

    Metrics {
        multi_tenant_speedup: speedup_at_256,
        noisy_p99_ratio,
    }
}

fn run_gate(baseline_path: &str, baseline: &JsonValue, band: f64, metrics: &Metrics) {
    println!("bench gate vs {baseline_path} (band {band:.2}):");
    let mut failed = false;

    // Speedup: the 2x acceptance floor is absolute; on top, a downward
    // baseline-relative band catches serving-path regressions well above
    // the floor.
    match baseline
        .get("multi_tenant_speedup")
        .and_then(JsonValue::as_f64)
    {
        Some(base) => {
            let required = (base / band).max(2.0);
            if metrics.multi_tenant_speedup >= required {
                println!(
                    "  ok   multi_tenant_speedup: fresh {:.2}x vs baseline {base:.2}x \
                     (required >= {required:.2}x)",
                    metrics.multi_tenant_speedup
                );
            } else {
                println!(
                    "  FAIL multi_tenant_speedup: fresh {:.2}x fell below {required:.2}x \
                     (baseline {base:.2}x, band {band:.2}, floor 2.00x)",
                    metrics.multi_tenant_speedup
                );
                failed = true;
            }
        }
        None => {
            println!("  FAIL baseline is missing multi_tenant_speedup");
            failed = true;
        }
    }

    // Noisy-neighbor p99 shift: upward band with an absolute allowance
    // floor — the p99s are sub-millisecond, so pure scheduler jitter can
    // move the ratio; what the gate must catch is isolation *breaking*
    // (runaways stalling healthy tenants → ratio explodes).
    match baseline.get("noisy_p99_ratio").and_then(JsonValue::as_f64) {
        Some(base) => {
            let allowed = (base * band).max(3.0);
            if metrics.noisy_p99_ratio <= allowed {
                println!(
                    "  ok   noisy_p99_ratio: fresh {:.2} vs baseline {base:.2} \
                     (allowed <= {allowed:.2})",
                    metrics.noisy_p99_ratio
                );
            } else {
                println!(
                    "  FAIL noisy_p99_ratio: fresh {:.2} grew past {allowed:.2} \
                     (baseline {base:.2}, band {band:.2})",
                    metrics.noisy_p99_ratio
                );
                failed = true;
            }
        }
        None => {
            println!("  FAIL baseline is missing noisy_p99_ratio");
            failed = true;
        }
    }

    if failed {
        eprintln!("bench-regression gate FAILED");
        std::process::exit(1);
    }
    println!("bench-regression gate passed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr7.json".to_string());
    let gate_baseline = args.iter().position(|a| a == "--gate").map(|i| {
        args.get(i + 1)
            .expect("--gate needs a baseline path")
            .clone()
    });
    let band = std::env::var("CULI_BENCH_GATE_BAND")
        .ok()
        .and_then(|s| s.parse().ok())
        .or_else(|| {
            gate_baseline.as_ref().and_then(|_| {
                args.iter()
                    .position(|a| a == "--gate")
                    .and_then(|i| args.get(i + 2))
                    .and_then(|s| s.parse().ok())
            })
        })
        .unwrap_or(1.6);

    // Load the baseline up front: `[out.json]` defaults to the committed
    // baseline's own name, so reading after the write below could
    // silently compare fresh-vs-fresh.
    let baseline = gate_baseline.as_ref().map(|path| {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        JsonValue::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
    });

    let samples = 3;
    let mut rows = Vec::new();
    let metrics = run_benchmarks(&mut rows, samples);

    let doc = Json::Obj(vec![
        ("baseline", Json::Str("pr7".to_string())),
        ("unit", Json::Str("nanoseconds (median)".to_string())),
        (
            "serving_workload",
            Json::Str(
                "6-command mixed stream (defun, setq, one 2-way ||| section, scalar reads) \
                 per tenant; naive = one pooled session per tenant, round-robin submits; \
                 server = SessionServer fair-share rounds, intel_e5_2620"
                    .to_string(),
            ),
        ),
        (
            "multi_tenant_speedup",
            Json::Num(metrics.multi_tenant_speedup),
        ),
        ("noisy_p99_ratio", Json::Num(metrics.noisy_p99_ratio)),
        (
            "rows",
            Json::Arr(rows.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.pretty() + "\n").expect("write baseline json");
    println!("wrote {out_path}");
    for r in &rows {
        println!("{:<56} {:>14.1} ns", r.name, r.median_ns);
    }
    println!(
        "multi-tenant speedup at 256 sessions: {:.2}x",
        metrics.multi_tenant_speedup
    );
    println!(
        "noisy-neighbor p99 shift at 64 tenants: {:.2}x",
        metrics.noisy_p99_ratio
    );
    assert!(
        metrics.multi_tenant_speedup >= 2.0,
        "the server must beat one-pool-per-session by >= 2x at 256 sessions, measured {:.2}x",
        metrics.multi_tenant_speedup
    );

    if let (Some(baseline_path), Some(baseline)) = (gate_baseline, baseline) {
        run_gate(&baseline_path, &baseline, band, &metrics);
    }
}
