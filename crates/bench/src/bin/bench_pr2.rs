//! `bench_pr2` — emits the PR-2 performance baseline as JSON.
//!
//! Measures the `|||` parallel path this PR rearchitected: median
//! wall-clock time per warm section on the persistent pooled backend vs.
//! PR 1's fork-per-section baseline (retained as
//! `culi_runtime::ForkPerSectionHook`) vs. the sequential reference, the
//! flat-codec encode/decode cost, the pooled printer, and the
//! high-water-bounded GC sweep (same row name as `BENCH_pr1.json` for a
//! side-by-side read). Also records the whole-interpreter clone count of
//! a 64-section warm pooled run — the PR's zero-clone acceptance number.
//!
//! ```text
//! cargo run --release -p culi-bench --bin bench_pr2 [out.json]
//! ```

use culi_bench::jsonout::{Json, ToJson};
use culi_bench::workload;
use culi_core::eval::SequentialHook;
use culi_core::{Interp, InterpConfig};
use culi_runtime::{ForkPerSectionHook, ThreadedHook};
use std::hint::black_box;
use std::time::Instant;

struct BenchRow {
    name: &'static str,
    median_ns: f64,
    samples: usize,
}

impl ToJson for BenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name", Json::Str(self.name.to_string())),
            ("median_ns", Json::Num(self.median_ns)),
            ("samples", Json::UInt(self.samples as u64)),
        ])
    }
}

/// Runs `f` repeatedly, returning the median ns per call over `samples`
/// batches sized to take roughly a millisecond each.
fn measure<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        if t.elapsed().as_micros() >= 1000 || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

const SECTION: &str = "(||| 8 fib (4 4 4 4 4 4 4 4))";

fn session() -> Interp {
    let mut i = Interp::new(InterpConfig {
        arena_capacity: 1 << 16,
        ..Default::default()
    });
    i.eval_str(workload::FIB_DEFUN).unwrap();
    i
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr2.json".to_string());
    let samples = 9;
    let mut rows = Vec::new();

    // Warm pooled sections: persistent workers, incremental sync, flat
    // postbox job/result batches, collection after each command.
    let pooled = {
        let mut i = session();
        let mut hook = ThreadedHook::new(8);
        i.eval_str_with(SECTION, &mut hook).unwrap(); // fork the pool
        let median = measure(samples, || {
            i.eval_str_with(SECTION, &mut hook).unwrap();
            culi_core::gc::collect(&mut i, &[]);
        });
        rows.push(BenchRow {
            name: "parallel_section/pooled_8_workers",
            median_ns: median,
            samples,
        });
        median
    };

    // PR 1 baseline: whole-interpreter clone per worker chunk per section.
    let forked = {
        let mut i = session();
        let mut hook = ForkPerSectionHook::new(8);
        let median = measure(samples, || {
            i.eval_str_with(SECTION, &mut hook).unwrap();
            culi_core::gc::collect(&mut i, &[]);
        });
        rows.push(BenchRow {
            name: "parallel_section/fork_per_section_8_workers",
            median_ns: median,
            samples,
        });
        median
    };

    // Sequential reference for scale.
    {
        let mut i = session();
        let median = measure(samples, || {
            i.eval_str_with(SECTION, &mut SequentialHook).unwrap();
            culi_core::gc::collect(&mut i, &[]);
        });
        rows.push(BenchRow {
            name: "parallel_section/sequential",
            median_ns: median,
            samples,
        });
    }

    // Zero-clone acceptance: 64 warm sections, clone delta must be 0.
    let warm_clones = {
        let mut i = session();
        let mut hook = ThreadedHook::new(8);
        i.eval_str_with(SECTION, &mut hook).unwrap();
        let before = i.clone_count();
        for _ in 0..64 {
            i.eval_str_with(SECTION, &mut hook).unwrap();
            culi_core::gc::collect(&mut i, &[]);
        }
        i.clone_count() - before
    };

    // Flat codec: encode+decode a job-sized expression batch (8 jobs).
    {
        let mut master = session();
        let forms = culi_core::parser::parse(&mut master, b"(fib 4)").unwrap();
        let mut replica = master.clone();
        let mut buf = culi_core::postbox::FlatTree::default();
        let median = measure(samples, || {
            buf.clear();
            for _ in 0..8 {
                buf.push_tree(&master, forms[0]);
            }
            for j in 0..8 {
                black_box(buf.decode(j, &mut replica).unwrap());
            }
            culi_core::gc::collect(&mut replica, &[]);
        });
        rows.push(BenchRow {
            name: "postbox/encode_decode_8_jobs",
            median_ns: median,
            samples,
        });
    }

    // Printer with the pooled output buffer (warm).
    {
        let mut i = Interp::default();
        let forms =
            culi_core::parser::parse(&mut i, format!("({})", "12345 ".repeat(64)).as_bytes())
                .unwrap();
        culi_core::printer::print_to_string(&mut i, forms[0]).unwrap(); // warm the pool
        let median = measure(samples, || {
            black_box(culi_core::printer::print_to_string(&mut i, forms[0]).unwrap())
        });
        rows.push(BenchRow {
            name: "printer/print_64_int_list_warm",
            median_ns: median,
            samples,
        });
    }

    // Full collection on a loaded 1 Mi-slot arena — same row as PR 1, now
    // bounded by the high-water slot instead of capacity.
    {
        let mut i = Interp::default();
        i.eval_str(workload::FIB_DEFUN).unwrap();
        i.eval_str("(fib 15)").unwrap();
        let median = measure(samples, || culi_core::gc::collect(&mut i, &[]));
        rows.push(BenchRow {
            name: "gc/collect_1mi_arena",
            median_ns: median,
            samples,
        });
    }

    let speedup = forked / pooled;
    let doc = Json::Obj(vec![
        ("baseline", Json::Str("pr2".to_string())),
        ("unit", Json::Str("nanoseconds (median)".to_string())),
        (
            "section_workload",
            Json::Str("64 warm ||| sections x 8 workers (fib 4 jobs)".to_string()),
        ),
        ("pooled_speedup_vs_fork_per_section", Json::Num(speedup)),
        (
            "warm_interp_clones_over_64_sections",
            Json::UInt(warm_clones),
        ),
        (
            "rows",
            Json::Arr(rows.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.pretty() + "\n").expect("write baseline json");
    println!("wrote {out_path}");
    for r in &rows {
        println!("{:<48} {:>12.1} ns", r.name, r.median_ns);
    }
    println!("pooled speedup vs fork-per-section: {speedup:.2}x");
    println!("warm interp clones over 64 sections: {warm_clones}");
    assert_eq!(warm_clones, 0, "warm pooled sections must not clone");
}
