//! `bench_pr1` — emits the PR-1 performance baseline as JSON.
//!
//! Measures the interpreter hot paths this PR optimized (recursive
//! evaluation, environment lookup at several chain depths with a
//! builtin-sized global environment, allocation on a fragmented arena) and
//! writes `BENCH_pr1.json` (or the path given as the first argument). The
//! legacy-scan lookup numbers are measured from the retained reference
//! implementation, so the file carries its own before/after comparison.
//!
//! ```text
//! cargo run --release -p culi-bench --bin bench_pr1 [out.json]
//! ```

use culi_bench::jsonout::{Json, ToJson};
use culi_bench::workload;
use std::hint::black_box;
use std::time::Instant;

struct BenchRow {
    name: &'static str,
    median_ns: f64,
    samples: usize,
}

impl ToJson for BenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name", Json::Str(self.name.to_string())),
            ("median_ns", Json::Num(self.median_ns)),
            ("samples", Json::UInt(self.samples as u64)),
        ])
    }
}

/// Criterion `iter_batched` semantics: per sample, build fresh state with
/// `setup` (untimed) and time one `routine` call. Returns the median ns.
fn measure_batched<S, O>(
    samples: usize,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> O,
) -> f64 {
    black_box(routine(setup()));
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            let ns = t.elapsed().as_nanos() as f64;
            black_box(out);
            ns
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Runs `f` repeatedly, returning the median ns per call over `samples`
/// batches sized to take roughly a millisecond each.
fn measure<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    // Size a batch.
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        if t.elapsed().as_micros() >= 1000 || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr1.json".to_string());
    let samples = 9;
    let mut rows = Vec::new();

    // Recursive evaluation: fib(15) through the full interpreter. Session
    // setup happens outside the timed section, exactly like the criterion
    // bench's iter_batched (the seed measured 2.84 ms here; see CHANGES).
    {
        let median = measure_batched(
            samples,
            || {
                let mut i = culi_core::Interp::default();
                i.eval_str(workload::FIB_DEFUN).unwrap();
                i
            },
            |mut i| i.eval_str("(fib 15)").unwrap(),
        );
        rows.push(BenchRow {
            name: "evaluator/fib_15",
            median_ns: median,
            samples,
        });
    }

    // Steady-state evaluation: session reused, scratch pools and symbol
    // index warm — the number the allocation-free hot path targets.
    {
        let mut i = culi_core::Interp::default();
        i.eval_str(workload::FIB_DEFUN).unwrap();
        i.eval_str("(fib 15)").unwrap();
        let median = measure(samples, || i.eval_str("(fib 15)").unwrap());
        rows.push(BenchRow {
            name: "evaluator/fib_15_warm_session",
            median_ns: median,
            samples,
        });
    }

    // Full collection on a loaded 1 Mi-slot arena (reused bitmap + in-place
    // free-list rebuild; the sweep is O(capacity) by design).
    {
        let median = measure_batched(
            samples,
            || {
                let mut i = culi_core::Interp::default();
                i.eval_str(workload::FIB_DEFUN).unwrap();
                i.eval_str("(fib 15)").unwrap();
                i
            },
            |mut i| culi_core::gc::collect(&mut i, &[]),
        );
        rows.push(BenchRow {
            name: "gc/collect_1mi_arena",
            median_ns: median,
            samples,
        });
    }

    // Environment lookup, indexed vs. the retained legacy scan.
    for depth in [1usize, 8, 64] {
        let (interp, env, sym) = workload::env_chain_fixture(depth);
        let mut meter = culi_core::cost::Meter::new();
        let median = measure(samples, || {
            black_box(interp.envs.lookup(env, sym, &interp.strings, &mut meter))
        });
        rows.push(BenchRow {
            name: match depth {
                1 => "env_lookup/indexed_depth_1",
                8 => "env_lookup/indexed_depth_8",
                _ => "env_lookup/indexed_depth_64",
            },
            median_ns: median,
            samples,
        });
        let median = measure(samples, || {
            black_box(
                interp
                    .envs
                    .lookup_legacy(env, sym, &interp.strings, &mut meter),
            )
        });
        rows.push(BenchRow {
            name: match depth {
                1 => "env_lookup/legacy_scan_depth_1",
                8 => "env_lookup/legacy_scan_depth_8",
                _ => "env_lookup/legacy_scan_depth_64",
            },
            median_ns: median,
            samples,
        });
    }

    // Allocation on a fragmented arena (50% freed, interleaved).
    {
        let (mut arena, mut meter) = workload::fragmented_arena(1 << 16);
        let median = measure(samples, || {
            let id = arena
                .alloc(culi_core::node::Node::int(7), &mut meter)
                .unwrap();
            arena.free(id, &mut meter);
        });
        rows.push(BenchRow {
            name: "arena_alloc/fragmented_50pct_alloc_free",
            median_ns: median,
            samples,
        });
    }

    let doc = Json::Obj(vec![
        ("baseline", Json::Str("pr1".to_string())),
        ("unit", Json::Str("nanoseconds (median)".to_string())),
        (
            "rows",
            Json::Arr(rows.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.pretty() + "\n").expect("write baseline json");
    println!("wrote {out_path}");
    for r in &rows {
        println!("{:<44} {:>12.1} ns", r.name, r.median_ns);
    }
}
