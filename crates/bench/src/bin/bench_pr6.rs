//! `bench_pr6` — emits the PR-6 containment baseline as JSON, and acts as
//! the CI bench-regression gate for runaway-work containment.
//!
//! Measures what PR 6 added around every evaluation path:
//!
//! * **`fuel_overhead_pct`** — the cost of metering fuel at all: median
//!   wall-clock of `(fib 15)` on an interpreter with a *finite* fuel
//!   budget vs one left unlimited. The exhaustion check is a single
//!   integer compare against a counter the evaluator charges anyway, so
//!   the two configurations execute identical work; the PR's acceptance
//!   bar (and the hard gate here) is **≤ 2%**.
//! * **`hung_recovery_ms`** — wall-clock for a real-threads command whose
//!   worker seat is deliberately hung (scripted [`FaultPlan`], watchdog
//!   deadline 50 ms) to come back *successfully*: watchdog write-off,
//!   seat respawn, and the hook's sequential re-run of the section on the
//!   master. Hard-capped at 5 s (containment must be prompt, not just
//!   eventual) and gated upward against the committed baseline.
//! * **`containment/fuel_abort_ns`** (informational) — latency of a
//!   deliberate runaway aborting under a 10k-step budget: how fast a
//!   poisoned command hands the session back.
//!
//! ```text
//! cargo run --release -p culi-bench --bin bench_pr6 [out.json]
//! cargo run --release -p culi-bench --bin bench_pr6 [out.json] --gate BENCH_pr6.json [band]
//! ```
//!
//! With `--gate`, fresh metrics are compared against the committed
//! baseline: `fuel_overhead_pct` must stay ≤ 2 (absolute — the metric is
//! already a relative quantity), `hung_recovery_ms` must stay ≤
//! `max(baseline × band, 500 ms)` (the absolute allowance floor absorbs
//! scheduler jitter on noisy CI runners; band default 1.6, env
//! `CULI_BENCH_GATE_BAND`). Any regression exits non-zero so CI fails.

use culi_bench::jsonout::{Json, JsonValue, ToJson};
use culi_core::cost::FUEL_UNLIMITED;
use culi_core::fault::{FaultKind, FaultPlan, FaultSite};
use culi_core::{Interp, InterpConfig};
use culi_runtime::{CpuMode, CpuRepl, CpuReplConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

struct BenchRow {
    name: String,
    median_ns: f64,
    samples: usize,
}

impl ToJson for BenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("median_ns", Json::Num(self.median_ns)),
            ("samples", Json::UInt(self.samples as u64)),
        ])
    }
}

/// Runs `f` repeatedly, returning the median ns per call over `samples`
/// batches sized to take roughly a millisecond each.
fn measure<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        if t.elapsed().as_micros() >= 1000 || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

const FIB: &str = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

/// Median ns for one `(fib 15)` evaluation under the given fuel budget.
/// GC runs between evaluations on both configurations alike, so the
/// ratio isolates the fuel machinery.
fn fib15_median_ns(fuel_budget: u64, samples: usize) -> f64 {
    let mut i = Interp::new(InterpConfig {
        arena_capacity: 1 << 17,
        fuel_budget,
        ..Default::default()
    });
    i.eval_str(FIB).unwrap();
    assert_eq!(i.eval_str("(fib 15)").unwrap(), "610");
    measure(samples, || {
        let out = i.eval_str("(fib 15)").unwrap();
        culi_core::gc::collect(&mut i, &[]);
        out
    })
}

/// Wall-clock ms for the submit during which the scripted hang fires and
/// the session recovers (watchdog write-off at the 50 ms deadline, seat
/// respawn, hook-level sequential re-run). The reply must still be the
/// correct successful one — recovery, not an error path.
fn hung_recovery_ms() -> f64 {
    let deadline = Duration::from_millis(50);
    let plan = FaultPlan::single(FaultSite::WorkerSection, FaultKind::Hang, 2);
    let mut repl = CpuRepl::launch(
        culi_gpu_sim::device::intel_e5_2620(),
        CpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 17,
                ..Default::default()
            },
            mode: CpuMode::Threaded { threads: 2 },
            reply_deadline: deadline,
            fault_plan: plan.clone(),
            ..Default::default()
        },
    );
    assert!(repl.submit(FIB).unwrap().ok);
    let mut recovery = None;
    // The hang is scripted at a fixed accept-event index; loop a few
    // sections so the measurement is robust to where sync messages land.
    for _ in 0..8 {
        let fired_before = plan.injected_count() >= 1;
        let t = Instant::now();
        let reply = repl.submit("(||| 2 fib (10 11))").unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(reply.ok, "degraded submit must succeed: {}", reply.output);
        assert_eq!(reply.output, "(55 89)");
        if !fired_before && plan.injected_count() >= 1 {
            recovery = Some(ms);
        }
    }
    let ms = recovery.expect("the scripted hang never fired");
    assert_eq!(plan.injected_count(), 1, "exactly one scripted injection");
    assert!(
        ms < 5000.0,
        "hung-worker recovery must be prompt, took {ms:.0} ms"
    );
    ms
}

/// Fresh metrics the gate compares; returned alongside the JSON rows.
struct Metrics {
    fuel_overhead_pct: f64,
    hung_recovery_ms: f64,
}

fn run_benchmarks(rows: &mut Vec<BenchRow>, samples: usize) -> Metrics {
    // --- Fuel-check overhead on fib 15 ---------------------------------
    // Interleave the two configurations so frequency drift hits both.
    let mut unlimited = f64::INFINITY;
    let mut fueled = f64::INFINITY;
    for _ in 0..3 {
        unlimited = unlimited.min(fib15_median_ns(FUEL_UNLIMITED, samples));
        fueled = fueled.min(fib15_median_ns(1_000_000, samples));
    }
    let fuel_overhead_pct = (fueled / unlimited - 1.0) * 100.0;
    rows.push(BenchRow {
        name: "fuel/fib15_unlimited".into(),
        median_ns: unlimited,
        samples,
    });
    rows.push(BenchRow {
        name: "fuel/fib15_budget_1m".into(),
        median_ns: fueled,
        samples,
    });

    // --- Runaway abort latency (informational) -------------------------
    let abort_ns = {
        let mut i = Interp::new(InterpConfig {
            arena_capacity: 1 << 17,
            fuel_budget: 10_000,
            ..Default::default()
        });
        measure(samples, || {
            let out = i.eval_str("(dotimes (k 1000000000) (+ k k))");
            assert!(out.is_err(), "the runaway must abort");
            culi_core::gc::collect(&mut i, &[]);
        })
    };
    rows.push(BenchRow {
        name: "containment/fuel_abort_ns".into(),
        median_ns: abort_ns,
        samples,
    });

    // --- Hung-worker recovery latency ----------------------------------
    let hung_recovery_ms = hung_recovery_ms();
    rows.push(BenchRow {
        name: "containment/hung_recovery".into(),
        median_ns: hung_recovery_ms * 1e6,
        samples: 1,
    });

    Metrics {
        fuel_overhead_pct,
        hung_recovery_ms,
    }
}

fn run_gate(baseline_path: &str, baseline: &JsonValue, band: f64, metrics: &Metrics) {
    println!("bench gate vs {baseline_path} (band {band:.2}):");
    let mut failed = false;

    // Fuel overhead: absolute bar, not baseline-relative — the metric is
    // already a ratio, and the acceptance criterion is the 2% ceiling.
    if metrics.fuel_overhead_pct <= 2.0 {
        println!(
            "  ok   fuel_overhead_pct: fresh {:.2}% (required <= 2.00%)",
            metrics.fuel_overhead_pct
        );
    } else {
        println!(
            "  FAIL fuel_overhead_pct: fresh {:.2}% exceeds the 2% ceiling",
            metrics.fuel_overhead_pct
        );
        failed = true;
    }

    // Recovery latency: upward band with an absolute allowance floor so
    // a noisy runner's scheduler jitter cannot fail a ~100 ms quantity.
    match baseline.get("hung_recovery_ms").and_then(JsonValue::as_f64) {
        Some(base) => {
            let allowed = (base * band).max(500.0);
            if metrics.hung_recovery_ms <= allowed {
                println!(
                    "  ok   hung_recovery_ms: fresh {:.0} vs baseline {base:.0} \
                     (allowed <= {allowed:.0})",
                    metrics.hung_recovery_ms
                );
            } else {
                println!(
                    "  FAIL hung_recovery_ms: fresh {:.0} grew past {allowed:.0} \
                     (baseline {base:.0}, band {band:.2})",
                    metrics.hung_recovery_ms
                );
                failed = true;
            }
        }
        None => {
            println!("  FAIL baseline is missing hung_recovery_ms");
            failed = true;
        }
    }

    if failed {
        eprintln!("bench-regression gate FAILED");
        std::process::exit(1);
    }
    println!("bench-regression gate passed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr6.json".to_string());
    let gate_baseline = args.iter().position(|a| a == "--gate").map(|i| {
        args.get(i + 1)
            .expect("--gate needs a baseline path")
            .clone()
    });
    let band = std::env::var("CULI_BENCH_GATE_BAND")
        .ok()
        .and_then(|s| s.parse().ok())
        .or_else(|| {
            gate_baseline.as_ref().and_then(|_| {
                args.iter()
                    .position(|a| a == "--gate")
                    .and_then(|i| args.get(i + 2))
                    .and_then(|s| s.parse().ok())
            })
        })
        .unwrap_or(1.6);

    // Load the baseline up front: `[out.json]` defaults to the committed
    // baseline's own name, so reading after the write below could
    // silently compare fresh-vs-fresh.
    let baseline = gate_baseline.as_ref().map(|path| {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        JsonValue::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
    });

    let samples = 9;
    let mut rows = Vec::new();
    let metrics = run_benchmarks(&mut rows, samples);

    let doc = Json::Obj(vec![
        ("baseline", Json::Str("pr6".to_string())),
        ("unit", Json::Str("nanoseconds (median)".to_string())),
        (
            "containment_workload",
            Json::Str(
                "(fib 15) under finite vs unlimited fuel; scripted 50ms-deadline worker hang \
                 on a 2-thread pool, intel_e5_2620"
                    .to_string(),
            ),
        ),
        ("fuel_overhead_pct", Json::Num(metrics.fuel_overhead_pct)),
        ("hung_recovery_ms", Json::Num(metrics.hung_recovery_ms)),
        (
            "rows",
            Json::Arr(rows.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.pretty() + "\n").expect("write baseline json");
    println!("wrote {out_path}");
    for r in &rows {
        println!("{:<56} {:>14.1} ns", r.name, r.median_ns);
    }
    println!(
        "fuel-check overhead on fib 15: {:.2}%",
        metrics.fuel_overhead_pct
    );
    println!(
        "hung-worker recovery latency: {:.0} ms",
        metrics.hung_recovery_ms
    );
    assert!(
        metrics.fuel_overhead_pct <= 2.0,
        "fuel metering must be invisible (<=2% on fib 15), measured {:.2}%",
        metrics.fuel_overhead_pct
    );

    if let (Some(baseline_path), Some(baseline)) = (gate_baseline, baseline) {
        run_gate(&baseline_path, &baseline, band, &metrics);
    }
}
