//! `figures` — regenerate every table/figure of the paper's evaluation.
//!
//! ```text
//! figures [all|projection|fig14|fig15|fig16a|fig16b|fig16c|fig16d|fig17|fig18|ablation|atomics]
//!         [--json]
//! ```
//!
//! Without arguments, prints every figure as a text table. `--json` emits
//! machine-readable output instead.

use culi_bench::figures;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = which.is_empty() || which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    if want("fig14") {
        let rows = figures::fig14();
        if json {
            println!("{}", culi_bench::jsonout::pretty_rows(&rows));
        } else {
            println!("{}", figures::render_fig14(&rows));
        }
    }

    let need_sweep = ["fig15", "fig16a", "fig16b", "fig16c", "fig16d"]
        .iter()
        .any(|f| want(f));
    if need_sweep {
        eprintln!("running the fib(5) sweep on all 8 devices …");
        let points = figures::sweep();
        if json {
            println!("{}", culi_bench::jsonout::pretty_rows(&points));
        } else {
            for (fig, metric) in [
                ("fig15", "runtime"),
                ("fig16a", "execution"),
                ("fig16b", "parse"),
                ("fig16c", "eval"),
                ("fig16d", "print"),
            ] {
                if want(fig) {
                    println!("{}", figures::render_sweep(&points, metric));
                }
            }
        }
    }

    if want("fig17") {
        let points = figures::fig17();
        if json {
            println!("{}", culi_bench::jsonout::pretty_rows(&points));
        } else {
            println!(
                "{}",
                figures::render_proportions(
                    &points,
                    "Fig. 17 — Proportional kernel runtime (GPUs: M40/GTX1080 vs Fermi C2075)"
                )
            );
        }
    }

    if want("fig18") {
        let points = figures::fig18();
        if json {
            println!("{}", culi_bench::jsonout::pretty_rows(&points));
        } else {
            println!(
                "{}",
                figures::render_proportions(
                    &points,
                    "Fig. 18 — Proportional runtime on the AMD 6272 (64 threads)"
                )
            );
        }
    }

    if want("ablation") || want("ablations") {
        let rows = figures::ablations();
        if json {
            println!("{}", culi_bench::jsonout::pretty_rows(&rows));
        } else {
            println!("{}", figures::render_ablations(&rows));
        }
    }

    if want("atomics") {
        let rows = figures::atomics_overhead();
        if json {
            println!("{}", culi_bench::jsonout::pretty_rows(&rows));
        } else {
            println!("{}", figures::render_atomics(&rows));
        }
    }

    if want("projection") {
        let rows = figures::projection();
        if json {
            println!("{}", culi_bench::jsonout::pretty_rows(&rows));
        } else {
            println!("{}", figures::render_projection(&rows));
        }
    }
}
