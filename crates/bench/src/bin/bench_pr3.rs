//! `bench_pr3` — emits the PR-3 performance baseline as JSON.
//!
//! Measures the pipelined multi-section dispatch this PR added: warm
//! multi-command `|||` throughput through `CpuRepl::submit_batch`
//! (runs of consecutive sections coalesce into one postbox rendezvous
//! per seat per run, double-buffered) against PR 2's per-command
//! rendezvous (`submit` loop) on the same pool — the headline
//! `pipelined_speedup_vs_rendezvous` must be ≥ 2× on ≥ 4 workers
//! (asserted below, overhead-dominated workload). Also measures the
//! snapshot-resync machinery: incremental `SyncPacket` replay vs
//! `EnvSnapshot` rebuild at several divergence volumes, reporting the
//! measured crossover that justifies the pool's count-based decision
//! rule, plus the cost of a dirty-section snapshot recovery. Records the
//! whole-interpreter clone count over a warm mixed batch (dirty seats
//! included) — the PR's zero-clone acceptance number.
//!
//! ```text
//! cargo run --release -p culi-bench --bin bench_pr3 [out.json]
//! ```

use culi_bench::jsonout::{Json, ToJson};
use culi_core::postbox::{EnvSnapshot, SyncPacket};
use culi_core::{Interp, InterpConfig};
use culi_runtime::{CpuMode, CpuRepl, CpuReplConfig};
use std::hint::black_box;
use std::time::Instant;

struct BenchRow {
    name: String,
    median_ns: f64,
    samples: usize,
}

impl ToJson for BenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("median_ns", Json::Num(self.median_ns)),
            ("samples", Json::UInt(self.samples as u64)),
        ])
    }
}

/// Runs `f` repeatedly, returning the median ns per call over `samples`
/// batches sized to take roughly a millisecond each.
fn measure<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        if t.elapsed().as_micros() >= 1000 || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

const FIB: &str = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";
const BATCH_LEN: usize = 32;

fn threaded(threads: usize) -> CpuRepl {
    let mut repl = CpuRepl::launch(
        culi_gpu_sim::device::intel_e5_2620(),
        CpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 16,
                ..Default::default()
            },
            mode: CpuMode::Threaded { threads },
            ..Default::default()
        },
    );
    repl.submit(FIB).unwrap();
    repl
}

/// Median per-command ns of a warm `submit` loop vs a warm
/// `submit_batch` over `BATCH_LEN` copies of `section`.
fn throughput_pair(threads: usize, section: &str, samples: usize) -> (f64, f64) {
    let mut loop_repl = threaded(threads);
    for _ in 0..4 {
        loop_repl.submit(section).unwrap().expect_ok();
    }
    let rendezvous = measure(samples, || loop_repl.submit(section).unwrap());

    let mut batch_repl = threaded(threads);
    let batch: Vec<&str> = vec![section; BATCH_LEN];
    batch_repl.submit_batch(&batch).unwrap();
    let batched = measure(samples, || batch_repl.submit_batch(&batch).unwrap()) / BATCH_LEN as f64;
    (rendezvous, batched)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());
    let samples = 9;
    let mut rows = Vec::new();

    // Headline: overhead-dominated sections (tiny jobs) — exactly the
    // regime the rendezvous latency dominates and the pipeline amortizes.
    let section_small = "(||| 8 + (1 2 3 4 5 6 7 8) (1 2 3 4 5 6 7 8))";
    let (rendezvous, batched) = throughput_pair(8, section_small, samples);
    rows.push(BenchRow {
        name: "pipeline/rendezvous_per_command_8w_tiny_jobs".into(),
        median_ns: rendezvous,
        samples,
    });
    rows.push(BenchRow {
        name: "pipeline/batched_per_command_8w_tiny_jobs".into(),
        median_ns: batched,
        samples,
    });
    let speedup = rendezvous / batched;

    // Compute-carrying sections for context (the win shrinks as job work
    // grows toward the sequential floor — expected on shared cores).
    let section_fib = "(||| 8 fib (4 4 4 4 4 4 4 4))";
    let (r_fib, b_fib) = throughput_pair(8, section_fib, samples);
    rows.push(BenchRow {
        name: "pipeline/rendezvous_per_command_8w_fib4_jobs".into(),
        median_ns: r_fib,
        samples,
    });
    rows.push(BenchRow {
        name: "pipeline/batched_per_command_8w_fib4_jobs".into(),
        median_ns: b_fib,
        samples,
    });

    // Dirty-section recovery: every section mutates worker-global state,
    // so every dispatch pays a snapshot resync — and still never clones.
    let dirty_cost = {
        let mut repl = threaded(4);
        repl.submit("(setq total 100)").unwrap();
        repl.submit("(defun bump (x) (progn (setq total (+ total x)) total))")
            .unwrap();
        repl.submit("(||| 4 bump (1 2 3 4))").unwrap();
        measure(samples, || repl.submit("(||| 4 bump (1 2 3 4))").unwrap())
    };
    rows.push(BenchRow {
        name: "pipeline/dirty_section_snapshot_recovery_4w".into(),
        median_ns: dirty_cost,
        samples,
    });

    // Zero-clone acceptance over a warm mixed batch, dirty seats included.
    let warm_clones = {
        let mut repl = threaded(8);
        repl.submit("(setq total 100)").unwrap();
        repl.submit("(defun bump (x) (progn (setq total (+ total x)) total))")
            .unwrap();
        repl.submit("(||| 8 fib (4 4 4 4 4 4 4 4))").unwrap(); // warm
        let before = repl.interp_mut().clone_count();
        let mixed: Vec<&str> = [
            "(||| 8 fib (4 4 4 4 4 4 4 4))",
            "(||| 8 bump (1 2 3 4 5 6 7 8))",
        ]
        .into_iter()
        .cycle()
        .take(64)
        .collect();
        for reply in repl.submit_batch(&mixed).unwrap() {
            assert!(reply.ok, "{}", reply.output);
        }
        repl.interp_mut().clone_count() - before
    };

    // Snapshot-resync vs incremental replay: encode+apply cost at
    // several divergence volumes. The per-record costs are near-equal, so
    // the crossover sits where the record counts cross — the measured
    // basis for the pool's count-based decision rule.
    let mut crossover_records = 0u64;
    for n in [64usize, 256, 1024, 4096] {
        let mut master = Interp::new(InterpConfig {
            arena_capacity: 1 << 18,
            ..Default::default()
        });
        let epoch0 = master.envs.sync_epoch();
        let replica = master.clone();
        for i in 0..n {
            master
                .eval_str(&format!("(setq s{} {})", i % 24, i))
                .unwrap();
        }
        let mut packet = SyncPacket::default();
        let mut snapshot = EnvSnapshot::default();
        // Fresh replicas are cloned *outside* the timed region: only
        // encode + apply are the costs the dispatcher's decision rule
        // weighs.
        let timed = |f: &mut dyn FnMut(&mut Interp)| -> f64 {
            let iters = 24;
            let mut times: Vec<f64> = (0..iters)
                .map(|_| {
                    let mut r = replica.clone();
                    let t = Instant::now();
                    f(&mut r);
                    t.elapsed().as_nanos() as f64
                })
                .collect();
            times.sort_by(|a, b| a.total_cmp(b));
            times[iters / 2]
        };
        let replay_ns = timed(&mut |r| {
            packet.encode_since(&master, epoch0);
            packet.apply(r).unwrap();
        });
        let snapshot_ns = timed(&mut |r| {
            snapshot.encode(&master);
            snapshot.apply(r).unwrap();
        });
        rows.push(BenchRow {
            name: format!("sync/incremental_replay_{n}_records"),
            median_ns: replay_ns,
            samples,
        });
        rows.push(BenchRow {
            name: format!("sync/snapshot_resync_vs_{n}_records"),
            median_ns: snapshot_ns,
            samples,
        });
        if crossover_records == 0 && replay_ns > snapshot_ns {
            crossover_records = n as u64;
        }
    }

    let doc = Json::Obj(vec![
        ("baseline", Json::Str("pr3".to_string())),
        ("unit", Json::Str("nanoseconds (median)".to_string())),
        (
            "batch_workload",
            Json::Str(format!(
                "{BATCH_LEN} warm ||| commands per batch, 8 workers"
            )),
        ),
        ("pipelined_speedup_vs_rendezvous", Json::Num(speedup)),
        ("pipelined_speedup_fib4_jobs", Json::Num(r_fib / b_fib)),
        (
            "warm_interp_clones_over_64_mixed_batched_commands",
            Json::UInt(warm_clones),
        ),
        (
            "snapshot_vs_replay_crossover_records",
            Json::UInt(crossover_records),
        ),
        (
            "rows",
            Json::Arr(rows.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.pretty() + "\n").expect("write baseline json");
    println!("wrote {out_path}");
    for r in &rows {
        println!("{:<52} {:>12.1} ns", r.name, r.median_ns);
    }
    println!("pipelined speedup vs rendezvous (tiny jobs): {speedup:.2}x");
    println!(
        "pipelined speedup vs rendezvous (fib4 jobs): {:.2}x",
        r_fib / b_fib
    );
    println!("warm interp clones over mixed batches: {warm_clones}");
    println!("snapshot/replay crossover: ~{crossover_records} records");
    assert_eq!(
        warm_clones, 0,
        "warm pipelined batches (dirty seats included) must not clone"
    );
    assert!(
        speedup >= 2.0,
        "pipelined batching must be >=2x over the per-command rendezvous (got {speedup:.2}x)"
    );
}
