//! `bench_pr8` — emits the PR-8 structural-hash command-cache baseline
//! as JSON, and acts as the CI bench-regression gate for the cache.
//!
//! Production command traffic is heavily repetitive: the same preludes,
//! query shapes and sections arrive over and over across tenants. The
//! bench drives a **Zipf(0.99)-skewed stream** over a universe of
//! distinct pure commands through two identically configured
//! [`culi_runtime::CpuRepl`] batch sessions — one with the
//! [`culi_runtime::CommandCache`] enabled, one without — and asserts the
//! replies are **byte-identical** (output, ok, code and full paper-model
//! counters) before reporting a single timing number.
//!
//! * **`zipf_speedup`** — per-command wall time, uncached ÷ cached, on
//!   the skewed stream. Hard floor **≥ 5×** (the PR's acceptance bar:
//!   repeated traffic must shed at least that much per-command overhead),
//!   plus a downward baseline-relative regression band.
//! * **`reply_hit_rate`** — reply-tier hits ÷ probes on the skewed
//!   stream; gated against the baseline with an absolute 0.50 floor so
//!   the speedup can never be bought by quietly disabling the cache.
//! * **`miss_overhead`** — per-command wall time, cached ÷ uncached, on
//!   an **all-distinct** stream (every probe misses). This is the pure
//!   cost of hashing and probing; gated upward against
//!   `max(baseline × band, 1.5)` so cold traffic never pays a large tax.
//!
//! ```text
//! cargo run --release -p culi-bench --bin bench_pr8 [out.json]
//! cargo run --release -p culi-bench --bin bench_pr8 [out.json] --gate BENCH_pr8.json [band]
//! ```

use culi_bench::jsonout::{Json, JsonValue, ToJson};
use culi_runtime::{CacheConfig, CommandCache, CpuMode, CpuRepl, CpuReplConfig, Reply};
use std::time::Instant;

struct BenchRow {
    name: String,
    median_ns: f64,
    samples: usize,
}

impl ToJson for BenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("median_ns", Json::Num(self.median_ns)),
            ("samples", Json::UInt(self.samples as u64)),
        ])
    }
}

fn fast_mode() -> bool {
    std::env::var("CULI_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// splitmix64 — deterministic stream synthesis.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

const PRELUDE: &[&str] = &[
    "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
    "(defun plus (a b) (+ a b))",
    "(defun addg (x) (+ x g))",
    "(defun fibj (x) (fib (+ 8 (mod x 4))))",
    "(setq g 1)",
    "(setq xs (list 3 4 5 6 7 8))",
];

/// The command universe: `n` distinct pure commands (sections over the
/// prelude functions plus scalar reads), each with real execution cost
/// so a served reply actually saves work. Rank 0 is the hottest shape
/// under the Zipf skew.
fn universe(n: usize) -> Vec<String> {
    (0..n)
        .map(|k| match k % 4 {
            0 => format!(
                "(||| 4 fibj ({} {} {} {}))",
                k % 8,
                (k + 3) % 8,
                (k + 5) % 8,
                (k + 6) % 8
            ),
            1 => format!("(||| 3 fibj ({k} {} {}))", k + 1, k + 2),
            2 => format!("(||| 2 fibj ({k} {}))", k + 7),
            _ => format!("(+ {k} (* {} g))", k % 13),
        })
        .collect()
}

/// A Zipf(s)-skewed index stream over `n` ranks: rank `k` is drawn with
/// probability proportional to `1 / (k+1)^s`.
fn zipf_stream(n: usize, s: f64, len: usize, rng: &mut Rng) -> Vec<usize> {
    let weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }
    (0..len)
        .map(|_| {
            let r = rng.f64() * acc;
            cdf.partition_point(|&c| c < r).min(n - 1)
        })
        .collect()
}

fn repl(cache: Option<CommandCache>) -> CpuRepl {
    CpuRepl::launch(
        culi_gpu_sim::device::intel_e5_2620(),
        CpuReplConfig {
            interp: culi_core::InterpConfig {
                arena_capacity: 1 << 17,
                ..Default::default()
            },
            mode: CpuMode::Threaded { threads: 4 },
            cache,
            ..Default::default()
        },
    )
}

/// Runs one arm: prelude via `submit` (untimed), then the stream through
/// `submit_batch` in serving-sized chunks (timed). Returns total ns and
/// every reply in submission order.
fn run_arm(cache: Option<CommandCache>, stream: &[&str]) -> (f64, Vec<Reply>) {
    let mut repl = repl(cache);
    for line in PRELUDE {
        assert!(repl.submit(line).expect("prelude").ok);
    }
    let mut replies = Vec::with_capacity(stream.len());
    let t0 = Instant::now();
    for chunk in stream.chunks(64) {
        replies.extend(repl.submit_batch(chunk).expect("batch"));
    }
    let total_ns = t0.elapsed().as_nanos() as f64;
    (total_ns, replies)
}

/// Byte-identity: everything the paper model observes must match; only
/// wall-clock and modeled phase timings may differ on served replies.
fn assert_identical(uncached: &[Reply], cached: &[Reply], arm: &str) {
    assert_eq!(uncached.len(), cached.len());
    for (k, (want, got)) in uncached.iter().zip(cached).enumerate() {
        assert_eq!(want.output, got.output, "{arm} cmd {k}");
        assert_eq!(want.ok, got.ok, "{arm} cmd {k}");
        assert_eq!(want.code, got.code, "{arm} cmd {k}");
        assert_eq!(want.counters, got.counters, "{arm} cmd {k} charges");
    }
}

/// Fresh metrics the gate compares; returned alongside the JSON rows.
struct Metrics {
    zipf_speedup: f64,
    reply_hit_rate: f64,
    miss_overhead: f64,
}

fn run_benchmarks(rows: &mut Vec<BenchRow>, samples: usize) -> Metrics {
    let (stream_len, universe_n) = if fast_mode() {
        (1024, 128)
    } else {
        (4096, 256)
    };
    let commands = universe(universe_n);
    let mut rng = Rng(0x5eed_c0de);
    let ranks = zipf_stream(universe_n, 0.99, stream_len, &mut rng);
    let zipf: Vec<&str> = ranks.iter().map(|&k| commands[k].as_str()).collect();

    // --- Skewed repeated traffic: cached vs uncached -------------------
    // Best-of-N per arm so one scheduler hiccup cannot fail CI. Byte
    // identity is asserted on every sample, not just the best one.
    let mut uncached_best = f64::INFINITY;
    let mut cached_best = f64::INFINITY;
    let mut hit_rate = 0.0;
    for _ in 0..samples {
        let (uncached_ns, uncached_replies) = run_arm(None, &zipf);
        let cache = CommandCache::new(CacheConfig::default());
        let (cached_ns, cached_replies) = run_arm(Some(cache.clone()), &zipf);
        assert_identical(&uncached_replies, &cached_replies, "zipf");
        assert!(uncached_replies.iter().all(|r| r.ok));
        uncached_best = uncached_best.min(uncached_ns);
        cached_best = cached_best.min(cached_ns);
        let stats = cache.stats();
        hit_rate = stats.reply.hits as f64 / (stats.reply.hits + stats.reply.misses) as f64;
        // The acceptance criterion "cache memory stays bounded": the
        // budget discipline must hold at the end of every sample.
        let config = CacheConfig::default();
        assert!(
            cache.retained_bytes() <= config.shared_byte_budget + config.reply_byte_budget,
            "cache retained {} bytes over budget",
            cache.retained_bytes()
        );
    }
    let zipf_speedup = uncached_best / cached_best;
    let per_cmd = stream_len as f64;
    rows.push(BenchRow {
        name: "zipf/uncached_ns_per_cmd".into(),
        median_ns: uncached_best / per_cmd,
        samples,
    });
    rows.push(BenchRow {
        name: "zipf/cached_ns_per_cmd".into(),
        median_ns: cached_best / per_cmd,
        samples,
    });

    // --- All-distinct traffic: the probe tax on pure misses ------------
    let distinct: Vec<String> = (0..stream_len)
        .map(|k| format!("(||| 2 plus ({k} {}) ({} 4))", k + 1, k % 9))
        .collect();
    let distinct_refs: Vec<&str> = distinct.iter().map(String::as_str).collect();
    let mut miss_uncached = f64::INFINITY;
    let mut miss_cached = f64::INFINITY;
    for _ in 0..samples {
        let (a_ns, a) = run_arm(None, &distinct_refs);
        let (b_ns, b) = run_arm(
            Some(CommandCache::new(CacheConfig::default())),
            &distinct_refs,
        );
        assert_identical(&a, &b, "distinct");
        miss_uncached = miss_uncached.min(a_ns);
        miss_cached = miss_cached.min(b_ns);
    }
    let miss_overhead = miss_cached / miss_uncached;
    rows.push(BenchRow {
        name: "distinct/uncached_ns_per_cmd".into(),
        median_ns: miss_uncached / per_cmd,
        samples,
    });
    rows.push(BenchRow {
        name: "distinct/cached_ns_per_cmd".into(),
        median_ns: miss_cached / per_cmd,
        samples,
    });

    Metrics {
        zipf_speedup,
        reply_hit_rate: hit_rate,
        miss_overhead,
    }
}

fn run_gate(baseline_path: &str, baseline: &JsonValue, band: f64, metrics: &Metrics) {
    println!("bench gate vs {baseline_path} (band {band:.2}):");
    let mut failed = false;

    // Speedup: the 5x acceptance floor is absolute; the downward
    // baseline-relative band catches cache regressions well above it.
    match baseline.get("zipf_speedup").and_then(JsonValue::as_f64) {
        Some(base) => {
            let required = (base / band).max(5.0);
            if metrics.zipf_speedup >= required {
                println!(
                    "  ok   zipf_speedup: fresh {:.2}x vs baseline {base:.2}x \
                     (required >= {required:.2}x)",
                    metrics.zipf_speedup
                );
            } else {
                println!(
                    "  FAIL zipf_speedup: fresh {:.2}x fell below {required:.2}x \
                     (baseline {base:.2}x, band {band:.2}, floor 5.00x)",
                    metrics.zipf_speedup
                );
                failed = true;
            }
        }
        None => {
            println!("  FAIL baseline is missing zipf_speedup");
            failed = true;
        }
    }

    // Hit rate: a ratio in [0, 1] — the band divides, the 0.50 absolute
    // floor keeps the speedup honest (it cannot come from a disabled
    // cache plus a lucky timing run).
    match baseline.get("reply_hit_rate").and_then(JsonValue::as_f64) {
        Some(base) => {
            let required = (base / band).max(0.50);
            if metrics.reply_hit_rate >= required {
                println!(
                    "  ok   reply_hit_rate: fresh {:.3} vs baseline {base:.3} \
                     (required >= {required:.3})",
                    metrics.reply_hit_rate
                );
            } else {
                println!(
                    "  FAIL reply_hit_rate: fresh {:.3} fell below {required:.3} \
                     (baseline {base:.3}, band {band:.2}, floor 0.500)",
                    metrics.reply_hit_rate
                );
                failed = true;
            }
        }
        None => {
            println!("  FAIL baseline is missing reply_hit_rate");
            failed = true;
        }
    }

    // Miss overhead: upward band with an absolute allowance — pure-miss
    // traffic pays hashing + probing; the gate catches that tax growing
    // past half again the uncached cost.
    match baseline.get("miss_overhead").and_then(JsonValue::as_f64) {
        Some(base) => {
            let allowed = (base * band).max(1.5);
            if metrics.miss_overhead <= allowed {
                println!(
                    "  ok   miss_overhead: fresh {:.3} vs baseline {base:.3} \
                     (allowed <= {allowed:.3})",
                    metrics.miss_overhead
                );
            } else {
                println!(
                    "  FAIL miss_overhead: fresh {:.3} grew past {allowed:.3} \
                     (baseline {base:.3}, band {band:.2})",
                    metrics.miss_overhead
                );
                failed = true;
            }
        }
        None => {
            println!("  FAIL baseline is missing miss_overhead");
            failed = true;
        }
    }

    if failed {
        eprintln!("bench-regression gate FAILED");
        std::process::exit(1);
    }
    println!("bench-regression gate passed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr8.json".to_string());
    let gate_baseline = args.iter().position(|a| a == "--gate").map(|i| {
        args.get(i + 1)
            .expect("--gate needs a baseline path")
            .clone()
    });
    let band = std::env::var("CULI_BENCH_GATE_BAND")
        .ok()
        .and_then(|s| s.parse().ok())
        .or_else(|| {
            gate_baseline.as_ref().and_then(|_| {
                args.iter()
                    .position(|a| a == "--gate")
                    .and_then(|i| args.get(i + 2))
                    .and_then(|s| s.parse().ok())
            })
        })
        .unwrap_or(1.6);

    // Load the baseline up front: `[out.json]` defaults to the committed
    // baseline's own name, so reading after the write below could
    // silently compare fresh-vs-fresh.
    let baseline = gate_baseline.as_ref().map(|path| {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        JsonValue::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
    });

    let samples = 3;
    let mut rows = Vec::new();
    let metrics = run_benchmarks(&mut rows, samples);

    let doc = Json::Obj(vec![
        ("baseline", Json::Str("pr8".to_string())),
        ("unit", Json::Str("nanoseconds (median)".to_string())),
        (
            "cache_workload",
            Json::Str(
                "Zipf(0.99) stream over a universe of distinct pure commands (fibj/plus/addg \
                 sections, scalar reads) through CpuRepl submit_batch in 64-command chunks, \
                 threaded x4, intel_e5_2620; cached arm = CommandCache with default budgets"
                    .to_string(),
            ),
        ),
        ("zipf_speedup", Json::Num(metrics.zipf_speedup)),
        ("reply_hit_rate", Json::Num(metrics.reply_hit_rate)),
        ("miss_overhead", Json::Num(metrics.miss_overhead)),
        (
            "rows",
            Json::Arr(rows.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.pretty() + "\n").expect("write baseline json");
    println!("wrote {out_path}");
    for r in &rows {
        println!("{:<56} {:>14.1} ns", r.name, r.median_ns);
    }
    println!(
        "repeated-traffic speedup (Zipf 0.99): {:.2}x",
        metrics.zipf_speedup
    );
    println!("reply-tier hit rate: {:.3}", metrics.reply_hit_rate);
    println!("pure-miss overhead: {:.3}", metrics.miss_overhead);
    assert!(
        metrics.zipf_speedup >= 5.0,
        "the cache must shed >= 5x per-command cost on Zipf(0.99) traffic, measured {:.2}x",
        metrics.zipf_speedup
    );

    if let (Some(baseline_path), Some(baseline)) = (gate_baseline, baseline) {
        run_gate(&baseline_path, &baseline, band, &metrics);
    }
}
