//! `bench_pr5` — emits the PR-5 performance baseline as JSON, and acts as
//! the CI bench-regression gate.
//!
//! Measures the unified batch scheduler and the multi-device GPU sharding
//! this PR added:
//!
//! * **`multi_device_speedup`** — modeled makespan of a device-bound
//!   64-command stageable batch on one simulated device vs **four**
//!   (each run's upload, master compute and reply handshake land on its
//!   round-robined device's clock; the makespan is the max over the
//!   per-device clock deltas). Must be ≥ 2× (asserted), and the
//!   per-command [`Reply::counters`] must stay **bit-identical** across
//!   device counts (asserted — sharding may only move modeled time
//!   between clocks). Deterministic: the quantity is modeled, not
//!   wall-clock.
//! * **`sched_overhead_ns`** — the `BatchScheduler` state machine's own
//!   cost per command, measured over a no-op [`ExecQueue`] (classify,
//!   run assembly, pipeline accounting, reply re-sequencing — everything
//!   except real backend work). Gated *upward*: regressions make it
//!   bigger.
//! * **`env/define_10k_per_define_ns`** (informational) — amortized cost
//!   of one top-level define in a 10k-define burst, exercising PR 5's
//!   epoch-stamped lazy hit-charge recompute (the old eager reshift made
//!   this O(N) per define).
//!
//! ```text
//! cargo run --release -p culi-bench --bin bench_pr5 [out.json]
//! cargo run --release -p culi-bench --bin bench_pr5 [out.json] --gate BENCH_pr5.json [band]
//! ```
//!
//! With `--gate`, fresh metrics are compared against the committed
//! baseline under a tolerance `band` (default 1.6, env
//! `CULI_BENCH_GATE_BAND`): `multi_device_speedup` must stay ≥
//! `baseline / band` (on top of the hard 2× floor), `sched_overhead_ns`
//! must stay ≤ `baseline × band`. Any regression exits non-zero so CI
//! fails.

use culi_bench::jsonout::{Json, JsonValue, ToJson};
use culi_core::{Interp, InterpConfig};
use culi_runtime::scheduler::{BatchScheduler, ExecQueue, Verdict};
use culi_runtime::{GpuRepl, GpuReplConfig, Reply};
use std::hint::black_box;
use std::time::Instant;

struct BenchRow {
    name: String,
    median_ns: f64,
    samples: usize,
}

impl ToJson for BenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("median_ns", Json::Num(self.median_ns)),
            ("samples", Json::UInt(self.samples as u64)),
        ])
    }
}

/// Runs `f` repeatedly, returning the median ns per call over `samples`
/// batches sized to take roughly a millisecond each.
fn measure<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        if t.elapsed().as_micros() >= 1000 || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

const FIB: &str = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";
/// Device-bound stageable section: 16 warps' worth of fib jobs dominate
/// the run's modeled time.
const SECTION: &str = "(||| 16 fib (7 7 7 7 7 7 7 7 7 7 7 7 7 7 7 7))";
/// Four full runs of MAX_RUN_COMMANDS: one per device at four shards.
const BATCH_LEN: usize = 4 * GpuRepl::MAX_RUN_COMMANDS;

/// Modeled makespan (ns) of the device-bound batch at `devices` shards,
/// plus the replies for the bit-identical-counters assertion.
fn sharded_makespan(devices: usize) -> (f64, Vec<Reply>) {
    let mut repl = GpuRepl::launch(
        culi_gpu_sim::device::gtx1080(),
        GpuReplConfig {
            device_count: devices,
            ..Default::default()
        },
    );
    repl.submit(FIB).unwrap();
    let inputs: Vec<&str> = vec![SECTION; BATCH_LEN];
    let before = repl.device_elapsed_ns();
    let replies = repl.submit_batch(&inputs).unwrap();
    let after = repl.device_elapsed_ns();
    let makespan = after
        .iter()
        .zip(&before)
        .map(|(a, b)| a - b)
        .fold(0.0, f64::max);
    assert!(replies.iter().all(|r| r.ok));
    (makespan, replies)
}

/// A queue whose operations are pure bookkeeping: measures the scheduler
/// state machine itself.
struct NullQueue;

impl<'i> ExecQueue<'i> for NullQueue {
    type Staged = (usize, &'i str);
    type Barrier = &'i str;
    type Run = Vec<(usize, &'i str)>;

    fn max_run_len(&self) -> usize {
        16
    }

    fn pipeline_depth(&self) -> usize {
        2
    }

    fn classify_and_stage(
        &mut self,
        input: &'i str,
        slot: usize,
    ) -> culi_runtime::Result<Verdict<Self::Staged, Self::Barrier>> {
        Ok(if input.as_bytes()[0] == b'b' {
            Verdict::Barrier(input)
        } else {
            Verdict::Stage((slot, input))
        })
    }

    fn dispatch(&mut self, run: Vec<Self::Staged>) -> culi_runtime::Result<Self::Run> {
        Ok(run)
    }

    fn collect(
        &mut self,
        run: Self::Run,
        replies: &mut [Option<Reply>],
    ) -> culi_runtime::Result<()> {
        for (slot, _) in run {
            replies[slot] = Some(empty_reply());
        }
        Ok(())
    }

    fn run_sequential(
        &mut self,
        _input: &'i str,
        _slot: usize,
        _replies: &mut [Option<Reply>],
    ) -> culi_runtime::Result<()> {
        // Only reached for slots surfaced by `take_failed`; the default
        // impl reports none, so the null queue never degrades.
        unreachable!("NullQueue never degrades")
    }

    fn run_barrier(
        &mut self,
        _barrier: &'i str,
        slot: usize,
        replies: &mut [Option<Reply>],
    ) -> culi_runtime::Result<()> {
        replies[slot] = Some(empty_reply());
        Ok(())
    }
}

fn empty_reply() -> Reply {
    Reply {
        ok: true,
        ..Default::default()
    }
}

/// Fresh metrics the gate compares; returned alongside the JSON rows.
struct Metrics {
    multi_device_speedup: f64,
    sched_overhead_ns: f64,
}

fn run_benchmarks(rows: &mut Vec<BenchRow>, samples: usize) -> Metrics {
    // --- Multi-device sharding (modeled, deterministic) ----------------
    let (t1, replies1) = sharded_makespan(1);
    let (t4, replies4) = sharded_makespan(4);
    for (k, (a, b)) in replies1.iter().zip(&replies4).enumerate() {
        assert_eq!(a.output, b.output, "cmd {k}: output diverged across shards");
        assert_eq!(
            a.counters, b.counters,
            "cmd {k}: per-command counters must be bit-identical across device counts"
        );
    }
    rows.push(BenchRow {
        name: format!("gpu/modeled_makespan_1dev_{BATCH_LEN}cmds"),
        median_ns: t1 / BATCH_LEN as f64,
        samples: 1,
    });
    rows.push(BenchRow {
        name: format!("gpu/modeled_makespan_4dev_{BATCH_LEN}cmds"),
        median_ns: t4 / BATCH_LEN as f64,
        samples: 1,
    });
    let multi_device_speedup = t1 / t4;

    // --- Scheduler state-machine overhead per command ------------------
    // 7 stageable commands per barrier: run assembly, pipeline
    // accounting and the drain path all on the hot loop.
    let sources: Vec<String> = (0..256)
        .map(|k| {
            if k % 8 == 7 {
                format!("b{k}")
            } else {
                format!("s{k}")
            }
        })
        .collect();
    let inputs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let sched_overhead_ns = measure(samples, || {
        BatchScheduler::submit_batch(&mut NullQueue, &inputs).unwrap()
    }) / inputs.len() as f64;
    rows.push(BenchRow {
        name: "scheduler/overhead_per_command".into(),
        median_ns: sched_overhead_ns,
        samples,
    });

    // --- Bulk defines under the lazy hit-charge cache (informational) --
    let define_ns = {
        let t = Instant::now();
        let mut i = Interp::new(InterpConfig {
            arena_capacity: 1 << 19,
            ..Default::default()
        });
        const N: usize = 10_000;
        for k in 0..N {
            i.eval_str(&format!("(setq bulk-sym-{k} {k})")).unwrap();
            if k % 1024 == 0 {
                culi_core::gc::collect(&mut i, &[]);
            }
        }
        assert_eq!(i.eval_str("bulk-sym-9999").unwrap(), "9999");
        t.elapsed().as_nanos() as f64 / N as f64
    };
    rows.push(BenchRow {
        name: "env/define_10k_per_define_ns".into(),
        median_ns: define_ns,
        samples: 1,
    });

    Metrics {
        multi_device_speedup,
        sched_overhead_ns,
    }
}

/// One gated metric. `higher_is_better` picks the comparison direction:
/// speedups must not fall below `baseline / band` (or `floor`), costs
/// must not rise above `baseline × band`.
fn gate_metric(
    baseline: &JsonValue,
    key: &str,
    fresh: f64,
    floor: f64,
    band: f64,
    higher_is_better: bool,
) -> Result<String, String> {
    let base = baseline
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("baseline is missing {key}"))?;
    if higher_is_better {
        let required = (base / band).max(floor);
        if fresh >= required {
            Ok(format!(
                "  ok   {key}: fresh {fresh:.2} vs baseline {base:.2} (required >= {required:.2})"
            ))
        } else {
            Err(format!(
                "  FAIL {key}: fresh {fresh:.2} regressed below {required:.2} \
                 (baseline {base:.2}, band {band:.2}, floor {floor:.2})"
            ))
        }
    } else {
        let allowed = base * band;
        if fresh <= allowed {
            Ok(format!(
                "  ok   {key}: fresh {fresh:.1} vs baseline {base:.1} (allowed <= {allowed:.1})"
            ))
        } else {
            Err(format!(
                "  FAIL {key}: fresh {fresh:.1} grew past {allowed:.1} \
                 (baseline {base:.1}, band {band:.2})"
            ))
        }
    }
}

fn run_gate(baseline_path: &str, baseline: &JsonValue, band: f64, metrics: &Metrics) {
    println!("bench gate vs {baseline_path} (band {band:.2}):");
    let checks = [
        gate_metric(
            baseline,
            "multi_device_speedup",
            metrics.multi_device_speedup,
            2.0,
            band,
            true,
        ),
        gate_metric(
            baseline,
            "sched_overhead_ns",
            metrics.sched_overhead_ns,
            0.0,
            band,
            false,
        ),
    ];
    let mut failed = false;
    for check in checks {
        match check {
            Ok(line) => println!("{line}"),
            Err(line) => {
                println!("{line}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("bench-regression gate FAILED");
        std::process::exit(1);
    }
    println!("bench-regression gate passed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr5.json".to_string());
    let gate_baseline = args.iter().position(|a| a == "--gate").map(|i| {
        args.get(i + 1)
            .expect("--gate needs a baseline path")
            .clone()
    });
    let band = std::env::var("CULI_BENCH_GATE_BAND")
        .ok()
        .and_then(|s| s.parse().ok())
        .or_else(|| {
            gate_baseline.as_ref().and_then(|_| {
                args.iter()
                    .position(|a| a == "--gate")
                    .and_then(|i| args.get(i + 2))
                    .and_then(|s| s.parse().ok())
            })
        })
        .unwrap_or(1.6);

    // Load the baseline up front: `[out.json]` defaults to the committed
    // baseline's own name, so reading after the write below could
    // silently compare fresh-vs-fresh.
    let baseline = gate_baseline.as_ref().map(|path| {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        JsonValue::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
    });

    let samples = 9;
    let mut rows = Vec::new();
    let metrics = run_benchmarks(&mut rows, samples);

    let doc = Json::Obj(vec![
        ("baseline", Json::Str("pr5".to_string())),
        ("unit", Json::Str("nanoseconds (median)".to_string())),
        (
            "batch_workload",
            Json::Str(format!(
                "{BATCH_LEN} device-bound stageable ||| commands (16 fib-7 jobs each), gtx1080"
            )),
        ),
        (
            "multi_device_speedup",
            Json::Num(metrics.multi_device_speedup),
        ),
        ("sched_overhead_ns", Json::Num(metrics.sched_overhead_ns)),
        (
            "rows",
            Json::Arr(rows.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.pretty() + "\n").expect("write baseline json");
    println!("wrote {out_path}");
    for r in &rows {
        println!("{:<56} {:>12.1} ns", r.name, r.median_ns);
    }
    println!(
        "multi-device modeled speedup (4 devices vs 1): {:.2}x",
        metrics.multi_device_speedup
    );
    println!(
        "scheduler overhead per command: {:.1} ns",
        metrics.sched_overhead_ns
    );
    assert!(
        metrics.multi_device_speedup >= 2.0,
        "4 sharded devices must give >=2x modeled throughput on device-bound batches \
         (got {:.2}x)",
        metrics.multi_device_speedup
    );

    if let (Some(baseline_path), Some(baseline)) = (gate_baseline, baseline) {
        run_gate(&baseline_path, &baseline, band, &metrics);
    }
}
