//! `bench_pr4` — emits the PR-4 performance baseline as JSON, and acts as
//! the CI bench-regression gate.
//!
//! Measures the effect-analysis batch classification this PR added:
//! command streams of `|||` sections with **computed operands** (`(list
//! c …)` constructors, computed worker counts) — all barriers under PR 3's
//! syntactic inert-operand rule, so they paid one full postbox rendezvous
//! per command — now coalesce into pipelined multi-section runs. The
//! headline `effects_speedup_vs_syntactic` compares `submit_batch` under
//! [`BatchClassifier::EffectAnalysis`] against the identical stream under
//! the retained [`BatchClassifier::SyntacticInert`] baseline and must be
//! ≥ 2× (asserted, with zero warm interpreter clones). Also records the
//! classifier's own cost per verdict and the simulated-GPU command-buffer
//! batching win (deterministic modeled transfer nanoseconds, same
//! effect-analysis rule).
//!
//! ```text
//! cargo run --release -p culi-bench --bin bench_pr4 [out.json]
//! cargo run --release -p culi-bench --bin bench_pr4 [out.json] --gate BENCH_pr4.json [band]
//! ```
//!
//! With `--gate`, key fresh metrics are compared against the committed
//! baseline: ratio metrics must stay within `band` (default 1.6, env
//! `CULI_BENCH_GATE_BAND`) of the baseline — i.e. `fresh ≥ baseline /
//! band` — on top of the hard acceptance floors. Any regression exits
//! non-zero so CI fails.

use culi_bench::jsonout::{Json, JsonValue, ToJson};
use culi_core::{effects, InterpConfig};
use culi_runtime::{BatchClassifier, CpuMode, CpuRepl, CpuReplConfig, GpuRepl, GpuReplConfig};
use std::hint::black_box;
use std::time::Instant;

struct BenchRow {
    name: String,
    median_ns: f64,
    samples: usize,
}

impl ToJson for BenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("median_ns", Json::Num(self.median_ns)),
            ("samples", Json::UInt(self.samples as u64)),
        ])
    }
}

/// Runs `f` repeatedly, returning the median ns per call over `samples`
/// batches sized to take roughly a millisecond each.
fn measure<O>(samples: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        if t.elapsed().as_micros() >= 1000 || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

const BATCH_LEN: usize = 32;
const PRELUDE: &[&str] = &["(setq c 3)", "(defun sq (x) (* x x))"];

fn threaded(threads: usize, classifier: BatchClassifier) -> CpuRepl {
    let mut repl = CpuRepl::launch(
        culi_gpu_sim::device::intel_e5_2620(),
        CpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 16,
                ..Default::default()
            },
            mode: CpuMode::Threaded { threads },
            batch_classifier: classifier,
            ..Default::default()
        },
    );
    for line in PRELUDE {
        repl.submit(line).unwrap();
    }
    repl
}

/// Median per-command ns of a warm `submit_batch` over `BATCH_LEN` copies
/// of `section` under each classifier. The syntactic baseline barriers
/// every computed-operand command (degenerating to the synchronous
/// rendezvous path); the effect analysis pipelines them.
fn classifier_pair(threads: usize, section: &str, samples: usize) -> (f64, f64) {
    let batch: Vec<&str> = vec![section; BATCH_LEN];
    let mut syntactic = threaded(threads, BatchClassifier::SyntacticInert);
    syntactic.submit_batch(&batch).unwrap();
    let barriered = measure(samples, || syntactic.submit_batch(&batch).unwrap()) / BATCH_LEN as f64;

    let mut analyzed = threaded(threads, BatchClassifier::EffectAnalysis);
    analyzed.submit_batch(&batch).unwrap();
    let pipelined = measure(samples, || analyzed.submit_batch(&batch).unwrap()) / BATCH_LEN as f64;
    (barriered, pipelined)
}

/// Fresh metrics the gate compares; returned alongside the JSON doc.
struct Metrics {
    effects_speedup: f64,
    count_speedup: f64,
    gpu_transfer_saved: f64,
    warm_clones: u64,
}

fn run_benchmarks(rows: &mut Vec<BenchRow>, samples: usize) -> Metrics {
    // Headline: a `(list …)` operand reading a global — the canonical
    // previously-barriered shape.
    let section_list = "(||| 8 + (1 2 3 4 5 6 7 8) (list c c c c c c c c))";
    let (barriered, pipelined) = classifier_pair(8, section_list, samples);
    rows.push(BenchRow {
        name: "effects/syntactic_barrier_per_command_8w_list_operand".into(),
        median_ns: barriered,
        samples,
    });
    rows.push(BenchRow {
        name: "effects/pipelined_per_command_8w_list_operand".into(),
        median_ns: pipelined,
        samples,
    });
    let effects_speedup = barriered / pipelined;

    // Computed worker count, the other previously-barriered shape.
    let section_count = "(||| (+ 4 4) sq (1 2 3 4 5 6 7 8))";
    let (b_count, p_count) = classifier_pair(8, section_count, samples);
    rows.push(BenchRow {
        name: "effects/syntactic_barrier_per_command_computed_count".into(),
        median_ns: b_count,
        samples,
    });
    rows.push(BenchRow {
        name: "effects/pipelined_per_command_computed_count".into(),
        median_ns: p_count,
        samples,
    });
    let count_speedup = b_count / p_count;

    // The classifier's own cost per verdict (charge-free bookkeeping on
    // the staging path — must stay trivially small next to a rendezvous).
    let classify_ns = {
        let mut interp = culi_core::Interp::default();
        for line in PRELUDE {
            interp.eval_str(line).unwrap();
        }
        let forms = culi_core::parser::parse(&mut interp, section_list.as_bytes()).unwrap();
        let global = interp.global;
        measure(samples, || {
            effects::stageable_parallel_section(&interp, global, forms[0])
        })
    };
    rows.push(BenchRow {
        name: "effects/classify_section_verdict".into(),
        median_ns: classify_ns,
        samples,
    });

    // Zero-clone acceptance over warm computed-operand batches.
    let warm_clones = {
        let mut repl = threaded(8, BatchClassifier::EffectAnalysis);
        let batch: Vec<&str> = [section_list, section_count]
            .into_iter()
            .cycle()
            .take(BATCH_LEN)
            .collect();
        repl.submit_batch(&batch).unwrap(); // warm
        let before = repl.interp_mut().clone_count();
        for reply in repl.submit_batch(&batch).unwrap() {
            assert!(reply.ok, "{}", reply.output);
        }
        repl.interp_mut().clone_count() - before
    };

    // Simulated GPU: the same effect-analysis rule batches command
    // buffers — one upload + one reply handshake per run. The modeled
    // transfer cost is deterministic (byte counts and flag visibility),
    // so the saving is a noise-free gate metric.
    let gpu_section = "(||| 2 + (1 2) (list c c))";
    let gpu_inputs: Vec<&str> = std::iter::once("(setq c 3)")
        .chain(std::iter::repeat_n(gpu_section, BATCH_LEN))
        .collect();
    let gpu_transfer = |batched: bool| -> (u64, f64) {
        let mut repl = GpuRepl::launch(culi_gpu_sim::device::gtx1080(), GpuReplConfig::default());
        let replies = if batched {
            repl.submit_batch(&gpu_inputs).unwrap()
        } else {
            gpu_inputs.iter().map(|s| repl.submit(s).unwrap()).collect()
        };
        assert!(replies.iter().all(|r| r.ok));
        let transfer: u64 = replies.iter().map(|r| r.phases.transfer_ns).sum();
        (transfer, repl.elapsed_device_ns())
    };
    let (loop_transfer, loop_device_ns) = gpu_transfer(false);
    let (batch_transfer, batch_device_ns) = gpu_transfer(true);
    rows.push(BenchRow {
        name: "gpu/rendezvous_transfer_ns_per_command".into(),
        median_ns: loop_transfer as f64 / gpu_inputs.len() as f64,
        samples: 1,
    });
    rows.push(BenchRow {
        name: "gpu/batched_transfer_ns_per_command".into(),
        median_ns: batch_transfer as f64 / gpu_inputs.len() as f64,
        samples: 1,
    });
    let gpu_transfer_saved = loop_transfer as f64 / batch_transfer as f64;
    assert!(
        batch_device_ns < loop_device_ns,
        "batched GPU runs must also amortize the dispatch overhead"
    );

    Metrics {
        effects_speedup,
        count_speedup,
        gpu_transfer_saved,
        warm_clones,
    }
}

/// One gated ratio metric: fresh must stay within `band` of baseline and
/// above its hard floor.
fn gate_metric(
    baseline: &JsonValue,
    key: &str,
    fresh: f64,
    floor: f64,
    band: f64,
) -> Result<String, String> {
    let base = baseline
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("baseline is missing {key}"))?;
    let required = (base / band).max(floor);
    if fresh >= required {
        Ok(format!(
            "  ok   {key}: fresh {fresh:.2} vs baseline {base:.2} (required >= {required:.2})"
        ))
    } else {
        Err(format!(
            "  FAIL {key}: fresh {fresh:.2} regressed below {required:.2} \
             (baseline {base:.2}, band {band:.2}, floor {floor:.2})"
        ))
    }
}

fn run_gate(baseline_path: &str, baseline: &JsonValue, band: f64, metrics: &Metrics) {
    println!("bench gate vs {baseline_path} (band {band:.2}):");
    let checks = [
        gate_metric(
            baseline,
            "effects_speedup_vs_syntactic",
            metrics.effects_speedup,
            2.0,
            band,
        ),
        gate_metric(
            baseline,
            "computed_count_speedup_vs_syntactic",
            metrics.count_speedup,
            2.0,
            band,
        ),
        gate_metric(
            baseline,
            "gpu_transfer_saved_ratio",
            metrics.gpu_transfer_saved,
            1.05,
            band,
        ),
    ];
    let mut failed = false;
    for check in checks {
        match check {
            Ok(line) => println!("{line}"),
            Err(line) => {
                println!("{line}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("bench-regression gate FAILED");
        std::process::exit(1);
    }
    println!("bench-regression gate passed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr4.json".to_string());
    let gate_baseline = args.iter().position(|a| a == "--gate").map(|i| {
        args.get(i + 1)
            .expect("--gate needs a baseline path")
            .clone()
    });
    let band = std::env::var("CULI_BENCH_GATE_BAND")
        .ok()
        .and_then(|s| s.parse().ok())
        .or_else(|| {
            gate_baseline.as_ref().and_then(|_| {
                args.iter()
                    .position(|a| a == "--gate")
                    .and_then(|i| args.get(i + 2))
                    .and_then(|s| s.parse().ok())
            })
        })
        .unwrap_or(1.6);

    // Load the baseline up front: `[out.json]` is optional and defaults
    // to the committed baseline's own name, so reading after the write
    // below could silently compare fresh-vs-fresh.
    let baseline = gate_baseline.as_ref().map(|path| {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        JsonValue::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
    });

    let samples = 9;
    let mut rows = Vec::new();
    let metrics = run_benchmarks(&mut rows, samples);

    let doc = Json::Obj(vec![
        ("baseline", Json::Str("pr4".to_string())),
        ("unit", Json::Str("nanoseconds (median)".to_string())),
        (
            "batch_workload",
            Json::Str(format!(
                "{BATCH_LEN} warm computed-operand ||| commands per batch, 8 workers"
            )),
        ),
        (
            "effects_speedup_vs_syntactic",
            Json::Num(metrics.effects_speedup),
        ),
        (
            "computed_count_speedup_vs_syntactic",
            Json::Num(metrics.count_speedup),
        ),
        (
            "gpu_transfer_saved_ratio",
            Json::Num(metrics.gpu_transfer_saved),
        ),
        (
            "warm_interp_clones_over_computed_operand_batches",
            Json::UInt(metrics.warm_clones),
        ),
        (
            "rows",
            Json::Arr(rows.iter().map(ToJson::to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.pretty() + "\n").expect("write baseline json");
    println!("wrote {out_path}");
    for r in &rows {
        println!("{:<56} {:>12.1} ns", r.name, r.median_ns);
    }
    println!(
        "effects-classifier speedup vs syntactic (list operand): {:.2}x",
        metrics.effects_speedup
    );
    println!(
        "effects-classifier speedup vs syntactic (computed count): {:.2}x",
        metrics.count_speedup
    );
    println!(
        "gpu batched-command-buffer transfer saving: {:.2}x",
        metrics.gpu_transfer_saved
    );
    println!(
        "warm interp clones over computed-operand batches: {}",
        metrics.warm_clones
    );
    assert_eq!(
        metrics.warm_clones, 0,
        "warm computed-operand batches must not clone the interpreter"
    );
    assert!(
        metrics.effects_speedup >= 2.0,
        "previously-barriered batches must pipeline >=2x over the syntactic-classifier path \
         (got {:.2}x)",
        metrics.effects_speedup
    );
    assert!(
        metrics.count_speedup >= 2.0,
        "computed-worker-count batches must pipeline >=2x over the syntactic-classifier path \
         (got {:.2}x)",
        metrics.count_speedup
    );

    if let (Some(baseline_path), Some(baseline)) = (gate_baseline, baseline) {
        run_gate(&baseline_path, &baseline, band, &metrics);
    }
}
