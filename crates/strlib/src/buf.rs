//! Fixed-capacity output buffer.
//!
//! The device builds its output string in a buffer of fixed size — the
//! command buffer shared with the host has a compile-time length in CuLi.
//! [`StrBuf`] reproduces that: appends fail with [`BufFull`] instead of
//! growing, and the runtime surfaces that as an output-overflow error, the
//! same way the original would truncate or fault.

use core::fmt;

/// Error returned when an append would exceed the buffer's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufFull {
    /// Bytes that would have been required beyond the capacity.
    pub overflow: usize,
}

impl fmt::Display for BufFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output buffer full ({} byte(s) over capacity)",
            self.overflow
        )
    }
}

impl std::error::Error for BufFull {}

/// A fixed-capacity byte buffer with append-only semantics.
#[derive(Debug, Clone)]
pub struct StrBuf {
    data: Vec<u8>,
    cap: usize,
}

impl StrBuf {
    /// Creates an empty buffer with the given capacity in bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap.min(4096)),
            cap,
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when no bytes have been appended.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Remaining free bytes.
    pub fn remaining(&self) -> usize {
        self.cap - self.data.len()
    }

    /// The bytes appended so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the buffer, returning its contents.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    /// Clears the contents, keeping the capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends a single byte.
    pub fn push(&mut self, b: u8) -> Result<(), BufFull> {
        if self.data.len() + 1 > self.cap {
            return Err(BufFull { overflow: 1 });
        }
        self.data.push(b);
        Ok(())
    }

    /// Appends a byte slice; either the whole slice fits or nothing is
    /// written.
    pub fn push_bytes(&mut self, s: &[u8]) -> Result<(), BufFull> {
        let need = self.data.len() + s.len();
        if need > self.cap {
            return Err(BufFull {
                overflow: need - self.cap,
            });
        }
        self.data.extend_from_slice(s);
        Ok(())
    }

    /// Appends the decimal representation of an `i64`.
    pub fn push_i64(&mut self, v: i64) -> Result<(), BufFull> {
        let mut tmp = [0u8; crate::fmt_num::MAX_I64_LEN];
        let n = crate::fmt_num::format_i64(v, &mut tmp);
        self.push_bytes(&tmp[..n])
    }

    /// Appends the decimal representation of an `f64`.
    pub fn push_f64(&mut self, v: f64) -> Result<(), BufFull> {
        let mut tmp = [0u8; crate::fmt_num::MAX_F64_LEN];
        let n = crate::fmt_num::format_f64(v, &mut tmp);
        self.push_bytes(&tmp[..n])
    }

    /// Lossy view of the contents as UTF-8 (diagnostics only).
    pub fn to_string_lossy(&self) -> String {
        String::from_utf8_lossy(&self.data).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_until_full() {
        let mut b = StrBuf::with_capacity(3);
        assert!(b.push(b'a').is_ok());
        assert!(b.push(b'b').is_ok());
        assert!(b.push(b'c').is_ok());
        assert_eq!(b.push(b'd'), Err(BufFull { overflow: 1 }));
        assert_eq!(b.as_bytes(), b"abc");
    }

    #[test]
    fn push_bytes_all_or_nothing() {
        let mut b = StrBuf::with_capacity(4);
        b.push_bytes(b"ab").unwrap();
        assert_eq!(b.push_bytes(b"cde"), Err(BufFull { overflow: 1 }));
        assert_eq!(b.as_bytes(), b"ab", "partial write must not happen");
        b.push_bytes(b"cd").unwrap();
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn numeric_appends() {
        let mut b = StrBuf::with_capacity(64);
        b.push_i64(-42).unwrap();
        b.push(b' ').unwrap();
        b.push_f64(1.5).unwrap();
        assert_eq!(b.as_bytes(), b"-42 1.5");
    }

    #[test]
    fn clear_retains_capacity() {
        let mut b = StrBuf::with_capacity(2);
        b.push(b'x').unwrap();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 2);
        b.push_bytes(b"yz").unwrap();
        assert_eq!(b.as_bytes(), b"yz");
    }

    #[test]
    fn display_of_buf_full() {
        let e = BufFull { overflow: 3 };
        assert!(e.to_string().contains("3 byte"));
    }
}
