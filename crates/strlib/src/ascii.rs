//! Character classification used by the CuLi tokenizer.
//!
//! The paper's parser walks the input *"until it sees a whitespace character,
//! or an opening or closing parenthesis"* — those are the **markers** — and
//! then classifies the substring between markers: quoted ⇒ string, `nil`/`T`
//! ⇒ nil/true, starting with a digit or one of `+-.E` ⇒ number (float if it
//! contains a dot), otherwise symbol.

/// Returns `true` for the whitespace characters the CuLi parser treats as
/// token separators (space, tab, newline, carriage return).
#[inline]
pub fn is_space(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r')
}

/// Returns `true` for ASCII decimal digits.
#[inline]
pub fn is_digit(b: u8) -> bool {
    b.is_ascii_digit()
}

/// Returns `true` if `b` is one of the characters that may *start* a number
/// token in CuLi: a digit or one of `+ - . E` (paper §III-A b: *"If the
/// substring starts with a digit or a character indicating a number
/// (`+-.E`)"*).
#[inline]
pub fn is_number_start(b: u8) -> bool {
    is_digit(b) || matches!(b, b'+' | b'-' | b'.' | b'E')
}

/// Returns `true` for the parser's *marker* characters: whitespace and both
/// parentheses. Markers delimit tokens.
#[inline]
pub fn is_marker(b: u8) -> bool {
    is_space(b) || b == b'(' || b == b')'
}

/// Returns `true` if the byte opens a string literal.
#[inline]
pub fn is_quote(b: u8) -> bool {
    b == b'"'
}

/// Lower-cases a single ASCII byte (identity for non-letters).
#[inline]
pub fn to_lower(b: u8) -> u8 {
    b.to_ascii_lowercase()
}

/// Case-insensitive ASCII equality of two byte strings, used for the
/// `nil`/`T` literal checks so `NIL`, `Nil` and `nil` all parse to nil.
pub fn eq_ignore_case(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| to_lower(*x) == to_lower(*y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spaces_are_markers() {
        for b in [b' ', b'\t', b'\n', b'\r'] {
            assert!(is_space(b));
            assert!(is_marker(b));
        }
    }

    #[test]
    fn parens_are_markers_but_not_space() {
        assert!(is_marker(b'('));
        assert!(is_marker(b')'));
        assert!(!is_space(b'('));
        assert!(!is_space(b')'));
    }

    #[test]
    fn number_start_set_matches_paper() {
        for b in b"0123456789+-.E" {
            assert!(is_number_start(*b), "{} should start a number", *b as char);
        }
        for b in b"abcxyzZ_*/\"(" {
            assert!(
                !is_number_start(*b),
                "{} should not start a number",
                *b as char
            );
        }
    }

    #[test]
    fn letters_are_not_markers() {
        for b in b"abcXYZ09+-*/" {
            assert!(!is_marker(*b));
        }
    }

    #[test]
    fn case_insensitive_eq() {
        assert!(eq_ignore_case(b"NIL", b"nil"));
        assert!(eq_ignore_case(b"Nil", b"nIL"));
        assert!(!eq_ignore_case(b"nil", b"ni"));
        assert!(!eq_ignore_case(b"nil", b"nix"));
    }

    #[test]
    fn quote_detection() {
        assert!(is_quote(b'"'));
        assert!(!is_quote(b'\''));
    }
}
