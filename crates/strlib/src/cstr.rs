//! C-style string primitives.
//!
//! The original CuLi is ANSI C on a device without libc, so it carries its
//! own `strlen`/`strcmp`/`memcpy`. We reproduce them over byte slices. They
//! are deliberately written as explicit loops (not delegating to the
//! standard library) so the per-character work the cost model charges for is
//! visible and countable.

/// Length of a NUL-terminated string within `buf`, or `buf.len()` when no
/// NUL byte is present (a fixed device buffer has a hard end).
pub fn strlen(buf: &[u8]) -> usize {
    let mut n = 0;
    while n < buf.len() && buf[n] != 0 {
        n += 1;
    }
    n
}

/// Three-way comparison of two byte strings with C `strcmp` semantics:
/// negative when `a < b`, zero when equal, positive when `a > b`. Comparison
/// stops at the first NUL or at the end of the shorter slice.
pub fn strcmp(a: &[u8], b: &[u8]) -> i32 {
    let mut i = 0;
    loop {
        let ca = if i < a.len() { a[i] } else { 0 };
        let cb = if i < b.len() { b[i] } else { 0 };
        if ca != cb {
            return ca as i32 - cb as i32;
        }
        if ca == 0 {
            return 0;
        }
        i += 1;
        if i >= a.len() && i >= b.len() {
            return 0;
        }
    }
}

/// `strcmp` limited to at most `n` characters (`strncmp`).
pub fn strncmp(a: &[u8], b: &[u8], n: usize) -> i32 {
    let mut i = 0;
    while i < n {
        let ca = if i < a.len() { a[i] } else { 0 };
        let cb = if i < b.len() { b[i] } else { 0 };
        if ca != cb {
            return ca as i32 - cb as i32;
        }
        if ca == 0 {
            return 0;
        }
        i += 1;
    }
    0
}

/// Byte-wise copy of `src` into `dst`, returning the number of bytes copied
/// (the minimum of the two lengths). Mirrors a bounded `memcpy`.
pub fn memcpy(dst: &mut [u8], src: &[u8]) -> usize {
    let n = dst.len().min(src.len());
    dst[..n].copy_from_slice(&src[..n]);
    n
}

/// Equality of two byte strings (`strcmp(a, b) == 0` shortcut).
pub fn streq(a: &[u8], b: &[u8]) -> bool {
    strcmp(a, b) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strlen_stops_at_nul() {
        assert_eq!(strlen(b"hello\0world"), 5);
        assert_eq!(strlen(b"hello"), 5);
        assert_eq!(strlen(b""), 0);
        assert_eq!(strlen(b"\0"), 0);
    }

    #[test]
    fn strcmp_orders_like_c() {
        assert_eq!(strcmp(b"abc", b"abc"), 0);
        assert!(strcmp(b"abc", b"abd") < 0);
        assert!(strcmp(b"abd", b"abc") > 0);
        assert!(strcmp(b"ab", b"abc") < 0);
        assert!(strcmp(b"abc", b"ab") > 0);
    }

    #[test]
    fn strcmp_respects_embedded_nul() {
        assert_eq!(strcmp(b"ab\0xx", b"ab\0yy"), 0);
        assert_eq!(strcmp(b"ab\0", b"ab"), 0);
    }

    #[test]
    fn strncmp_bounded() {
        assert_eq!(strncmp(b"abcdef", b"abcxyz", 3), 0);
        assert!(strncmp(b"abcdef", b"abcxyz", 4) < 0);
        assert_eq!(strncmp(b"", b"", 10), 0);
    }

    #[test]
    fn memcpy_bounded_copy() {
        let mut dst = [0u8; 4];
        assert_eq!(memcpy(&mut dst, b"abcdef"), 4);
        assert_eq!(&dst, b"abcd");
        let mut small = [0u8; 8];
        assert_eq!(memcpy(&mut small, b"xy"), 2);
        assert_eq!(&small[..2], b"xy");
    }

    #[test]
    fn streq_basic() {
        assert!(streq(b"car", b"car"));
        assert!(!streq(b"car", b"cdr"));
    }
}
