//! Hand-rolled number formatting (the printer's `itoa`/`dtoa`).
//!
//! The device-side printer appends string representations of nodes to the
//! output buffer one byte at a time; these routines produce those bytes.
//! Float output uses a precision-escalation scheme: digits are generated at
//! increasing precision until re-parsing the text (with this crate's own
//! [`crate::parse_num::parse_f64`]) reproduces the original bits, so the
//! format→parse roundtrip inside CuLi is exact even though both sides are
//! hand-rolled.

use crate::parse_num::parse_f64;

/// Maximum bytes `format_i64` can emit (sign + 19 digits).
pub const MAX_I64_LEN: usize = 20;
/// Maximum bytes `format_f64` can emit (sign + 17 digits + dot + `e-308`).
pub const MAX_F64_LEN: usize = 32;

/// Writes the decimal representation of `v` into `out`, returning the number
/// of bytes written. `out` must be at least [`MAX_I64_LEN`] bytes.
pub fn format_i64(v: i64, out: &mut [u8]) -> usize {
    debug_assert!(out.len() >= MAX_I64_LEN);
    let mut tmp = [0u8; MAX_I64_LEN];
    let neg = v < 0;
    // Accumulate digits of |v| in reverse; do the negation digit-by-digit so
    // i64::MIN (whose absolute value overflows) is handled too.
    let mut n = v;
    let mut i = 0;
    loop {
        let digit = (n % 10).unsigned_abs() as u8;
        tmp[i] = b'0' + digit;
        i += 1;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    let mut w = 0;
    if neg {
        out[w] = b'-';
        w += 1;
    }
    while i > 0 {
        i -= 1;
        out[w] = tmp[i];
        w += 1;
    }
    w
}

/// Convenience: formats `v` into a fresh `Vec<u8>`.
pub fn i64_to_vec(v: i64) -> Vec<u8> {
    let mut buf = [0u8; MAX_I64_LEN];
    let n = format_i64(v, &mut buf);
    buf[..n].to_vec()
}

/// Writes a decimal representation of `v` into `out`, returning the number
/// of bytes written. `out` must be at least [`MAX_F64_LEN`] bytes.
///
/// Output forms: `nan`, `inf`, `-inf`, fixed notation for decimal exponents
/// in `[-4, 16)` (e.g. `1.5`, `-0.25`, `1000`), scientific otherwise
/// (e.g. `6.02214076e23`). Finite values always contain a `.` or an `e` so
/// the CuLi reader classifies them back to `N_FLOAT`, never `N_INT`.
pub fn format_f64(v: f64, out: &mut [u8]) -> usize {
    debug_assert!(out.len() >= MAX_F64_LEN);
    if v.is_nan() {
        return write_bytes(out, b"nan");
    }
    if v.is_infinite() {
        return write_bytes(out, if v < 0.0 { b"-inf" } else { b"inf" });
    }
    if v == 0.0 {
        return write_bytes(
            out,
            if v.is_sign_negative() {
                b"-0.0"
            } else {
                b"0.0"
            },
        );
    }
    // Escalate precision until the text re-parses to the exact same bits.
    for prec in 1..=17u32 {
        let n = format_with_precision(v, prec, out);
        if let Some(back) = parse_f64(&out[..n]) {
            if back.to_bits() == v.to_bits() {
                return n;
            }
        }
    }
    // 17 significant digits is the roundtrip bound for f64; if our parser's
    // last-ulp wobble still misses, emit the 17-digit form — it is within
    // one ulp of `v` and is the best a hand-rolled pipeline guarantees.
    format_with_precision(v, 17, out)
}

/// Convenience: formats `v` into a fresh `Vec<u8>`.
pub fn f64_to_vec(v: f64) -> Vec<u8> {
    let mut buf = [0u8; MAX_F64_LEN];
    let n = format_f64(v, &mut buf);
    buf[..n].to_vec()
}

/// Formats `v` with at most `prec` significant digits (correctly rounded,
/// trailing zeros trimmed), choosing fixed or scientific notation by
/// magnitude.
fn format_with_precision(v: f64, prec: u32, out: &mut [u8]) -> usize {
    let neg = v < 0.0;
    let (dig, nd, e10) = significant_digits(v.abs(), prec as usize);

    let mut w = 0;
    if neg {
        out[w] = b'-';
        w += 1;
    }
    if (-4..16).contains(&e10) {
        // Fixed notation.
        if e10 >= 0 {
            let int_len = (e10 as usize) + 1;
            for (i, slot) in out[w..w + int_len].iter_mut().enumerate() {
                *slot = if i < nd { dig[i] } else { b'0' };
            }
            w += int_len;
            out[w] = b'.';
            w += 1;
            if nd > int_len {
                for &d in &dig[int_len..nd] {
                    out[w] = d;
                    w += 1;
                }
            } else {
                out[w] = b'0';
                w += 1;
            }
        } else {
            // 0.00ddd
            out[w] = b'0';
            w += 1;
            out[w] = b'.';
            w += 1;
            for _ in 0..(-e10 - 1) {
                out[w] = b'0';
                w += 1;
            }
            for &d in &dig[..nd] {
                out[w] = d;
                w += 1;
            }
        }
    } else {
        // Scientific notation: d.ddd e±e10
        out[w] = dig[0];
        w += 1;
        if nd > 1 {
            out[w] = b'.';
            w += 1;
            for &d in &dig[1..nd] {
                out[w] = d;
                w += 1;
            }
        }
        out[w] = b'e';
        w += 1;
        let mut ebuf = [0u8; MAX_I64_LEN];
        let en = format_i64(e10 as i64, &mut ebuf);
        out[w..w + en].copy_from_slice(&ebuf[..en]);
        w += en;
    }
    w
}

/// Produces the first `prec` significant decimal digits of finite `a > 0`,
/// **exactly** (round-half-even against the full decimal expansion), as
/// ASCII bytes, together with the decimal exponent `e10` such that
/// `a ≈ d.ddd × 10^e10`.
///
/// Exactness comes from integer arithmetic on the IEEE-754 decomposition
/// `a = m · 2^e2`: for `e2 ≥ 0` the value is the integer `m << e2`; for
/// `e2 < 0` it equals `(m · 5^-e2) × 10^e2`, also an integer times a power
/// of ten. Either way the full decimal digit string is computed with
/// [`crate::bignum::BigUint`] and rounded — no float error anywhere.
fn significant_digits(a: f64, prec: usize) -> ([u8; 17], usize, i32) {
    use crate::bignum::BigUint;
    debug_assert!(a.is_finite() && a > 0.0 && (1..=17).contains(&prec));
    let bits = a.to_bits();
    let be = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & ((1u64 << 52) - 1);
    let (m, e2): (u64, i64) = if be == 0 {
        (frac, -1074)
    } else {
        (frac | (1 << 52), be - 1075)
    };

    let mut n = BigUint::from_u64(m);
    let e10_offset: i64 = if e2 >= 0 {
        n.shl(e2 as usize);
        0
    } else {
        n.mul_pow5((-e2) as u32); // value = n × 10^e2
        e2
    };
    let digits = n.to_decimal_digits();
    let mut e10 = (digits.len() as i64 - 1 + e10_offset) as i32;

    let mut out = [0u8; 17];
    let take = prec.min(digits.len());
    out[..take].copy_from_slice(&digits[..take]);
    let mut nd = take;
    if digits.len() > prec {
        let next = digits[prec];
        let rest_nonzero = digits[prec + 1..].iter().any(|&d| d != 0);
        let round_up = next > 5 || (next == 5 && (rest_nonzero || out[prec - 1] % 2 == 1));
        if round_up {
            let mut i = prec;
            loop {
                if i == 0 {
                    // 99…9 rounded up: becomes 10…0 with one higher exponent.
                    out[0] = 1;
                    out[1..prec].fill(0);
                    e10 += 1;
                    break;
                }
                i -= 1;
                if out[i] == 9 {
                    out[i] = 0;
                } else {
                    out[i] += 1;
                    break;
                }
            }
        }
        nd = prec;
    }
    while nd > 1 && out[nd - 1] == 0 {
        nd -= 1;
    }
    for d in &mut out[..nd] {
        *d += b'0';
    }
    (out, nd, e10)
}

fn write_bytes(out: &mut [u8], s: &[u8]) -> usize {
    out[..s.len()].copy_from_slice(s);
    s.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt_i(v: i64) -> String {
        String::from_utf8(i64_to_vec(v)).unwrap()
    }
    fn fmt_f(v: f64) -> String {
        String::from_utf8(f64_to_vec(v)).unwrap()
    }

    #[test]
    fn int_formatting() {
        assert_eq!(fmt_i(0), "0");
        assert_eq!(fmt_i(7), "7");
        assert_eq!(fmt_i(-7), "-7");
        assert_eq!(fmt_i(1234567890), "1234567890");
        assert_eq!(fmt_i(i64::MAX), "9223372036854775807");
        assert_eq!(fmt_i(i64::MIN), "-9223372036854775808");
    }

    #[test]
    fn float_simple_values_are_short() {
        assert_eq!(fmt_f(0.0), "0.0");
        assert_eq!(fmt_f(-0.0), "-0.0");
        assert_eq!(fmt_f(1.0), "1.0");
        assert_eq!(fmt_f(1.5), "1.5");
        assert_eq!(fmt_f(-2.25), "-2.25");
        assert_eq!(fmt_f(0.5), "0.5");
        assert_eq!(fmt_f(100.0), "100.0");
        assert_eq!(fmt_f(0.001), "0.001");
    }

    #[test]
    fn float_specials() {
        assert_eq!(fmt_f(f64::NAN), "nan");
        assert_eq!(fmt_f(f64::INFINITY), "inf");
        assert_eq!(fmt_f(f64::NEG_INFINITY), "-inf");
    }

    #[test]
    fn float_scientific_for_extremes() {
        let s = fmt_f(6.02214076e23);
        assert!(s.contains('e'), "{s}");
        let s = fmt_f(1e-10);
        assert!(s.contains('e'), "{s}");
    }

    #[test]
    fn float_output_always_retains_float_marker() {
        for v in [1.0, 42.0, 1e5, -3.0, 0.25, 1e20, 1e-7] {
            let s = fmt_f(v);
            assert!(
                s.contains('.') || s.contains('e'),
                "{v} formatted as {s} would re-parse as an int"
            );
        }
    }

    #[test]
    fn roundtrip_is_bit_exact_on_typical_values() {
        let cases = [
            1.0,
            -1.0,
            0.1,
            0.2,
            0.30000000000000004,
            1.5,
            core::f64::consts::PI,
            core::f64::consts::E,
            1e10,
            1e-10,
            123456.789,
            -0.000123,
            f64::MAX,
            f64::MIN_POSITIVE,
        ];
        for v in cases {
            let s = f64_to_vec(v);
            let back = parse_f64(&s).unwrap();
            let rel = ((back - v) / v).abs();
            assert!(
                back.to_bits() == v.to_bits() || rel < 1e-15,
                "{v:e} → {} → {back:e}",
                String::from_utf8_lossy(&s)
            );
        }
    }

    #[test]
    fn fixed_notation_with_integer_part_longer_than_digits() {
        // 1000 needs padding zeros after trimming to 1 significant digit.
        assert_eq!(fmt_f(1000.0), "1000.0");
        assert_eq!(fmt_f(1230.0), "1230.0");
    }
}
