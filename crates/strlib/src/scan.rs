//! Tokenizer support: walking the input string marker-to-marker.
//!
//! The CuLi parser (paper §III-B b) *"walks the string until it sees a
//! whitespace character, or an opening or closing parenthesis"*. The
//! substring between the previous marker and the current one becomes the
//! input for node classification. [`next_token`] implements exactly that
//! walk and additionally reports how many bytes were examined, which the
//! device cost model charges as per-character global-memory reads.

use crate::ascii;

/// The kind of lexical element produced by [`next_token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// `(` — opens a new list (and a new environment).
    LParen,
    /// `)` — closes the current list.
    RParen,
    /// A quoted string literal; the range excludes the quotation marks
    /// (paper: *"The quotation marks are not carried into the value"*).
    Str,
    /// Any unquoted atom: number, `nil`, `T` or symbol. Classification into
    /// those node types happens in the parser, not the tokenizer.
    Atom,
    /// `'` — reader shorthand for `(quote …)`. An extension over the
    /// paper's grammar; standard Lisp source is unreadable without it.
    Quote,
    /// `` ` `` — reader shorthand for `(quasiquote …)` (extension).
    Backquote,
    /// `,` — reader shorthand for `(unquote …)` (extension).
    Unquote,
    /// `,@` — reader shorthand for `(unquote-splicing …)` (extension).
    UnquoteSplice,
}

/// A token: its [`TokenKind`] plus the byte range of its text in the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of lexical element this is.
    pub kind: TokenKind,
    /// Start byte offset of the token text (for [`TokenKind::Str`], the
    /// first byte *after* the opening quote).
    pub start: usize,
    /// End byte offset (exclusive; for strings, the closing quote position).
    pub end: usize,
}

impl Token {
    /// The token's text within `input`.
    pub fn text<'a>(&self, input: &'a [u8]) -> &'a [u8] {
        &input[self.start..self.end]
    }
}

/// Outcome of a [`next_token`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scan {
    /// A token was found; `next` is the offset to resume scanning from.
    Tok {
        /// The token found.
        tok: Token,
        /// Resume offset for the next call.
        next: usize,
    },
    /// Only trailing whitespace remained.
    End,
    /// A string literal was opened but never closed before the input ended.
    UnterminatedString {
        /// Offset of the opening quote.
        at: usize,
    },
}

/// Scans the next token of `input` starting at byte offset `pos`.
///
/// Returns the token, the resume offset, and — via `chars_read` — the number
/// of bytes the scanner examined (whitespace included), which is the unit of
/// work the paper's parsing phase is dominated by.
pub fn next_token(input: &[u8], mut pos: usize, chars_read: &mut u64) -> Scan {
    // Skip leading whitespace.
    while pos < input.len() && ascii::is_space(input[pos]) {
        pos += 1;
        *chars_read += 1;
    }
    if pos >= input.len() {
        return Scan::End;
    }
    let b = input[pos];
    *chars_read += 1;
    match b {
        b'(' => Scan::Tok {
            tok: Token {
                kind: TokenKind::LParen,
                start: pos,
                end: pos + 1,
            },
            next: pos + 1,
        },
        b')' => Scan::Tok {
            tok: Token {
                kind: TokenKind::RParen,
                start: pos,
                end: pos + 1,
            },
            next: pos + 1,
        },
        b'\'' => Scan::Tok {
            tok: Token {
                kind: TokenKind::Quote,
                start: pos,
                end: pos + 1,
            },
            next: pos + 1,
        },
        b'`' => Scan::Tok {
            tok: Token {
                kind: TokenKind::Backquote,
                start: pos,
                end: pos + 1,
            },
            next: pos + 1,
        },
        b',' => {
            if input.get(pos + 1) == Some(&b'@') {
                *chars_read += 1;
                Scan::Tok {
                    tok: Token {
                        kind: TokenKind::UnquoteSplice,
                        start: pos,
                        end: pos + 2,
                    },
                    next: pos + 2,
                }
            } else {
                Scan::Tok {
                    tok: Token {
                        kind: TokenKind::Unquote,
                        start: pos,
                        end: pos + 1,
                    },
                    next: pos + 1,
                }
            }
        }
        b'"' => {
            // Scan to the closing quote. CuLi strings have no escape
            // sequences; the first closing quote terminates the literal.
            let start = pos + 1;
            let mut i = start;
            while i < input.len() && input[i] != b'"' {
                i += 1;
                *chars_read += 1;
            }
            if i >= input.len() {
                return Scan::UnterminatedString { at: pos };
            }
            *chars_read += 1; // the closing quote
            Scan::Tok {
                tok: Token {
                    kind: TokenKind::Str,
                    start,
                    end: i,
                },
                next: i + 1,
            }
        }
        _ => {
            // Plain atom: run to the next marker.
            let start = pos;
            let mut i = pos + 1;
            while i < input.len() && !ascii::is_marker(input[i]) {
                i += 1;
                *chars_read += 1;
            }
            Scan::Tok {
                tok: Token {
                    kind: TokenKind::Atom,
                    start,
                    end: i,
                },
                next: i,
            }
        }
    }
}

/// Convenience: tokenizes an entire input, for tests and diagnostics.
pub fn tokenize_all(input: &[u8]) -> Result<Vec<Token>, usize> {
    let mut out = Vec::new();
    let mut pos = 0;
    let mut chars = 0u64;
    loop {
        match next_token(input, pos, &mut chars) {
            Scan::Tok { tok, next } => {
                out.push(tok);
                pos = next;
            }
            Scan::End => return Ok(out),
            Scan::UnterminatedString { at } => return Err(at),
        }
    }
}

/// Counts opening minus closing parentheses, ignoring parens inside string
/// literals. The host only uploads input once this balance reaches zero
/// (paper §III-C a: *"The host uploads the input to the GPU if the number of
/// opening and closing parentheses is equal"*). Returns `None` when the
/// balance goes negative (more `)` than `(`), which can never become valid.
pub fn paren_balance(input: &[u8]) -> Option<i64> {
    let mut depth: i64 = 0;
    let mut in_str = false;
    for &b in input {
        if in_str {
            if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
            }
            _ => {}
        }
    }
    Some(depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &[u8]) -> Vec<TokenKind> {
        tokenize_all(input)
            .unwrap()
            .iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn simple_expression() {
        assert_eq!(
            kinds(b"(+ 1 2)"),
            vec![
                TokenKind::LParen,
                TokenKind::Atom,
                TokenKind::Atom,
                TokenKind::Atom,
                TokenKind::RParen
            ]
        );
    }

    #[test]
    fn token_texts() {
        let input = b"(* 2 (+ 4 3) 6)";
        let toks = tokenize_all(input).unwrap();
        let texts: Vec<&[u8]> = toks.iter().map(|t| t.text(input)).collect();
        assert_eq!(
            texts,
            vec![
                b"(".as_ref(),
                b"*",
                b"2",
                b"(",
                b"+",
                b"4",
                b"3",
                b")",
                b"6",
                b")"
            ]
        );
    }

    #[test]
    fn string_literal_strips_quotes() {
        let input = b"(\"hi there\")";
        let toks = tokenize_all(input).unwrap();
        assert_eq!(toks[1].kind, TokenKind::Str);
        assert_eq!(toks[1].text(input), b"hi there");
    }

    #[test]
    fn unterminated_string_reports_offset() {
        assert_eq!(tokenize_all(b"(\"oops"), Err(1));
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(kinds(b"").is_empty());
        assert!(kinds(b"   \n\t ").is_empty());
    }

    #[test]
    fn atoms_split_on_markers_without_spaces() {
        assert_eq!(
            kinds(b"(car(cdr x))"),
            vec![
                TokenKind::LParen,
                TokenKind::Atom,
                TokenKind::LParen,
                TokenKind::Atom,
                TokenKind::Atom,
                TokenKind::RParen,
                TokenKind::RParen
            ]
        );
    }

    #[test]
    fn chars_read_counts_every_examined_byte() {
        let mut chars = 0u64;
        let input = b"  abc ";
        match next_token(input, 0, &mut chars) {
            Scan::Tok { tok, next } => {
                assert_eq!(tok.text(input), b"abc");
                assert_eq!(next, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        // two spaces + three atom bytes examined
        assert_eq!(chars, 5);
    }

    #[test]
    fn paren_balance_examples() {
        assert_eq!(paren_balance(b"(+ 1 2)"), Some(0));
        assert_eq!(paren_balance(b"((("), Some(3));
        assert_eq!(paren_balance(b"())"), None);
        assert_eq!(
            paren_balance(b"(\")\")"),
            Some(0),
            "paren inside string ignored"
        );
        assert_eq!(paren_balance(b""), Some(0));
    }
}
