//! # culi-strlib — freestanding string routines for CuLi
//!
//! The CuLi paper (§III-A) notes that *"Since CUDA lacks a string library, we
//! implemented our own with functions to parse strings. These functions are
//! also used in the CPU tests for comparison reasons."*
//!
//! This crate is the Rust equivalent of that hand-rolled library: a small,
//! allocation-free set of byte-slice routines used by both the simulated GPU
//! device code and the CPU runtime, so that parsing/printing work is charged
//! identically on every backend. Nothing here touches `std::str::FromStr` or
//! `format!` on the hot path — numbers are scanned and rendered by hand, the
//! way the original C code had to.
//!
//! Modules:
//! * [`ascii`] — character classification matching the paper's tokenizer
//!   rules (whitespace markers, number-start characters `+-.E`, digits).
//! * [`cstr`] — C-style primitives (`strlen`, `strcmp`, `memcpy`) mirroring
//!   what the CUDA implementation had to provide itself.
//! * [`scan`] — tokenizer support: find the next *marker* (whitespace or
//!   parenthesis) the way the CuLi parser walks its input string.
//! * [`parse_num`] — hand-rolled integer and float parsing.
//! * [`fmt_num`] — hand-rolled integer and float formatting.
//! * [`buf`] — [`buf::StrBuf`], a fixed-capacity output buffer standing in
//!   for the device-side output string (the command buffer has a fixed size).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod bignum;
pub mod buf;
pub mod cstr;
pub mod fmt_num;
pub mod parse_num;
pub mod scan;

pub use buf::StrBuf;
pub use parse_num::{parse_f64, parse_i64, NumParse};
pub use scan::{next_token, Token, TokenKind};
