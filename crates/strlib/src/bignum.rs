//! Minimal arbitrary-precision unsigned integers.
//!
//! Exact float formatting and correctly-rounded float parsing both reduce to
//! comparing and scaling integers of the form `m · 2^a · 5^b`, whose
//! magnitudes exceed `u128`. This module provides just enough bignum for
//! that: little-endian `u32` limbs with shift-left, small multiplication,
//! powers of 5/10, comparison, and decimal digit extraction. No division by
//! big values, no signs, no allocation tricks — the numbers involved stay
//! under ~1200 bits.

/// Unsigned big integer, little-endian `u32` limbs, no leading zero limbs
/// (except the canonical zero, which has no limbs at all).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        use core::cmp::Ordering;
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        Self::from_u128(v as u128)
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut limbs = Vec::new();
        let mut x = v;
        while x != 0 {
            limbs.push(x as u32);
            x >>= 32;
        }
        Self { limbs }
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 32 - top.leading_zeros() as usize,
        }
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// In-place shift left by `bits`.
    pub fn shl(&mut self, bits: usize) {
        if self.is_zero() || bits == 0 {
            return;
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        if bit_shift == 0 {
            let mut new = vec![0u32; limb_shift];
            new.extend_from_slice(&self.limbs);
            self.limbs = new;
            return;
        }
        let mut new = vec![0u32; limb_shift + self.limbs.len() + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            let wide = (l as u64) << bit_shift;
            new[limb_shift + i] |= wide as u32;
            new[limb_shift + i + 1] |= (wide >> 32) as u32;
        }
        self.limbs = new;
        self.trim();
    }

    /// In-place multiplication by a `u32`.
    pub fn mul_small(&mut self, m: u32) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry: u64 = 0;
        for l in &mut self.limbs {
            let wide = (*l as u64) * (m as u64) + carry;
            *l = wide as u32;
            carry = wide >> 32;
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
            if carry >> 32 != 0 {
                self.limbs.push((carry >> 32) as u32);
            }
        }
    }

    /// In-place multiplication by `5^k`.
    pub fn mul_pow5(&mut self, mut k: u32) {
        const FIVE13: u32 = 1_220_703_125; // 5^13, the largest 5^k in u32
        while k >= 13 {
            self.mul_small(FIVE13);
            k -= 13;
        }
        if k > 0 {
            self.mul_small(5u32.pow(k));
        }
    }

    /// In-place multiplication by `10^k` (`= 2^k · 5^k`).
    pub fn mul_pow10(&mut self, k: u32) {
        self.mul_pow5(k);
        self.shl(k as usize);
    }

    /// In-place division by a `u32`, returning the remainder.
    pub fn divmod_small(&mut self, d: u32) -> u32 {
        debug_assert!(d != 0);
        let mut rem: u64 = 0;
        for l in self.limbs.iter_mut().rev() {
            let cur = (rem << 32) | *l as u64;
            *l = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        self.trim();
        rem as u32
    }

    /// Extracts the full decimal representation, most significant digit
    /// first. Zero yields `[0]`.
    pub fn to_decimal_digits(&self) -> Vec<u8> {
        if self.is_zero() {
            return vec![0];
        }
        let mut work = self.clone();
        let mut groups = Vec::new(); // base-1e9 groups, least significant first
        while !work.is_zero() {
            groups.push(work.divmod_small(1_000_000_000));
        }
        let mut digits = Vec::with_capacity(groups.len() * 9);
        // Most significant group without padding, the rest zero-padded to 9.
        let mut iter = groups.iter().rev();
        if let Some(&top) = iter.next() {
            let mut tmp = [0u8; 10];
            let mut n = 0;
            let mut t = top;
            loop {
                tmp[n] = (t % 10) as u8;
                n += 1;
                t /= 10;
                if t == 0 {
                    break;
                }
            }
            for i in (0..n).rev() {
                digits.push(tmp[i]);
            }
        }
        for &g in iter {
            let mut t = g;
            let mut tmp = [0u8; 9];
            for slot in tmp.iter_mut().rev() {
                *slot = (t % 10) as u8;
                t /= 10;
            }
            digits.extend_from_slice(&tmp);
        }
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cmp::Ordering;

    fn decimal_string(b: &BigUint) -> String {
        b.to_decimal_digits()
            .iter()
            .map(|d| (b'0' + d) as char)
            .collect()
    }

    #[test]
    fn from_and_digits() {
        assert_eq!(decimal_string(&BigUint::zero()), "0");
        assert_eq!(decimal_string(&BigUint::from_u64(7)), "7");
        assert_eq!(
            decimal_string(&BigUint::from_u64(1_000_000_000)),
            "1000000000"
        );
        assert_eq!(
            decimal_string(&BigUint::from_u128(u128::MAX)),
            "340282366920938463463374607431768211455"
        );
    }

    #[test]
    fn shl_matches_u128() {
        for (v, s) in [(1u128, 7usize), (0xdead_beef, 33), (u64::MAX as u128, 40)] {
            let mut b = BigUint::from_u128(v);
            b.shl(s);
            assert_eq!(b, BigUint::from_u128(v << s));
        }
    }

    #[test]
    fn shl_beyond_u128() {
        let mut b = BigUint::from_u64(1);
        b.shl(200);
        // 2^200 mod 10^9 can be checked via digit extraction length:
        let digits = b.to_decimal_digits();
        assert_eq!(digits.len(), 61); // 2^200 has 61 decimal digits
        assert_eq!(b.bit_len(), 201);
    }

    #[test]
    fn mul_small_with_carry() {
        let mut b = BigUint::from_u64(u64::MAX);
        b.mul_small(u32::MAX);
        let expect = (u64::MAX as u128) * (u32::MAX as u128);
        assert_eq!(b, BigUint::from_u128(expect));
    }

    #[test]
    fn pow5_pow10() {
        let mut b = BigUint::from_u64(1);
        b.mul_pow5(30);
        assert_eq!(decimal_string(&b), format!("{}", 5u128.pow(30)));
        let mut t = BigUint::from_u64(3);
        t.mul_pow10(25);
        assert_eq!(decimal_string(&t), format!("3{}", "0".repeat(25)));
    }

    #[test]
    fn divmod_small_roundtrip() {
        let mut b = BigUint::from_u128(123_456_789_012_345_678_901_234_567u128);
        let r = b.divmod_small(1_000_000);
        assert_eq!(r, 234_567);
        assert_eq!(decimal_string(&b), "123456789012345678901");
    }

    #[test]
    fn cmp_orders() {
        let a = BigUint::from_u64(100);
        let b = BigUint::from_u64(101);
        let mut c = BigUint::from_u64(1);
        c.shl(128);
        assert_eq!(a.cmp(&b), Ordering::Less);
        assert_eq!(b.cmp(&a), Ordering::Greater);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert_eq!(c.cmp(&b), Ordering::Greater);
    }

    #[test]
    fn zero_shift_and_mul() {
        let mut z = BigUint::zero();
        z.shl(100);
        assert!(z.is_zero());
        z.mul_small(123);
        assert!(z.is_zero());
        let mut v = BigUint::from_u64(5);
        v.mul_small(0);
        assert!(v.is_zero());
    }
}
