//! Hand-rolled number parsing.
//!
//! The CuLi tokenizer classifies a token as a number when it *starts* with a
//! digit or one of `+ - . E`, and as a float when it *contains a dot*
//! (paper §III-B b). A token that merely starts like a number but fails to
//! parse (e.g. the bare symbol `+`) falls back to being a symbol — this is
//! how the built-in arithmetic symbols survive classification.
//!
//! Everything here is explicit byte-walking: the device has no `strtod`.

/// Result of attempting to read a token as a number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumParse {
    /// The token is a well-formed integer that fits in `i64`.
    Int(i64),
    /// The token is a well-formed float (contains `.` and/or an exponent,
    /// or is an integer too large for `i64` — CuLi promotes on overflow).
    Float(f64),
    /// The token is not a number; the parser classifies it as a symbol.
    NotANumber,
}

/// Parses a complete token as an `i64`. Accepts an optional leading `+`/`-`
/// followed by one or more digits; anything else (including trailing bytes)
/// returns `None`.
pub fn parse_i64(tok: &[u8]) -> Option<i64> {
    let (neg, digits) = split_sign(tok);
    if digits.is_empty() || !digits.iter().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let mut acc: i64 = 0;
    for &b in digits {
        let d = (b - b'0') as i64;
        acc = acc.checked_mul(10)?.checked_add(d)?;
    }
    Some(if neg { -acc } else { acc })
}

/// Parses a complete token as an `f64`. Grammar:
/// `[+-]? digits* ('.' digits*)? ([eE] [+-]? digits+)?` with at least one
/// mantissa digit. Returns `None` for malformed tokens.
///
/// Accuracy: mantissa digits accumulate exactly in a `u128` (first 34
/// significant digits); the final scaling uses exactly-representable powers
/// of ten where possible, so values with ≤ 15 significant digits and small
/// exponents convert exactly, and everything else is within ~1 ulp — the
/// same ballpark as the original C implementation's hand-rolled `strtod`.
pub fn parse_f64(tok: &[u8]) -> Option<f64> {
    let (neg, rest) = split_sign(tok);
    let mut i = 0;

    let mut mant: u128 = 0;
    let mut mant_digits = 0u32; // significant digits consumed into `mant`
    let mut seen_digit = false;
    let mut exp10: i32 = 0;

    // Integer part.
    while i < rest.len() && rest[i].is_ascii_digit() {
        seen_digit = true;
        if mant_digits < 34 {
            mant = mant * 10 + (rest[i] - b'0') as u128;
            mant_digits += 1;
        } else {
            exp10 += 1; // digit beyond our exact window shifts the exponent
        }
        i += 1;
    }
    // Fraction part.
    if i < rest.len() && rest[i] == b'.' {
        i += 1;
        while i < rest.len() && rest[i].is_ascii_digit() {
            seen_digit = true;
            if mant_digits < 34 {
                mant = mant * 10 + (rest[i] - b'0') as u128;
                mant_digits += 1;
                exp10 -= 1;
            }
            i += 1;
        }
    }
    if !seen_digit {
        return None;
    }
    // Exponent part.
    if i < rest.len() && (rest[i] == b'e' || rest[i] == b'E') {
        i += 1;
        let (eneg, edigits_start) = match rest.get(i) {
            Some(b'+') => (false, i + 1),
            Some(b'-') => (true, i + 1),
            _ => (false, i),
        };
        let mut j = edigits_start;
        let mut e: i32 = 0;
        while j < rest.len() && rest[j].is_ascii_digit() {
            e = e.saturating_mul(10).saturating_add((rest[j] - b'0') as i32);
            j += 1;
        }
        if j == edigits_start {
            return None; // `e` with no digits
        }
        exp10 += if eneg { -e } else { e };
        i = j;
    }
    if i != rest.len() {
        return None; // trailing junk
    }

    let magnitude = convert_decimal(mant, exp10);
    Some(if neg { -magnitude } else { magnitude })
}

/// Converts `mant × 10^exp10` to the nearest `f64`.
///
/// Fast path (exact with a single rounding): mantissa below 2^53 and
/// `|exp10| ≤ 22`, where the power of ten is exactly representable. All
/// other finite cases go through [`correctly_round`], which verifies and
/// adjusts the approximation with exact bignum comparisons, so the result is
/// the correctly rounded conversion of the (up to 34) digits read.
fn convert_decimal(mant: u128, exp10: i32) -> f64 {
    if mant == 0 {
        return 0.0;
    }
    if mant < (1u128 << 53) && (-22..=22).contains(&exp10) {
        return scale_by_pow10(mant, exp10);
    }
    // Magnitude shortcuts keep the bignums small: 10^-347 underflows to 0
    // even with a 34-digit mantissa; 10^309 overflows even with mantissa 1.
    if exp10 > 309 {
        return f64::INFINITY;
    }
    if exp10 < -380 {
        return 0.0;
    }
    correctly_round(mant, exp10, scale_by_pow10(mant, exp10))
}

/// Nudges `approx` until it is the `f64` nearest to the exact value
/// `d × 10^k`, using exact integer comparisons against the midpoints between
/// adjacent floats. The fast-path approximation is within a few ulp, so this
/// loop runs at most a handful of iterations.
fn correctly_round(d: u128, k: i32, approx: f64) -> f64 {
    use crate::bignum::BigUint;
    use core::cmp::Ordering;

    // Exact comparison of d×10^k against mid = (ma×2^ea + mb×2^eb)/2, the
    // midpoint of two adjacent floats given by (mantissa, exponent) pairs.
    // Everything is scaled into integers: 10^k = 2^k·5^k, and halving the
    // midpoint becomes a -1 on the binary exponent.
    let cmp_value_vs_mid = |(ma, ea): (u64, i64), (mb, eb): (u64, i64)| -> Ordering {
        let emin = ea.min(eb);
        let mut mid = BigUint::from_u128(
            ((ma as u128) << (ea - emin) as u32) + ((mb as u128) << (eb - emin) as u32),
        );
        let mid_e2 = emin - 1;
        let mut val = BigUint::from_u128(d);
        if k >= 0 {
            val.mul_pow5(k as u32);
        } else {
            mid.mul_pow5((-k) as u32);
        }
        // Clear the remaining binary exponents onto whichever side is lower.
        let shift = k as i64 - mid_e2;
        if shift >= 0 {
            val.shl(shift as usize);
        } else {
            mid.shl((-shift) as usize);
        }
        val.cmp(&mid)
    };

    let decompose = |x: f64| -> (u64, i64) {
        let bits = x.to_bits();
        let be = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        if be == 0 {
            (frac, -1074)
        } else {
            (frac | (1 << 52), be - 1075)
        }
    };

    const MAX_MANT: (u64, i64) = ((1 << 53) - 1, 971); // f64::MAX decomposed
    const OVERFLOW_BOUND: (u64, i64) = (1 << 53, 971); // 2^1024 decomposed

    let mut cur = approx.abs();
    for _ in 0..64 {
        if cur.is_infinite() {
            // Below the MAX/2^1024 midpoint the value rounds back to MAX.
            match cmp_value_vs_mid(MAX_MANT, OVERFLOW_BOUND) {
                Ordering::Greater | Ordering::Equal => return f64::INFINITY,
                Ordering::Less => {
                    cur = f64::MAX;
                    continue;
                }
            }
        }
        if cur == 0.0 {
            // Above the 0/minsubnormal midpoint the value rounds up.
            match cmp_value_vs_mid((0, -1074), (1, -1074)) {
                Ordering::Greater => {
                    cur = f64::from_bits(1);
                    continue;
                }
                _ => return 0.0,
            }
        }
        let here = decompose(cur);
        let above = f64::from_bits(cur.to_bits() + 1);
        // vs upper midpoint (cur, next_up)
        let up = if above.is_infinite() {
            cmp_value_vs_mid(MAX_MANT, OVERFLOW_BOUND)
        } else {
            cmp_value_vs_mid(here, decompose(above))
        };
        if up == Ordering::Greater {
            cur = above;
            continue;
        }
        // vs lower midpoint (next_down, cur)
        let below = f64::from_bits(cur.to_bits() - 1);
        let down = if cur.to_bits() == 1 {
            cmp_value_vs_mid((0, -1074), (1, -1074))
        } else {
            cmp_value_vs_mid(decompose(below), here)
        };
        if down == Ordering::Less {
            cur = below;
            continue;
        }
        // Ties: round half to even.
        if up == Ordering::Equal && here.0 % 2 == 1 {
            cur = above;
        } else if down == Ordering::Equal && here.0 % 2 == 1 {
            cur = below;
        }
        break;
    }
    cur
}

/// Classifies a token the way the CuLi parser does: a token containing `.`
/// or an exponent marker parses as a float; otherwise as an integer
/// (promoted to float if it overflows `i64`); failures are symbols.
pub fn classify_number(tok: &[u8]) -> NumParse {
    let has_float_marker = tok.iter().any(|&b| b == b'.' || b == b'e' || b == b'E');
    if !has_float_marker {
        if let Some(v) = parse_i64(tok) {
            return NumParse::Int(v);
        }
        // Integer-looking but overflowing i64 ⇒ promote to float.
        let (_, digits) = split_sign(tok);
        if !digits.is_empty() && digits.iter().all(|b| b.is_ascii_digit()) {
            if let Some(v) = parse_f64(tok) {
                return NumParse::Float(v);
            }
        }
        return NumParse::NotANumber;
    }
    match parse_f64(tok) {
        Some(v) => NumParse::Float(v),
        None => NumParse::NotANumber,
    }
}

fn split_sign(tok: &[u8]) -> (bool, &[u8]) {
    match tok.first() {
        Some(b'-') => (true, &tok[1..]),
        Some(b'+') => (false, &tok[1..]),
        _ => (false, tok),
    }
}

/// Exactly-representable powers of ten in `f64` (10^0 … 10^22).
const POW10_EXACT: [f64; 23] = [
    1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16,
    1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
];

/// Computes `mant * 10^exp10` with at most a couple of roundings.
fn scale_by_pow10(mant: u128, exp10: i32) -> f64 {
    if mant == 0 {
        return 0.0;
    }
    let m = mant as f64; // one rounding when mant ≥ 2^53
    let e = exp10;
    if e == 0 {
        return m;
    }
    if (0..=22).contains(&e) {
        return m * POW10_EXACT[e as usize];
    }
    if (-22..0).contains(&e) {
        return m / POW10_EXACT[(-e) as usize];
    }
    // Large exponents: split into exact chunks to limit rounding error.
    let mut v = m;
    let mut rem = e;
    while rem > 22 {
        v *= POW10_EXACT[22];
        rem -= 22;
        if v.is_infinite() {
            return v;
        }
    }
    while rem < -22 {
        v /= POW10_EXACT[22];
        rem += 22;
        if v == 0.0 {
            return v;
        }
    }
    if rem >= 0 {
        v * POW10_EXACT[rem as usize]
    } else {
        v / POW10_EXACT[(-rem) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_basic() {
        assert_eq!(parse_i64(b"0"), Some(0));
        assert_eq!(parse_i64(b"42"), Some(42));
        assert_eq!(parse_i64(b"-17"), Some(-17));
        assert_eq!(parse_i64(b"+5"), Some(5));
        assert_eq!(parse_i64(b"9223372036854775807"), Some(i64::MAX));
        assert_eq!(
            parse_i64(b"-9223372036854775808"),
            None,
            "abs overflows during accumulation"
        );
    }

    #[test]
    fn int_rejects_junk() {
        for bad in [b"" as &[u8], b"+", b"-", b"1.5", b"12x", b"x12", b"1 2"] {
            assert_eq!(parse_i64(bad), None, "{:?}", std::str::from_utf8(bad));
        }
    }

    #[test]
    fn float_basic() {
        assert_eq!(parse_f64(b"0.0"), Some(0.0));
        assert_eq!(parse_f64(b"1.5"), Some(1.5));
        assert_eq!(parse_f64(b"-2.25"), Some(-2.25));
        assert_eq!(parse_f64(b".5"), Some(0.5));
        assert_eq!(parse_f64(b"5."), Some(5.0));
        assert_eq!(parse_f64(b"1e3"), Some(1000.0));
        assert_eq!(parse_f64(b"1.5E-2"), Some(0.015));
        assert_eq!(parse_f64(b"+2.5e+1"), Some(25.0));
    }

    #[test]
    fn float_rejects_junk() {
        for bad in [
            b"" as &[u8],
            b".",
            b"+",
            b"-",
            b"e5",
            b"1e",
            b"1e+",
            b"1.2.3",
            b"1x",
        ] {
            assert_eq!(parse_f64(bad), None, "{:?}", std::str::from_utf8(bad));
        }
    }

    #[test]
    fn float_matches_std_closely() {
        let cases: &[&str] = &[
            "3.141592653589793",
            "2.718281828459045",
            "1e308",
            "1e-308",
            "123456789.123456789",
            "0.1",
            "0.2",
            "0.30000000000000004",
            "6.02214076e23",
            "-1.7976931348623157e308",
        ];
        for s in cases {
            let ours = parse_f64(s.as_bytes()).unwrap();
            let std: f64 = s.parse().unwrap();
            let err = if std == 0.0 {
                ours.abs()
            } else {
                ((ours - std) / std).abs()
            };
            assert!(err <= 1e-15, "{s}: ours={ours:e} std={std:e}");
        }
    }

    #[test]
    fn float_overflow_saturates_to_infinity() {
        assert_eq!(parse_f64(b"1e400"), Some(f64::INFINITY));
        assert_eq!(parse_f64(b"-1e400"), Some(f64::NEG_INFINITY));
        assert_eq!(parse_f64(b"1e-400"), Some(0.0));
    }

    #[test]
    fn classify_follows_paper_rules() {
        assert_eq!(classify_number(b"7"), NumParse::Int(7));
        assert_eq!(classify_number(b"-7"), NumParse::Int(-7));
        assert_eq!(classify_number(b"7.5"), NumParse::Float(7.5));
        assert_eq!(classify_number(b"1e2"), NumParse::Float(100.0));
        assert_eq!(classify_number(b"+"), NumParse::NotANumber);
        assert_eq!(classify_number(b"-"), NumParse::NotANumber);
        assert_eq!(classify_number(b"x7"), NumParse::NotANumber);
        assert_eq!(classify_number(b"1.2.3"), NumParse::NotANumber);
    }

    #[test]
    fn classify_promotes_i64_overflow_to_float() {
        // 2^63 exactly: one past i64::MAX.
        match classify_number(b"9223372036854775808") {
            NumParse::Float(v) => assert_eq!(v, 9.223372036854776e18),
            other => panic!("expected float promotion, got {other:?}"),
        }
    }
}
