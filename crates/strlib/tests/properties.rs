//! Property-based tests for the freestanding string library.

use culi_strlib::fmt_num::{f64_to_vec, i64_to_vec};
use culi_strlib::parse_num::{classify_number, parse_f64, parse_i64, NumParse};
use culi_strlib::scan::{paren_balance, tokenize_all};
use proptest::prelude::*;

proptest! {
    /// format(i) then parse must reproduce every i64 exactly.
    #[test]
    fn i64_roundtrip(v in any::<i64>()) {
        let s = i64_to_vec(v);
        prop_assert_eq!(parse_i64(&s), Some(v));
    }

    /// format(f) then parse must reproduce finite f64s to the bit (or, in
    /// the documented worst case, within one ulp).
    #[test]
    fn f64_roundtrip(v in any::<f64>().prop_filter("finite", |v| v.is_finite())) {
        let s = f64_to_vec(v);
        let back = parse_f64(&s).unwrap();
        if back.to_bits() != v.to_bits() {
            // Documented fallback: the 17-digit form is within 1 ulp.
            let ulp = f64::from_bits(v.to_bits().wrapping_add(1)) - v;
            prop_assert!((back - v).abs() <= ulp.abs() * 2.0,
                "{} -> {} -> {}", v, String::from_utf8_lossy(&s), back);
        }
    }

    /// Our integer parser agrees with std's on arbitrary digit strings.
    #[test]
    fn i64_parse_matches_std(s in "[+-]?[0-9]{1,18}") {
        let ours = parse_i64(s.as_bytes());
        let std: Result<i64, _> = s.parse();
        prop_assert_eq!(ours, std.ok());
    }

    /// Our float parser stays within 1e-15 relative error of std's on
    /// well-formed decimal strings.
    #[test]
    fn f64_parse_close_to_std(s in "[+-]?[0-9]{1,15}\\.[0-9]{1,15}(e[+-]?[0-9]{1,2})?") {
        let ours = parse_f64(s.as_bytes()).unwrap();
        let std: f64 = s.parse().unwrap();
        if std == 0.0 {
            prop_assert!(ours.abs() < 1e-300);
        } else if std.is_finite() {
            prop_assert!(((ours - std) / std).abs() < 1e-15, "{}: {} vs {}", s, ours, std);
        }
    }

    /// classify_number never panics and is consistent: Int ⇒ parse_i64 works.
    #[test]
    fn classify_total(s in "[ -~]{0,24}") {
        match classify_number(s.as_bytes()) {
            NumParse::Int(v) => prop_assert_eq!(parse_i64(s.as_bytes()), Some(v)),
            NumParse::Float(_) | NumParse::NotANumber => {}
        }
    }

    /// The tokenizer terminates on arbitrary printable input and every token
    /// has a sane, in-bounds, non-empty-or-string range.
    #[test]
    fn tokenizer_total_and_in_bounds(s in "[ -~]{0,160}") {
        if let Ok(toks) = tokenize_all(s.as_bytes()) {
            for t in &toks {
                prop_assert!(t.start <= t.end);
                prop_assert!(t.end <= s.len());
            }
        }
    }

    /// Balanced-paren counting matches a straightforward reference that is
    /// blind to everything except quotes and parens.
    #[test]
    fn paren_balance_matches_reference(s in "[()a-z\" ]{0,80}") {
        let mut depth = 0i64;
        let mut bad = false;
        let mut in_str = false;
        for b in s.bytes() {
            if in_str { if b == b'"' { in_str = false; } continue; }
            match b {
                b'"' => in_str = true,
                b'(' => depth += 1,
                b')' => { depth -= 1; if depth < 0 { bad = true; break; } }
                _ => {}
            }
        }
        let expect = if bad { None } else { Some(depth) };
        prop_assert_eq!(paren_balance(s.as_bytes()), expect);
    }

    /// strcmp is antisymmetric and consistent with slice equality for
    /// NUL-free strings.
    #[test]
    fn strcmp_antisymmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        use culi_strlib::cstr::strcmp;
        let ab = strcmp(a.as_bytes(), b.as_bytes());
        let ba = strcmp(b.as_bytes(), a.as_bytes());
        prop_assert_eq!(ab.signum(), -ba.signum());
        prop_assert_eq!(ab == 0, a == b);
    }
}
