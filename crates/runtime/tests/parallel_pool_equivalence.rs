//! Value-equivalence of the persistent pooled `|||` backend against the
//! sequential reference (and the retained fork-per-section baseline)
//! across randomized multi-section programs: definitions and `setq`s
//! between sections, worker errors, short-list errors, and nested `|||`
//! inside workers. Every statement's printed output — including error
//! text and failing-worker indices — must agree on all backends.
//!
//! Also home of the PR acceptance check: a warm pool runs 64 sections of
//! 8 jobs with **zero** whole-interpreter clones.

use culi_core::eval::ParallelHook;
use culi_core::{Interp, InterpConfig};
use culi_runtime::{CpuMode, CpuRepl, CpuReplConfig, ForkPerSectionHook};
use proptest::prelude::*;

const PRELUDE: &[&str] = &[
    "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
    "(defun plus (a b) (+ a b))",
    "(defun addg (x) (+ x g))",
    "(defun fibj (x) (fib (mod x 8)))",
    "(defun boom (x) (/ 100 x))",
    "(defun nest (x) (||| 2 plus (list x g) (3 4)))",
    "(setq g 1)",
];

/// One statement of a generated program.
#[derive(Debug, Clone)]
enum Stmt {
    /// `(setq g V)` between sections — must reach warm workers.
    SetG(i64),
    /// Redefine `addg` between sections — replayed defuns must win.
    Redef(bool),
    /// A `|||` section over one of the prelude functions.
    Section { func: u8, n: u8, args: Vec<i64> },
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (-100i64..100).prop_map(Stmt::SetG),
        any::<bool>().prop_map(Stmt::Redef),
        (0u8..5, 1u8..6, prop::collection::vec(-8i64..8, 0..8))
            .prop_map(|(func, n, args)| Stmt::Section { func, n, args }),
    ]
}

fn render(s: &Stmt) -> String {
    match s {
        Stmt::SetG(v) => format!("(setq g {v})"),
        Stmt::Redef(add) => {
            let op = if *add { "+" } else { "-" };
            format!("(defun addg (x) ({op} x g))")
        }
        Stmt::Section { func, n, args } => {
            let list: Vec<String> = args.iter().map(i64::to_string).collect();
            let list = list.join(" ");
            match func {
                // Two argument lists (the second long enough on purpose:
                // short-list coverage comes from the first).
                0 => {
                    let second: Vec<String> = (0..*n).map(|i| i.to_string()).collect();
                    format!("(||| {n} plus ({list}) ({}))", second.join(" "))
                }
                1 => format!("(||| {n} addg ({list}))"),
                2 => format!("(||| {n} fibj ({list}))"),
                // boom divides by its argument: zeros → worker errors.
                3 => format!("(||| {n} boom ({list}))"),
                // nested ||| inside each worker, reading the global g.
                _ => format!("(||| {n} nest ({list}))"),
            }
        }
    }
}

fn run_with_hook(i: &mut Interp, hook: &mut dyn ParallelHook, src: &str) -> String {
    match i.eval_str_with(src, hook) {
        Ok(s) => s,
        Err(e) => format!("error: {e}"),
    }
}

fn small_interp() -> Interp {
    Interp::new(InterpConfig {
        arena_capacity: 1 << 16,
        ..Default::default()
    })
}

fn threaded_repl(threads: usize) -> CpuRepl {
    CpuRepl::launch(
        culi_gpu_sim::device::intel_e5_2620(),
        CpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 16,
                ..Default::default()
            },
            mode: CpuMode::Threaded { threads },
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pooled backend is value-identical (outputs *and* error text) to
    /// the sequential reference and the fork-per-section baseline over
    /// whole randomized programs.
    #[test]
    fn pooled_threaded_matches_sequential(stmts in prop::collection::vec(stmt(), 1..10)) {
        let mut reference = small_interp();
        let mut fork_ref = small_interp();
        let mut fork_hook = ForkPerSectionHook::new(3);
        let mut pooled = threaded_repl(3);

        for line in PRELUDE {
            reference.eval_str(line).unwrap();
            fork_ref.eval_str_with(line, &mut fork_hook).unwrap();
            pooled.submit(line).unwrap();
        }
        for (k, s) in stmts.iter().enumerate() {
            let src = render(s);
            let seq = match reference.eval_str(&src) {
                Ok(out) => out,
                Err(e) => format!("error: {e}"),
            };
            let forked = run_with_hook(&mut fork_ref, &mut fork_hook, &src);
            let pool = pooled.submit(&src).unwrap().output;
            prop_assert_eq!(&seq, &pool, "stmt {}: {} (pooled)", k, src);
            prop_assert_eq!(&seq, &forked, "stmt {}: {} (fork baseline)", k, src);
        }
    }
}

/// PR acceptance: after warm-up, a 64-section × 8-worker workload clones
/// the interpreter exactly zero times — workers are persistent and jobs
/// travel through recycled flat buffers.
#[test]
fn warm_pool_runs_64_sections_with_zero_clones() {
    let mut repl = threaded_repl(8);
    repl.submit(PRELUDE[0]).unwrap();
    let section = "(||| 8 fib (1 2 3 4 5 6 7 8))";
    let first = repl.submit(section).unwrap();
    assert_eq!(first.output, "(1 1 2 3 5 8 13 21)");
    let clones_after_warmup = repl.interp_mut().clone_count();
    assert!(
        clones_after_warmup >= 8,
        "warm-up forks one interp per seat"
    );
    for _ in 0..64 {
        let reply = repl.submit(section).unwrap();
        assert_eq!(reply.output, "(1 1 2 3 5 8 13 21)");
    }
    assert_eq!(
        repl.interp_mut().clone_count(),
        clones_after_warmup,
        "64 warm sections × 8 workers must perform zero whole-interpreter clones"
    );
}

/// Defines and setqs between sections are replayed incrementally into the
/// warm workers — the observable half of the epoch-sync protocol.
#[test]
fn definitions_between_sections_sync_to_warm_workers() {
    let mut repl = threaded_repl(4);
    for line in PRELUDE {
        repl.submit(line).unwrap();
    }
    assert_eq!(
        repl.submit("(||| 4 addg (1 2 3 4))").unwrap().output,
        "(2 3 4 5)"
    );
    repl.submit("(setq g 50)").unwrap();
    assert_eq!(
        repl.submit("(||| 4 addg (1 2 3 4))").unwrap().output,
        "(51 52 53 54)"
    );
    repl.submit("(defun addg (x) (- x g))").unwrap();
    assert_eq!(
        repl.submit("(||| 4 addg (1 2 3 4))").unwrap().output,
        "(-49 -48 -47 -46)"
    );
    // Nested sections see the synced global too.
    assert_eq!(
        repl.submit("(||| 2 nest (10 20))").unwrap().output,
        "((13 54) (23 54))"
    );
}
