//! End-to-end correctness of the PR 8 structural-hash command cache:
//! cache-on sessions must be observably indistinguishable from cache-off
//! sessions — byte-identical output, status, code and paper-model
//! counters — across the CPU threaded, CPU fork-per-section and
//! simulated-GPU backends, while the cache's own stats prove it actually
//! served traffic. Directed tests pin the two hazardous edges: reply
//! entries must never survive an env sync-epoch advance (a redefined
//! global must never be answered with a stale reply), and forced hash
//! collisions (narrowed [`CacheConfig::hash_mask`]) must fall back to
//! the full canonical-encoding compare rather than serve a wrong entry.

use culi_core::InterpConfig;
use culi_gpu_sim::device::{gtx1080, intel_e5_2620};
use culi_runtime::{
    CacheConfig, CommandCache, CpuMode, CpuRepl, CpuReplConfig, GpuRepl, GpuReplConfig, Reply,
};

const PRELUDE: &[&str] = &[
    "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
    "(defun plus (a b) (+ a b))",
    "(defun addg (x) (+ x g))",
    "(defun fibj (x) (fib (mod x 8)))",
    "(setq g 1)",
    "(setq xs (list 3 4 5 6 7 8))",
];

/// A repeat-heavy stream: in-batch repeats, cross-pass repeats, both
/// stageable sections and plain pure commands. Deliberately epoch-stable
/// (no defines) so repeated passes hit the reply tier — the epoch-advance
/// discipline has its own directed test below.
const STREAM: &[&str] = &[
    "(||| 2 plus (1 2) (3 4))",
    "(||| 3 fibj (1 2 3))",
    "(||| 2 plus (1 2) (3 4))",
    "(||| 2 addg (1 2))",
    "(||| 2 addg (1 2))",
    "(+ 1 2)",
    "(||| 4 addg xs)",
];

fn cpu(mode: CpuMode, cache: Option<CommandCache>) -> CpuRepl {
    CpuRepl::launch(
        intel_e5_2620(),
        CpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 17,
                ..Default::default()
            },
            mode,
            cache,
            ..Default::default()
        },
    )
}

fn gpu(cache: Option<CommandCache>) -> GpuRepl {
    GpuRepl::launch(
        gtx1080(),
        GpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 17,
                ..Default::default()
            },
            cache,
            ..Default::default()
        },
    )
}

/// Prelude via `submit`, then `passes` rounds of `submit_batch` over the
/// stream, replies concatenated in submission order.
fn run_cpu(repl: &mut CpuRepl, stream: &[&str], passes: usize) -> Vec<Reply> {
    for line in PRELUDE {
        repl.submit(line).unwrap();
    }
    let mut out = Vec::new();
    for _ in 0..passes {
        out.extend(repl.submit_batch(stream).unwrap());
    }
    out
}

fn run_gpu(repl: &mut GpuRepl, stream: &[&str], passes: usize) -> Vec<Reply> {
    for line in PRELUDE {
        repl.submit(line).unwrap();
    }
    let mut out = Vec::new();
    for _ in 0..passes {
        out.extend(repl.submit_batch(stream).unwrap());
    }
    out
}

/// Cache-on vs cache-off must match in everything the paper model can
/// observe: bytes, status, error code and meter counters (wall-clock and
/// modeled phase times are timing, not semantics).
fn assert_identical(uncached: &[Reply], cached: &[Reply], arm: &str) {
    assert_eq!(uncached.len(), cached.len(), "{arm}: reply count");
    for (k, (want, got)) in uncached.iter().zip(cached).enumerate() {
        let ctx = format!("{arm} cmd {k}");
        assert_eq!(want.output, got.output, "{ctx}");
        assert_eq!(want.ok, got.ok, "{ctx}");
        assert_eq!(want.code, got.code, "{ctx}");
        assert_eq!(want.counters, got.counters, "charges — {ctx}");
    }
}

#[test]
fn cache_on_off_bit_identity_cpu_threaded() {
    let cache = CommandCache::new(CacheConfig::default());
    let mut plain = cpu(CpuMode::Threaded { threads: 4 }, None);
    let mut memo = cpu(CpuMode::Threaded { threads: 4 }, Some(cache.clone()));
    let a = run_cpu(&mut plain, STREAM, 3);
    let b = run_cpu(&mut memo, STREAM, 3);
    assert_identical(&a, &b, "cpu threaded");
    let stats = cache.stats();
    assert!(
        stats.reply.hits >= STREAM.len() as u64,
        "cache never served: {stats:?}"
    );
    assert!(
        stats.template.hits >= 1,
        "templates never reused: {stats:?}"
    );
}

#[test]
fn cache_on_off_bit_identity_cpu_fork_per_section() {
    let cache = CommandCache::new(CacheConfig::default());
    let mut plain = cpu(CpuMode::ForkPerSection { threads: 4 }, None);
    let mut memo = cpu(CpuMode::ForkPerSection { threads: 4 }, Some(cache.clone()));
    let a = run_cpu(&mut plain, STREAM, 2);
    let b = run_cpu(&mut memo, STREAM, 2);
    assert_identical(&a, &b, "cpu fork-per-section");
    assert!(cache.stats().reply.hits >= 1, "{:?}", cache.stats());
}

#[test]
fn cache_on_off_bit_identity_gpu() {
    let cache = CommandCache::new(CacheConfig::default());
    let mut plain = gpu(None);
    let mut memo = gpu(Some(cache.clone()));
    let a = run_gpu(&mut plain, STREAM, 3);
    let b = run_gpu(&mut memo, STREAM, 3);
    assert_identical(&a, &b, "gpu");
    assert!(
        cache.stats().reply.hits >= STREAM.len() as u64,
        "{:?}",
        cache.stats()
    );
}

/// The stale-reply hazard, end to end: a pure command whose answer
/// depends on a global, repeated across redefinitions of that global.
/// Every repeat after a `setq` is a *new* epoch — the cache must miss,
/// re-execute and answer with the fresh binding. The cache-off twin
/// catches any stale serve byte-for-byte, and the direct output check
/// makes the expectation readable on failure.
#[test]
fn reply_entries_never_survive_epoch_advance_end_to_end() {
    let stream = &[
        "(||| 2 addg (1 2))", // g=1 → (2 3)
        "(||| 2 addg (1 2))", // same epoch: cache may serve this one
        "(setq g 100)",
        "(||| 2 addg (1 2))", // g=100 → (101 102): stale (2 3) is wrong
        "(setq g 7)",
        "(||| 2 addg (1 2))", // g=7 → (8 9)
    ];
    let cache = CommandCache::new(CacheConfig::default());
    let mut plain = cpu(CpuMode::Threaded { threads: 4 }, None);
    let mut memo = cpu(CpuMode::Threaded { threads: 4 }, Some(cache.clone()));
    let a = run_cpu(&mut plain, stream, 2);
    let b = run_cpu(&mut memo, stream, 2);
    assert_identical(&a, &b, "epoch advance");
    let outputs: Vec<&str> = b.iter().map(|r| r.output.as_str()).collect();
    assert_eq!(outputs[0], outputs[1], "same-epoch repeat must agree");
    assert_ne!(outputs[1], outputs[3], "post-setq repeat must re-execute");
    assert_ne!(outputs[3], outputs[5], "each rebinding must be visible");
    let stats = cache.stats();
    assert!(
        stats.reply.hits >= 1,
        "repeat at same epoch never hit: {stats:?}"
    );
    assert!(
        stats.reply.evictions >= 1,
        "epoch advances never retired entries: {stats:?}"
    );
}

/// Forced collisions end to end: with `hash_mask: 0` every command's key
/// lands in one bucket, so *only* the canonical-encoding compare keeps
/// distinct commands from stealing each other's verdicts, templates and
/// replies. The session must still be bit-identical to the uncached twin
/// while genuinely serving hits from the colliding store.
#[test]
fn forced_hash_collision_end_to_end_stays_bit_identical() {
    let cache = CommandCache::new(CacheConfig {
        hash_mask: 0,
        ..Default::default()
    });
    let mut plain = cpu(CpuMode::Threaded { threads: 4 }, None);
    let mut memo = cpu(CpuMode::Threaded { threads: 4 }, Some(cache.clone()));
    let a = run_cpu(&mut plain, STREAM, 3);
    let b = run_cpu(&mut memo, STREAM, 3);
    assert_identical(&a, &b, "hash_mask=0");
    let stats = cache.stats();
    assert!(
        stats.reply.hits >= STREAM.len() as u64,
        "colliding cache never served: {stats:?}"
    );
}

/// A narrow (but non-degenerate) mask gets the same treatment: partial
/// collisions across a wider key population.
#[test]
fn narrow_hash_mask_end_to_end_stays_bit_identical() {
    let commands: Vec<String> = (0..24)
        .map(|k| format!("(||| 2 plus ({k} {}) (3 4))", k + 1))
        .collect();
    let stream: Vec<&str> = commands.iter().map(String::as_str).collect();
    let cache = CommandCache::new(CacheConfig {
        hash_mask: 0x3,
        ..Default::default()
    });
    let mut plain = cpu(CpuMode::Threaded { threads: 4 }, None);
    let mut memo = cpu(CpuMode::Threaded { threads: 4 }, Some(cache.clone()));
    let a = run_cpu(&mut plain, &stream, 2);
    let b = run_cpu(&mut memo, &stream, 2);
    assert_identical(&a, &b, "hash_mask=0x3");
    assert!(
        cache.stats().reply.hits >= stream.len() as u64,
        "{:?}",
        cache.stats()
    );
}

/// The byte budgets hold under a flood of distinct commands — retained
/// bytes stay under the configured ceilings and the LRU eviction counter
/// proves entries were actually dropped, not just never stored.
#[test]
fn cache_memory_stays_bounded_under_flood() {
    let config = CacheConfig {
        shared_byte_budget: 4096,
        reply_byte_budget: 2048,
        hash_mask: u64::MAX,
    };
    let cache = CommandCache::new(config.clone());
    let mut memo = cpu(CpuMode::Threaded { threads: 4 }, Some(cache.clone()));
    let commands: Vec<String> = (0..120)
        .map(|k| format!("(||| 2 plus ({k} {}) ({} {}))", k + 1, k % 9, k % 7))
        .collect();
    let stream: Vec<&str> = commands.iter().map(String::as_str).collect();
    let replies = run_cpu(&mut memo, &stream, 1);
    assert!(replies.iter().all(|r| r.ok));
    assert!(
        cache.retained_bytes() <= config.shared_byte_budget + config.reply_byte_budget,
        "retained {} over budget",
        cache.retained_bytes()
    );
    let stats = cache.stats();
    assert!(
        stats.reply.evictions + stats.template.evictions >= 1,
        "flood never evicted: {stats:?}"
    );
}
