//! Equivalence of the pipelined batch dispatcher against PR 2's
//! synchronous per-command rendezvous: `submit_batch` over a randomized
//! command stream must produce byte-identical replies *and* identical
//! per-command paper-model counters to a `submit` loop on an identically
//! configured session — including worker errors mid-batch, global-
//! mutating jobs that dirty a seat while the next section is already
//! staged in the double buffer, defines acting as barriers, computed
//! operands and worker counts that the effect analysis stages, and
//! operands invoking user forms that it must refuse.

use culi_core::InterpConfig;
use culi_runtime::{CpuMode, CpuRepl, CpuReplConfig};
use proptest::prelude::*;

const PRELUDE: &[&str] = &[
    "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
    "(defun plus (a b) (+ a b))",
    "(defun addg (x) (+ x g))",
    "(defun fibj (x) (fib (mod x 8)))",
    "(defun boom (x) (/ 100 x))",
    "(defun nest (x) (||| 2 plus (list x g) (3 4)))",
    "(defun bump (x) (progn (setq total (+ total x)) total))",
    "(setq g 1)",
    "(setq total 100)",
    "(setq xs (list 4 5 6 7 8 9))",
];

/// One statement of a generated program.
#[derive(Debug, Clone)]
enum Stmt {
    /// `(setq g V)` — a barrier in the pipelined dispatcher.
    SetG(i64),
    /// Redefine `addg` — a barrier plus a shadowing global define.
    Redef(bool),
    /// A `|||` section over one of the prelude functions with literal
    /// argument lists (pipeline-stageable for pure functions).
    Section { func: u8, n: u8, args: Vec<i64> },
    /// A section over the global list `xs` (stageable symbol operand).
    SymbolArgSection(u8),
    /// A section with a `(list …)` operand reading the global `g` —
    /// barriered under the syntactic rule, staged by the effect analysis.
    ListOperandSection(u8),
    /// A section whose worker count is computed (stageable).
    ComputedCountSection(u8),
    /// A section whose argument list is a conditional over `g`
    /// (stageable).
    ConditionalOperandSection,
    /// A section whose operand calls a user form — impure, so the
    /// effect classifier must barrier it.
    FormOperandSection,
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (-100i64..100).prop_map(Stmt::SetG),
        any::<bool>().prop_map(Stmt::Redef),
        (0u8..6, 1u8..6, prop::collection::vec(-8i64..8, 0..8))
            .prop_map(|(func, n, args)| Stmt::Section { func, n, args }),
        (1u8..6).prop_map(Stmt::SymbolArgSection),
        (1u8..4).prop_map(Stmt::ListOperandSection),
        (1u8..5).prop_map(Stmt::ComputedCountSection),
        Just(Stmt::ConditionalOperandSection),
        Just(Stmt::FormOperandSection),
    ]
}

fn render(s: &Stmt) -> String {
    match s {
        Stmt::SetG(v) => format!("(setq g {v})"),
        Stmt::Redef(add) => {
            let op = if *add { "+" } else { "-" };
            format!("(defun addg (x) ({op} x g))")
        }
        Stmt::Section { func, n, args } => {
            let list: Vec<String> = args.iter().map(i64::to_string).collect();
            let list = list.join(" ");
            match func {
                0 => {
                    let second: Vec<String> = (0..*n).map(|i| i.to_string()).collect();
                    format!("(||| {n} plus ({list}) ({}))", second.join(" "))
                }
                1 => format!("(||| {n} addg ({list}))"),
                2 => format!("(||| {n} fibj ({list}))"),
                // boom divides by its argument: zeros → worker errors.
                3 => format!("(||| {n} boom ({list}))"),
                // nested ||| inside each worker, reading the global g.
                4 => format!("(||| {n} nest ({list}))"),
                // bump mutates the worker's global state: dirty seats,
                // snapshot resyncs, refused staged sections.
                _ => format!("(||| {n} bump ({list}))"),
            }
        }
        Stmt::SymbolArgSection(n) => format!("(||| {n} addg xs)"),
        Stmt::ListOperandSection(n) => format!("(||| {n} plus (list g g g) (7 8 9))"),
        Stmt::ComputedCountSection(n) => {
            format!("(||| (+ 1 {n}) fibj (1 2 3 4 5 6))")
        }
        Stmt::ConditionalOperandSection => {
            "(||| 2 plus (if (< g 0) (1 2) (3 4)) (10 20))".to_string()
        }
        Stmt::FormOperandSection => "(||| 2 plus (list (plus g 1) 2) (5 6))".to_string(),
    }
}

fn threaded_repl(threads: usize) -> CpuRepl {
    CpuRepl::launch(
        culi_gpu_sim::device::intel_e5_2620(),
        CpuReplConfig {
            interp: InterpConfig {
                arena_capacity: 1 << 16,
                ..Default::default()
            },
            mode: CpuMode::Threaded { threads },
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// submit_batch ≡ submit loop over whole randomized programs: same
    /// outputs, same ok flags, same per-command counters.
    #[test]
    fn pipelined_batch_matches_rendezvous_loop(stmts in prop::collection::vec(stmt(), 1..12)) {
        let mut rendezvous = threaded_repl(4);
        let mut pipelined = threaded_repl(4);
        for line in PRELUDE {
            rendezvous.submit(line).unwrap();
            pipelined.submit(line).unwrap();
        }
        let sources: Vec<String> = stmts.iter().map(render).collect();
        let inputs: Vec<&str> = sources.iter().map(String::as_str).collect();
        let batched = pipelined.submit_batch(&inputs).unwrap();
        prop_assert_eq!(batched.len(), inputs.len());
        for (k, (src, got)) in inputs.iter().zip(&batched).enumerate() {
            let want = rendezvous.submit(src).unwrap();
            prop_assert_eq!(&want.output, &got.output, "stmt {}: {}", k, src);
            prop_assert_eq!(want.ok, got.ok, "stmt {}: {}", k, src);
            prop_assert_eq!(want.counters, got.counters, "stmt {}: {}", k, src);
        }
    }
}

/// Directed: a seat is dirtied by a mutating section while the next
/// section is already staged; the refused message is re-armed with a
/// snapshot and the batch stays value- and counter-identical.
#[test]
fn dirty_seat_mid_batch_matches_rendezvous() {
    let mut rendezvous = threaded_repl(2);
    let mut pipelined = threaded_repl(2);
    for line in PRELUDE {
        rendezvous.submit(line).unwrap();
        pipelined.submit(line).unwrap();
    }
    let inputs = [
        "(||| 2 bump (1 2))",
        "(||| 2 bump (3 4))",
        "(||| 2 addg (1 2))",
        "(||| 2 bump (5 6))",
        "(||| 2 fibj (3 4))",
    ];
    let batched = pipelined.submit_batch(&inputs).unwrap();
    for (src, got) in inputs.iter().zip(&batched) {
        let want = rendezvous.submit(src).unwrap();
        assert_eq!(want.output, got.output, "{src}");
        assert_eq!(want.counters, got.counters, "{src}");
    }
    // Neither path clones the interpreter for dirty-seat recovery.
    assert_eq!(
        rendezvous.interp_mut().clone_count(),
        pipelined.interp_mut().clone_count()
    );
}

/// Directed: worker errors inside a pipelined batch surface on the right
/// command, with the right global job index, and the pipeline keeps
/// going.
#[test]
fn worker_error_mid_batch_matches_rendezvous() {
    let mut rendezvous = threaded_repl(3);
    let mut pipelined = threaded_repl(3);
    for line in PRELUDE {
        rendezvous.submit(line).unwrap();
        pipelined.submit(line).unwrap();
    }
    let inputs = [
        "(||| 4 boom (1 2 5 10))",
        "(||| 4 boom (1 0 5 0))", // worker 1 fails first
        "(||| 4 boom (2 4 5 10))",
    ];
    let batched = pipelined.submit_batch(&inputs).unwrap();
    for (src, got) in inputs.iter().zip(&batched) {
        let want = rendezvous.submit(src).unwrap();
        assert_eq!(want.output, got.output, "{src}");
        assert_eq!(want.ok, got.ok, "{src}");
        assert_eq!(want.counters, got.counters, "{src}");
    }
    assert!(!batched[1].ok);
    assert!(
        batched[1].output.contains("worker 1"),
        "{}",
        batched[1].output
    );
}

/// A warm pipelined batch of pure sections performs zero interpreter
/// clones — the PR 3 acceptance invariant, now also holding for
/// mutating workloads (snapshot resync replaced the dirty re-fork).
#[test]
fn warm_batches_keep_the_zero_clone_invariant() {
    let mut repl = threaded_repl(4);
    for line in PRELUDE {
        repl.submit(line).unwrap();
    }
    repl.submit("(||| 4 fibj (1 2 3 4))").unwrap(); // warm the pool
    let clones = repl.interp_mut().clone_count();
    let mixed: Vec<&str> = vec![
        "(||| 4 fibj (1 2 3 4))",
        "(||| 4 bump (1 2 3 4))", // dirties every seat
        "(||| 4 addg (1 2 3 4))", // forces snapshot re-arms
    ]
    .into_iter()
    .cycle()
    .take(30)
    .collect();
    let replies = repl.submit_batch(&mixed).unwrap();
    assert!(replies.iter().all(|r| r.ok));
    assert_eq!(
        repl.interp_mut().clone_count(),
        clones,
        "warm pipelined batches (dirty seats included) must not clone"
    );
}
