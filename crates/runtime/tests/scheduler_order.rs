//! Scheduler-level ordering properties: over randomized command streams
//! (stageable commands, barriers, stage-time failures), run caps, byte
//! budgets and pipeline depths — with a queue whose collection path
//! *refuses and re-arms* whole runs like a poisoned worker seat — the
//! [`BatchScheduler`] must
//!
//! 1. deliver exactly one reply per input, re-sequenced into submission
//!    order (each reply provably derived from its own input);
//! 2. run every barrier only after **all earlier commands have replied**
//!    and with zero runs in flight (the drain guarantee the REPLs'
//!    mutation safety rests on);
//! 3. never exceed the queue's run cap, byte budget, or pipeline depth;
//! 4. dispatch and collect runs strictly FIFO.
//!
//! The real-backend equivalents (replies and meter charges against a
//! `submit` loop, refusals from genuinely dirty worker seats) live in
//! `pipelined_equivalence.rs` and `tests/backend_differential.rs`; this
//! suite pins the state machine itself, where the failure modes are
//! easiest to reach exhaustively.

use culi_runtime::scheduler::{BatchScheduler, ExecQueue, Verdict};
use culi_runtime::Reply;
use proptest::prelude::*;

fn reply(text: String) -> Reply {
    Reply {
        output: text,
        ok: true,
        ..Default::default()
    }
}

/// One generated command. Rendered as `s<k>`/`b<k>`/`f<k>` strings so
/// every reply can be checked against the exact input that produced it.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    /// Stageable; the payload pads the input to exercise byte budgets.
    Stage(u8),
    /// Barrier (a define/setq analogue).
    Barrier,
    /// Stage-time failure: classified stageable, then fails preparation —
    /// the queue reports it as an error-carrying barrier.
    StageFail,
}

fn cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (0u8..12).prop_map(Cmd::Stage),
        Just(Cmd::Barrier),
        Just(Cmd::StageFail),
    ]
}

fn render(k: usize, c: Cmd) -> String {
    match c {
        Cmd::Stage(pad) => format!("s{k}:{}", "x".repeat(pad as usize)),
        Cmd::Barrier => format!("b{k}"),
        Cmd::StageFail => format!("f{k}"),
    }
}

/// A mock queue with the CPU/GPU queues' structural behaviours: bounded
/// runs, a byte budget, FIFO in-flight runs, and — on collection — a
/// configurable chance that a run comes back *refused* and must be
/// re-armed (re-executed) before its replies land, like a soft-poisoned
/// pool seat bouncing stale dispatches.
struct MockQueue {
    max_run: usize,
    depth: usize,
    byte_budget: usize,
    /// Every `refuse_every`-th collected run is refused once first.
    refuse_every: usize,
    collected_runs: usize,
    outstanding: usize,
    next_run_id: usize,
    /// FIFO discipline check: runs must collect in dispatch order.
    expect_collect: usize,
    refusals_seen: usize,
}

struct MockRun {
    id: usize,
    cmds: Vec<(usize, String)>,
    /// Times this run was bounced before executing.
    refused: usize,
}

impl<'i> ExecQueue<'i> for MockQueue {
    type Staged = (usize, &'i str);
    type Barrier = (bool, &'i str);
    type Run = MockRun;

    fn max_run_len(&self) -> usize {
        self.max_run
    }

    fn pipeline_depth(&self) -> usize {
        self.depth
    }

    fn admits(&self, _run_len: usize, run_bytes: usize, input: &str) -> bool {
        run_bytes + input.len() <= self.byte_budget
    }

    fn classify_and_stage(
        &mut self,
        input: &'i str,
        slot: usize,
    ) -> culi_runtime::Result<Verdict<Self::Staged, Self::Barrier>> {
        Ok(match input.as_bytes()[0] {
            b's' => Verdict::Stage((slot, input)),
            b'f' => Verdict::Barrier((true, input)),
            _ => Verdict::Barrier((false, input)),
        })
    }

    fn dispatch(&mut self, run: Vec<Self::Staged>) -> culi_runtime::Result<Self::Run> {
        assert!(!run.is_empty(), "dispatched an empty run");
        assert!(run.len() <= self.max_run, "run over the cap");
        let bytes: usize = run.iter().map(|(_, s)| s.len()).sum();
        // The first command always joins (admits is never consulted for
        // an empty run), so only multi-command runs are budget-bounded.
        assert!(
            run.len() == 1 || bytes <= self.byte_budget,
            "run over the byte budget"
        );
        self.outstanding += 1;
        assert!(self.outstanding <= self.depth, "pipeline over depth");
        let id = self.next_run_id;
        self.next_run_id += 1;
        Ok(MockRun {
            id,
            cmds: run.iter().map(|&(slot, s)| (slot, s.to_string())).collect(),
            refused: 0,
        })
    }

    fn collect(
        &mut self,
        mut run: MockRun,
        replies: &mut [Option<Reply>],
    ) -> culi_runtime::Result<()> {
        assert_eq!(run.id, self.expect_collect, "runs collected out of FIFO");
        self.expect_collect += 1;
        self.collected_runs += 1;
        // Model a poisoned seat bouncing the whole run: the queue re-arms
        // and re-executes internally — the scheduler never observes it,
        // and replies still land in their slots.
        if self.refuse_every > 0 && self.collected_runs.is_multiple_of(self.refuse_every) {
            run.refused += 1;
            self.refusals_seen += 1;
        }
        self.outstanding -= 1;
        for (slot, input) in run.cmds {
            assert!(replies[slot].is_none(), "slot {slot} replied twice");
            replies[slot] = Some(reply(format!("ok({input})+r{}", run.refused)));
        }
        Ok(())
    }

    fn run_sequential(
        &mut self,
        _input: &'i str,
        _slot: usize,
        _replies: &mut [Option<Reply>],
    ) -> culi_runtime::Result<()> {
        // Only called for slots surfaced by `take_failed`; this mock
        // never reports any (the default impl returns an empty list).
        unreachable!("MockQueue never degrades")
    }

    fn run_barrier(
        &mut self,
        (fail, input): Self::Barrier,
        slot: usize,
        replies: &mut [Option<Reply>],
    ) -> culi_runtime::Result<()> {
        // The drain guarantee: nothing in flight, all earlier slots done.
        assert_eq!(self.outstanding, 0, "barrier with runs in flight");
        assert!(
            replies[..slot].iter().all(Option::is_some),
            "barrier at slot {slot} before earlier replies"
        );
        let tag = if fail { "err" } else { "bar" };
        replies[slot] = Some(reply(format!("{tag}({input})")));
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random streams × random queue shapes: every reply lands in its
    /// submission slot carrying its own input, under refusals and
    /// barriers alike.
    #[test]
    fn resequencing_preserves_submission_order(
        cmds in prop::collection::vec(cmd(), 0..24),
        max_run in 1usize..6,
        depth in 1usize..4,
        byte_budget in 12usize..40,
        refuse_every in 0usize..4,
    ) {
        let sources: Vec<String> = cmds.iter().enumerate().map(|(k, &c)| render(k, c)).collect();
        let inputs: Vec<&str> = sources.iter().map(String::as_str).collect();
        let mut q = MockQueue {
            max_run,
            depth,
            byte_budget,
            refuse_every,
            collected_runs: 0,
            outstanding: 0,
            next_run_id: 0,
            expect_collect: 0,
            refusals_seen: 0,
        };
        let replies = BatchScheduler::submit_batch(&mut q, &inputs).unwrap();
        prop_assert_eq!(replies.len(), inputs.len());
        prop_assert_eq!(q.outstanding, 0, "batch ended with runs in flight");
        for (k, (got, src)) in replies.iter().zip(&sources).enumerate() {
            let want = match cmds[k] {
                Cmd::Stage(_) => format!("ok({src})+r"),
                Cmd::Barrier => format!("bar({src})"),
                Cmd::StageFail => format!("err({src})"),
            };
            prop_assert!(
                got.output.starts_with(&want) || got.output == want,
                "slot {} got {} want {}*", k, got.output, want
            );
        }
    }
}

/// Directed: a stream engineered so every run is refused once still
/// resequences perfectly — refusal re-arming is invisible above the
/// queue.
#[test]
fn every_run_refused_once_still_resequences() {
    let sources: Vec<String> = (0..20).map(|k| format!("s{k}:")).collect();
    let inputs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let mut q = MockQueue {
        max_run: 3,
        depth: 2,
        byte_budget: 1 << 20,
        refuse_every: 1, // refuse every run once
        collected_runs: 0,
        outstanding: 0,
        next_run_id: 0,
        expect_collect: 0,
        refusals_seen: 0,
    };
    let replies = BatchScheduler::submit_batch(&mut q, &inputs).unwrap();
    assert!(
        q.refusals_seen >= 7,
        "workload must actually exercise refusal"
    );
    for (k, (got, src)) in replies.iter().zip(&sources).enumerate() {
        assert_eq!(got.output, format!("ok({src})+r1"), "slot {k}");
    }
}
