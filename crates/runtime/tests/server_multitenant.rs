//! Multi-tenant server properties over randomized tenant populations,
//! command streams and server tuning (quantum, in-flight cap, warm-set
//! bound, promotion point):
//!
//! 1. **Per-tenant FIFO + byte-identity** — each tenant's reply stream
//!    (output, ok flag, code, counters) is identical to the same commands
//!    fed through an isolated [`Session::tenant`] submit loop, whatever
//!    route the server picked (cold reference, warm pool, re-warmed after
//!    LRU eviction). This subsumes "evicted-then-returning sessions
//!    resume with identical env state and counters": with `warm_limit: 1`
//!    and immediate promotion, tenants continually evict each other
//!    between their own commands.
//! 2. **Fair share** — every tenant with queued work is served at least
//!    once per round, and never more than the in-flight cap per round.
//! 3. **In-flight cap** — `max_inflight_seen` never exceeds the
//!    configured cap.
//! 4. **Backpressure accounting** — with tiny queue bounds, every submit
//!    is either queued or refused with the right structured code, and
//!    accepted == executed (nothing lost, nothing silently dropped).
//!
//! Case count is modest by default; `CULI_SERVER_CASES` scales it up for
//! the deep CI sweep.

use culi_core::ErrorCode;
use culi_runtime::{ServerConfig, Session, SessionServer, TenantId, TenantSessionConfig};
use proptest::prelude::*;

fn cases(default: u32) -> u32 {
    std::env::var("CULI_SERVER_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One generated command. All shapes are deterministic and error-free so
/// healthy-tenant byte-identity is exact (resource errors are the
/// quarantine suite's domain, exercised in `server.rs` unit tests and the
/// differential fault sweep).
#[derive(Debug, Clone, Copy)]
enum Cmd {
    /// `(setq v k)` — barrier, mutates the tenant's env.
    Set(u8),
    /// `(+ v k)` — cheap pure read.
    Add(u8),
    /// `(||| 2 + (a b) (4 5))` — stageable parallel section (forks the
    /// pool on the warm route).
    Section(u8, u8),
    /// `(list v k)` — allocating read.
    List(u8),
}

fn cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (0u8..20).prop_map(Cmd::Set),
        (0u8..20).prop_map(Cmd::Add),
        (0u8..9, 0u8..9).prop_map(|(a, b)| Cmd::Section(a, b)),
        (0u8..20).prop_map(Cmd::List),
    ]
}

fn render(c: Cmd) -> String {
    match c {
        Cmd::Set(k) => format!("(setq v {k})"),
        Cmd::Add(k) => format!("(+ v {k})"),
        Cmd::Section(a, b) => format!("(||| 2 + ({a} {b}) (4 5))"),
        Cmd::List(k) => format!("(list v {k})"),
    }
}

/// Tenant streams: 2–4 tenants, 3–7 commands each, each stream prefixed
/// with `(setq v 1)` so later reads are defined.
fn streams() -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(prop::collection::vec(cmd(), 3..8), 2..5).prop_map(|tenants| {
        tenants
            .into_iter()
            .map(|cmds| {
                let mut stream = vec!["(setq v 1)".to_string()];
                stream.extend(cmds.into_iter().map(render));
                stream
            })
            .collect()
    })
}

fn tenant_cfg() -> TenantSessionConfig {
    TenantSessionConfig {
        fuel_budget: 500_000,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// Properties 1–3: drive `pump_round` by hand over random streams and
    /// tuning, asserting fairness bounds per round and byte-identity per
    /// tenant at the end.
    #[test]
    fn server_matches_isolated_sessions_under_fair_rounds(
        streams in streams(),
        quantum in 1usize..5,
        max_inflight in 1usize..4,
        promote_now in proptest::prelude::any::<bool>(),
        warm_limit in 1usize..3,
    ) {
        let spec = culi_gpu_sim::device::intel_e5_2620();
        let config = ServerConfig {
            quantum,
            max_inflight,
            // `promote_now` exercises the warm route (and with
            // warm_limit 1, constant LRU eviction + re-warm); otherwise
            // every tenant rides the cold reference route.
            promote_after: if promote_now { 0 } else { u64::MAX },
            warm_limit,
            // Scoring must never trip for healthy streams.
            quarantine_threshold: u32::MAX,
            reject_threshold: u32::MAX,
            ..Default::default()
        };
        let mut srv = SessionServer::new(spec, config);
        let ids: Vec<TenantId> = streams.iter().map(|_| srv.admit(tenant_cfg())).collect();
        for (t, stream) in streams.iter().enumerate() {
            for cmd in stream {
                prop_assert!(srv.enqueue(ids[t], cmd).is_none(), "refusal under default bounds");
            }
        }

        let mut replies: Vec<Vec<_>> = streams.iter().map(|_| Vec::new()).collect();
        loop {
            let backlogged: Vec<usize> = srv
                .server_stats()
                .tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| t.queued > 0)
                .map(|(i, _)| i)
                .collect();
            if backlogged.is_empty() {
                break;
            }
            let round = srv.pump_round();
            let mut served = vec![0usize; streams.len()];
            for (id, r) in round {
                served[id.index()] += 1;
                replies[id.index()].push(r);
            }
            for &t in &backlogged {
                // Property 2: fair share every round, bounded above by
                // the in-flight cap.
                prop_assert!(served[t] >= 1, "tenant {t} starved this round");
                prop_assert!(served[t] <= max_inflight, "tenant {t} over-served");
            }
        }

        // Property 1: per-tenant FIFO byte-identity with an isolated
        // session, whatever mixture of cold / warm / evicted-and-rewarmed
        // service the tenant saw.
        let stats = srv.server_stats();
        for (t, stream) in streams.iter().enumerate() {
            prop_assert_eq!(replies[t].len(), stream.len());
            let mut isolated = Session::tenant(spec, &tenant_cfg());
            for (k, cmd) in stream.iter().enumerate() {
                let want = isolated.submit(cmd).unwrap();
                let got = &replies[t][k];
                prop_assert_eq!(&got.output, &want.output, "tenant {} cmd {}", t, cmd);
                prop_assert_eq!(got.ok, want.ok, "tenant {} cmd {}", t, cmd);
                prop_assert_eq!(got.code, want.code, "tenant {} cmd {}", t, cmd);
                prop_assert_eq!(got.counters, want.counters, "tenant {} cmd {}", t, cmd);
            }
            isolated.shutdown();
            // Property 3 + metering: cap respected, meters consistent.
            let ts = &stats.tenants[t].stats;
            prop_assert!(ts.max_inflight_seen <= max_inflight);
            prop_assert_eq!(ts.executed, stream.len() as u64);
            prop_assert_eq!(ts.ok, stream.len() as u64);
            prop_assert_eq!(ts.enqueued, stream.len() as u64);
        }
        prop_assert!(stats.warm_tenants <= warm_limit);
        srv.shutdown();
    }
}

/// Regression (quarantine ladder): degraded successes decay the failure
/// score at half rate. Before the fix an `ErrorCode::Degraded` ok reply
/// decayed like a plain success, so a single cheap command popped a
/// hostile tenant straight back out of degradation-only service.
#[test]
fn degraded_successes_decay_failure_score_at_half_rate() {
    let spec = culi_gpu_sim::device::intel_e5_2620();
    let mut srv = SessionServer::new(
        spec,
        ServerConfig {
            quarantine_threshold: 4,
            reject_threshold: 100,
            ..Default::default()
        },
    );
    let noisy = srv.admit(TenantSessionConfig {
        fuel_budget: 10_000,
        ..Default::default()
    });
    let runaway = "(dotimes (k 100000000) (* k k))";
    // Two fuel runaways (+2 each) reach the quarantine threshold of 4.
    for _ in 0..2 {
        assert!(srv.enqueue(noisy, runaway).is_none());
    }
    let replies = srv.drain();
    assert!(replies.iter().all(|(_, r)| r.code == ErrorCode::Fuel));
    // First success under quarantine: degraded, and at half-rate decay
    // the score must still sit at the threshold...
    assert!(srv.enqueue(noisy, "(+ 1 1)").is_none());
    let replies = srv.drain();
    assert_eq!(replies[0].1.code, ErrorCode::Degraded);
    // ...so the second success is STILL degraded (score only now decays
    // to 3). Under the old full-rate decay this reply came back Ok.
    assert!(srv.enqueue(noisy, "(+ 2 2)").is_none());
    let replies = srv.drain();
    assert_eq!(replies[0].1.code, ErrorCode::Degraded);
    // Score dropped below the threshold after two degraded successes:
    // the third is served normally again.
    assert!(srv.enqueue(noisy, "(+ 3 3)").is_none());
    let replies = srv.drain();
    assert_eq!(replies[0].1.code, ErrorCode::Ok);
    assert!(replies[0].1.ok);
    srv.shutdown();
}

/// Regression (LRU recency on re-warm): a tenant evicted and then
/// transparently re-warmed must become most-recently-used. Before the
/// fix the LRU stamp was round-granular and ties broke by tenant index,
/// so the freshly re-warmed tenant was immediately re-evicted (thrash).
#[test]
fn rewarmed_tenant_becomes_most_recently_used() {
    let spec = culi_gpu_sim::device::intel_e5_2620();
    let mut srv = SessionServer::new(
        spec,
        ServerConfig {
            warm_limit: 1,
            promote_after: 0,
            ..Default::default()
        },
    );
    let a = srv.admit(tenant_cfg());
    let b = srv.admit(tenant_cfg());
    let section = "(||| 2 + (1 2) (3 4))";
    // Round 1: only b runs — b holds the single warm slot.
    assert!(srv.enqueue(b, section).is_none());
    srv.drain();
    let stats = srv.server_stats();
    assert!(stats.tenants[b.index()].warm);
    assert!(!stats.tenants[a.index()].warm);
    // Round 2: b is served first (round-robin cursor), then a re-warms.
    // Both were served "this round", so a round-granular stamp ties and
    // index order evicted a — the tenant that was served *last*.
    assert!(srv.enqueue(a, section).is_none());
    assert!(srv.enqueue(b, section).is_none());
    let replies = srv.pump_round();
    assert_eq!(replies.len(), 2);
    assert!(replies.iter().all(|(_, r)| r.ok));
    let stats = srv.server_stats();
    assert_eq!(stats.warm_tenants, 1);
    assert!(
        stats.tenants[a.index()].warm,
        "most-recently-served tenant must keep its warm slot"
    );
    assert!(!stats.tenants[b.index()].warm);
    assert_eq!(stats.tenants[b.index()].stats.evictions, 1);
    srv.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// Property 4: tiny queue bounds. Every submit either queues or is
    /// refused with the structured code matching the bound it hit, and
    /// every accepted command executes exactly once.
    #[test]
    fn backpressure_accounting_is_exact(
        submits in prop::collection::vec((0usize..3, 0u8..20), 1..40),
        queue_capacity in 1usize..4,
        global_capacity in 2usize..8,
    ) {
        let spec = culi_gpu_sim::device::intel_e5_2620();
        let mut srv = SessionServer::new(
            spec,
            ServerConfig {
                queue_capacity,
                global_queue_capacity: global_capacity,
                ..Default::default()
            },
        );
        let ids: Vec<TenantId> = (0..3).map(|_| srv.admit(tenant_cfg())).collect();
        let mut accepted = [0u64; 3];
        let mut refused = [0u64; 3];
        for &(t, k) in &submits {
            let queued_before = srv.server_stats().queued;
            let tenant_before = srv.server_stats().tenants[t].queued;
            match srv.enqueue(ids[t], &format!("(+ {k} 1)")) {
                None => {
                    accepted[t] += 1;
                    prop_assert!(tenant_before < queue_capacity);
                    prop_assert!(queued_before < global_capacity);
                }
                Some(r) => {
                    refused[t] += 1;
                    prop_assert!(!r.ok);
                    if queued_before >= global_capacity {
                        prop_assert_eq!(r.code, ErrorCode::Overloaded);
                    } else {
                        prop_assert_eq!(r.code, ErrorCode::QueueFull);
                        prop_assert!(tenant_before >= queue_capacity);
                    }
                    // Refusals never execute: all counters zero.
                    prop_assert_eq!(r.counters.combined().total(), 0);
                }
            }
        }
        let replies = srv.drain();
        let mut executed = [0u64; 3];
        for (id, r) in &replies {
            executed[id.index()] += 1;
            prop_assert!(r.ok);
        }
        let stats = srv.server_stats();
        for t in 0..3 {
            prop_assert_eq!(executed[t], accepted[t], "tenant {}", t);
            let ts = &stats.tenants[t].stats;
            prop_assert_eq!(ts.enqueued, accepted[t]);
            prop_assert_eq!(ts.executed, accepted[t]);
            prop_assert_eq!(ts.shed_queue_full + ts.shed_overloaded, refused[t]);
        }
        srv.shutdown();
    }
}
