//! Phase accounting: operation counts → device cycles → milliseconds.
//!
//! The paper's evaluation (Figs. 16/17/18) splits every command into three
//! device phases — parsing, evaluating, printing — and reports both
//! absolute times and proportions. [`PhaseBreakdown`] is that record for
//! one submitted command.

use culi_core::cost::Counters;
use culi_gpu_sim::{CostTable, DeviceSpec};

/// Converts one phase's operation counts into device cycles under a cost
/// table. This is the *entire* timing model: exact counts × calibrated
/// per-op prices.
pub fn counters_to_cycles(costs: &CostTable, c: &Counters) -> u64 {
    c.chars_scanned * costs.char_scan
        + c.nodes_alloc * costs.node_alloc
        + c.nodes_freed * costs.node_read
        + c.node_reads * costs.node_read
        + c.eval_steps * costs.eval_step
        + c.env_probes * costs.env_probe
        + c.symbol_cmp_bytes * costs.sym_cmp_byte
        + c.arith_ops * costs.arith
        + c.builtin_calls * costs.builtin_call
        + c.form_applies * costs.form_apply
        + c.output_bytes * costs.output_byte
        + c.number_formats * costs.num_format
}

/// Paper-model operation counters of one REPL command, split the way the
/// cost model attributes them. Every backend fills this identically for
/// the same program — the cross-backend differential harness asserts it —
/// so `parse`/`eval_master`/`print` cover the master thread's three
/// phases and `jobs` covers work evaluated inside `|||` workers (measured
/// in the worker interpreters for the real-threads backends, separated on
/// the master meter for the modeled ones).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommandCounters {
    /// Tokenize/parse phase.
    pub parse: Counters,
    /// Master-side evaluation work (job evaluation excluded).
    pub eval_master: Counters,
    /// Work evaluated inside `|||` section jobs (nested sections counted
    /// once). Backend synchronization traffic — flat-codec encode/decode,
    /// sync replay, fork imports — is *not* paper-model work and is never
    /// charged here or anywhere else.
    pub jobs: Counters,
    /// Print phase.
    pub print: Counters,
}

impl CommandCounters {
    /// Element-wise sum of all four groups: the command's total
    /// paper-model work regardless of where it ran.
    pub fn combined(&self) -> Counters {
        let mut total = self.parse;
        total.add(&self.eval_master);
        total.add(&self.jobs);
        total.add(&self.print);
        total
    }
}

/// Per-phase timing of one REPL command on one device.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Parse phase, device cycles.
    pub parse_cycles: u64,
    /// Evaluation phase, device cycles (master dispatch + parallel-section
    /// time; worker compute is inside the section's execute time).
    pub eval_cycles: u64,
    /// Print phase, device cycles.
    pub print_cycles: u64,
    /// Host↔device transfer overhead, nanoseconds.
    pub transfer_ns: u64,
    /// Device clock in MHz (to render cycles as time).
    pub clock_mhz: u32,
}

impl PhaseBreakdown {
    /// Total device cycles across the three phases.
    pub fn total_cycles(&self) -> u64 {
        self.parse_cycles + self.eval_cycles + self.print_cycles
    }

    fn to_ms(self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz as f64 * 1_000.0)
    }

    /// Parse time in milliseconds.
    pub fn parse_ms(&self) -> f64 {
        self.to_ms(self.parse_cycles)
    }

    /// Evaluation time in milliseconds.
    pub fn eval_ms(&self) -> f64 {
        self.to_ms(self.eval_cycles)
    }

    /// Print time in milliseconds.
    pub fn print_ms(&self) -> f64 {
        self.to_ms(self.print_cycles)
    }

    /// Kernel execution time in milliseconds (sum of the three phases —
    /// the quantity of paper Fig. 16a).
    pub fn execution_ms(&self) -> f64 {
        self.to_ms(self.total_cycles())
    }

    /// Total including host transfer, milliseconds (paper Fig. 15).
    pub fn runtime_ms(&self) -> f64 {
        self.execution_ms() + self.transfer_ns as f64 / 1e6
    }

    /// `(parse, eval, print)` shares of the kernel time, each in `[0, 1]`
    /// (paper Figs. 17/18). All zeros for an empty command.
    pub fn proportions(&self) -> (f64, f64, f64) {
        let total = self.total_cycles();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.parse_cycles as f64 / t,
            self.eval_cycles as f64 / t,
            self.print_cycles as f64 / t,
        )
    }
}

/// Builds a breakdown from per-phase counters and a device.
pub fn breakdown(
    spec: &DeviceSpec,
    parse: &Counters,
    eval: &Counters,
    print: &Counters,
    extra_eval_cycles: u64,
    transfer_ns: u64,
) -> PhaseBreakdown {
    PhaseBreakdown {
        parse_cycles: counters_to_cycles(&spec.costs, parse),
        eval_cycles: counters_to_cycles(&spec.costs, eval) + extra_eval_cycles,
        print_cycles: counters_to_cycles(&spec.costs, print),
        transfer_ns,
        clock_mhz: spec.clock_mhz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culi_gpu_sim::device::gtx1080;

    #[test]
    fn counters_to_cycles_is_linear() {
        let costs = gtx1080().costs;
        let a = Counters {
            chars_scanned: 10,
            ..Default::default()
        };
        let b = Counters {
            chars_scanned: 20,
            ..Default::default()
        };
        assert_eq!(
            2 * counters_to_cycles(&costs, &a),
            counters_to_cycles(&costs, &b)
        );
        assert_eq!(counters_to_cycles(&costs, &Counters::default()), 0);
    }

    #[test]
    fn proportions_sum_to_one() {
        let p = PhaseBreakdown {
            parse_cycles: 500,
            eval_cycles: 300,
            print_cycles: 200,
            transfer_ns: 0,
            clock_mhz: 1000,
        };
        let (a, b, c) = p.proportions();
        assert!((a + b + c - 1.0).abs() < 1e-12);
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ms_conversion_uses_clock() {
        let p = PhaseBreakdown {
            parse_cycles: 1_000_000,
            eval_cycles: 0,
            print_cycles: 0,
            transfer_ns: 500_000,
            clock_mhz: 1000, // 1 GHz → 1e6 cycles = 1 ms
        };
        assert!((p.parse_ms() - 1.0).abs() < 1e-9);
        assert!((p.runtime_ms() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_has_zero_proportions() {
        let p = PhaseBreakdown {
            clock_mhz: 1000,
            ..Default::default()
        };
        assert_eq!(p.proportions(), (0.0, 0.0, 0.0));
    }
}
