//! The CPU read–eval–print loops (the paper's comparison systems).
//!
//! Three backends share one type:
//!
//! * **Modeled** — the same staged pipeline as the GPU session, but timed
//!   by a [`CpuMachine`] (list-scheduled pthread workers, no warps, no
//!   postbox spinning). This is the backend behind the CPU series of
//!   Figs. 14–18.
//! * **Threaded** — `|||` sections really run on OS threads: a
//!   persistent [`ThreadedHook`] worker pool (see [`crate::pool`]) keeps
//!   warm interpreter forks alive across sections and commands,
//!   synchronizing them incrementally through the flat postbox codec.
//!   This backend proves the interpreter's parallel semantics on real
//!   hardware and reports wall-clock time. [`CpuRepl::submit_batch`]
//!   additionally *pipelines* a command stream through the pool's
//!   double-buffered postboxes (see below).
//! * **ForkPerSection** — PR 1's clone-the-interpreter baseline
//!   ([`ForkPerSectionHook`]), retained for benchmarks and as a semantic
//!   reference in the cross-backend differential harness.
//!
//! # Pipelined command batches
//!
//! A synchronous `submit` pays one full postbox rendezvous per `|||`
//! section: encode, wake every worker, sleep until every reply. When the
//! caller hands over a whole command *stream*, most of that latency can
//! be overlapped: [`CpuRepl::submit_batch`] routes the stream through the
//! shared [`crate::scheduler::BatchScheduler`], with this type
//! implementing the [`ExecQueue`] staging hooks. A command is stageable
//! when it is a top-level `(||| …)` whose operands are all provably
//! **pure** under the conservative effect analysis in
//! [`culi_core::effects`] — literals, symbol reads, and known-pure-builtin
//! trees such as `(list g g)`, computed worker counts, or conditionals
//! over globals; the section is prepared into the pool's double buffers
//! and the scheduler moves straight on to parsing and staging the next
//! command, collecting replies in order as the pipeline fills. Any other
//! command — defines, `setq`s, operands invoking user forms or I/O,
//! parse errors — acts as a barrier: the scheduler drains the pipeline,
//! then the command runs through the ordinary synchronous path. Staging a
//! pure-operand section early is invisible because nothing in flight can
//! mutate the state its operands read. Observable behaviour (replies,
//! error text, per-command [`CommandCounters`]) is identical to a
//! `submit` loop; the equivalence is property-tested and the staging path
//! reuses [`culi_core::builtins::prepare_section`] plus a charge-exact
//! mirror of the evaluator's dispatch so the meter cannot drift (the
//! classifier itself is charge-free). PR 3's purely syntactic
//! inert-operand rule is retained as [`BatchClassifier::SyntacticInert`]
//! for benchmarks (`bench_pr4` measures the breadth win against it).
//!
//! The fork-per-section baseline implements the same queue: its
//! `dispatch` simply executes each staged section through
//! [`ForkPerSectionHook`] on the spot (pipeline depth 1 — there is no
//! worker state to overlap with), which keeps the baseline's batched
//! replies charge-identical to its `submit` loop while sharing every line
//! of classify/stage/drain logic with the pooled backend.

use crate::cache::{CommandCache, FingerprintTracker, ReplyTicket};
use crate::error::{Result, RuntimeError};
use crate::phases::{breakdown, counters_to_cycles, CommandCounters};
use crate::pool::{ForkPerSectionHook, ThreadedHook, WorkerPool};
use crate::reply::Reply;
use crate::scheduler::{BatchScheduler, ExecQueue, Verdict};
use culi_core::cost::Counters;
use culi_core::eval::{eval, ParallelHook};
use culi_core::fault::FaultPlan;
use culi_core::node::{NodeType, Payload};
use culi_core::structhash::StructKey;
use culi_core::{CuliError, ErrorCode, Interp, InterpConfig, NodeId};
use culi_gpu_sim::{CpuMachine, DeviceSpec, SectionReport, SimError};
use std::collections::HashMap;
use std::time::Duration;

/// How `|||` sections execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuMode {
    /// Deterministic cost-model timing (figures).
    Modeled,
    /// Real scoped OS threads (functional parallelism; wall-clock timing).
    Threaded {
        /// Worker thread count.
        threads: usize,
    },
    /// PR 1's whole-interpreter-clone-per-section baseline.
    ForkPerSection {
        /// Worker thread count.
        threads: usize,
    },
}

/// How [`CpuRepl::submit_batch`] decides whether a command's `|||`
/// section may be staged into the pipeline or must barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchClassifier {
    /// Conservative side-effect analysis over the parse tree
    /// ([`culi_core::effects`]): operands may be arbitrary trees of
    /// known-pure builtins, so `(||| n f (list …))` and computed worker
    /// counts pipeline too.
    #[default]
    EffectAnalysis,
    /// PR 3's syntactic rule — only atoms, symbols and literal lists are
    /// stageable operands; any nested expression barriers. Retained as
    /// the benchmark baseline (`bench_pr4`).
    SyntacticInert,
}

/// Configuration for a CPU session.
#[derive(Debug, Clone)]
pub struct CpuReplConfig {
    /// Interpreter limits.
    pub interp: InterpConfig,
    /// Execution mode.
    pub mode: CpuMode,
    /// Run the collector between commands.
    pub gc_between_commands: bool,
    /// Host-side file services exposed to device code.
    pub host_io: Option<culi_core::hostio::HostIoHandle>,
    /// Batch staging rule (see [`BatchClassifier`]).
    pub batch_classifier: BatchClassifier,
    /// Worker-pool watchdog: how long one reply take may block before
    /// the seat is declared hung and detached (Threaded mode).
    pub reply_deadline: Duration,
    /// Deterministic fault script handed to the worker pool (empty in
    /// production; the differential fault harness scripts it).
    pub fault_plan: FaultPlan,
    /// Structural-hash command cache ([`crate::cache`]): `None` (the
    /// default) leaves every path uncached; `Some` enables the verdict,
    /// template and reply tiers for [`CpuRepl::submit_batch`] streams.
    /// Replies served from cache are bit-identical to the uncached run
    /// (the differential harness runs a cache-on arm).
    pub cache: Option<CommandCache>,
}

impl Default for CpuReplConfig {
    fn default() -> Self {
        Self {
            interp: InterpConfig::default(),
            mode: CpuMode::Modeled,
            gc_between_commands: true,
            host_io: None,
            batch_classifier: BatchClassifier::default(),
            reply_deadline: WorkerPool::DEFAULT_REPLY_DEADLINE,
            fault_plan: FaultPlan::none(),
            cache: None,
        }
    }
}

/// A live CuLi session on a (modeled or real) CPU.
#[derive(Debug)]
pub struct CpuRepl {
    interp: Interp,
    machine: CpuMachine,
    config: CpuReplConfig,
    /// Persistent real-threads backend (Threaded mode only; the worker
    /// pool inside survives across commands).
    threaded: Option<ThreadedHook>,
    /// Persistent fork-per-section baseline backend.
    forked: Option<ForkPerSectionHook>,
    /// Reused per-job cycle scratch for the modeled backend.
    scratch_cycles: Vec<u64>,
    /// Staged-but-undispatched job trees (and, fork mode, executed-but-
    /// uncollected section results): kept as GC roots while in-flight
    /// sections of *earlier* commands are collected (their
    /// between-command GC must not sweep them).
    batch_roots: Vec<NodeId>,
    /// A drained barrier command's parsed forms, rooted from
    /// classification until its synchronous execution.
    barrier_roots: Vec<NodeId>,
    /// Reused concatenation buffer for the two root sets.
    gc_scratch: Vec<NodeId>,
    /// Reply slots written off by an infrastructure failure, awaiting
    /// the scheduler's sequential fallback ([`ExecQueue::take_failed`]).
    degraded_slots: Vec<usize>,
    /// Incremental classifier-environment fingerprint (verdict-tier key
    /// dimension; see [`crate::cache`] module docs).
    fingerprint: FingerprintTracker,
    /// Reply-tier store tickets recorded at classify time for cache
    /// misses of classified-pure commands, keyed by batch slot and
    /// consumed when the slot's `Ok` reply is produced.
    pending_store: HashMap<usize, ReplyTicket>,
}

impl BatchClassifier {
    /// Fingerprint discriminant: the two classifiers disagree on some
    /// shapes, so their cached verdicts must not share entries. (The GPU
    /// repl classifies with the same effect analysis and shares the
    /// `EffectAnalysis` tag — a verdict is a property of the rule and
    /// the environment, not of the backend.)
    pub(crate) fn fingerprint_tag(self) -> u8 {
        match self {
            BatchClassifier::EffectAnalysis => 0xEA,
            BatchClassifier::SyntacticInert => 0x51,
        }
    }
}

/// A pipelined command whose section is staged but not yet collected.
#[derive(Debug)]
struct PendingCommand {
    /// Index into the batch's reply vector.
    slot: usize,
    /// Wall clock at parse start.
    wall_start: std::time::Instant,
    /// Parse-phase counters (already machine-accounted).
    parse: Counters,
    /// Master-side eval counters spent staging (header eval, job build,
    /// encode-side dispatch).
    eval_stage: Counters,
}

impl CpuRepl {
    /// Boots a CPU session for `spec` (one of the catalog's CPU devices).
    pub fn launch(spec: DeviceSpec, config: CpuReplConfig) -> Self {
        let mut interp = Interp::new(config.interp.clone());
        interp.host_io = config.host_io.clone();
        Self {
            interp,
            machine: CpuMachine::launch(spec),
            config,
            threaded: None,
            forked: None,
            scratch_cycles: Vec::new(),
            batch_roots: Vec::new(),
            barrier_roots: Vec::new(),
            gc_scratch: Vec::new(),
            degraded_slots: Vec::new(),
            fingerprint: FingerprintTracker::new(),
            pending_store: HashMap::new(),
        }
    }

    /// The device this session models.
    pub fn spec(&self) -> DeviceSpec {
        *self.machine.spec()
    }

    /// Direct access to the interpreter (tests/diagnostics).
    pub fn interp_mut(&mut self) -> &mut Interp {
        &mut self.interp
    }

    /// Submits one command line.
    pub fn submit(&mut self, input: &str) -> Result<Reply> {
        self.submit_inner(input, false)
    }

    /// Submits one command forced through the master-side sequential
    /// reference, regardless of mode: no worker pool is consulted (or
    /// lazily forked), yet the reply — output, ok flag, counters — is
    /// byte-identical to what the pooled path would produce (the
    /// invariant `run_jobs_sequential_reference` pins). The session
    /// server routes *cold* tenants through this so hundreds of mostly
    /// idle sessions never each pay a pool fork; a tenant's replies are
    /// indistinguishable across the cold and warm routes.
    pub fn submit_reference(&mut self, input: &str) -> Result<Reply> {
        self.submit_inner(input, true)
    }

    /// Drops the session's warm parallel backends (worker pool and
    /// retained fork arena), returning the dispatch-buffer bytes that
    /// were retained. The next pooled submit transparently re-forks via
    /// [`ThreadedHook::pool_mut`] — eviction is invisible to the tenant
    /// beyond re-warm latency. No-op (returns 0) while cold.
    pub fn release_warm_forks(&mut self) -> usize {
        let freed = self.retained_warm_bytes();
        self.threaded = None;
        self.forked = None;
        freed
    }

    /// Bytes of dispatch-buffer capacity retained by this session's warm
    /// backends (0 while cold) — the unit the session server's eviction
    /// budget counts in.
    pub fn retained_warm_bytes(&self) -> usize {
        self.threaded
            .as_ref()
            .map_or(0, ThreadedHook::retained_buffer_bytes)
    }

    /// `true` while the session holds a warm (forked) parallel backend.
    pub fn has_warm_forks(&self) -> bool {
        self.threaded.as_ref().is_some_and(ThreadedHook::is_warm) || self.forked.is_some()
    }

    /// [`CpuRepl::submit`] body. With `reference` set, evaluation is
    /// forced through the master-side [`SequentialReferenceHook`]
    /// regardless of mode — the scheduler's degradation fallback, which
    /// must not depend on the (possibly lost) worker pool yet must
    /// produce replies byte-identical to it.
    fn submit_inner(&mut self, input: &str, reference: bool) -> Result<Reply> {
        if !self.machine.is_running() {
            return Err(RuntimeError::SessionClosed);
        }
        let wall_start = std::time::Instant::now();
        let costs = self.spec().costs;

        // --- Parse ------------------------------------------------------
        let m0 = self.interp.meter.snapshot();
        let parse_result = culi_core::parser::parse(&mut self.interp, input.as_bytes());
        let parse_counters = self.interp.meter.snapshot().delta_since(&m0);
        self.machine
            .serial_compute(counters_to_cycles(&costs, &parse_counters))?;
        let forms = match parse_result {
            Ok(forms) => forms,
            Err(e) => {
                return self.error_reply(
                    e,
                    CommandCounters {
                        parse: parse_counters,
                        ..Default::default()
                    },
                )
            }
        };
        self.finish_submit(&forms, parse_counters, wall_start, reference)
    }

    /// Evaluate-and-print half of [`CpuRepl::submit`], shared with the
    /// barrier path of [`CpuRepl::submit_batch`] (which has already
    /// parsed and machine-accounted the command).
    fn finish_submit(
        &mut self,
        forms: &[NodeId],
        parse_counters: Counters,
        wall_start: std::time::Instant,
        reference: bool,
    ) -> Result<Reply> {
        let costs = self.spec().costs;

        // --- Evaluate -----------------------------------------------------
        // Containment: every command evaluates under the session's fuel
        // budget, armed fresh here (workers re-arm per job themselves).
        self.interp.meter.arm_fuel(self.config.interp.fuel_budget);
        let m1 = self.interp.meter.snapshot();
        // `master_jobs` is the slice of `job_counters` that was metered on
        // the master interpreter (and must therefore be subtracted back out
        // of its total): everything for the modeled backend and the
        // sequential reference, only degraded-section fallbacks for the
        // real-threads pool, nothing for fork-per-section.
        let (last, sections, job_counters, master_jobs, eval_error, sim_error) = if reference {
            let mut hook = SequentialReferenceHook::default();
            let (last, err) = eval_forms(&mut self.interp, &mut hook, forms);
            (last, Vec::new(), hook.jobs, hook.jobs, err, None)
        } else {
            match self.config.mode {
                CpuMode::Modeled => {
                    let mut hook = CpuModelHook {
                        machine: &mut self.machine,
                        costs,
                        job_counters: Counters::default(),
                        sections: Vec::new(),
                        sim_error: None,
                        job_cycles: std::mem::take(&mut self.scratch_cycles),
                    };
                    let (last, err) = eval_forms(&mut self.interp, &mut hook, forms);
                    self.scratch_cycles = hook.job_cycles;
                    let jobs = hook.job_counters;
                    (last, hook.sections, jobs, jobs, err, hook.sim_error)
                }
                CpuMode::Threaded { threads } => {
                    // The hook (and its worker pool) persists across
                    // commands: workers stay warm and are synchronized
                    // incrementally.
                    let deadline = self.config.reply_deadline;
                    let plan = self.config.fault_plan.clone();
                    let hook = self.threaded.get_or_insert_with(|| {
                        ThreadedHook::with_watchdog(threads, deadline, plan)
                    });
                    let (last, err) = eval_forms(&mut self.interp, hook, forms);
                    // Sections the hook degraded to the master (seat loss
                    // mid-barrier) were metered on the master interpreter;
                    // fold them into the job charges like any other section.
                    let degraded = hook.take_degraded_jobs();
                    let mut jobs = hook.take_job_counters();
                    jobs.add(&degraded);
                    (last, Vec::new(), jobs, degraded, err, None)
                }
                CpuMode::ForkPerSection { threads } => {
                    let hook = self
                        .forked
                        .get_or_insert_with(|| ForkPerSectionHook::new(threads));
                    let (last, err) = eval_forms(&mut self.interp, hook, forms);
                    let jobs = hook.take_job_counters();
                    (last, Vec::new(), jobs, Counters::default(), err, None)
                }
            }
        };
        if let Some(sim) = sim_error {
            return Err(RuntimeError::Device(sim));
        }
        let eval_total = self.interp.meter.snapshot().delta_since(&m1);
        let eval_master = eval_total.delta_since(&master_jobs);
        let dispatch_overhead = self.spec().command_overhead_cycles;
        let section_cycles: u64 =
            sections.iter().map(|s| s.total_cycles()).sum::<u64>() + dispatch_overhead;
        self.machine
            .serial_compute(counters_to_cycles(&costs, &eval_master) + dispatch_overhead)?;
        if let Some(e) = eval_error {
            return self.error_reply(
                e,
                CommandCounters {
                    parse: parse_counters,
                    eval_master,
                    jobs: job_counters,
                    ..Default::default()
                },
            );
        }

        // --- Print ---------------------------------------------------------
        let m2 = self.interp.meter.snapshot();
        let output = match last {
            Some(node) => match culi_core::printer::print_to_string(&mut self.interp, node) {
                Ok(s) => s,
                Err(e) => {
                    return self.error_reply(
                        e,
                        CommandCounters {
                            parse: parse_counters,
                            eval_master,
                            jobs: job_counters,
                            ..Default::default()
                        },
                    )
                }
            },
            None => String::new(),
        };
        let print_counters = self.interp.meter.snapshot().delta_since(&m2);
        self.machine
            .serial_compute(counters_to_cycles(&costs, &print_counters))?;

        self.gc_between_commands();
        let spec = self.spec();
        let phases = breakdown(
            &spec,
            &parse_counters,
            &eval_master,
            &print_counters,
            section_cycles,
            0,
        );
        Ok(Reply {
            output,
            ok: true,
            code: ErrorCode::Ok,
            phases,
            counters: CommandCounters {
                parse: parse_counters,
                eval_master,
                jobs: job_counters,
                print: print_counters,
            },
            sections,
            wall_ns: wall_start.elapsed().as_nanos() as u64,
        })
    }

    /// Submits a stream of commands through the shared
    /// [`BatchScheduler`], pipelining consecutive stageable `|||`
    /// commands (Threaded mode: coalesced multi-section postbox
    /// dispatches with up to [`WorkerPool::PIPELINE_DEPTH`] runs in
    /// flight; ForkPerSection mode: the same staging/drain machine over
    /// eagerly-executed sections; Modeled mode falls back to a `submit`
    /// loop). Replies come back in input order and match a `submit` loop
    /// exactly.
    pub fn submit_batch(&mut self, inputs: &[&str]) -> Result<Vec<Reply>> {
        if matches!(self.config.mode, CpuMode::Modeled) {
            return inputs.iter().map(|s| self.submit(s)).collect();
        }
        if !self.machine.is_running() {
            return Err(RuntimeError::SessionClosed);
        }
        // Stale roots can only be left behind by a batch aborted on a
        // hard (machine/device) error.
        self.batch_roots.clear();
        self.barrier_roots.clear();
        // Store tickets never outlive their batch (slot numbers are only
        // meaningful within one).
        self.pending_store.clear();
        BatchScheduler::submit_batch(self, inputs)
    }

    /// The batch classifier's verdict for a single-form command, served
    /// from the cache's verdict tier when possible. The classifier reads
    /// the live global environment, so cached verdicts are scoped by the
    /// [`FingerprintTracker`] fingerprint; a poisoned tracker falls back
    /// to classifying directly (always sound — the tier only skips a
    /// charge-free walk).
    fn classify_stageable(
        &mut self,
        cache: Option<&CommandCache>,
        command_key: Option<&StructKey>,
        form: NodeId,
    ) -> bool {
        fn classify(interp: &Interp, classifier: BatchClassifier, form: NodeId) -> bool {
            match classifier {
                BatchClassifier::EffectAnalysis => {
                    culi_core::effects::stageable_parallel_section(interp, interp.global, form)
                }
                BatchClassifier::SyntacticInert => stageable_inert_section(interp, form),
            }
        }
        let classifier = self.config.batch_classifier;
        let Some(cache) = cache else {
            return classify(&self.interp, classifier, form);
        };
        let Some(fp) = self
            .fingerprint
            .fingerprint(&self.interp, classifier.fingerprint_tag())
        else {
            return classify(&self.interp, classifier, form);
        };
        // The reply-tier probe already encoded the whole command; a
        // single-form key slices out of it instead of re-walking the tree.
        let key = command_key
            .and_then(StructKey::single_form)
            .unwrap_or_else(|| StructKey::of(&self.interp, form));
        if let Some(v) = cache.verdict_lookup(&key, fp) {
            return v;
        }
        let v = classify(&self.interp, classifier, form);
        cache.verdict_insert(key, fp, v);
        v
    }

    /// Consumes `slot`'s reply-tier store ticket if its command really
    /// produced the successful reply the ticket anticipated. Error and
    /// degraded replies drop through (their tickets die with the batch);
    /// a stored reply is therefore always an `Ok` produced by the real
    /// execution path at the ticket's epoch.
    fn maybe_cache_store(&mut self, slot: usize, reply: &Reply) {
        if !reply.ok || reply.code != ErrorCode::Ok {
            return;
        }
        let Some(t) = self.pending_store.remove(&slot) else {
            return;
        };
        if let Some(cache) = &self.config.cache {
            // Pure commands cannot move the epoch, and nothing impure can
            // have run between classify and reply (barriers drain first).
            debug_assert_eq!(self.interp.envs.sync_epoch(), t.epoch);
            cache.reply_insert(t.key, &t.text, t.epoch, reply.clone());
        }
    }

    /// Evaluates a classified top-level section command through the same
    /// dispatch charges and job construction as the recursive evaluator
    /// ([`culi_core::eval::charge_symbol_head_dispatch`] +
    /// [`culi_core::builtins::prepare_section`]) and returns the pooled
    /// job buffer, ready to stage. Meter-identical to `eval` reaching the
    /// `|||` builtin (the differential harness asserts this).
    fn prepare_classified_section(&mut self, form: NodeId) -> culi_core::Result<Vec<NodeId>> {
        let interp = &mut self.interp;
        let global = interp.global;
        let mut args = interp.take_node_buf();
        let dispatched =
            culi_core::eval::charge_symbol_head_dispatch(interp, form, global, &mut args);
        if let Err(e) = dispatched {
            interp.put_node_buf(args);
            return Err(e);
        }
        let prepared = match self.config.mode {
            CpuMode::Threaded { threads } => {
                let deadline = self.config.reply_deadline;
                let plan = self.config.fault_plan.clone();
                let hook = self
                    .threaded
                    .get_or_insert_with(|| ThreadedHook::with_watchdog(threads, deadline, plan));
                culi_core::builtins::prepare_section(interp, hook, &args, global, 0)
            }
            CpuMode::ForkPerSection { threads } => {
                let hook = self
                    .forked
                    .get_or_insert_with(|| ForkPerSectionHook::new(threads));
                culi_core::builtins::prepare_section(interp, hook, &args, global, 0)
            }
            CpuMode::Modeled => unreachable!("pipelined staging outside a parallel CPU mode"),
        };
        interp.put_node_buf(args);
        prepared
    }

    /// Collects the oldest pool-staged command: gather its section's
    /// replies, then the shared finish path.
    fn collect_staged(&mut self, cmd: PendingCommand) -> Result<(usize, Reply)> {
        let hook = self
            .threaded
            .as_mut()
            .expect("a staged command implies a live threaded hook");
        let pool = hook.pool_mut(&self.interp);
        let mut results = self.interp.take_node_buf();
        let m = self.interp.meter.snapshot();
        let outcome = pool.collect_next(&mut self.interp, &mut results);
        let finished = match outcome {
            Ok(()) => culi_core::builtins::finish_section(&mut self.interp, &results),
            Err(e) => Err(e),
        };
        self.interp.put_node_buf(results);
        let eval_collect = self.interp.meter.snapshot().delta_since(&m);
        let job_counters = hook.take_job_counters();
        self.finish_collected(cmd, finished, eval_collect, job_counters)
    }

    /// Collects one eagerly-executed fork-per-section command from its
    /// recorded section results.
    fn collect_forked(
        &mut self,
        cmd: PendingCommand,
        outcome: culi_core::Result<Vec<NodeId>>,
        job_counters: Counters,
    ) -> Result<(usize, Reply)> {
        let m = self.interp.meter.snapshot();
        let finished = match outcome {
            Ok(results) => {
                let f = culi_core::builtins::finish_section(&mut self.interp, &results);
                self.interp.put_node_buf(results);
                f
            }
            Err(e) => Err(e),
        };
        let eval_collect = self.interp.meter.snapshot().delta_since(&m);
        self.finish_collected(cmd, finished, eval_collect, job_counters)
    }

    /// Shared back half of collecting one staged command: account the
    /// machine, print, GC, build the reply — charge-identical to the
    /// synchronous path's post-section work.
    fn finish_collected(
        &mut self,
        cmd: PendingCommand,
        finished: culi_core::Result<NodeId>,
        eval_collect: Counters,
        job_counters: Counters,
    ) -> Result<(usize, Reply)> {
        let costs = self.spec().costs;
        let dispatch_overhead = self.spec().command_overhead_cycles;
        let mut eval_master = cmd.eval_stage;
        eval_master.add(&eval_collect);
        self.machine
            .serial_compute(counters_to_cycles(&costs, &eval_master) + dispatch_overhead)?;
        let node = match finished {
            Ok(node) => node,
            Err(e) => {
                if e.code() == ErrorCode::Device {
                    // Infrastructure failure (seat lost to a panic, hang,
                    // or garbled reply) — not a program error. Surface it
                    // to the scheduler so it can degrade the batch to the
                    // sequential fallback instead of replying.
                    return Err(RuntimeError::Lisp(e));
                }
                let reply = self.error_reply(
                    e,
                    CommandCounters {
                        parse: cmd.parse,
                        eval_master,
                        jobs: job_counters,
                        ..Default::default()
                    },
                )?;
                return Ok((cmd.slot, reply));
            }
        };

        // --- Print -------------------------------------------------------
        let m2 = self.interp.meter.snapshot();
        let printed = culi_core::printer::print_to_string(&mut self.interp, node);
        let print_counters = self.interp.meter.snapshot().delta_since(&m2);
        let output = match printed {
            Ok(s) => s,
            Err(e) => {
                let reply = self.error_reply(
                    e,
                    CommandCounters {
                        parse: cmd.parse,
                        eval_master,
                        jobs: job_counters,
                        ..Default::default()
                    },
                )?;
                return Ok((cmd.slot, reply));
            }
        };
        self.machine
            .serial_compute(counters_to_cycles(&costs, &print_counters))?;
        self.gc_between_commands();
        let spec = self.spec();
        let phases = breakdown(
            &spec,
            &cmd.parse,
            &eval_master,
            &print_counters,
            dispatch_overhead,
            0,
        );
        let reply = Reply {
            output,
            ok: true,
            code: ErrorCode::Ok,
            phases,
            counters: CommandCounters {
                parse: cmd.parse,
                eval_master,
                jobs: job_counters,
                print: print_counters,
            },
            sections: Vec::new(),
            wall_ns: cmd.wall_start.elapsed().as_nanos() as u64,
        };
        self.maybe_cache_store(cmd.slot, &reply);
        Ok((cmd.slot, reply))
    }

    /// Between-command collection, keeping staged-but-uncollected batch
    /// state (job trees, fork results, a barrier's parse forms) alive.
    fn gc_between_commands(&mut self) {
        if !self.config.gc_between_commands {
            return;
        }
        if self.barrier_roots.is_empty() {
            culi_core::gc::collect(&mut self.interp, &self.batch_roots);
        } else if self.batch_roots.is_empty() {
            culi_core::gc::collect(&mut self.interp, &self.barrier_roots);
        } else {
            let mut roots = std::mem::take(&mut self.gc_scratch);
            roots.clear();
            roots.extend_from_slice(&self.batch_roots);
            roots.extend_from_slice(&self.barrier_roots);
            culi_core::gc::collect(&mut self.interp, &roots);
            self.gc_scratch = roots;
        }
    }

    fn error_reply(&mut self, e: CuliError, counters: CommandCounters) -> Result<Reply> {
        self.gc_between_commands();
        let spec = self.spec();
        let phases = breakdown(
            &spec,
            &counters.parse,
            &counters.eval_master,
            &counters.print,
            0,
            0,
        );
        Ok(Reply {
            output: format!("error: {e}"),
            ok: false,
            code: e.code(),
            phases,
            counters,
            sections: Vec::new(),
            wall_ns: 0,
        })
    }

    /// Stops the worker pool; returns total setup+teardown in ms.
    pub fn shutdown(&mut self) -> f64 {
        self.threaded = None; // joins the persistent worker pool
        self.forked = None;
        self.machine.shutdown();
        self.machine.overhead_ns() as f64 / 1e6
    }

    /// `true` until shutdown.
    pub fn is_running(&self) -> bool {
        self.machine.is_running()
    }
}

/// One classified-stageable CPU batch command: its metadata plus the
/// prepared (pooled) job buffer, awaiting dispatch. Opaque scheduler
/// token — see [`ExecQueue::Staged`].
#[derive(Debug)]
pub struct CpuStaged {
    cmd: PendingCommand,
    jobs: Vec<NodeId>,
}

/// Carried state of a CPU batch command that must run synchronously.
/// Opaque scheduler token — see [`ExecQueue::Barrier`].
#[derive(Debug)]
pub enum CpuBarrier {
    /// A parsed non-stageable command (its forms stay GC-rooted through
    /// the drain).
    Forms {
        /// Parsed top-level forms.
        forms: Vec<NodeId>,
        /// Parse-phase counters (already machine-accounted).
        parse: Counters,
        /// Wall clock at parse start.
        wall_start: std::time::Instant,
    },
    /// The command failed to parse.
    ParseError {
        /// The parse error, rendered after the drain.
        error: CuliError,
        /// Parse-phase counters (already machine-accounted).
        parse: Counters,
    },
    /// Header/argument evaluation failed while staging — the same error
    /// the synchronous path would produce.
    StageError {
        /// The stage-time error, rendered after the drain.
        error: CuliError,
        /// Parse-phase counters (already machine-accounted).
        parse: Counters,
        /// Master-side counters spent before the failure (machine-
        /// accounted at reply time, like the synchronous path).
        eval_stage: Counters,
    },
}

/// One dispatched CPU run. Opaque scheduler token — see
/// [`ExecQueue::Run`].
#[derive(Debug)]
pub struct CpuRun(CpuRunInner);

#[derive(Debug)]
enum CpuRunInner {
    /// Threaded mode: the worker pool holds the run's sections; each
    /// command is collected through [`WorkerPool::collect_next`].
    Pooled(Vec<PendingCommand>),
    /// ForkPerSection mode: sections were executed eagerly at dispatch;
    /// each command carries its recorded results (or section error) and
    /// its workers' job charges.
    Forked {
        /// The run's commands with their recorded outcomes.
        cmds: Vec<(PendingCommand, culi_core::Result<Vec<NodeId>>, Counters)>,
        /// Result node ids this run parked at the *front* of
        /// `batch_roots` at dispatch — collect un-roots exactly that
        /// prefix, leaving any jobs a later assembling run has already
        /// rooted behind it untouched.
        rooted_results: usize,
    },
}

impl<'i> ExecQueue<'i> for CpuRepl {
    type Staged = CpuStaged;
    type Barrier = CpuBarrier;
    type Run = CpuRun;

    fn max_run_len(&self) -> usize {
        WorkerPool::MAX_RUN_SECTIONS
    }

    fn pipeline_depth(&self) -> usize {
        match self.config.mode {
            CpuMode::Threaded { .. } => WorkerPool::PIPELINE_DEPTH,
            // The baseline executes runs eagerly at dispatch (no worker
            // state to overlap with); depth 1 bounds the rooting window
            // of its uncollected section results to one run.
            _ => 1,
        }
    }

    fn classify_and_stage(
        &mut self,
        input: &'i str,
        slot: usize,
    ) -> Result<Verdict<CpuStaged, CpuBarrier>> {
        let wall_start = std::time::Instant::now();
        let costs = self.spec().costs;
        // --- Parse (overlaps in-flight runs) -----------------------------
        let m0 = self.interp.meter.snapshot();
        let parse_result = culi_core::parser::parse(&mut self.interp, input.as_bytes());
        let parse_counters = self.interp.meter.snapshot().delta_since(&m0);
        self.machine
            .serial_compute(counters_to_cycles(&costs, &parse_counters))?;
        let forms = match parse_result {
            Ok(forms) => forms,
            Err(e) => {
                return Ok(Verdict::Barrier(CpuBarrier::ParseError {
                    error: e,
                    parse: parse_counters,
                }))
            }
        };
        // --- Cache probe (charge-free; see crate::cache) -----------------
        // The epoch captured here is exactly the environment state this
        // command executes against: every earlier barrier already ran
        // (the scheduler drains and executes barriers before classifying
        // the next command) and every in-flight staged command is pure.
        let cache = self.config.cache.clone();
        let mut probe = None;
        if let Some(cache) = &cache {
            let key = StructKey::of_forms(&self.interp, &forms);
            let epoch = self.interp.envs.sync_epoch();
            if let Some(mut reply) = cache.reply_lookup(&key, input, epoch) {
                // The stored counters are the ones this run would
                // recompute (source-text condition); only wall time is
                // fresh. The probe's parse temporaries are garbage now —
                // collect them as any finished command would.
                reply.wall_ns = wall_start.elapsed().as_nanos() as u64;
                self.gc_between_commands();
                return Ok(Verdict::Done(Box::new(reply)));
            }
            probe = Some((key, epoch));
        }
        let stageable = forms.len() == 1
            && self.classify_stageable(cache.as_ref(), probe.as_ref().map(|(k, _)| k), forms[0]);
        // A miss on a classified-pure command earns a store ticket,
        // consumed if and when the slot produces an `Ok` reply. Purity is
        // what makes replay sound: the reply depends only on the tree and
        // the (epoch-stamped) environment.
        if let (Some(_), Some((key, epoch))) = (&cache, probe) {
            let pure = stageable
                || forms.iter().all(|&f| {
                    culi_core::effects::expr_is_pure(&self.interp, self.interp.global, f)
                });
            if pure {
                self.pending_store.insert(
                    slot,
                    ReplyTicket {
                        key,
                        text: input.to_string(),
                        epoch,
                    },
                );
            }
        }
        if !stageable {
            // Root the parse tree across the coming drain's GCs.
            self.barrier_roots.extend_from_slice(&forms);
            return Ok(Verdict::Barrier(CpuBarrier::Forms {
                forms,
                parse: parse_counters,
                wall_start,
            }));
        }
        // --- Prepare (meter-identical to the synchronous path) -----------
        // Same arming point as finish_submit: the command's master-side
        // work runs under the session's fuel budget.
        self.interp.meter.arm_fuel(self.config.interp.fuel_budget);
        let m1 = self.interp.meter.snapshot();
        let prepared = self.prepare_classified_section(forms[0]);
        let eval_stage = self.interp.meter.snapshot().delta_since(&m1);
        Ok(match prepared {
            Ok(jobs) => {
                self.batch_roots.extend_from_slice(&jobs);
                Verdict::Stage(CpuStaged {
                    cmd: PendingCommand {
                        slot,
                        wall_start,
                        parse: parse_counters,
                        eval_stage,
                    },
                    jobs,
                })
            }
            Err(e) => Verdict::Barrier(CpuBarrier::StageError {
                error: e,
                parse: parse_counters,
                eval_stage,
            }),
        })
    }

    fn dispatch(&mut self, run: Vec<CpuStaged>) -> Result<CpuRun> {
        match self.config.mode {
            CpuMode::Threaded { threads } => {
                let deadline = self.config.reply_deadline;
                let plan = self.config.fault_plan.clone();
                let hook = self
                    .threaded
                    .get_or_insert_with(|| ThreadedHook::with_watchdog(threads, deadline, plan));
                let sections: Vec<&[NodeId]> = run.iter().map(|s| s.jobs.as_slice()).collect();
                let global = self.interp.global;
                hook.pool_mut(&self.interp).stage_run_cached(
                    &mut self.interp,
                    &sections,
                    global,
                    self.config.cache.as_ref(),
                );
                let mut cmds = Vec::with_capacity(run.len());
                for CpuStaged { cmd, jobs } in run {
                    self.interp.put_node_buf(jobs);
                    cmds.push(cmd);
                }
                // The jobs are encoded into the postbox now.
                self.batch_roots.clear();
                Ok(CpuRun(CpuRunInner::Pooled(cmds)))
            }
            CpuMode::ForkPerSection { threads } => {
                // Execute eagerly: a fork dies with its section, so there
                // is no pipelining to gain — only the shared staging
                // semantics. Entering dispatch, batch_roots holds exactly
                // this run's staged job trees; they are consumed below
                // and the recorded results take their place as the rooted
                // prefix until collected.
                self.batch_roots.clear();
                let mut cmds = Vec::with_capacity(run.len());
                for CpuStaged { cmd, jobs } in run {
                    let hook = self
                        .forked
                        .get_or_insert_with(|| ForkPerSectionHook::new(threads));
                    let mut results = self.interp.take_node_buf();
                    let global = self.interp.global;
                    let executed = hook.execute(&mut self.interp, &jobs, global, &mut results);
                    self.interp.put_node_buf(jobs);
                    let job_counters = hook.take_job_counters();
                    let outcome = match executed {
                        Ok(()) => {
                            self.batch_roots.extend_from_slice(&results);
                            Ok(results)
                        }
                        Err(e) => {
                            self.interp.put_node_buf(results);
                            Err(e)
                        }
                    };
                    cmds.push((cmd, outcome, job_counters));
                }
                let rooted_results = self.batch_roots.len();
                Ok(CpuRun(CpuRunInner::Forked {
                    cmds,
                    rooted_results,
                }))
            }
            CpuMode::Modeled => unreachable!("batch dispatch outside a parallel CPU mode"),
        }
    }

    fn collect(&mut self, run: CpuRun, replies: &mut [Option<Reply>]) -> Result<()> {
        match run.0 {
            CpuRunInner::Pooled(cmds) => {
                let mut cmds = cmds.into_iter();
                while let Some(cmd) = cmds.next() {
                    let slot = cmd.slot;
                    match self.collect_staged(cmd) {
                        Ok((slot, reply)) => replies[slot] = Some(reply),
                        Err(e) if e.is_degradable() => {
                            // A seat was lost mid-run. Write this command
                            // and every later one in the run off to the
                            // scheduler's sequential fallback, draining
                            // the pool's remaining (possibly synthetic)
                            // replies so its accounting stays balanced.
                            self.degraded_slots.push(slot);
                            let hook = self
                                .threaded
                                .as_mut()
                                .expect("a staged command implies a live threaded hook");
                            let pool = hook.pool_mut(&self.interp);
                            let mut scratch = self.interp.take_node_buf();
                            for cmd in cmds {
                                self.degraded_slots.push(cmd.slot);
                                scratch.clear();
                                let _ = pool.collect_next(&mut self.interp, &mut scratch);
                            }
                            self.interp.put_node_buf(scratch);
                            let _ = hook.take_job_counters();
                            return Err(e);
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            CpuRunInner::Forked {
                cmds,
                rooted_results,
            } => {
                for (cmd, outcome, job_counters) in cmds {
                    let (slot, reply) = self.collect_forked(cmd, outcome, job_counters)?;
                    replies[slot] = Some(reply);
                }
                // Un-root only this run's (now consumed) results:
                // commands staged for the next run may already have
                // rooted their job trees behind them.
                self.batch_roots.drain(..rooted_results);
            }
        }
        Ok(())
    }

    fn run_barrier(
        &mut self,
        barrier: CpuBarrier,
        slot: usize,
        replies: &mut [Option<Reply>],
    ) -> Result<()> {
        let reply = match barrier {
            CpuBarrier::Forms {
                forms,
                parse,
                wall_start,
            } => {
                self.barrier_roots.clear();
                let reply = self.finish_submit(&forms, parse, wall_start, false)?;
                self.maybe_cache_store(slot, &reply);
                reply
            }
            CpuBarrier::ParseError { error, parse } => self.error_reply(
                error,
                CommandCounters {
                    parse,
                    ..Default::default()
                },
            )?,
            CpuBarrier::StageError {
                error,
                parse,
                eval_stage,
            } => {
                let costs = self.spec().costs;
                self.machine
                    .serial_compute(counters_to_cycles(&costs, &eval_stage))?;
                self.error_reply(
                    error,
                    CommandCounters {
                        parse,
                        eval_master: eval_stage,
                        ..Default::default()
                    },
                )?
            }
        };
        replies[slot] = Some(reply);
        Ok(())
    }

    fn take_failed(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.degraded_slots)
    }

    fn run_sequential(
        &mut self,
        input: &'i str,
        slot: usize,
        replies: &mut [Option<Reply>],
    ) -> Result<()> {
        let mut reply = self.submit_inner(input, true)?;
        if reply.ok {
            // The answer is correct but was not produced by the parallel
            // backend; sessions inspecting codes can tell.
            reply.code = ErrorCode::Degraded;
        }
        replies[slot] = Some(reply);
        Ok(())
    }
}

/// PR 3's charge-free *syntactic* classification, retained as the
/// [`BatchClassifier::SyntacticInert`] benchmark baseline: `form` is a
/// `(||| …)` expression whose head symbol resolves to the parallel
/// builtin in the global environment and whose operands are all
/// [`inert_operand`]s. The default [`BatchClassifier::EffectAnalysis`]
/// rule ([`culi_core::effects::stageable_parallel_section`]) subsumes
/// this one — everything inert is also pure.
fn stageable_inert_section(interp: &Interp, form: NodeId) -> bool {
    let n = *interp.arena.get(form);
    let first = match (n.ty, n.payload) {
        (
            NodeType::List | NodeType::Expression,
            Payload::List {
                first: Some(first), ..
            },
        ) => first,
        _ => return false,
    };
    let head = *interp.arena.get(first);
    let sid = match (head.ty, head.payload) {
        (NodeType::Symbol, Payload::Text(s)) => s,
        _ => return false,
    };
    if interp.strings.get(sid) != b"|||" {
        return false;
    }
    match resolve_global_quiet(interp, sid) {
        Some(node) => {
            let resolved = interp.arena.get(node);
            match (resolved.ty, resolved.payload) {
                (NodeType::Function, Payload::Builtin(b)) => {
                    if interp.builtins.name(b) != "|||" {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        None => return false,
    }
    let mut cur = interp.arena.get(first).next;
    while let Some(id) = cur {
        if !inert_operand(interp, id) {
            return false;
        }
        cur = interp.arena.get(id).next;
    }
    true
}

/// `true` when evaluating `id` cannot have side effects: an atom (a
/// literal evaluates to itself, a symbol to a pure lookup) or a list of
/// atoms whose head does not resolve to anything callable (so the list
/// evaluates element-wise instead of applying a function, form or macro).
fn inert_operand(interp: &Interp, id: NodeId) -> bool {
    let n = *interp.arena.get(id);
    let mut cur = match (n.ty, n.payload) {
        (NodeType::List | NodeType::Expression, Payload::List { first, .. }) => first,
        _ => return true,
    };
    let mut is_head = true;
    while let Some(kid) = cur {
        let k = *interp.arena.get(kid);
        match k.ty {
            NodeType::List | NodeType::Expression => return false,
            NodeType::Symbol if is_head => {
                if let Payload::Text(s) = k.payload {
                    if let Some(v) = resolve_global_quiet(interp, s) {
                        if matches!(
                            interp.arena.get(v).ty,
                            NodeType::Function | NodeType::Form | NodeType::Macro
                        ) {
                            return false;
                        }
                    }
                }
            }
            _ => {}
        }
        is_head = false;
        cur = k.next;
    }
    true
}

/// Global lookup without touching the session meter (classification must
/// not charge anything — it is bookkeeping, not interpreter work).
fn resolve_global_quiet(interp: &Interp, sid: culi_core::StrId) -> Option<NodeId> {
    let mut scratch = culi_core::cost::Meter::new();
    interp
        .envs
        .lookup(interp.global, sid, &interp.strings, &mut scratch)
}

fn eval_forms(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    forms: &[NodeId],
) -> (Option<NodeId>, Option<CuliError>) {
    let mut last = None;
    for &form in forms {
        match eval(interp, hook, form, interp.global, 0) {
            Ok(v) => last = Some(v),
            Err(e) => return (last, Some(e)),
        }
    }
    (last, None)
}

/// The scheduler-fallback backend: evaluates `|||` jobs sequentially on
/// the master interpreter with the *worker pool's* exact metering
/// discipline — child env outside the job window, per-job fuel re-arm,
/// then the `eval` window itself (see `run_msg` in the pool; the pool
/// test `job_counters_match_sequential_reference` pins the equivalence).
/// Replies produced through this hook are byte-identical to the
/// threaded backend's in output, ok and counters.
#[derive(Debug, Default)]
struct SequentialReferenceHook {
    jobs: Counters,
}

impl ParallelHook for SequentialReferenceHook {
    fn execute(
        &mut self,
        interp: &mut Interp,
        jobs: &[NodeId],
        parent_env: culi_core::EnvId,
        results: &mut Vec<NodeId>,
    ) -> culi_core::Result<()> {
        crate::pool::run_jobs_sequential_reference(
            interp,
            jobs,
            parent_env,
            results,
            &mut self.jobs,
        )
    }
}

/// Modeled pthread pool: job costs are list-scheduled by the machine.
/// `job_cycles` is lent by the repl and reused across sections and
/// commands, so modeled sections allocate nothing per section beyond
/// their report.
struct CpuModelHook<'m> {
    machine: &'m mut CpuMachine,
    costs: culi_gpu_sim::CostTable,
    job_counters: Counters,
    sections: Vec<SectionReport>,
    sim_error: Option<SimError>,
    job_cycles: Vec<u64>,
}

impl ParallelHook for CpuModelHook<'_> {
    fn execute(
        &mut self,
        interp: &mut Interp,
        jobs: &[NodeId],
        parent_env: culi_core::EnvId,
        results: &mut Vec<NodeId>,
    ) -> culi_core::Result<()> {
        // Swap the pooled buffer out for the duration of this section: a
        // *nested* ||| inside a job re-enters execute and must not clobber
        // the outer section's cycles (the nested level simply starts from
        // a fresh buffer, as the pre-pooling code did per section).
        let mut cycles = std::mem::take(&mut self.job_cycles);
        cycles.clear();
        for (w, &job) in jobs.iter().enumerate() {
            let env = interp.envs.push(Some(parent_env));
            let before = interp.meter.snapshot();
            let nested_before = self.job_counters;
            let value = match eval(interp, self, job, env, 0) {
                Ok(v) => v,
                Err(e) => {
                    self.job_cycles = cycles;
                    return Err(CuliError::WorkerFailed {
                        worker: w,
                        message: e.to_string(),
                    });
                }
            };
            let delta = interp.meter.snapshot().delta_since(&before);
            let nested = self.job_counters.delta_since(&nested_before);
            let own = delta.delta_since(&nested);
            self.job_counters.add(&own);
            cycles.push(crate::phases::counters_to_cycles(&self.costs, &own));
            results.push(value);
        }
        let outcome = self.machine.parallel_section(&cycles);
        self.job_cycles = cycles;
        match outcome {
            Ok(report) => {
                self.sections.push(report);
                Ok(())
            }
            Err(e) => {
                let msg = e.to_string();
                self.sim_error = Some(e);
                Err(CuliError::Backend(msg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culi_gpu_sim::device::{amd_6272, intel_e5_2620};

    fn modeled() -> CpuRepl {
        CpuRepl::launch(intel_e5_2620(), CpuReplConfig::default())
    }

    fn threaded(threads: usize) -> CpuRepl {
        CpuRepl::launch(
            intel_e5_2620(),
            CpuReplConfig {
                interp: InterpConfig {
                    arena_capacity: 1 << 16,
                    ..Default::default()
                },
                mode: CpuMode::Threaded { threads },
                ..Default::default()
            },
        )
    }

    #[test]
    fn modeled_end_to_end() {
        let mut r = modeled();
        assert_eq!(r.submit("(* 2 (+ 4 3) 6)").unwrap().expect_ok(), "84");
    }

    #[test]
    fn fuel_limited_command_reports_a_fuel_reply_and_the_session_survives() {
        let mut r = CpuRepl::launch(
            intel_e5_2620(),
            CpuReplConfig {
                interp: InterpConfig {
                    arena_capacity: 1 << 16,
                    fuel_budget: 10_000,
                    ..Default::default()
                },
                mode: CpuMode::Threaded { threads: 2 },
                ..Default::default()
            },
        );
        let reply = r.submit("(dotimes (i 1000000000) (+ i i))").unwrap();
        assert!(!reply.ok);
        assert_eq!(reply.code, ErrorCode::Fuel);
        assert!(reply.output.contains("fuel"), "{}", reply.output);
        assert_eq!(r.submit("(+ 1 2)").unwrap().expect_ok(), "3");
    }

    #[test]
    fn batch_degrades_to_sequential_on_seat_loss_and_matches_reference() {
        use culi_core::fault::{FaultKind, FaultSite};
        let prelude = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";
        let section = "(||| 4 fib (4 5 6 7))";
        let mut clean = threaded(4);
        clean.submit(prelude).unwrap();
        let plan = FaultPlan::single(FaultSite::WorkerSection, FaultKind::Hang, 2);
        let mut faulted = CpuRepl::launch(
            intel_e5_2620(),
            CpuReplConfig {
                interp: InterpConfig {
                    arena_capacity: 1 << 16,
                    ..Default::default()
                },
                mode: CpuMode::Threaded { threads: 4 },
                reply_deadline: Duration::from_millis(200),
                fault_plan: plan.clone(),
                ..Default::default()
            },
        );
        faulted.submit(prelude).unwrap();
        let batch = vec![section; 6];
        let got = faulted.submit_batch(&batch).unwrap();
        assert_eq!(got.len(), 6);
        assert_eq!(plan.injected_count(), 1, "the scripted hang must fire");
        let mut degraded = 0;
        for reply in &got {
            let want = clean.submit(section).unwrap();
            assert_eq!(reply.output, want.output);
            assert_eq!(reply.ok, want.ok);
            assert_eq!(reply.counters, want.counters);
            if reply.code == ErrorCode::Degraded {
                degraded += 1;
            }
        }
        assert!(
            degraded >= 1,
            "the lost seat must degrade at least one slot"
        );
        // The pool recovered: later batches run parallel again.
        let after = faulted.submit_batch(&[section; 3]).unwrap();
        for reply in after {
            assert_eq!(reply.code, ErrorCode::Ok);
            assert_eq!(reply.expect_ok(), "(3 5 8 13)");
        }
    }

    #[test]
    fn modeled_parallel_sections_report() {
        let mut r = modeled();
        let reply = r.submit("(||| 3 + (1 2 3) (4 5 6))").unwrap();
        assert_eq!(reply.output, "(5 7 9)");
        assert_eq!(reply.sections.len(), 1);
    }

    #[test]
    fn threaded_matches_sequential_results() {
        let mut r = threaded(4);
        r.submit("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
            .unwrap();
        let reply = r.submit("(||| 8 fib (1 2 3 4 5 6 7 8))").unwrap();
        assert_eq!(reply.output, "(1 1 2 3 5 8 13 21)");
        assert!(reply.wall_ns > 0);
    }

    #[test]
    fn threaded_respects_result_order_with_few_threads() {
        let mut r = threaded(3);
        let reply = r
            .submit("(||| 7 - (10 20 30 40 50 60 70) (1 2 3 4 5 6 7))")
            .unwrap();
        assert_eq!(reply.output, "(9 18 27 36 45 54 63)");
    }

    #[test]
    fn threaded_worker_error_reports_global_index() {
        let mut r = threaded(2);
        let reply = r.submit("(||| 4 / (1 1 1 1) (1 1 0 1))").unwrap();
        assert!(!reply.ok);
        assert!(reply.output.contains("worker 2"), "{}", reply.output);
    }

    #[test]
    fn threaded_workers_cannot_corrupt_main_state() {
        let mut r = threaded(4);
        r.submit("(setq total 100)").unwrap();
        // Workers setq `total` in their forks; the master copy is intact.
        r.submit("(defun bump (x) (progn (setq total (+ total x)) total))")
            .unwrap();
        let reply = r.submit("(||| 4 bump (1 2 3 4))").unwrap();
        assert_eq!(reply.output, "(101 102 103 104)");
        assert_eq!(r.submit("total").unwrap().output, "100");
    }

    #[test]
    fn fork_per_section_mode_works_end_to_end() {
        let mut r = CpuRepl::launch(
            intel_e5_2620(),
            CpuReplConfig {
                interp: InterpConfig {
                    arena_capacity: 1 << 16,
                    ..Default::default()
                },
                mode: CpuMode::ForkPerSection { threads: 3 },
                ..Default::default()
            },
        );
        r.submit("(defun sq (x) (* x x))").unwrap();
        let reply = r.submit("(||| 4 sq (1 2 3 4))").unwrap();
        assert_eq!(reply.output, "(1 4 9 16)");
        assert!(r.interp_mut().clone_count() > 0, "the baseline clones");
    }

    #[test]
    fn fork_per_section_batches_match_submit_loop() {
        // The baseline rides the same BatchScheduler: staged sections
        // execute eagerly through ForkPerSectionHook, barriers drain, and
        // replies (counters included) match its own submit loop.
        let make = || {
            CpuRepl::launch(
                intel_e5_2620(),
                CpuReplConfig {
                    interp: InterpConfig {
                        arena_capacity: 1 << 16,
                        ..Default::default()
                    },
                    mode: CpuMode::ForkPerSection { threads: 3 },
                    ..Default::default()
                },
            )
        };
        let mut a = make();
        let mut b = make();
        let prelude = "(defun sq (x) (* x x))";
        a.submit(prelude).unwrap();
        b.submit(prelude).unwrap();
        let inputs = [
            "(||| 3 sq (1 2 3))",
            "(||| 2 sq (list 4 5))",
            "(setq g 7)", // barrier
            "(||| 2 + (1 2) (list g g))",
            "(||| 2 / (1 1) (0 1))", // worker error
            "(||| 3 sq (4 5 6))",
        ];
        let batched = b.submit_batch(&inputs).unwrap();
        for (src, got) in inputs.iter().zip(&batched) {
            let want = a.submit(src).unwrap();
            assert_eq!(want.output, got.output, "{src}");
            assert_eq!(want.ok, got.ok, "{src}");
            if want.ok {
                assert_eq!(want.counters, got.counters, "{src}");
            }
        }
    }

    #[test]
    fn batch_pipelines_sections_and_matches_submit_loop() {
        let prelude = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";
        let section = "(||| 4 fib (4 5 6 7))";
        let mut a = threaded(4);
        let mut b = threaded(4);
        a.submit(prelude).unwrap();
        b.submit(prelude).unwrap();
        let batch: Vec<&str> = vec![section; 8];
        let batched = b.submit_batch(&batch).unwrap();
        for reply in batched {
            let reference = a.submit(section).unwrap();
            assert_eq!(reply.output, reference.output);
            assert_eq!(reply.ok, reference.ok);
            assert_eq!(reply.counters, reference.counters);
        }
    }

    #[test]
    fn batch_barriers_on_defines_and_stays_correct() {
        let mut r = threaded(3);
        let replies = r
            .submit_batch(&[
                "(setq g 5)",
                "(defun addg (x) (+ x g))",
                "(||| 3 addg (1 2 3))",
                "(||| 3 addg (10 20 30))",
                "(setq g 50)",
                "(||| 3 addg (1 2 3))",
            ])
            .unwrap();
        let outputs: Vec<&str> = replies.iter().map(|r| r.output.as_str()).collect();
        assert_eq!(
            outputs,
            ["5", "addg", "(6 7 8)", "(15 25 35)", "50", "(51 52 53)"]
        );
    }

    #[test]
    fn batch_propagates_errors_in_order() {
        let mut r = threaded(2);
        let replies = r
            .submit_batch(&[
                "(||| 2 / (4 6) (2 2))",
                "(||| 2 / (4 6) (0 2))", // worker 0 divides by zero
                "(||| 2 / (4 6) (1 2))",
                "(+ 1", // parse error barrier
                "(||| 2 + (1 2) (1 1))",
            ])
            .unwrap();
        assert_eq!(replies[0].output, "(2 3)");
        assert!(!replies[1].ok);
        assert!(
            replies[1].output.contains("worker 0"),
            "{}",
            replies[1].output
        );
        assert_eq!(replies[2].output, "(4 3)");
        assert!(!replies[3].ok);
        assert_eq!(replies[4].output, "(2 3)");
    }

    #[test]
    fn batch_with_zero_warm_clones() {
        let mut r = threaded(4);
        r.submit("(defun sq (x) (* x x))").unwrap();
        r.submit("(||| 4 sq (1 2 3 4))").unwrap(); // warm the pool
        let clones = r.interp_mut().clone_count();
        let batch: Vec<&str> = vec!["(||| 4 sq (1 2 3 4))"; 32];
        let replies = r.submit_batch(&batch).unwrap();
        assert!(replies.iter().all(|r| r.output == "(1 4 9 16)"));
        assert_eq!(
            r.interp_mut().clone_count(),
            clones,
            "a warm pipelined batch must not clone the interpreter"
        );
    }

    #[test]
    fn computed_operands_pipeline_under_effect_analysis() {
        // `(list g g)` and a computed worker count were barriers under
        // PR 3's syntactic rule; the effect classifier stages them — with
        // zero warm clones — and results stay correct.
        let mut r = threaded(2);
        r.submit("(setq g 3)").unwrap();
        r.submit("(||| 2 + (1 2) (3 4))").unwrap(); // warm the pool
        let clones = r.interp_mut().clone_count();
        let batch: Vec<&str> = vec![
            "(||| 2 + (1 2) (list g g))",
            "(||| (+ 1 1) + (list g g) (10 20))",
            "(||| 2 + (if (< g 0) (1 2) (5 6)) (1 1))",
        ];
        let replies = r.submit_batch(&batch).unwrap();
        let outputs: Vec<&str> = replies.iter().map(|r| r.output.as_str()).collect();
        assert_eq!(outputs, ["(4 5)", "(13 23)", "(6 7)"]);
        assert_eq!(
            r.interp_mut().clone_count(),
            clones,
            "computed-operand sections must pipeline without cloning"
        );
    }

    #[test]
    fn classification_rejects_effectful_operands() {
        let mut r = threaded(2);
        // An operand that calls a user form (which could mutate globals)
        // must barrier — and still evaluate correctly on the sync path.
        r.submit("(defun bumpg (x) (progn (setq g (+ g x)) g))")
            .unwrap();
        let replies = r
            .submit_batch(&[
                "(setq g 3)",
                "(||| 2 + (1 2) (list (bumpg 1) (bumpg 1)))",
                "g",
            ])
            .unwrap();
        assert_eq!(replies[1].output, "(5 7)");
        assert_eq!(replies[2].output, "5", "barrier preserved effect order");
    }

    #[test]
    fn syntactic_classifier_still_barriers_computed_operands() {
        // The retained PR 3 baseline must keep its old (narrower)
        // behaviour: correct results via the synchronous path.
        let mut r = CpuRepl::launch(
            intel_e5_2620(),
            CpuReplConfig {
                interp: InterpConfig {
                    arena_capacity: 1 << 16,
                    ..Default::default()
                },
                mode: CpuMode::Threaded { threads: 2 },
                batch_classifier: BatchClassifier::SyntacticInert,
                ..Default::default()
            },
        );
        let replies = r
            .submit_batch(&["(setq g 3)", "(||| 2 + (1 2) (list g g))"])
            .unwrap();
        assert_eq!(replies[1].output, "(4 5)");
    }

    #[test]
    fn cpu_phases_dominated_by_eval() {
        // Paper Fig. 18: on CPUs parsing and printing are almost
        // negligible; evaluation dominates.
        let mut r = CpuRepl::launch(amd_6272(), CpuReplConfig::default());
        r.submit("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
            .unwrap();
        let jobs = vec!["5"; 64].join(" ");
        let reply = r.submit(&format!("(||| 64 fib ({jobs}))")).unwrap();
        let (p, e, pr) = reply.phases.proportions();
        assert!(e > 0.6, "eval share {e}");
        assert!(p < 0.3, "parse share {p}");
        assert!(pr < 0.3, "print share {pr}");
    }

    #[test]
    fn sessions_survive_errors() {
        let mut r = modeled();
        assert!(!r.submit("(car 5)").unwrap().ok);
        assert_eq!(r.submit("(+ 1 1)").unwrap().output, "2");
    }

    #[test]
    fn shutdown_closes() {
        let mut r = modeled();
        let ms = r.shutdown();
        assert!(ms > 0.0);
        assert!(matches!(r.submit("1"), Err(RuntimeError::SessionClosed)));
    }
}
