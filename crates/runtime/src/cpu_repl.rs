//! The CPU read–eval–print loops (the paper's comparison systems).
//!
//! Two backends share one type:
//!
//! * **Modeled** — the same staged pipeline as the GPU session, but timed
//!   by a [`CpuMachine`] (list-scheduled pthread workers, no warps, no
//!   postbox spinning). This is the backend behind the CPU series of
//!   Figs. 14–18.
//! * **Threaded** — `|||` sections really run on OS threads: a
//!   persistent [`ThreadedHook`] worker pool (see [`crate::pool`]) keeps
//!   warm interpreter forks alive across sections and commands,
//!   synchronizing them incrementally through the flat postbox codec.
//!   This backend proves the interpreter's parallel semantics on real
//!   hardware and reports wall-clock time.

use crate::error::{Result, RuntimeError};
use crate::phases::{breakdown, counters_to_cycles};
use crate::pool::ThreadedHook;
use crate::reply::Reply;
use culi_core::cost::Counters;
use culi_core::eval::{eval, ParallelHook};
use culi_core::{CuliError, Interp, InterpConfig, NodeId};
use culi_gpu_sim::{CpuMachine, DeviceSpec, SectionReport, SimError};

/// How `|||` sections execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuMode {
    /// Deterministic cost-model timing (figures).
    Modeled,
    /// Real scoped OS threads (functional parallelism; wall-clock timing).
    Threaded {
        /// Worker thread count.
        threads: usize,
    },
}

/// Configuration for a CPU session.
#[derive(Debug, Clone)]
pub struct CpuReplConfig {
    /// Interpreter limits.
    pub interp: InterpConfig,
    /// Execution mode.
    pub mode: CpuMode,
    /// Run the collector between commands.
    pub gc_between_commands: bool,
    /// Host-side file services exposed to device code.
    pub host_io: Option<culi_core::hostio::HostIoHandle>,
}

impl Default for CpuReplConfig {
    fn default() -> Self {
        Self {
            interp: InterpConfig::default(),
            mode: CpuMode::Modeled,
            gc_between_commands: true,
            host_io: None,
        }
    }
}

/// A live CuLi session on a (modeled or real) CPU.
#[derive(Debug)]
pub struct CpuRepl {
    interp: Interp,
    machine: CpuMachine,
    config: CpuReplConfig,
    /// Persistent real-threads backend (Threaded mode only; the worker
    /// pool inside survives across commands).
    threaded: Option<ThreadedHook>,
    /// Reused per-job cycle scratch for the modeled backend.
    scratch_cycles: Vec<u64>,
}

impl CpuRepl {
    /// Boots a CPU session for `spec` (one of the catalog's CPU devices).
    pub fn launch(spec: DeviceSpec, config: CpuReplConfig) -> Self {
        let mut interp = Interp::new(config.interp.clone());
        interp.host_io = config.host_io.clone();
        Self {
            interp,
            machine: CpuMachine::launch(spec),
            config,
            threaded: None,
            scratch_cycles: Vec::new(),
        }
    }

    /// The device this session models.
    pub fn spec(&self) -> DeviceSpec {
        *self.machine.spec()
    }

    /// Direct access to the interpreter (tests/diagnostics).
    pub fn interp_mut(&mut self) -> &mut Interp {
        &mut self.interp
    }

    /// Submits one command line.
    pub fn submit(&mut self, input: &str) -> Result<Reply> {
        if !self.machine.is_running() {
            return Err(RuntimeError::SessionClosed);
        }
        let wall_start = std::time::Instant::now();
        let costs = self.spec().costs;

        // --- Parse ------------------------------------------------------
        let m0 = self.interp.meter.snapshot();
        let parse_result = culi_core::parser::parse(&mut self.interp, input.as_bytes());
        let parse_counters = self.interp.meter.snapshot().delta_since(&m0);
        self.machine
            .serial_compute(counters_to_cycles(&costs, &parse_counters))?;
        let forms = match parse_result {
            Ok(forms) => forms,
            Err(e) => return self.error_reply(e, parse_counters),
        };

        // --- Evaluate -----------------------------------------------------
        let m1 = self.interp.meter.snapshot();
        let (last, sections, job_counters, eval_error, sim_error) = match self.config.mode {
            CpuMode::Modeled => {
                let mut hook = CpuModelHook {
                    machine: &mut self.machine,
                    costs,
                    job_counters: Counters::default(),
                    sections: Vec::new(),
                    sim_error: None,
                    job_cycles: std::mem::take(&mut self.scratch_cycles),
                };
                let (last, err) = eval_forms(&mut self.interp, &mut hook, &forms);
                self.scratch_cycles = hook.job_cycles;
                (last, hook.sections, hook.job_counters, err, hook.sim_error)
            }
            CpuMode::Threaded { threads } => {
                // The hook (and its worker pool) persists across commands:
                // workers stay warm and are synchronized incrementally.
                let hook = self
                    .threaded
                    .get_or_insert_with(|| ThreadedHook::new(threads));
                let (last, err) = eval_forms(&mut self.interp, hook, &forms);
                (last, Vec::new(), Counters::default(), err, None)
            }
        };
        if let Some(sim) = sim_error {
            return Err(RuntimeError::Device(sim));
        }
        let eval_total = self.interp.meter.snapshot().delta_since(&m1);
        let eval_master = eval_total.delta_since(&job_counters);
        let dispatch_overhead = self.spec().command_overhead_cycles;
        let section_cycles: u64 =
            sections.iter().map(|s| s.total_cycles()).sum::<u64>() + dispatch_overhead;
        self.machine
            .serial_compute(counters_to_cycles(&costs, &eval_master) + dispatch_overhead)?;
        if let Some(e) = eval_error {
            let mut counters = parse_counters;
            counters.add(&eval_master);
            return self.error_reply(e, counters);
        }

        // --- Print ---------------------------------------------------------
        let m2 = self.interp.meter.snapshot();
        let output = match last {
            Some(node) => match culi_core::printer::print_to_string(&mut self.interp, node) {
                Ok(s) => s,
                Err(e) => {
                    let mut counters = parse_counters;
                    counters.add(&eval_master);
                    return self.error_reply(e, counters);
                }
            },
            None => String::new(),
        };
        let print_counters = self.interp.meter.snapshot().delta_since(&m2);
        self.machine
            .serial_compute(counters_to_cycles(&costs, &print_counters))?;

        if self.config.gc_between_commands {
            culi_core::gc::collect(&mut self.interp, &[]);
        }
        let spec = self.spec();
        let phases = breakdown(
            &spec,
            &parse_counters,
            &eval_master,
            &print_counters,
            section_cycles,
            0,
        );
        Ok(Reply {
            output,
            ok: true,
            phases,
            sections,
            wall_ns: wall_start.elapsed().as_nanos() as u64,
        })
    }

    fn error_reply(&mut self, e: CuliError, counters: Counters) -> Result<Reply> {
        if self.config.gc_between_commands {
            culi_core::gc::collect(&mut self.interp, &[]);
        }
        let spec = self.spec();
        let phases = breakdown(
            &spec,
            &counters,
            &Counters::default(),
            &Counters::default(),
            0,
            0,
        );
        Ok(Reply {
            output: format!("error: {e}"),
            ok: false,
            phases,
            sections: Vec::new(),
            wall_ns: 0,
        })
    }

    /// Stops the worker pool; returns total setup+teardown in ms.
    pub fn shutdown(&mut self) -> f64 {
        self.threaded = None; // joins the persistent worker pool
        self.machine.shutdown();
        self.machine.overhead_ns() as f64 / 1e6
    }

    /// `true` until shutdown.
    pub fn is_running(&self) -> bool {
        self.machine.is_running()
    }
}

fn eval_forms(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    forms: &[NodeId],
) -> (Option<NodeId>, Option<CuliError>) {
    let mut last = None;
    for &form in forms {
        match eval(interp, hook, form, interp.global, 0) {
            Ok(v) => last = Some(v),
            Err(e) => return (last, Some(e)),
        }
    }
    (last, None)
}

/// Modeled pthread pool: job costs are list-scheduled by the machine.
/// `job_cycles` is lent by the repl and reused across sections and
/// commands, so modeled sections allocate nothing per section beyond
/// their report.
struct CpuModelHook<'m> {
    machine: &'m mut CpuMachine,
    costs: culi_gpu_sim::CostTable,
    job_counters: Counters,
    sections: Vec<SectionReport>,
    sim_error: Option<SimError>,
    job_cycles: Vec<u64>,
}

impl ParallelHook for CpuModelHook<'_> {
    fn execute(
        &mut self,
        interp: &mut Interp,
        jobs: &[NodeId],
        parent_env: culi_core::EnvId,
        results: &mut Vec<NodeId>,
    ) -> culi_core::Result<()> {
        // Swap the pooled buffer out for the duration of this section: a
        // *nested* ||| inside a job re-enters execute and must not clobber
        // the outer section's cycles (the nested level simply starts from
        // a fresh buffer, as the pre-pooling code did per section).
        let mut cycles = std::mem::take(&mut self.job_cycles);
        cycles.clear();
        for (w, &job) in jobs.iter().enumerate() {
            let env = interp.envs.push(Some(parent_env));
            let before = interp.meter.snapshot();
            let nested_before = self.job_counters;
            let value = match eval(interp, self, job, env, 0) {
                Ok(v) => v,
                Err(e) => {
                    self.job_cycles = cycles;
                    return Err(CuliError::WorkerFailed {
                        worker: w,
                        message: e.to_string(),
                    });
                }
            };
            let delta = interp.meter.snapshot().delta_since(&before);
            let nested = self.job_counters.delta_since(&nested_before);
            let own = delta.delta_since(&nested);
            self.job_counters.add(&own);
            cycles.push(crate::phases::counters_to_cycles(&self.costs, &own));
            results.push(value);
        }
        let outcome = self.machine.parallel_section(&cycles);
        self.job_cycles = cycles;
        match outcome {
            Ok(report) => {
                self.sections.push(report);
                Ok(())
            }
            Err(e) => {
                let msg = e.to_string();
                self.sim_error = Some(e);
                Err(CuliError::Backend(msg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culi_gpu_sim::device::{amd_6272, intel_e5_2620};

    fn modeled() -> CpuRepl {
        CpuRepl::launch(intel_e5_2620(), CpuReplConfig::default())
    }

    fn threaded(threads: usize) -> CpuRepl {
        CpuRepl::launch(
            intel_e5_2620(),
            CpuReplConfig {
                interp: InterpConfig {
                    arena_capacity: 1 << 16,
                    ..Default::default()
                },
                mode: CpuMode::Threaded { threads },
                ..Default::default()
            },
        )
    }

    #[test]
    fn modeled_end_to_end() {
        let mut r = modeled();
        assert_eq!(r.submit("(* 2 (+ 4 3) 6)").unwrap().expect_ok(), "84");
    }

    #[test]
    fn modeled_parallel_sections_report() {
        let mut r = modeled();
        let reply = r.submit("(||| 3 + (1 2 3) (4 5 6))").unwrap();
        assert_eq!(reply.output, "(5 7 9)");
        assert_eq!(reply.sections.len(), 1);
    }

    #[test]
    fn threaded_matches_sequential_results() {
        let mut r = threaded(4);
        r.submit("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
            .unwrap();
        let reply = r.submit("(||| 8 fib (1 2 3 4 5 6 7 8))").unwrap();
        assert_eq!(reply.output, "(1 1 2 3 5 8 13 21)");
        assert!(reply.wall_ns > 0);
    }

    #[test]
    fn threaded_respects_result_order_with_few_threads() {
        let mut r = threaded(3);
        let reply = r
            .submit("(||| 7 - (10 20 30 40 50 60 70) (1 2 3 4 5 6 7))")
            .unwrap();
        assert_eq!(reply.output, "(9 18 27 36 45 54 63)");
    }

    #[test]
    fn threaded_worker_error_reports_global_index() {
        let mut r = threaded(2);
        let reply = r.submit("(||| 4 / (1 1 1 1) (1 1 0 1))").unwrap();
        assert!(!reply.ok);
        assert!(reply.output.contains("worker 2"), "{}", reply.output);
    }

    #[test]
    fn threaded_workers_cannot_corrupt_main_state() {
        let mut r = threaded(4);
        r.submit("(setq total 100)").unwrap();
        // Workers setq `total` in their forks; the master copy is intact.
        r.submit("(defun bump (x) (progn (setq total (+ total x)) total))")
            .unwrap();
        let reply = r.submit("(||| 4 bump (1 2 3 4))").unwrap();
        assert_eq!(reply.output, "(101 102 103 104)");
        assert_eq!(r.submit("total").unwrap().output, "100");
    }

    #[test]
    fn cpu_phases_dominated_by_eval() {
        // Paper Fig. 18: on CPUs parsing and printing are almost
        // negligible; evaluation dominates.
        let mut r = CpuRepl::launch(amd_6272(), CpuReplConfig::default());
        r.submit("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
            .unwrap();
        let jobs = vec!["5"; 64].join(" ");
        let reply = r.submit(&format!("(||| 64 fib ({jobs}))")).unwrap();
        let (p, e, pr) = reply.phases.proportions();
        assert!(e > 0.6, "eval share {e}");
        assert!(p < 0.3, "parse share {p}");
        assert!(pr < 0.3, "print share {pr}");
    }

    #[test]
    fn sessions_survive_errors() {
        let mut r = modeled();
        assert!(!r.submit("(car 5)").unwrap().ok);
        assert_eq!(r.submit("(+ 1 1)").unwrap().output, "2");
    }

    #[test]
    fn shutdown_closes() {
        let mut r = modeled();
        let ms = r.shutdown();
        assert!(ms > 0.0);
        assert!(matches!(r.submit("1"), Err(RuntimeError::SessionClosed)));
    }
}
