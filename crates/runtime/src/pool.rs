//! Persistent worker pool for the real-threads `|||` backend.
//!
//! PR 1's [`ForkPerSectionHook`] (retained below as the benchmark
//! baseline) re-cloned the *entire* interpreter — arena, environments,
//! string table — per worker chunk on every `|||` section. This module
//! replaces it with the architecture the paper actually describes
//! (§III-D): workers are **persistent** and jobs travel through a compact
//! **postbox** — and, since PR 3, the postbox is **pipelined**: dispatch
//! of section *k+1* overlaps execution of section *k*.
//!
//! # Architecture
//!
//! * Each [`WorkerPool`] seat owns an OS thread holding a **warm
//!   interpreter fork**, cloned exactly once at pool warm-up.
//! * Master ⇄ worker traffic goes through **double-buffered**
//!   `Postbox`es: a mutex + condvar around a two-slot FIFO, not
//!   channels — no per-message queue-node allocation, mirroring the GPU
//!   postbox's fixed mailbox cells. Two slots (instead of PR 2's one) let
//!   the master ship section *k+1*'s packets while the worker still
//!   executes section *k*, so a warm command stream pays one rendezvous
//!   per *batch* instead of one sleep/wake pair per seat per section.
//! * A section dispatch per active seat carries recycled flat buffers
//!   ([`culi_core::postbox`]):
//!   1. either a `SyncPacket` — the master's environment mutations since
//!      this seat's **sync epoch** (see [`culi_core::env`]) — or an
//!      `EnvSnapshot`, a whole-environment dump, whichever is smaller
//!      (see *Snapshot resync* below);
//!   2. a `ChainPacket` — the transient environment chain above the `|||`
//!      expression (dynamic scoping: job bodies may reference enclosing
//!      `let`/parameter bindings);
//!   3. a `FlatTree` of encoded job expressions;
//!   4. a `FlatTree` the worker fills with encoded results.
//! * Buffers round-trip master → worker → master, so a warm section
//!   performs **zero steady-state heap allocations** and **zero
//!   whole-interpreter clones** ([`culi_core::Interp::clone_count`]
//!   proves the latter in tests). Returned buffers are capped at
//!   `RETAINED_MSG_BYTES` so one oversized section cannot pin its
//!   high-water allocation for the pool's lifetime.
//! * Results come back in distribution order; worker errors surface as
//!   [`CuliError::WorkerFailed`] with the job's global index, exactly
//!   like the sequential backend. Each reply also carries the worker's
//!   paper-model [`Counters`] for its jobs, so the real-threads backend
//!   reports the same meter charges as the sequential reference.
//!
//! # Pipelined dispatch protocol
//!
//! [`WorkerPool::stage`] encodes and ships one section without waiting;
//! [`WorkerPool::collect_next`] blocks for the oldest staged section's
//! replies. [`WorkerPool::execute`] (the [`ParallelHook`] path) is
//! `stage` + `collect_next` back to back — PR 2's rendezvous exactly. The
//! REPL layer (`culi_runtime::cpu_repl::CpuRepl::submit_batch`) keeps up
//! to [`WorkerPool::PIPELINE_DEPTH`] sections in flight.
//!
//! Staging ahead is only sound while the master's persistent state is
//! frozen: a staged packet describes the master *as of staging time*, and
//! the recovery paths below re-encode against the current master. `stage`
//! therefore asserts that every in-flight section was staged at the same
//! sync epoch; the REPL drains the pipeline before any command that could
//! mutate persistent state.
//!
//! # Isolation across sections and snapshot resync
//!
//! The fork-per-section design silently guaranteed that worker-side
//! mutations of *global* state died with the fork. Persistent workers
//! would leak them into later sections, so every worker watches its own
//! sync log: if a section's jobs grew it (a job ran `setq`/`defun`
//! against persistent state), the worker reports itself **dirty**. PR 2
//! re-forked dirty seats (a whole-interpreter clone); PR 3 instead ships
//! an [`culi_core::postbox::EnvSnapshot`] that rebuilds the replica's
//! persistent environments in place — structure-faithful, no clone. The
//! same snapshot repairs seats whose incremental replay window would be
//! larger than the live environment (cold seats behind thousands of
//! defines; the crossover is count-based, measured by `bench_pr3`'s
//! `sync/` rows) and seats older than the log's compaction frontier
//! ([`culi_core::env::EnvArena::sync_replay_faithful_since`]).
//!
//! A **dirty** worker refuses any already-queued plain section (its state
//! has diverged from every master epoch) and the master re-arms the
//! refused message with a snapshot. A **panicked** worker refuses
//! everything; the master respawns the seat's thread from the current
//! master — the only remaining source of post-warm-up clones, reserved
//! for the pathological path. Pure workloads — the paper's model — never
//! pay any of this.
//!
//! After replying, a worker collects its own garbage (decoded sync
//! values stay rooted by its global bindings; job temporaries die), so a
//! warm worker's arena stays at its steady-state high-water mark.
//!
//! # Fault model and watchdog (PR 6)
//!
//! A worker that never replies would wedge the whole pipeline behind its
//! postbox, so every reply take carries a **deadline**
//! ([`WorkerPool::DEFAULT_REPLY_DEADLINE`]; tests shorten it). A seat
//! that blows the deadline is **detached**: its thread is abandoned
//! rather than joined (a shutdown marker is queued best-effort, so the
//! hung thread exits on its own if it ever wakes), the seat relaunches
//! with a fresh fork of the current master, and every message that was
//! in flight on it is written off with a synthetic failure reply — the
//! in-flight buffers are unrecoverable, so transparent re-execution is
//! impossible at this layer. Written-off commands surface as degradable
//! [`CuliError::Backend`] errors that the batch scheduler
//! (`culi_runtime::scheduler`) re-executes on the master's sequential
//! reference after draining the pipeline.
//!
//! The master also validates every executed reply's **shape** before
//! indexing into it (`reply_shape_valid`): a corrupted reply is treated
//! exactly like a panic — seat hard-poisoned, run written off — instead
//! of crashing the master. Deterministic fault injection
//! ([`culi_core::fault::FaultPlan`], polled once per accepted section
//! message) can script panics, hangs, garbled replies and dropped
//! replies; the differential fault harness drives every kind against the
//! clean reference.
//!
//! Fuel composes with the watchdog: each job re-arms the session's
//! per-command fuel budget before evaluating (`run_msg`), so a budgeted
//! runaway job aborts promptly with `FuelExhausted` inside the worker,
//! and the deadline only backstops *unbudgeted* runaways and genuine
//! infrastructure hangs.

use culi_core::cost::Counters;
use culi_core::eval::{eval, ParallelHook, SequentialHook};
use culi_core::fault::{FaultKind, FaultPlan, FaultSite};
use culi_core::postbox::{ChainPacket, EnvSnapshot, FlatTree, SyncPacket};
use culi_core::{CuliError, EnvId, ErrorCode, Interp, NodeId};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Mailbox slots per direction: the master may run this many sections
/// ahead of a worker (double buffering).
const POSTBOX_DEPTH: usize = 2;

/// Retained-capacity cap for a recycled [`SectionMsg`], applied when its
/// buffers return to the seat pool: one oversized section must not pin
/// high-water memory for the pool's lifetime.
const RETAINED_MSG_BYTES: usize = 64 * 1024;

/// Extra replay records tolerated before a snapshot becomes cheaper than
/// incremental sync. Replay and snapshot records cost within a few
/// percent of each other to encode/apply (both are one flat value tree
/// plus one define/set; `bench_pr3`'s `sync/` rows measure both), so the
/// crossover is essentially the record *counts*; the slack absorbs the
/// snapshot's fixed cost of resetting and rebuilding the environment
/// list.
const SNAPSHOT_SLACK_RECORDS: usize = 16;

/// A bounded FIFO rendezvous mailbox: `put` blocks while all
/// [`POSTBOX_DEPTH`] slots are occupied, `take` blocks while the box is
/// empty. The CPU analogue of the simulated kernel's postbox cells — no
/// unbounded queue, no per-message allocation in steady state.
#[derive(Debug)]
struct Postbox<T> {
    slots: Mutex<VecDeque<T>>,
    ready: Condvar,
}

impl<T> Postbox<T> {
    fn new() -> Self {
        Self {
            slots: Mutex::new(VecDeque::with_capacity(POSTBOX_DEPTH)),
            ready: Condvar::new(),
        }
    }

    fn put(&self, value: T) {
        let mut slots = self.slots.lock().unwrap();
        while slots.len() >= POSTBOX_DEPTH {
            slots = self.ready.wait(slots).unwrap();
        }
        slots.push_back(value);
        self.ready.notify_all();
    }

    fn take(&self) -> T {
        let mut slots = self.slots.lock().unwrap();
        loop {
            if let Some(v) = slots.pop_front() {
                self.ready.notify_all();
                return v;
            }
            slots = self.ready.wait(slots).unwrap();
        }
    }

    /// `take` with a watchdog deadline: `None` if nothing arrived within
    /// `timeout` (the sender is presumed hung).
    fn take_deadline(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut slots = self.slots.lock().unwrap();
        loop {
            if let Some(v) = slots.pop_front() {
                self.ready.notify_all();
                return Some(v);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.ready.wait_timeout(slots, deadline - now).unwrap();
            slots = guard;
        }
    }

    /// Non-blocking `put`: `false` when every slot is occupied. Used on
    /// the seat-abandonment path, where a blocking put to a hung peer
    /// would hang the master too.
    fn try_put(&self, value: T) -> bool {
        let mut slots = self.slots.lock().unwrap();
        if slots.len() >= POSTBOX_DEPTH {
            return false;
        }
        slots.push_back(value);
        self.ready.notify_all();
        true
    }
}

/// How long an injected `Hang` fault stalls a worker: comfortably past
/// the watchdog deadline (the fault must actually blow it) yet bounded,
/// so abandoned test threads drain their mailbox and exit on their own.
fn hang_duration(deadline: Duration) -> Duration {
    deadline * 4
}

/// One dispatch message: a **run** of one or more consecutive sections
/// for one seat, plus the synchronization payload. Every buffer is
/// recycled across runs by round-tripping master → worker → master.
/// Seats that participate in a run but not in one of its sections carry
/// a zero-job entry for it, so section indices line up across seats.
#[derive(Debug, Default)]
struct SectionMsg {
    /// Master env mutations since this seat's last sync (ignored when
    /// `use_snapshot`).
    sync: SyncPacket,
    /// Whole-environment resync (only read when `use_snapshot`).
    snapshot: EnvSnapshot,
    /// Synchronize via `snapshot` instead of `sync`.
    use_snapshot: bool,
    /// Continue a partially-executed run (after a mid-run dirty stop):
    /// keep recorded outcomes and resume at section `completed` instead
    /// of starting over.
    resume: bool,
    /// Transient env chain above the `|||` expressions (one per run: a
    /// coalesced run shares its parent environment).
    chain: ChainPacket,
    /// Encoded job expressions of every section, concatenated.
    jobs: FlatTree,
    /// Jobs per section (this seat's chunks).
    section_jobs: Vec<u32>,
    /// Global index of this seat's first job, per section (errors).
    section_first: Vec<u32>,
    /// Worker-filled encoded results, concatenated across sections.
    results: FlatTree,
    /// Worker-filled: results pushed per attempted section.
    section_results: Vec<u32>,
    /// Worker-filled: first failing job per section, if any.
    section_error: Vec<Option<(usize, String)>>,
    /// Worker-filled: paper-model charges of each section's jobs.
    section_counters: Vec<Counters>,
    /// Worker-filled: sections attempted (a mid-run dirty stop leaves
    /// `completed < section_jobs.len()`; the master re-arms the same
    /// message in `resume` mode with a snapshot).
    completed: u32,
}

impl SectionMsg {
    fn section_count(&self) -> usize {
        self.section_jobs.len()
    }

    /// Bytes of heap capacity currently retained across all buffers.
    fn byte_capacity(&self) -> usize {
        self.sync.byte_capacity()
            + self.snapshot.byte_capacity()
            + self.chain.byte_capacity()
            + self.jobs.byte_capacity()
            + self.results.byte_capacity()
            + (self.section_jobs.capacity()
                + self.section_first.capacity()
                + self.section_results.capacity())
                * 4
            + self.section_error.capacity() * std::mem::size_of::<Option<(usize, String)>>()
            + self.section_counters.capacity() * std::mem::size_of::<Counters>()
    }

    /// Shrink policy: cap what a recycled message keeps.
    fn shrink_to_retention_cap(&mut self) {
        if self.byte_capacity() > RETAINED_MSG_BYTES {
            let per_buf = RETAINED_MSG_BYTES / 5;
            self.sync.shrink_to_budget(per_buf);
            self.snapshot.shrink_to_budget(per_buf);
            self.chain.shrink_to_budget(per_buf);
            self.jobs.shrink_to_budget(per_buf);
            self.results.shrink_to_budget(per_buf);
            self.section_jobs.shrink_to(64);
            self.section_first.shrink_to(64);
            self.section_results.shrink_to(64);
            self.section_error.shrink_to(64);
            self.section_counters.shrink_to(64);
        }
    }
}

#[derive(Debug)]
enum ToWorker {
    Section(Box<SectionMsg>),
    Shutdown,
}

#[derive(Debug)]
struct SectionReply {
    msg: Box<SectionMsg>,
    /// The worker ended this message poisoned: its fork has diverged
    /// from the master (the last attempted section mutated persistent
    /// state, or synchronization failed).
    dirty: bool,
    /// The worker panicked mid-run; its fork is untrusted and the seat's
    /// thread must be respawned. Per-section outcomes in `msg` are
    /// unreliable.
    panicked: bool,
    /// The worker declined to run this message because an earlier run
    /// poisoned it (`panicked` distinguishes hard from soft poison). The
    /// message was not executed; the master re-arms and re-sends it.
    refused: bool,
}

#[derive(Debug)]
struct Seat {
    to: Arc<Postbox<ToWorker>>,
    from: Arc<Postbox<SectionReply>>,
    handle: Option<JoinHandle<()>>,
    /// Master sync epoch this seat's fork has replayed up to.
    synced_epoch: u64,
    /// Recycled dispatch buffers; one set per pipeline slot. Empty only
    /// while that many runs are in flight on this seat. (Boxed so the
    /// postbox and reply types move a pointer, not the buffer struct.)
    #[allow(clippy::vec_box)]
    bufs: Vec<Box<SectionMsg>>,
    /// Messages sent minus replies taken.
    outstanding: usize,
    /// Replies written off by a watchdog detach: the in-flight buffers
    /// went down with the abandoned thread, so each owed reply is
    /// synthesized as a panic-shaped failure instead.
    lost_replies: usize,
    /// A dirty end-of-run was observed: the next dispatch must carry a
    /// snapshot (the worker refuses anything else).
    soft_poisoned: bool,
    /// A panic was observed: the thread must be respawned before the
    /// next dispatch.
    hard_poisoned: bool,
}

impl Seat {
    fn launch(template: &Interp, plan: &FaultPlan, hang_for: Duration) -> Self {
        let to = Arc::new(Postbox::new());
        let from = Arc::new(Postbox::new());
        let interp = template.clone();
        let worker_plan = plan.clone();
        let (to2, from2) = (Arc::clone(&to), Arc::clone(&from));
        let handle =
            std::thread::spawn(move || worker_loop(interp, &to2, &from2, worker_plan, hang_for));
        Self {
            to,
            from,
            handle: Some(handle),
            synced_epoch: template.envs.sync_epoch(),
            bufs: (0..POSTBOX_DEPTH).map(|_| Box::default()).collect(),
            outstanding: 0,
            lost_replies: 0,
            soft_poisoned: false,
            hard_poisoned: false,
        }
    }

    fn send(&mut self, msg: Box<SectionMsg>) {
        self.to.put(ToWorker::Section(msg));
        self.outstanding += 1;
    }

    /// Takes the next owed reply. Previously written-off messages are
    /// consumed first as synthetic panic-shaped replies; a live take that
    /// blows `deadline` detaches the seat (see
    /// [`Seat::detach_respawn`]) and is written off the same way.
    fn take_reply_within(
        &mut self,
        template: &Interp,
        plan: &FaultPlan,
        deadline: Duration,
    ) -> SectionReply {
        fn synthetic() -> SectionReply {
            SectionReply {
                msg: Box::default(),
                dirty: true,
                panicked: true,
                refused: false,
            }
        }
        if self.lost_replies > 0 {
            self.lost_replies -= 1;
            return synthetic();
        }
        match self.from.take_deadline(deadline) {
            Some(reply) => {
                self.outstanding -= 1;
                reply
            }
            None => {
                self.detach_respawn(template, plan, hang_duration(deadline));
                debug_assert!(
                    self.lost_replies > 0,
                    "deadline blown with nothing in flight"
                );
                self.lost_replies = self.lost_replies.saturating_sub(1);
                synthetic()
            }
        }
    }

    /// Returns a message's buffers to the pool, applying the retention
    /// cap. Synthetic write-off replies can outnumber the lost originals
    /// they replace, so the recycled set never grows past the pipeline
    /// depth.
    fn give_back(&mut self, mut msg: Box<SectionMsg>) {
        if self.bufs.len() >= POSTBOX_DEPTH {
            return;
        }
        msg.shrink_to_retention_cap();
        self.bufs.push(msg);
    }

    /// Replaces this seat's worker thread with a fresh fork of `template`
    /// (the panic-recovery path — the only post-warm-up interpreter
    /// clone). Requires all outstanding replies to have been drained.
    fn respawn(&mut self, template: &Interp, plan: &FaultPlan, hang_for: Duration) {
        debug_assert_eq!(self.outstanding, 0, "respawn with replies in flight");
        self.shutdown();
        let bufs = std::mem::take(&mut self.bufs);
        let lost = self.lost_replies;
        *self = Seat::launch(template, plan, hang_for);
        // Keep the old buffer sets (they are already shrunk to cap) and
        // the write-off credits still owed to uncollected runs.
        self.bufs = bufs;
        self.lost_replies = lost;
    }

    /// Watchdog path: the worker blew the reply deadline. The thread is
    /// abandoned, never joined — a shutdown marker is queued best-effort
    /// so it exits on its own if it ever wakes (the worker blocks only
    /// after taking a message, so at most one message is queued in `to`
    /// and the marker always fits). The seat relaunches from the current
    /// master (sound: the pipeline pins one master epoch, so the master
    /// *is* the state every in-flight message was staged against), and
    /// every in-flight message is written off — its buffers are
    /// unrecoverable.
    fn detach_respawn(&mut self, template: &Interp, plan: &FaultPlan, hang_for: Duration) {
        let _ = self.to.try_put(ToWorker::Shutdown);
        drop(self.handle.take());
        let lost = self.outstanding + self.lost_replies;
        let bufs = std::mem::take(&mut self.bufs);
        *self = Seat::launch(template, plan, hang_for);
        self.bufs = bufs;
        self.lost_replies = lost;
    }

    fn shutdown(&mut self) {
        self.to.put(ToWorker::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Re-sends a FIFO run of parked messages after this seat was
    /// repaired: the first may carry a fresh snapshot (and continue a
    /// partially-executed run when `resume_first`); the rest ride behind
    /// it with nothing left to sync. Clears the master-side poison flags
    /// — the worker is clean once the head message lands (a fresh fork
    /// after a respawn, or a successful snapshot apply).
    #[allow(clippy::vec_box)] // messages stay boxed end to end
    fn resend_parked(
        &mut self,
        interp: &Interp,
        parked: Vec<Box<SectionMsg>>,
        snapshot_first: bool,
        resume_first: bool,
    ) {
        for (k, mut msg) in parked.into_iter().enumerate() {
            msg.use_snapshot = snapshot_first && k == 0;
            if msg.use_snapshot {
                msg.snapshot.encode(interp);
            }
            msg.resume = resume_first && k == 0;
            msg.sync.clear();
            self.send(msg);
        }
        self.soft_poisoned = false;
        self.hard_poisoned = false;
    }
}

/// Worker-side divergence state. A poisoned worker refuses messages
/// instead of running them on a diverged fork, but keeps draining its
/// mailbox so the pipeline never wedges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Poison {
    /// Fork matches its sync epoch: run anything.
    None,
    /// A completed run's last section diverged the fork: only a
    /// snapshot-bearing message may run.
    Soft,
    /// A run stopped dirty *mid-message*: only the master's resume
    /// re-send of that same message may run — a fresh snapshot message
    /// for a later run must not jump the remaining sections.
    AwaitResume,
    /// A panic left the fork untrusted: nothing runs until the master
    /// respawns this thread.
    Hard,
}

fn worker_loop(
    mut interp: Interp,
    to: &Postbox<ToWorker>,
    from: &Postbox<SectionReply>,
    plan: FaultPlan,
    hang_for: Duration,
) {
    let mut poison = Poison::None;
    loop {
        match to.take() {
            ToWorker::Shutdown => return,
            ToWorker::Section(mut msg) => {
                let accept = match poison {
                    Poison::None => true,
                    Poison::Soft => msg.use_snapshot,
                    Poison::AwaitResume => msg.resume,
                    Poison::Hard => false,
                };
                if !accept {
                    from.put(SectionReply {
                        msg,
                        dirty: false,
                        panicked: poison == Poison::Hard,
                        refused: true,
                    });
                    continue;
                }
                // One fault-injection event per *accepted* section
                // message (refusals are protocol traffic, not work).
                let fault = plan.poll(FaultSite::WorkerSection);
                if fault == Some(FaultKind::Hang) {
                    // Injected stall: blow the master's watchdog deadline,
                    // then carry on — the master has detached this seat by
                    // the time we wake, so the late reply lands in an
                    // orphaned postbox.
                    std::thread::sleep(hang_for);
                }
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    if fault == Some(FaultKind::Panic) {
                        // resume_unwind skips the global panic hook: no
                        // backtrace noise for a scripted fault.
                        std::panic::resume_unwind(Box::new("injected worker fault"));
                    }
                    run_msg(&mut interp, &mut msg)
                }));
                match outcome {
                    Ok(run) => {
                        poison = if run.dirty {
                            if (msg.completed as usize) < msg.section_count() {
                                Poison::AwaitResume
                            } else {
                                Poison::Soft
                            }
                        } else {
                            Poison::None
                        };
                        if fault == Some(FaultKind::DropReply) {
                            // Injected loss: the reply never lands; the
                            // master's watchdog writes the message off and
                            // detaches this seat.
                            culi_core::gc::collect(&mut interp, &[]);
                            continue;
                        }
                        if fault == Some(FaultKind::Garbage) {
                            // Injected corruption: the reply claims every
                            // section ran but its payload vectors are
                            // empty. The master's shape validation must
                            // write it off instead of indexing into it.
                            msg.results.clear();
                            msg.section_results.clear();
                            msg.section_error.clear();
                            msg.section_counters.clear();
                        }
                        from.put(SectionReply {
                            msg,
                            dirty: run.dirty,
                            panicked: false,
                            refused: false,
                        });
                        // Collect after replying: the master proceeds while
                        // this fork sweeps its job temporaries (bounded by
                        // its high-water slot, see culi_core::gc).
                        culi_core::gc::collect(&mut interp, &[]);
                    }
                    Err(_) => {
                        // The fork's state can no longer be trusted; report
                        // and refuse everything until the master respawns
                        // this seat.
                        poison = Poison::Hard;
                        from.put(SectionReply {
                            msg,
                            dirty: true,
                            panicked: true,
                            refused: false,
                        });
                    }
                }
            }
        }
    }
}

/// What one dispatched message did inside a worker.
struct MsgRun {
    /// The fork ends this message diverged from the master.
    dirty: bool,
    /// A snapshot was applied successfully (clears soft poison).
    resynced: bool,
}

/// Runs one dispatched message inside a worker: synchronize (replay or
/// snapshot), rebuild the transient chain, then execute the run's
/// sections in order — each section's jobs evaluate in their own child
/// environments, results/errors/charges are recorded per section. A
/// section whose jobs mutate persistent state stops the run: the fork
/// has diverged, and later sections must wait for a snapshot resync
/// (the master re-sends this message in `resume` mode).
fn run_msg(interp: &mut Interp, msg: &mut SectionMsg) -> MsgRun {
    let mut run = MsgRun {
        dirty: false,
        resynced: false,
    };
    if !msg.resume {
        msg.completed = 0;
        msg.results.clear();
        msg.section_results.clear();
        msg.section_error.clear();
        msg.section_counters.clear();
    }
    let sections = msg.section_count();
    // A failed sync leaves this fork in an unspecified intermediate
    // state: every remaining section fails, and the dirty flag makes the
    // next dispatch resynchronize from a snapshot.
    let synced = if msg.use_snapshot {
        msg.snapshot.apply(interp)
    } else {
        msg.sync.apply(interp)
    };
    if let Err(e) = synced {
        for s in msg.completed as usize..sections {
            msg.section_results.push(0);
            msg.section_error.push(Some((
                msg.section_first[s] as usize,
                format!("worker sync failed: {e}"),
            )));
            msg.section_counters.push(Counters::default());
        }
        msg.completed = sections as u32;
        run.dirty = true;
        return run;
    }
    run.resynced = msg.use_snapshot;
    let base_env = match msg.chain.rebuild(interp) {
        Ok(env) => env,
        Err(e) => {
            for s in msg.completed as usize..sections {
                msg.section_results.push(0);
                msg.section_error.push(Some((
                    msg.section_first[s] as usize,
                    format!("worker chain rebuild failed: {e}"),
                )));
                msg.section_counters.push(Counters::default());
            }
            msg.completed = sections as u32;
            run.dirty = true;
            return run;
        }
    };
    // Job tree index where the next section starts (preceding sections'
    // jobs were already consumed on resume).
    let mut job_at: usize = msg.section_jobs[..msg.completed as usize]
        .iter()
        .map(|&n| n as usize)
        .sum();
    while (msg.completed as usize) < sections {
        let s = msg.completed as usize;
        let njobs = msg.section_jobs[s] as usize;
        // Synchronization itself appends to this fork's own log; only
        // growth *beyond* this point means a job mutated global state.
        let log_before = interp.envs.sync_log_len();
        let mut error: Option<(usize, String)> = None;
        let mut pushed = 0u32;
        let mut counters = Counters::default();
        for j in 0..njobs {
            let job = match msg.jobs.decode(job_at + j, interp) {
                Ok(id) => id,
                Err(e) => {
                    error = Some((msg.section_first[s] as usize + j, e.to_string()));
                    break;
                }
            };
            // Paper §III-D b: each job's subtree roots in a child of the
            // ||| expression's environment. The meter window around eval
            // charges exactly the job's own interpreter work — codec
            // traffic stays outside it, so these counters line up with
            // the sequential backend's.
            let env = interp.envs.push(Some(base_env));
            // Each parallel job gets the session's full per-command fuel
            // budget independently: this fork's absolute deadline is
            // stale (cloned from the master at warm-up), and a shared
            // window would make a job's abort depend on how much its
            // seat has already executed.
            let budget = interp.meter.fuel_budget();
            interp.meter.arm_fuel(budget);
            let before = interp.meter.snapshot();
            let outcome = eval(interp, &mut SequentialHook, job, env, 0);
            counters.add(&interp.meter.snapshot().delta_since(&before));
            match outcome {
                Ok(value) => {
                    msg.results.push_tree(interp, value);
                    pushed += 1;
                }
                Err(e) => {
                    error = Some((msg.section_first[s] as usize + j, e.to_string()));
                    break;
                }
            }
        }
        job_at += njobs;
        msg.section_results.push(pushed);
        msg.section_error.push(error);
        msg.section_counters.push(counters);
        msg.completed = (s + 1) as u32;
        if interp.envs.sync_log_len() != log_before {
            // This section's jobs mutated persistent state: stop here.
            run.dirty = true;
            break;
        }
    }
    run
}

/// Master-side defensive validation of an executed reply: every
/// worker-filled vector must line up with the reply's own claimed
/// progress before the master indexes into them. A reply that fails this
/// cannot be trusted any further than a panic — the caller writes it off
/// instead of crashing the master.
fn reply_shape_valid(msg: &SectionMsg) -> bool {
    let completed = msg.completed as usize;
    completed <= msg.section_count()
        && msg.section_results.len() == completed
        && msg.section_error.len() == completed
        && msg.section_counters.len() == completed
        && msg
            .section_results
            .iter()
            .map(|&n| n as usize)
            .sum::<usize>()
            <= msg.results.len()
}

/// Dispatch plan of one section within a staged run.
#[derive(Debug, Clone, Copy)]
struct SectionPlan {
    /// Seats the section's jobs were chunked over (`0..active`).
    active: usize,
}

/// One staged (in-flight) run of sections awaiting collection.
#[derive(Debug)]
struct StagedRun {
    plans: Vec<SectionPlan>,
    /// Master sync epoch at staging time (pipeline-frozen invariant).
    epoch: u64,
    /// Seats that received a message for this run.
    active_seats: usize,
    /// Per-seat executed replies, taken at first collection. The flag
    /// marks a panicked seat (its recorded outcomes are unreliable; the
    /// buffers still round-trip back to the seat pool).
    replies: Vec<(bool, Box<SectionMsg>)>,
    /// Sections already handed out by `collect_next`.
    cursor: usize,
    /// Result-tree cursor per seat (prefix of consumed result trees).
    result_at: Vec<usize>,
}

/// A pool of persistent worker threads with warm interpreter forks and a
/// pipelined multi-section dispatch queue (see the module docs for the
/// protocol).
#[derive(Debug)]
pub struct WorkerPool {
    seats: Vec<Seat>,
    pending: VecDeque<StagedRun>,
    /// Job charges accumulated across collected sections since the last
    /// [`WorkerPool::take_job_counters`].
    job_counters: Counters,
    /// Watchdog: how long one reply take may block before its seat is
    /// declared hung and detached.
    reply_deadline: Duration,
    /// Deterministic fault script the workers poll (empty in
    /// production: one branch per section message).
    fault_plan: FaultPlan,
}

impl WorkerPool {
    /// Maximum runs a caller may keep staged-but-uncollected: the
    /// postbox double-buffer depth.
    pub const PIPELINE_DEPTH: usize = POSTBOX_DEPTH;

    /// Maximum sections a single staged run may coalesce.
    pub const MAX_RUN_SECTIONS: usize = 16;

    /// Retained-capacity cap per recycled dispatch buffer (see
    /// [`WorkerPool::retained_buffer_bytes`]). Public so layers that
    /// manage many pools — the session server's warm-fork eviction —
    /// can budget their total retained memory in the same units the
    /// per-buffer shrink policy enforces.
    pub const RETAINED_MSG_BYTES: usize = RETAINED_MSG_BYTES;

    /// Default watchdog deadline for one reply take. Deliberately
    /// generous: legitimate sections can run long, and *budgeted*
    /// runaways are caught much earlier by fuel — the deadline exists
    /// for genuinely hung workers.
    pub const DEFAULT_REPLY_DEADLINE: Duration = Duration::from_secs(30);

    /// Forks `threads` workers (at least one) from `template`. This is the
    /// only point that clones whole interpreters; every later section is
    /// incremental (snapshot resync repairs diverged seats in place, and
    /// only the panic-recovery path ever clones again).
    pub fn launch(template: &Interp, threads: usize) -> Self {
        Self::launch_with(
            template,
            threads,
            Self::DEFAULT_REPLY_DEADLINE,
            FaultPlan::none(),
        )
    }

    /// [`WorkerPool::launch`] with an explicit watchdog deadline and
    /// fault-injection script (tests and the differential fault
    /// harness).
    pub fn launch_with(
        template: &Interp,
        threads: usize,
        reply_deadline: Duration,
        fault_plan: FaultPlan,
    ) -> Self {
        let hang_for = hang_duration(reply_deadline);
        let seats = (0..threads.max(1))
            .map(|_| Seat::launch(template, &fault_plan, hang_for))
            .collect();
        Self {
            seats,
            pending: VecDeque::new(),
            job_counters: Counters::default(),
            reply_deadline,
            fault_plan,
        }
    }

    /// Number of worker seats.
    pub fn size(&self) -> usize {
        self.seats.len()
    }

    /// Number of staged runs not yet fully collected.
    pub fn staged_runs(&self) -> usize {
        self.pending.len()
    }

    /// Number of staged sections not yet collected.
    pub fn staged(&self) -> usize {
        self.pending.iter().map(|r| r.plans.len() - r.cursor).sum()
    }

    /// Paper-model charges of every job evaluated in collected sections
    /// since the last call (the worker-side half of a command's meter).
    pub fn take_job_counters(&mut self) -> Counters {
        std::mem::take(&mut self.job_counters)
    }

    /// Bytes of buffer capacity currently retained by seat-held (idle)
    /// dispatch buffers — the quantity bounded by the shrink policy.
    pub fn retained_buffer_bytes(&self) -> usize {
        self.seats
            .iter()
            .flat_map(|s| s.bufs.iter())
            .map(|m| m.byte_capacity())
            .sum()
    }

    /// Encodes and ships one section without waiting for replies: a run
    /// of one.
    pub fn stage(&mut self, interp: &mut Interp, jobs: &[NodeId], parent_env: EnvId) {
        self.stage_run(interp, &[jobs], parent_env);
    }

    /// Encodes and ships a run of consecutive sections (sharing
    /// `parent_env`) as **one message per participating seat** — one
    /// postbox rendezvous per seat per run instead of one per seat per
    /// section. At most [`WorkerPool::PIPELINE_DEPTH`] runs may be in
    /// flight; every staged run must see the same master sync epoch
    /// (stage panics otherwise — the caller drains the pipeline before
    /// mutating commands).
    pub fn stage_run(&mut self, interp: &mut Interp, sections: &[&[NodeId]], parent_env: EnvId) {
        self.stage_run_cached(interp, sections, parent_env, None)
    }

    /// [`WorkerPool::stage_run`] with the command cache's **template
    /// tier** ([`crate::cache::CommandCache`]) consulted per job: a
    /// repeated job tree's dispatch encoding is served as a pre-encoded
    /// [`culi_core::postbox::TreeTemplate`] splice
    /// ([`culi_core::postbox::FlatTree::push_template`], byte-identical
    /// to a fresh [`culi_core::postbox::FlatTree::push_tree`] walk)
    /// instead of re-walking the arena. Job trees embed their resolved
    /// operands, so the structural key alone identifies the payload —
    /// no environment dimension needed. `None` is the uncached
    /// [`WorkerPool::stage_run`] path, bit-for-bit.
    pub fn stage_run_cached(
        &mut self,
        interp: &mut Interp,
        sections: &[&[NodeId]],
        parent_env: EnvId,
        cache: Option<&crate::cache::CommandCache>,
    ) {
        let epoch_now = interp.envs.sync_epoch();
        assert!(
            self.pending.iter().all(|p| p.epoch == epoch_now),
            "pipelined sections must be staged against one frozen master epoch"
        );
        assert!(
            self.pending.len() < POSTBOX_DEPTH,
            "postbox pipeline staged deeper than its double buffers"
        );
        assert!(
            sections.len() <= Self::MAX_RUN_SECTIONS,
            "staged run exceeds MAX_RUN_SECTIONS"
        );
        let mut plans = Vec::with_capacity(sections.len());
        let mut active_seats = 0;
        for jobs in sections {
            let active = if jobs.is_empty() {
                0
            } else {
                // Seats actually receiving a chunk: ceil-division rounding
                // can leave fewer chunks than seats (e.g. 5 jobs over 4
                // seats chunk in threes: 2+2+1), so recompute from the
                // chunk size instead of assuming one chunk per seat.
                let t = self.seats.len().min(jobs.len()).max(1);
                let chunk_size = jobs.len().div_ceil(t);
                jobs.len().div_ceil(chunk_size)
            };
            plans.push(SectionPlan { active });
            active_seats = active_seats.max(active);
        }
        let faithful = interp.envs.sync_replay_faithful_since();
        let nseats = self.seats.len();
        let plan = self.fault_plan.clone();
        let hang_for = hang_duration(self.reply_deadline);
        // The whole-environment snapshot is identical for every seat that
        // needs one: encode it once per dispatch and memcpy it into each
        // message instead of re-walking the environment per seat.
        let mut shared_snapshot: Option<EnvSnapshot> = None;
        for c in 0..active_seats {
            let seat = &mut self.seats[c];
            if seat.hard_poisoned && seat.outstanding == 0 {
                seat.respawn(interp, &plan, hang_for);
            }
            let mut msg = seat.bufs.pop().expect("seat staged past its buffers");
            // Snapshot-vs-replay decision (module docs): a snapshot is
            // forced for diverged or compaction-stranded seats, and
            // otherwise chosen whenever the replay window holds more
            // records than the live environment dump would.
            let window = interp.envs.sync_records_since(seat.synced_epoch).len();
            let use_snapshot = seat.soft_poisoned
                || seat.synced_epoch < faithful
                || window > interp.envs.logged_binding_count() + SNAPSHOT_SLACK_RECORDS;
            if use_snapshot {
                msg.use_snapshot = true;
                let shared = shared_snapshot.get_or_insert_with(|| {
                    let mut snap = EnvSnapshot::default();
                    snap.encode(interp);
                    snap
                });
                msg.snapshot.copy_from(shared);
                msg.sync.clear();
                // Optimistic: the worker clears its own poison only when
                // the snapshot applies; a failure comes back dirty and
                // re-poisons this flag.
                seat.soft_poisoned = false;
            } else {
                msg.use_snapshot = false;
                msg.sync.encode_since(interp, seat.synced_epoch);
            }
            msg.resume = false;
            msg.chain.encode(interp, parent_env);
            msg.jobs.clear();
            msg.section_jobs.clear();
            msg.section_first.clear();
            for (s, jobs) in sections.iter().enumerate() {
                let active = plans[s].active;
                if c >= active {
                    // Not participating in this section: keep indices
                    // aligned with a zero-job entry.
                    msg.section_jobs.push(0);
                    msg.section_first.push(0);
                    continue;
                }
                let t = nseats.min(jobs.len()).max(1);
                let chunk_size = jobs.len().div_ceil(t);
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(jobs.len());
                for &job in &jobs[lo..hi] {
                    match cache {
                        Some(cache) => {
                            let key = culi_core::structhash::StructKey::of(interp, job);
                            if !cache.template_splice(&key, &mut msg.jobs) {
                                // Encode as the uncached path would, then
                                // capture the just-written words as the
                                // template — no second arena walk.
                                msg.jobs.push_tree(interp, job);
                                cache.template_insert(key, msg.jobs.template_of_last());
                            }
                        }
                        None => msg.jobs.push_tree(interp, job),
                    }
                }
                msg.section_jobs.push((hi - lo) as u32);
                msg.section_first.push(lo as u32);
            }
            seat.synced_epoch = epoch_now;
            seat.send(msg);
        }
        self.pending.push_back(StagedRun {
            plans,
            epoch: epoch_now,
            active_seats,
            replies: Vec::new(),
            cursor: 0,
            result_at: vec![0; active_seats],
        });
    }

    /// Takes seat `c`'s fully-executed reply for the front run,
    /// repairing refusals and mid-run dirty stops along the way. The
    /// returned flag is `true` when the seat's reply was written off —
    /// panic, watchdog timeout, or corrupted payload (its recorded
    /// outcomes are unreliable).
    fn take_run_reply(
        seats: &mut [Seat],
        interp: &mut Interp,
        epoch: u64,
        c: usize,
        deadline: Duration,
        plan: &FaultPlan,
    ) -> (bool, Box<SectionMsg>) {
        /// Drains the (expected-refused) replies still owed on `seat`
        /// behind an out-of-band head reply: FIFO messages, whether a
        /// hard-poison refusal was seen, and whether the drain itself
        /// hit the watchdog. On the watchdog path the seat was already
        /// detached and relaunched from the current master, and the
        /// interrupted message — owed to a *later* run — had its
        /// write-off credit restored so that run collects a synthetic
        /// failure.
        // Messages stay boxed end to end (the postbox hands out
        // `Box<SectionMsg>`), so the parked list keeps the boxes rather
        // than moving the large payloads out and back in.
        #[allow(clippy::vec_box)]
        fn drain_owed(
            seat: &mut Seat,
            interp: &Interp,
            plan: &FaultPlan,
            deadline: Duration,
        ) -> (Vec<Box<SectionMsg>>, bool, bool) {
            let mut parked = Vec::new();
            let mut saw_hard = false;
            let mut detached = false;
            while seat.outstanding > 0 {
                let r = seat.take_reply_within(interp, plan, deadline);
                if r.panicked && !r.refused {
                    seat.lost_replies += 1;
                    detached = true;
                    break;
                }
                debug_assert!(r.refused, "poisoned seat executed out of order");
                saw_hard |= r.panicked;
                parked.push(r.msg);
            }
            (parked, saw_hard, detached)
        }

        let seat = &mut seats[c];
        let mut reply = seat.take_reply_within(interp, plan, deadline);
        loop {
            if reply.panicked && !reply.refused {
                // A real panic reply or a synthetic watchdog write-off:
                // the recorded outcomes are unreliable either way.
                seat.hard_poisoned = true;
                return (true, reply.msg);
            }
            if reply.refused {
                // A poisoned worker bounced this (oldest outstanding)
                // message. Everything queued behind it has been (or is
                // about to be) bounced too, so drain the whole run of
                // refusals and re-send in FIFO order — re-arming only the
                // refused head would let a later message execute first.
                // Sound because the pipeline is pinned to one master
                // epoch: the current master *is* the state these
                // messages were staged against.
                let mut parked = vec![reply.msg];
                let saw_hard_head = reply.panicked;
                let (rest, saw_hard_rest, detached) = drain_owed(seat, interp, plan, deadline);
                parked.extend(rest);
                let saw_hard = saw_hard_head || saw_hard_rest;
                if detached {
                    // The watchdog already relaunched this seat from the
                    // current master mid-drain: nothing left to repair,
                    // just re-send what was recovered.
                    seat.resend_parked(interp, parked, false, false);
                } else if saw_hard {
                    // Hard poison: respawn the thread from the current
                    // master; the fresh fork needs no sync at all.
                    seat.respawn(interp, plan, hang_duration(deadline));
                    seat.resend_parked(interp, parked, false, false);
                } else {
                    // Soft poison: the first re-sent message carries a
                    // snapshot that fully repairs the replica; the rest
                    // ride behind it with nothing left to sync.
                    seat.synced_epoch = epoch;
                    seat.resend_parked(interp, parked, true, false);
                }
                reply = seat.take_reply_within(interp, plan, deadline);
                continue;
            }
            if !reply_shape_valid(&reply.msg) {
                // Corrupted payload: write the reply off like a panic
                // instead of indexing into it.
                seat.hard_poisoned = true;
                return (true, reply.msg);
            }
            if (reply.msg.completed as usize) < reply.msg.section_count() {
                // Mid-run dirty stop: a section's jobs diverged the fork
                // and the remaining sections must not run on it. Drain
                // any refusals queued behind this message, then re-send
                // the *same* message in resume mode with a snapshot —
                // recorded outcomes are kept and execution continues from
                // `completed` — followed by the drained messages, in
                // order. (After a mid-drain detach the relaunched fork
                // already *is* the master state, so the resume rides on
                // an empty sync instead of a snapshot.)
                let (parked, _saw_hard, detached) = drain_owed(seat, interp, plan, deadline);
                let mut run = vec![reply.msg];
                run.extend(parked);
                if !detached {
                    seat.synced_epoch = epoch;
                }
                seat.resend_parked(interp, run, !detached, true);
                reply = seat.take_reply_within(interp, plan, deadline);
                continue;
            }
            // Fully executed. A dirty *last* section leaves the worker
            // poisoned. Repair eagerly: if later messages are already
            // queued on this seat the worker is bouncing them right now —
            // drain the refusals and re-send the run (snapshot first)
            // before anything newer is staged behind them, preserving
            // FIFO order. With nothing queued, just flag the seat so the
            // next stage ships a snapshot.
            if reply.dirty {
                if seat.outstanding > 0 {
                    let (parked, _saw_hard, detached) = drain_owed(seat, interp, plan, deadline);
                    if !detached {
                        seat.synced_epoch = epoch;
                    }
                    seat.resend_parked(interp, parked, !detached, false);
                } else {
                    seat.soft_poisoned = true;
                }
            }
            return (false, reply.msg);
        }
    }

    /// Blocks for the oldest staged run's next section and appends its
    /// decoded results to `results` in distribution order. Always drains
    /// every participating seat (once per run) so the pool stays
    /// consistent on failure.
    pub fn collect_next(
        &mut self,
        interp: &mut Interp,
        results: &mut Vec<NodeId>,
    ) -> culi_core::Result<()> {
        let deadline = self.reply_deadline;
        let plan = self.fault_plan.clone();
        let run = self
            .pending
            .front_mut()
            .expect("collect_next without a staged section");
        if run.replies.is_empty() && run.active_seats > 0 {
            for c in 0..run.active_seats {
                run.replies.push(Self::take_run_reply(
                    &mut self.seats,
                    interp,
                    run.epoch,
                    c,
                    deadline,
                    &plan,
                ));
            }
        }
        let s = run.cursor;
        let mut first_error: Option<CuliError> = None;
        // When any participating seat was written off, the whole section
        // is re-executed by a fallback (the hook's or the scheduler's):
        // keep the surviving seats' partial charges out of the job meter
        // so the fallback's full re-run is the only accounting.
        let seat_lost = run.replies[..run.plans[s].active]
            .iter()
            .any(|(lost, _)| *lost);
        for c in 0..run.plans[s].active {
            match &run.replies[c] {
                (true, _) => {
                    if first_error.is_none() {
                        first_error = Some(CuliError::Backend(
                            "||| worker seat lost (panic, corrupted reply, or watchdog timeout)"
                                .to_string(),
                        ));
                    }
                }
                (false, msg) => {
                    let pushed = msg.section_results[s] as usize;
                    let start = run.result_at[c];
                    run.result_at[c] += pushed;
                    if !seat_lost {
                        self.job_counters.add(&msg.section_counters[s]);
                    }
                    if let Some((worker, message)) = &msg.section_error[s] {
                        if first_error.is_none() {
                            first_error = Some(CuliError::WorkerFailed {
                                worker: *worker,
                                message: message.clone(),
                            });
                        }
                    } else if first_error.is_none() {
                        // Decoding results is postbox traffic, not
                        // paper-model interpreter work: keep it off the
                        // master's meter so the real-threads backend
                        // charges exactly like the sequential reference.
                        let decoded = interp.unmetered(|i| -> culi_core::Result<()> {
                            for r in start..start + pushed {
                                results.push(msg.results.decode(r, i)?);
                            }
                            Ok(())
                        });
                        if let Err(e) = decoded {
                            first_error = Some(e);
                        }
                    }
                }
            }
        }
        run.cursor += 1;
        if run.cursor == run.plans.len() {
            let done = self.pending.pop_front().expect("front run exists");
            for (c, (_panicked, msg)) in done.replies.into_iter().enumerate() {
                self.seats[c].give_back(msg);
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Distributes `jobs` over the seats, blocks for every reply, and
    /// appends the decoded results to `results` in distribution order —
    /// PR 2's synchronous rendezvous, now expressed as
    /// [`WorkerPool::stage`] + [`WorkerPool::collect_next`].
    pub fn execute(
        &mut self,
        interp: &mut Interp,
        jobs: &[NodeId],
        parent_env: EnvId,
        results: &mut Vec<NodeId>,
    ) -> culi_core::Result<()> {
        self.stage(interp, jobs, parent_env);
        self.collect_next(interp, results)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for seat in &mut self.seats {
            seat.shutdown();
        }
    }
}

/// Evaluates one section's jobs sequentially on the master interpreter
/// with the *worker's* exact metering discipline (`run_msg`): child env
/// outside the job window, per-job fuel re-arm, then the `eval` window
/// itself, accumulated into `job_counters`. Both graceful-degradation
/// fallbacks — [`ThreadedHook::execute`]'s on seat loss and the batch
/// scheduler's sequential re-run — go through this, which is what keeps
/// degraded replies byte-identical to the pool's (the pool test
/// `job_counters_match_sequential_reference` pins the equivalence).
pub(crate) fn run_jobs_sequential_reference(
    interp: &mut Interp,
    jobs: &[NodeId],
    parent_env: EnvId,
    results: &mut Vec<NodeId>,
    job_counters: &mut Counters,
) -> culi_core::Result<()> {
    for (w, &job) in jobs.iter().enumerate() {
        let env = interp.envs.push(Some(parent_env));
        // Like a pool worker: each job independently gets the full
        // per-command fuel budget.
        let budget = interp.meter.fuel_budget();
        interp.meter.arm_fuel(budget);
        let before = interp.meter.snapshot();
        let outcome = eval(interp, &mut SequentialHook, job, env, 0);
        job_counters.add(&interp.meter.snapshot().delta_since(&before));
        let value = outcome.map_err(|e| CuliError::WorkerFailed {
            worker: w,
            message: e.to_string(),
        })?;
        results.push(value);
    }
    Ok(())
}

/// Real-threads `|||` backend over a lazily-launched persistent
/// [`WorkerPool`]. The pool forks its workers on the first section and
/// keeps them warm across sections *and* REPL commands; see the module
/// docs for the synchronization protocol.
#[derive(Debug)]
pub struct ThreadedHook {
    threads: usize,
    reply_deadline: Duration,
    fault_plan: FaultPlan,
    pool: Option<WorkerPool>,
    /// Job charges of sections re-executed on the *master* after a seat
    /// loss ([`ThreadedHook::execute`]'s degradation fallback). Reported
    /// separately from the pool's worker-side charges so the repl can
    /// subtract them back out of the master meter.
    degraded_jobs: Counters,
}

impl ThreadedHook {
    /// A backend that will fork `threads` persistent workers on first use.
    pub fn new(threads: usize) -> Self {
        Self::with_watchdog(
            threads,
            WorkerPool::DEFAULT_REPLY_DEADLINE,
            FaultPlan::none(),
        )
    }

    /// [`ThreadedHook::new`] with an explicit watchdog deadline and
    /// fault-injection script (tests and the differential fault
    /// harness).
    pub fn with_watchdog(threads: usize, reply_deadline: Duration, fault_plan: FaultPlan) -> Self {
        Self {
            threads,
            reply_deadline,
            fault_plan,
            pool: None,
            degraded_jobs: Counters::default(),
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` once the pool has been forked (diagnostics/tests).
    pub fn is_warm(&self) -> bool {
        self.pool.is_some()
    }

    /// The pool, forking it from `interp` on first use.
    pub fn pool_mut(&mut self, interp: &Interp) -> &mut WorkerPool {
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::launch_with(
                interp,
                self.threads,
                self.reply_deadline,
                self.fault_plan.clone(),
            ));
        }
        self.pool.as_mut().expect("pool just ensured")
    }

    /// Bytes of dispatch-buffer capacity the warm pool currently retains
    /// (zero while cold) — the quantity the session server's LRU
    /// eviction budgets against [`WorkerPool::RETAINED_MSG_BYTES`].
    pub fn retained_buffer_bytes(&self) -> usize {
        self.pool
            .as_ref()
            .map_or(0, WorkerPool::retained_buffer_bytes)
    }

    /// Worker-side job charges collected since the last call (zero when
    /// the pool was never forked).
    pub fn take_job_counters(&mut self) -> Counters {
        self.pool
            .as_mut()
            .map(WorkerPool::take_job_counters)
            .unwrap_or_default()
    }

    /// Job charges of degradation-fallback sections evaluated on the
    /// master meter since the last call (see `degraded_jobs`). Zero in
    /// every fault-free session.
    pub fn take_degraded_jobs(&mut self) -> Counters {
        std::mem::take(&mut self.degraded_jobs)
    }
}

impl ParallelHook for ThreadedHook {
    fn execute(
        &mut self,
        interp: &mut Interp,
        jobs: &[NodeId],
        parent_env: EnvId,
        results: &mut Vec<NodeId>,
    ) -> culi_core::Result<()> {
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::launch_with(
                interp,
                self.threads,
                self.reply_deadline,
                self.fault_plan.clone(),
            ));
        }
        let base = results.len();
        let pool = self.pool.as_mut().expect("pool just ensured");
        match pool.execute(interp, jobs, parent_env, results) {
            Err(e) if e.code() == ErrorCode::Device => {
                // A seat was written off mid-section (the pool has
                // already relaunched it). The workers' partial results
                // and charges are discarded — `collect_next` withheld the
                // section's counters — and the whole section re-executes
                // on the master with the worker metering discipline, so
                // the reply stays byte-identical to an un-faulted run.
                results.truncate(base);
                run_jobs_sequential_reference(
                    interp,
                    jobs,
                    parent_env,
                    results,
                    &mut self.degraded_jobs,
                )
            }
            outcome => outcome,
        }
    }
}

/// PR 1's fork-per-section backend, retained as the performance baseline
/// and as a semantic reference: it clones the whole interpreter per worker
/// chunk per section. `bench_pr2` and the equivalence property tests run
/// it side by side with the pooled backend. Like the pooled backend it
/// reports the paper-model charges of its job evaluations
/// ([`ForkPerSectionHook::take_job_counters`]), measured inside the forks
/// and therefore bit-identical to the sequential reference's.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForkPerSectionHook {
    /// Worker thread count.
    pub threads: usize,
    job_counters: Counters,
}

impl ForkPerSectionHook {
    /// A fork-per-section backend over `threads` scoped threads.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            job_counters: Counters::default(),
        }
    }

    /// Job charges accumulated since the last call.
    pub fn take_job_counters(&mut self) -> Counters {
        std::mem::take(&mut self.job_counters)
    }
}

impl ParallelHook for ForkPerSectionHook {
    fn execute(
        &mut self,
        interp: &mut Interp,
        jobs: &[NodeId],
        parent_env: EnvId,
        results: &mut Vec<NodeId>,
    ) -> culi_core::Result<()> {
        let t = self.threads.clamp(1, jobs.len().max(1));
        // Contiguous chunks keep the order mapping trivial.
        let chunk_size = jobs.len().div_ceil(t);
        let template = interp.clone();

        type WorkerOut = culi_core::Result<(Interp, Vec<NodeId>, Counters)>;
        let outcomes: Vec<WorkerOut> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (c, chunk) in jobs.chunks(chunk_size).enumerate() {
                let mut fork = template.clone();
                handles.push(scope.spawn(move || -> WorkerOut {
                    let mut out = Vec::with_capacity(chunk.len());
                    let before = fork.meter.snapshot();
                    for (i, &job) in chunk.iter().enumerate() {
                        let env = fork.envs.push(Some(parent_env));
                        let v = eval(&mut fork, &mut SequentialHook, job, env, 0).map_err(|e| {
                            CuliError::WorkerFailed {
                                worker: c * chunk_size + i,
                                message: e.to_string(),
                            }
                        })?;
                        out.push(v);
                    }
                    let jobs_delta = fork.meter.snapshot().delta_since(&before);
                    Ok((fork, out, jobs_delta))
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        for outcome in outcomes {
            let (fork, values, jobs_delta) = outcome?;
            self.job_counters.add(&jobs_delta);
            // Importing result trees is backend plumbing, not paper-model
            // work — keep it off the master's meter (the sequential
            // reference has no import step).
            interp.unmetered(|i| -> culi_core::Result<()> {
                for v in values {
                    results.push(i.import_tree(&fork, v)?);
                }
                Ok(())
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culi_core::InterpConfig;

    fn interp() -> Interp {
        Interp::new(InterpConfig {
            arena_capacity: 1 << 16,
            ..Default::default()
        })
    }

    fn run(i: &mut Interp, hook: &mut dyn ParallelHook, src: &str) -> String {
        i.eval_str_with(src, hook).unwrap()
    }

    #[test]
    fn pooled_results_match_paper_example() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(3);
        assert_eq!(
            run(&mut i, &mut hook, "(||| 3 + (1 2 3) (4 5 6))"),
            "(5 7 9)"
        );
    }

    #[test]
    fn pool_is_lazy_and_persists_across_sections() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(4);
        assert!(!hook.is_warm());
        run(&mut i, &mut hook, "(||| 4 + (1 2 3 4) (1 1 1 1))");
        assert!(hook.is_warm());
        let clones_after_warmup = i.clone_count();
        for _ in 0..16 {
            assert_eq!(
                run(&mut i, &mut hook, "(||| 4 * (1 2 3 4) (2 2 2 2))"),
                "(2 4 6 8)"
            );
        }
        assert_eq!(
            i.clone_count(),
            clones_after_warmup,
            "warm sections must not clone the interpreter"
        );
    }

    #[test]
    fn definitions_between_sections_reach_warm_workers() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(2);
        run(&mut i, &mut hook, "(||| 2 + (1 2) (0 0))"); // warm up
        i.eval_str_with("(setq k 100)", &mut hook).unwrap();
        i.eval_str_with("(defun addk (x) (+ x k))", &mut hook)
            .unwrap();
        assert_eq!(run(&mut i, &mut hook, "(||| 2 addk (1 2))"), "(101 102)");
        i.eval_str_with("(setq k 200)", &mut hook).unwrap();
        assert_eq!(run(&mut i, &mut hook, "(||| 2 addk (1 2))"), "(201 202)");
    }

    #[test]
    fn dynamic_scope_chain_reaches_workers() {
        // The ||| sits inside a form application; its body references the
        // caller's parameter through dynamic scoping.
        let mut i = interp();
        let mut hook = ThreadedHook::new(2);
        i.eval_str_with("(defun use-y (x) (+ x y))", &mut hook)
            .unwrap();
        i.eval_str_with("(defun outer (y) (||| 2 use-y (10 20)))", &mut hook)
            .unwrap();
        assert_eq!(run(&mut i, &mut hook, "(outer 7)"), "(17 27)");
        assert_eq!(run(&mut i, &mut hook, "(outer 9)"), "(19 29)");
    }

    #[test]
    fn worker_global_mutation_does_not_leak_across_sections() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(2);
        i.eval_str_with("(setq total 100)", &mut hook).unwrap();
        i.eval_str_with(
            "(defun bump (x) (progn (setq total (+ total x)) total))",
            &mut hook,
        )
        .unwrap();
        assert_eq!(run(&mut i, &mut hook, "(||| 2 bump (1 2))"), "(101 102)");
        // Dirty forks were snapshot-resynced: the next section starts from
        // the master's state again (total is still 100 there).
        assert_eq!(run(&mut i, &mut hook, "(||| 2 bump (5 6))"), "(105 106)");
        assert_eq!(i.eval_str_with("total", &mut hook).unwrap(), "100");
    }

    #[test]
    fn dirty_seats_resync_without_cloning() {
        // PR 2 re-forked (cloned) dirty seats; the snapshot resync repairs
        // them in place, keeping the zero-clone property even for
        // global-mutating workloads.
        let mut i = interp();
        let mut hook = ThreadedHook::new(2);
        i.eval_str_with("(setq total 100)", &mut hook).unwrap();
        i.eval_str_with(
            "(defun bump (x) (progn (setq total (+ total x)) total))",
            &mut hook,
        )
        .unwrap();
        run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"); // warm up
        let clones_after_warmup = i.clone_count();
        for _ in 0..8 {
            assert_eq!(run(&mut i, &mut hook, "(||| 2 bump (1 2))"), "(101 102)");
        }
        assert_eq!(
            i.clone_count(),
            clones_after_warmup,
            "dirty-seat recovery must not clone the interpreter"
        );
    }

    #[test]
    fn errors_report_global_job_index_in_distribution_order() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(2);
        let err = i
            .eval_str_with("(||| 4 / (1 1 1 1) (1 1 0 1))", &mut hook)
            .unwrap_err();
        match err {
            CuliError::WorkerFailed { worker, message } => {
                assert_eq!(worker, 2);
                assert!(message.contains("zero"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        // The pool survives an error section.
        assert_eq!(run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"), "(2 3)");
    }

    #[test]
    fn more_jobs_than_seats_chunk_in_order() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(3);
        assert_eq!(
            run(
                &mut i,
                &mut hook,
                "(||| 7 - (10 20 30 40 50 60 70) (1 2 3 4 5 6 7))"
            ),
            "(9 18 27 36 45 54 63)"
        );
    }

    #[test]
    fn ceil_chunking_leaves_trailing_seats_idle() {
        // 5 jobs over 4 seats chunk as 2+2+1: only three seats receive
        // work and the fourth must stay idle (regression: the run planner
        // once assumed one chunk per seat and indexed past the job list).
        let mut i = interp();
        let mut hook = ThreadedHook::new(4);
        assert_eq!(
            run(&mut i, &mut hook, "(||| 5 + (1 2 3 4 5) (1 1 1 1 1))"),
            "(2 3 4 5 6)"
        );
        // The same shape across every job-count/seat-count mismatch.
        for n in 1..=9 {
            let args: Vec<String> = (1..=n).map(|k| k.to_string()).collect();
            let ones = vec!["1"; n].join(" ");
            let want: Vec<String> = (1..=n).map(|k| (k + 1).to_string()).collect();
            assert_eq!(
                run(
                    &mut i,
                    &mut hook,
                    &format!("(||| {n} + ({}) ({ones}))", args.join(" "))
                ),
                format!("({})", want.join(" "))
            );
        }
    }

    #[test]
    fn nested_sections_run_inside_workers() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(2);
        i.eval_str_with("(defun row (x) (||| 2 + (1 2) (list x x)))", &mut hook)
            .unwrap();
        assert_eq!(
            run(&mut i, &mut hook, "(||| 2 row (10 20))"),
            "((11 12) (21 22))"
        );
    }

    #[test]
    fn staged_sections_pipeline_and_collect_in_order() {
        let mut i = interp();
        i.eval_str("(defun sq (x) (* x x))").unwrap();
        let mut pool = WorkerPool::launch(&i, 3);
        let forms =
            culi_core::parser::parse(&mut i, b"(sq 2) (sq 3) (sq 4) (sq 5) (sq 6) (sq 7)").unwrap();
        // Stage two three-job sections back to back, then collect both.
        let g = i.global;
        pool.stage(&mut i, &forms[0..3], g);
        pool.stage(&mut i, &forms[3..6], g);
        assert_eq!(pool.staged(), 2);
        let mut first = Vec::new();
        pool.collect_next(&mut i, &mut first).unwrap();
        let mut second = Vec::new();
        pool.collect_next(&mut i, &mut second).unwrap();
        assert_eq!(pool.staged(), 0);
        let print = |i: &mut Interp, ids: &[culi_core::NodeId]| -> Vec<String> {
            ids.iter()
                .map(|&id| culi_core::printer::print_to_string(i, id).unwrap())
                .collect()
        };
        assert_eq!(print(&mut i, &first), ["4", "9", "16"]);
        assert_eq!(print(&mut i, &second), ["25", "36", "49"]);
    }

    #[test]
    fn dirty_section_with_next_section_already_staged_recovers() {
        // Section k's jobs mutate global state while section k+1 is
        // already sitting in the double buffer: the worker refuses the
        // stale dispatch and the master re-arms it with a snapshot.
        let mut i = interp();
        i.eval_str("(setq total 100)").unwrap();
        i.eval_str("(defun bump (x) (progn (setq total (+ total x)) total))")
            .unwrap();
        i.eval_str("(defun read-total (x) (+ total x))").unwrap();
        let mut pool = WorkerPool::launch(&i, 1);
        let forms = culi_core::parser::parse(&mut i, b"(bump 5) (read-total 1)").unwrap();
        let g = i.global;
        pool.stage(&mut i, &forms[0..1], g);
        pool.stage(&mut i, &forms[1..2], g); // staged before k's dirt is known
        let mut first = Vec::new();
        pool.collect_next(&mut i, &mut first).unwrap();
        let mut second = Vec::new();
        pool.collect_next(&mut i, &mut second).unwrap();
        let shown = culi_core::printer::print_to_string(&mut i, second[0]).unwrap();
        assert_eq!(
            shown, "101",
            "the re-armed section must see the master's total, not the dirty fork's"
        );
        let clones = i.clone_count();
        // Recovery is snapshot-based: no interpreter clone beyond warm-up.
        assert_eq!(clones, 1, "one clone for the single-seat warm-up only");
    }

    #[test]
    fn oversized_sections_do_not_pin_buffer_memory() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(2);
        run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"); // warm up
        let big: String = (0..4000).map(|k| format!("{k} ")).collect();
        let section = format!("(||| 2 + ({big}) ({big}))");
        run(&mut i, &mut hook, &section);
        run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))");
        let retained = hook
            .pool
            .as_ref()
            .expect("pool is warm")
            .retained_buffer_bytes();
        let seats = 2;
        assert!(
            retained <= seats * POSTBOX_DEPTH * RETAINED_MSG_BYTES,
            "retained {retained} bytes"
        );
    }

    /// Sequential reference hook that meters job evaluations exactly the
    /// way a pool worker does (same job expressions, same nested-section
    /// backend).
    #[derive(Default)]
    struct SeparatingSequentialHook {
        jobs: Counters,
    }

    impl ParallelHook for SeparatingSequentialHook {
        fn execute(
            &mut self,
            interp: &mut Interp,
            jobs: &[NodeId],
            parent_env: EnvId,
            results: &mut Vec<NodeId>,
        ) -> culi_core::Result<()> {
            for (w, &job) in jobs.iter().enumerate() {
                let env = interp.envs.push(Some(parent_env));
                let before = interp.meter.snapshot();
                let outcome = eval(interp, &mut SequentialHook, job, env, 0);
                self.jobs.add(&interp.meter.snapshot().delta_since(&before));
                let value = outcome.map_err(|e| CuliError::WorkerFailed {
                    worker: w,
                    message: e.to_string(),
                })?;
                results.push(value);
            }
            Ok(())
        }
    }

    #[test]
    fn job_counters_match_sequential_reference() {
        const FIB: &str = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";
        const SECTION: &str = "(||| 2 fib (6 7))";
        let mut seq = interp();
        seq.eval_str(FIB).unwrap();
        let mut sep = SeparatingSequentialHook::default();
        seq.eval_str_with(SECTION, &mut sep).unwrap();

        let mut pooled = interp();
        pooled.eval_str(FIB).unwrap();
        let mut hook = ThreadedHook::new(2);
        pooled.eval_str_with(SECTION, &mut hook).unwrap();
        let pooled_jobs = hook.take_job_counters();
        assert_eq!(pooled_jobs, sep.jobs);
    }

    #[test]
    fn hung_worker_is_detached_and_the_section_degrades_to_the_master() {
        let mut i = interp();
        let plan = FaultPlan::single(FaultSite::WorkerSection, FaultKind::Hang, 0);
        let mut hook = ThreadedHook::with_watchdog(2, Duration::from_millis(100), plan.clone());
        let started = Instant::now();
        // The watchdog detaches the hung seat and the section re-runs on
        // the master: the caller still gets the right answer.
        assert_eq!(run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"), "(2 3)");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "recovery latency {:?}",
            started.elapsed()
        );
        assert_eq!(plan.injected_count(), 1);
        let degraded = hook.take_degraded_jobs();
        assert!(degraded.eval_steps > 0, "fallback charges must be reported");
        // The seat was relaunched: the next section runs parallel again.
        assert_eq!(run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"), "(2 3)");
        assert_eq!(hook.take_degraded_jobs().eval_steps, 0);
    }

    #[test]
    fn garbled_reply_is_written_off_not_a_master_crash() {
        let mut i = interp();
        let plan = FaultPlan::single(FaultSite::WorkerSection, FaultKind::Garbage, 0);
        let mut hook = ThreadedHook::with_watchdog(2, Duration::from_secs(5), plan.clone());
        assert_eq!(run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"), "(2 3)");
        assert_eq!(plan.injected_count(), 1);
        assert_eq!(run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"), "(2 3)");
    }

    #[test]
    fn injected_panic_respawns_the_seat() {
        let mut i = interp();
        let plan = FaultPlan::single(FaultSite::WorkerSection, FaultKind::Panic, 0);
        let mut hook = ThreadedHook::with_watchdog(2, Duration::from_secs(5), plan.clone());
        assert_eq!(run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"), "(2 3)");
        assert_eq!(plan.injected_count(), 1);
        assert_eq!(run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"), "(2 3)");
    }

    #[test]
    fn dropped_worker_reply_is_written_off_by_the_watchdog() {
        let mut i = interp();
        let plan = FaultPlan::single(FaultSite::WorkerSection, FaultKind::DropReply, 0);
        let mut hook = ThreadedHook::with_watchdog(2, Duration::from_millis(100), plan.clone());
        assert_eq!(run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"), "(2 3)");
        assert_eq!(plan.injected_count(), 1);
        assert_eq!(run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"), "(2 3)");
    }

    #[test]
    fn raw_pool_seat_loss_still_surfaces_as_a_degradable_backend_error() {
        // The hook degrades; the *pool* itself must keep reporting the
        // loss so the batch scheduler's own fallback sees it.
        let mut i = interp();
        let plan = FaultPlan::single(FaultSite::WorkerSection, FaultKind::Panic, 0);
        let mut pool = WorkerPool::launch_with(&i, 2, Duration::from_secs(5), plan.clone());
        let jobs = culi_core::parser::parse(&mut i, b"(+ 1 1) (+ 2 1)").unwrap();
        let mut results = Vec::new();
        let global = i.global;
        let err = pool
            .execute(&mut i, &jobs, global, &mut results)
            .unwrap_err();
        assert!(matches!(err, CuliError::Backend(_)), "{err:?}");
        assert_eq!(err.code(), ErrorCode::Device);
        assert_eq!(plan.injected_count(), 1);
        // And the written-off section's partial worker charges stayed out
        // of the job meter: the fallback's re-run is the only accounting.
        assert_eq!(pool.take_job_counters().eval_steps, 0);
    }

    #[test]
    fn worker_jobs_rearm_the_fuel_budget_per_job() {
        // A budget that comfortably covers any single job but not a whole
        // session of them: without the per-job re-arm in `run_msg`, the
        // worker fork's absolute fuel deadline (cloned from the master at
        // warm-up) would exhaust after a few sections.
        let mut i = Interp::new(InterpConfig {
            arena_capacity: 1 << 16,
            fuel_budget: 50_000,
            ..Default::default()
        });
        let mut hook = ThreadedHook::new(2);
        i.eval_str_with(
            "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
            &mut hook,
        )
        .unwrap();
        for _ in 0..30 {
            assert_eq!(run(&mut i, &mut hook, "(||| 2 fib (10 11))"), "(55 89)");
        }
    }

    #[test]
    fn runaway_worker_job_aborts_on_fuel_not_the_watchdog() {
        let mut i = Interp::new(InterpConfig {
            arena_capacity: 1 << 16,
            fuel_budget: 10_000,
            ..Default::default()
        });
        let mut hook = ThreadedHook::new(2);
        i.eval_str_with(
            "(defun spin (x) (dotimes (k 1000000000) (+ k x)))",
            &mut hook,
        )
        .unwrap();
        let started = Instant::now();
        let err = i
            .eval_str_with("(||| 2 spin (1 2))", &mut hook)
            .unwrap_err();
        match err {
            CuliError::WorkerFailed { message, .. } => {
                assert!(message.contains("fuel"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        // Fuel, not the 30 s watchdog, contained the runaway.
        assert!(started.elapsed() < WorkerPool::DEFAULT_REPLY_DEADLINE);
        assert_eq!(run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"), "(2 3)");
    }

    #[test]
    fn fork_per_section_baseline_still_works() {
        let mut i = interp();
        let mut hook = ForkPerSectionHook::new(3);
        assert_eq!(
            run(&mut i, &mut hook, "(||| 3 + (1 2 3) (4 5 6))"),
            "(5 7 9)"
        );
        assert!(i.clone_count() > 0, "the baseline really does clone");
    }
}
