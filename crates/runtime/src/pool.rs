//! Persistent worker pool for the real-threads `|||` backend.
//!
//! PR 1's [`ForkPerSectionHook`] (retained below as the benchmark
//! baseline) re-cloned the *entire* interpreter — arena, environments,
//! string table — per worker chunk on every `|||` section. This module
//! replaces it with the architecture the paper actually describes
//! (§III-D): workers are **persistent** and jobs travel through a compact
//! **postbox**.
//!
//! # Architecture
//!
//! * Each [`WorkerPool`] seat owns an OS thread holding a **warm
//!   interpreter fork**, cloned exactly once at pool warm-up.
//! * Master ⇄ worker traffic goes through one-slot [`Postbox`]es
//!   (mutex + condvar around a single `Option`), not channels — no
//!   per-message queue-node allocation, mirroring the GPU postbox's
//!   fixed mailbox slots.
//! * A section dispatch per active seat carries four recycled flat
//!   buffers ([`culi_core::postbox`]):
//!   1. a `SyncPacket` — the master's environment mutations since this
//!      seat's **sync epoch** (see [`culi_core::env`]): warm forks replay
//!      only new `defun`/`setq`s instead of being re-cloned;
//!   2. a `ChainPacket` — the transient environment chain above the `|||`
//!      expression (dynamic scoping: job bodies may reference enclosing
//!      `let`/parameter bindings);
//!   3. a `FlatTree` of encoded job expressions;
//!   4. a `FlatTree` the worker fills with encoded results.
//! * Buffers round-trip master → worker → master, so a warm section
//!   performs **zero steady-state heap allocations** and **zero
//!   whole-interpreter clones** ([`culi_core::Interp::clone_count`]
//!   proves the latter in tests).
//! * Results come back in distribution order; worker errors surface as
//!   [`CuliError::WorkerFailed`] with the job's global index, exactly
//!   like the sequential backend.
//!
//! # Isolation across sections
//!
//! The fork-per-section design silently guaranteed that worker-side
//! mutations of *global* state died with the fork. Persistent workers
//! would leak them into later sections, so every worker watches its own
//! sync log: if a section's jobs grew it (a job ran `setq`/`defun`
//! against persistent state), the worker reports itself **dirty** and the
//! pool re-forks that seat before its next dispatch. Pure workloads — the
//! paper's model — never pay this; mutating workloads get exactly the old
//! fork-per-section semantics.
//!
//! After replying, a worker collects its own garbage (decoded sync
//! values stay rooted by its global bindings; job temporaries die), so a
//! warm worker's arena stays at its steady-state high-water mark.

use culi_core::eval::{eval, ParallelHook, SequentialHook};
use culi_core::postbox::{ChainPacket, FlatTree, SyncPacket};
use culi_core::{CuliError, EnvId, Interp, NodeId};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A one-slot rendezvous mailbox: `put` blocks while the slot is
/// occupied, `take` blocks while it is empty. The CPU analogue of the
/// simulated kernel's postbox cells — no queue, no per-message
/// allocation.
#[derive(Debug)]
struct Postbox<T> {
    slot: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> Postbox<T> {
    fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn put(&self, value: T) {
        let mut slot = self.slot.lock().unwrap();
        while slot.is_some() {
            slot = self.ready.wait(slot).unwrap();
        }
        *slot = Some(value);
        self.ready.notify_all();
    }

    fn take(&self) -> T {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(v) = slot.take() {
                self.ready.notify_all();
                return v;
            }
            slot = self.ready.wait(slot).unwrap();
        }
    }
}

/// One section dispatch: every buffer is recycled across sections by
/// round-tripping master → worker → master.
#[derive(Debug, Default)]
struct SectionMsg {
    /// Master env mutations since this seat's last sync.
    sync: SyncPacket,
    /// Transient env chain above the `|||` expression.
    chain: ChainPacket,
    /// Encoded job expressions for this seat's chunk.
    jobs: FlatTree,
    /// Worker-filled encoded results.
    results: FlatTree,
    /// Global index of this chunk's first job (error reporting).
    first_job: usize,
}

#[derive(Debug)]
enum ToWorker {
    Section(Box<SectionMsg>),
    Shutdown,
}

#[derive(Debug)]
struct SectionReply {
    msg: Box<SectionMsg>,
    /// First failing job `(global index, message)`, if any.
    error: Option<(usize, String)>,
    /// The section's jobs mutated persistent (global) state: this fork
    /// has diverged from the master and must be replaced.
    dirty: bool,
    /// The worker panicked mid-section and is terminating.
    panicked: bool,
}

#[derive(Debug)]
struct Seat {
    to: Arc<Postbox<ToWorker>>,
    from: Arc<Postbox<SectionReply>>,
    handle: Option<JoinHandle<()>>,
    /// Master sync epoch this seat's fork has replayed up to.
    synced_epoch: u64,
    /// Recycled dispatch buffers (`None` only while a section is in
    /// flight on this seat).
    bufs: Option<Box<SectionMsg>>,
    /// Fork diverged (dirty or panicked); replace before next dispatch.
    needs_refork: bool,
}

impl Seat {
    fn launch(template: &Interp) -> Self {
        let to = Arc::new(Postbox::new());
        let from = Arc::new(Postbox::new());
        let interp = template.clone();
        let (to2, from2) = (Arc::clone(&to), Arc::clone(&from));
        let handle = std::thread::spawn(move || worker_loop(interp, &to2, &from2));
        Self {
            to,
            from,
            handle: Some(handle),
            synced_epoch: template.envs.sync_epoch(),
            bufs: Some(Box::default()),
            needs_refork: false,
        }
    }

    fn shutdown(&mut self) {
        self.to.put(ToWorker::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn worker_loop(mut interp: Interp, to: &Postbox<ToWorker>, from: &Postbox<SectionReply>) {
    loop {
        match to.take() {
            ToWorker::Shutdown => return,
            ToWorker::Section(mut msg) => {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    run_section(&mut interp, &mut msg)
                }));
                match outcome {
                    Ok((error, dirty)) => {
                        from.put(SectionReply {
                            msg,
                            error,
                            dirty,
                            panicked: false,
                        });
                        // Collect after replying: the master proceeds while
                        // this fork sweeps its job temporaries (bounded by
                        // its high-water slot, see culi_core::gc).
                        culi_core::gc::collect(&mut interp, &[]);
                    }
                    Err(_) => {
                        // The fork's state can no longer be trusted; report
                        // and terminate. The pool re-forks this seat.
                        from.put(SectionReply {
                            msg: Box::default(),
                            error: None,
                            dirty: true,
                            panicked: true,
                        });
                        return;
                    }
                }
            }
        }
    }
}

/// Runs one dispatched section inside a worker: replay sync, rebuild the
/// transient chain, evaluate each job, encode results. Returns the first
/// failure (global job index + message) and the dirty flag.
fn run_section(interp: &mut Interp, msg: &mut SectionMsg) -> (Option<(usize, String)>, bool) {
    msg.results.clear();
    // A failed sync replay leaves this fork *partially* synchronized while
    // the master has already advanced the seat's epoch — report dirty so
    // the pool replaces the fork instead of letting it silently diverge.
    if let Err(e) = msg.sync.apply(interp) {
        return (
            Some((msg.first_job, format!("worker sync failed: {e}"))),
            true,
        );
    }
    let base_env = match msg.chain.rebuild(interp) {
        Ok(env) => env,
        Err(e) => {
            return (
                Some((msg.first_job, format!("worker chain rebuild failed: {e}"))),
                true,
            )
        }
    };
    // Replaying the sync packet itself appends to this fork's own log;
    // only growth *beyond* this point means a job mutated global state.
    let log_before = interp.envs.sync_log_len();
    let mut error = None;
    for j in 0..msg.jobs.len() {
        let job = match msg.jobs.decode(j, interp) {
            Ok(id) => id,
            Err(e) => {
                error = Some((msg.first_job + j, e.to_string()));
                break;
            }
        };
        // Paper §III-D b: each job's subtree roots in a child of the |||
        // expression's environment.
        let env = interp.envs.push(Some(base_env));
        match eval(interp, &mut SequentialHook, job, env, 0) {
            Ok(value) => msg.results.push_tree(interp, value),
            Err(e) => {
                error = Some((msg.first_job + j, e.to_string()));
                break;
            }
        }
    }
    let dirty = interp.envs.sync_log_len() != log_before;
    (error, dirty)
}

/// A pool of persistent worker threads with warm interpreter forks.
#[derive(Debug)]
pub struct WorkerPool {
    seats: Vec<Seat>,
}

impl WorkerPool {
    /// Forks `threads` workers (at least one) from `template`. This is the
    /// only point that clones whole interpreters; every later section is
    /// incremental.
    pub fn launch(template: &Interp, threads: usize) -> Self {
        let seats = (0..threads.max(1))
            .map(|_| Seat::launch(template))
            .collect();
        Self { seats }
    }

    /// Number of worker seats.
    pub fn size(&self) -> usize {
        self.seats.len()
    }

    /// Distributes `jobs` over the seats in contiguous chunks, blocks for
    /// every reply, and appends the decoded results to `results` in
    /// distribution order.
    pub fn execute(
        &mut self,
        interp: &mut Interp,
        jobs: &[NodeId],
        parent_env: EnvId,
        results: &mut Vec<NodeId>,
    ) -> culi_core::Result<()> {
        // Replace forks that diverged (dirty/panicked) in earlier sections.
        for seat in &mut self.seats {
            if seat.needs_refork {
                seat.shutdown();
                *seat = Seat::launch(interp);
            }
        }

        let t = self.seats.len().min(jobs.len()).max(1);
        let chunk_size = jobs.len().div_ceil(t);
        let epoch_now = interp.envs.sync_epoch();

        let mut active = 0;
        for (c, chunk) in jobs.chunks(chunk_size).enumerate() {
            let seat = &mut self.seats[c];
            let mut msg = seat.bufs.take().expect("seat buffers still in flight");
            msg.sync.encode_since(interp, seat.synced_epoch);
            msg.chain.encode(interp, parent_env);
            msg.jobs.clear();
            for &job in chunk {
                msg.jobs.push_tree(interp, job);
            }
            msg.first_job = c * chunk_size;
            seat.synced_epoch = epoch_now;
            seat.to.put(ToWorker::Section(msg));
            active += 1;
        }

        // Collect in seat (= distribution) order; always drain every
        // active seat so the pool stays consistent even on failure.
        let mut first_error: Option<CuliError> = None;
        for c in 0..active {
            let reply = self.seats[c].from.take();
            if reply.panicked {
                self.seats[c].needs_refork = true;
                if first_error.is_none() {
                    first_error =
                        Some(CuliError::Backend("||| worker thread panicked".to_string()));
                }
                self.seats[c].bufs = Some(reply.msg);
                continue;
            }
            if reply.dirty {
                self.seats[c].needs_refork = true;
            }
            if let Some((worker, message)) = reply.error {
                if first_error.is_none() {
                    first_error = Some(CuliError::WorkerFailed { worker, message });
                }
            } else if first_error.is_none() {
                for i in 0..reply.msg.results.len() {
                    match reply.msg.results.decode(i, interp) {
                        Ok(v) => results.push(v),
                        Err(e) => {
                            first_error = Some(e);
                            break;
                        }
                    }
                }
            }
            self.seats[c].bufs = Some(reply.msg);
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for seat in &mut self.seats {
            seat.shutdown();
        }
    }
}

/// Real-threads `|||` backend over a lazily-launched persistent
/// [`WorkerPool`]. The pool forks its workers on the first section and
/// keeps them warm across sections *and* REPL commands; see the module
/// docs for the synchronization protocol.
#[derive(Debug)]
pub struct ThreadedHook {
    threads: usize,
    pool: Option<WorkerPool>,
}

impl ThreadedHook {
    /// A backend that will fork `threads` persistent workers on first use.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            pool: None,
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` once the pool has been forked (diagnostics/tests).
    pub fn is_warm(&self) -> bool {
        self.pool.is_some()
    }
}

impl ParallelHook for ThreadedHook {
    fn execute(
        &mut self,
        interp: &mut Interp,
        jobs: &[NodeId],
        parent_env: EnvId,
        results: &mut Vec<NodeId>,
    ) -> culi_core::Result<()> {
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::launch(interp, self.threads));
        }
        self.pool
            .as_mut()
            .expect("pool just ensured")
            .execute(interp, jobs, parent_env, results)
    }
}

/// PR 1's fork-per-section backend, retained as the performance baseline
/// and as a semantic reference: it clones the whole interpreter per worker
/// chunk per section. `bench_pr2` and the equivalence property tests run
/// it side by side with the pooled backend.
#[derive(Debug, Clone, Copy)]
pub struct ForkPerSectionHook {
    /// Worker thread count.
    pub threads: usize,
}

impl ParallelHook for ForkPerSectionHook {
    fn execute(
        &mut self,
        interp: &mut Interp,
        jobs: &[NodeId],
        parent_env: EnvId,
        results: &mut Vec<NodeId>,
    ) -> culi_core::Result<()> {
        let t = self.threads.clamp(1, jobs.len().max(1));
        // Contiguous chunks keep the order mapping trivial.
        let chunk_size = jobs.len().div_ceil(t);
        let template = interp.clone();

        type WorkerOut = culi_core::Result<(Interp, Vec<NodeId>)>;
        let outcomes: Vec<WorkerOut> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (c, chunk) in jobs.chunks(chunk_size).enumerate() {
                let mut fork = template.clone();
                handles.push(scope.spawn(move || -> WorkerOut {
                    let mut out = Vec::with_capacity(chunk.len());
                    for (i, &job) in chunk.iter().enumerate() {
                        let env = fork.envs.push(Some(parent_env));
                        let v = eval(&mut fork, &mut SequentialHook, job, env, 0).map_err(|e| {
                            CuliError::WorkerFailed {
                                worker: c * chunk_size + i,
                                message: e.to_string(),
                            }
                        })?;
                        out.push(v);
                    }
                    Ok((fork, out))
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        for outcome in outcomes {
            let (fork, values) = outcome?;
            for v in values {
                results.push(interp.import_tree(&fork, v)?);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culi_core::InterpConfig;

    fn interp() -> Interp {
        Interp::new(InterpConfig {
            arena_capacity: 1 << 16,
            ..Default::default()
        })
    }

    fn run(i: &mut Interp, hook: &mut dyn ParallelHook, src: &str) -> String {
        i.eval_str_with(src, hook).unwrap()
    }

    #[test]
    fn pooled_results_match_paper_example() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(3);
        assert_eq!(
            run(&mut i, &mut hook, "(||| 3 + (1 2 3) (4 5 6))"),
            "(5 7 9)"
        );
    }

    #[test]
    fn pool_is_lazy_and_persists_across_sections() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(4);
        assert!(!hook.is_warm());
        run(&mut i, &mut hook, "(||| 4 + (1 2 3 4) (1 1 1 1))");
        assert!(hook.is_warm());
        let clones_after_warmup = i.clone_count();
        for _ in 0..16 {
            assert_eq!(
                run(&mut i, &mut hook, "(||| 4 * (1 2 3 4) (2 2 2 2))"),
                "(2 4 6 8)"
            );
        }
        assert_eq!(
            i.clone_count(),
            clones_after_warmup,
            "warm sections must not clone the interpreter"
        );
    }

    #[test]
    fn definitions_between_sections_reach_warm_workers() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(2);
        run(&mut i, &mut hook, "(||| 2 + (1 2) (0 0))"); // warm up
        i.eval_str_with("(setq k 100)", &mut hook).unwrap();
        i.eval_str_with("(defun addk (x) (+ x k))", &mut hook)
            .unwrap();
        assert_eq!(run(&mut i, &mut hook, "(||| 2 addk (1 2))"), "(101 102)");
        i.eval_str_with("(setq k 200)", &mut hook).unwrap();
        assert_eq!(run(&mut i, &mut hook, "(||| 2 addk (1 2))"), "(201 202)");
    }

    #[test]
    fn dynamic_scope_chain_reaches_workers() {
        // The ||| sits inside a form application; its body references the
        // caller's parameter through dynamic scoping.
        let mut i = interp();
        let mut hook = ThreadedHook::new(2);
        i.eval_str_with("(defun use-y (x) (+ x y))", &mut hook)
            .unwrap();
        i.eval_str_with("(defun outer (y) (||| 2 use-y (10 20)))", &mut hook)
            .unwrap();
        assert_eq!(run(&mut i, &mut hook, "(outer 7)"), "(17 27)");
        assert_eq!(run(&mut i, &mut hook, "(outer 9)"), "(19 29)");
    }

    #[test]
    fn worker_global_mutation_does_not_leak_across_sections() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(2);
        i.eval_str_with("(setq total 100)", &mut hook).unwrap();
        i.eval_str_with(
            "(defun bump (x) (progn (setq total (+ total x)) total))",
            &mut hook,
        )
        .unwrap();
        assert_eq!(run(&mut i, &mut hook, "(||| 2 bump (1 2))"), "(101 102)");
        // Dirty forks were replaced: the next section starts from the
        // master's state again (total is still 100 there).
        assert_eq!(run(&mut i, &mut hook, "(||| 2 bump (5 6))"), "(105 106)");
        assert_eq!(i.eval_str_with("total", &mut hook).unwrap(), "100");
    }

    #[test]
    fn errors_report_global_job_index_in_distribution_order() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(2);
        let err = i
            .eval_str_with("(||| 4 / (1 1 1 1) (1 1 0 1))", &mut hook)
            .unwrap_err();
        match err {
            CuliError::WorkerFailed { worker, message } => {
                assert_eq!(worker, 2);
                assert!(message.contains("zero"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        // The pool survives an error section.
        assert_eq!(run(&mut i, &mut hook, "(||| 2 + (1 2) (1 1))"), "(2 3)");
    }

    #[test]
    fn more_jobs_than_seats_chunk_in_order() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(3);
        assert_eq!(
            run(
                &mut i,
                &mut hook,
                "(||| 7 - (10 20 30 40 50 60 70) (1 2 3 4 5 6 7))"
            ),
            "(9 18 27 36 45 54 63)"
        );
    }

    #[test]
    fn nested_sections_run_inside_workers() {
        let mut i = interp();
        let mut hook = ThreadedHook::new(2);
        i.eval_str_with("(defun row (x) (||| 2 + (1 2) (list x x)))", &mut hook)
            .unwrap();
        assert_eq!(
            run(&mut i, &mut hook, "(||| 2 row (10 20))"),
            "((11 12) (21 22))"
        );
    }

    #[test]
    fn fork_per_section_baseline_still_works() {
        let mut i = interp();
        let mut hook = ForkPerSectionHook { threads: 3 };
        assert_eq!(
            run(&mut i, &mut hook, "(||| 3 + (1 2 3) (4 5 6))"),
            "(5 7 9)"
        );
        assert!(i.clone_count() > 0, "the baseline really does clone");
    }
}
