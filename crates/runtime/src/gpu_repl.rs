//! The GPU read–eval–print loop: CuLi proper.
//!
//! One [`GpuRepl`] is the paper's full system: a host loop feeding a
//! command buffer (Figs. 8/9), a persistent kernel whose master thread
//! parses, evaluates and prints entirely "on the device", and the postbox
//! machinery executing `|||` sections across worker blocks (Figs. 10–13).
//!
//! The interpreter runs for real; the device contributes *time*: every
//! operation the interpreter counts is priced by the device's cost table,
//! master-serial work advances the kernel clock, and parallel sections go
//! through the simulated Algorithm-1 choreography (which is where the
//! warp-livelock ablations bite).
//!
//! # Multi-device sharding
//!
//! A session may span several simulated devices
//! ([`GpuReplConfig::device_count`]), in the spirit of the multi-GPU ASP
//! solving and PyCUDA-style run-time dispatch lines of work: every device
//! owns its **own persistent kernel** (and therefore its own postbox
//! array) and its **own command buffer**, and
//! [`GpuRepl::submit_batch`] — driven by the shared
//! [`crate::scheduler::BatchScheduler`] — round-robins independent
//! stageable runs across the devices, re-sequencing replies into
//! submission order. Commands are still *evaluated* in submission order
//! on the session's one interpreter (stageable runs are provably pure, so
//! evaluation order cannot be observed — the same argument that lets the
//! CPU pool stage ahead), which keeps replies and per-command
//! [`CommandCounters`] **bit-identical to the single-device path**; what
//! shards is the *modeled time*: each run's upload, master compute and
//! reply handshake are charged to its own device's clock and buffer, so a
//! device-bound batch's modeled makespan
//! ([`GpuRepl::elapsed_device_ns`], the max over the per-device clocks)
//! drops by up to the device count. Barriers (defines, host I/O, parse
//! errors) drain the pipeline and run on device 0, the interactive
//! `submit` device.

use crate::cache::{CommandCache, FingerprintTracker, ReplyTicket};
use crate::cpu_repl::BatchClassifier;
use crate::error::{Result, RuntimeError};
use crate::phases::{breakdown, counters_to_cycles, CommandCounters};
use crate::reply::Reply;
use crate::scheduler::{BatchScheduler, ExecQueue, Verdict};
use culi_core::cost::Counters;
use culi_core::eval::{eval, ParallelHook};
use culi_core::fault::{FaultPlan, FaultSite};
use culi_core::structhash::StructKey;
use culi_core::{CuliError, ErrorCode, Interp, InterpConfig, NodeId};
use culi_gpu_sim::cmdbuf::CommandBuffer;
use culi_gpu_sim::{
    CostTable, DeviceSpec, KernelConfig, PersistentKernel, SectionReport, SimError, SimStats,
};
use std::collections::HashMap;

/// Configuration for a GPU session.
#[derive(Debug, Clone)]
pub struct GpuReplConfig {
    /// Kernel mitigation switches (ablations flip these).
    pub kernel: KernelConfig,
    /// Interpreter limits.
    pub interp: InterpConfig,
    /// Run the mark-sweep collector after every command, keeping long
    /// interactive sessions inside the fixed arena.
    pub gc_between_commands: bool,
    /// Command buffer capacity in bytes (both directions, per device).
    pub cmdbuf_capacity: usize,
    /// Host-side file services exposed to device code (`read-file` etc.,
    /// the paper's future-work feature). `None` disables file I/O.
    pub host_io: Option<culi_core::hostio::HostIoHandle>,
    /// Simulated devices this session shards batched runs across (min 1).
    /// Each device runs its own persistent kernel and command buffer;
    /// device 0 additionally serves `submit` and batch barriers.
    pub device_count: usize,
    /// Deterministic fault-injection plan (tests and the differential
    /// fault harness). Polled at [`FaultSite::DeviceReply`] once per
    /// batched run's reply handshake; any armed fault kind manifests as a
    /// dropped reply — the only failure the command-buffer protocol
    /// models — exercising the retry-then-degrade path. Empty by default.
    pub fault_plan: FaultPlan,
    /// Structural-hash command cache ([`crate::cache`]): `None` (the
    /// default) leaves every path uncached; `Some` enables the verdict
    /// and reply tiers for [`GpuRepl::submit_batch`] streams. Replies
    /// served from cache are bit-identical to the uncached run.
    pub cache: Option<CommandCache>,
}

impl Default for GpuReplConfig {
    fn default() -> Self {
        Self {
            kernel: KernelConfig::default(),
            interp: InterpConfig::default(),
            gc_between_commands: true,
            cmdbuf_capacity: 1 << 16,
            host_io: None,
            device_count: 1,
            fault_plan: FaultPlan::none(),
            cache: None,
        }
    }
}

/// One simulated device of a (possibly sharded) GPU session: its
/// persistent kernel (which owns the device's postbox array) and its
/// host↔device command buffer.
#[derive(Debug)]
struct GpuDevice {
    kernel: PersistentKernel,
    cmdbuf: CommandBuffer,
}

/// A live CuLi session on one or more simulated GPUs.
#[derive(Debug)]
pub struct GpuRepl {
    interp: Interp,
    /// The session's devices; index 0 is the interactive/barrier device.
    devices: Vec<GpuDevice>,
    config: GpuReplConfig,
    /// Reused per-job cycle scratch for the section hook.
    scratch_cycles: Vec<u64>,
    /// Round-robin cursor for sharding batched runs across devices.
    next_device: usize,
    /// Reply slots written off by a degradable dispatch failure, awaiting
    /// the scheduler's sequential fallback ([`ExecQueue::take_failed`]).
    degraded_slots: Vec<usize>,
    /// Incremental classifier-environment fingerprint (verdict-tier key
    /// dimension; see [`crate::cache`] module docs).
    fingerprint: FingerprintTracker,
    /// Reply-tier store tickets recorded at classify time for cache
    /// misses of classified-pure commands, keyed by batch slot and
    /// consumed when the slot's `Ok` reply is produced.
    pending_store: HashMap<usize, ReplyTicket>,
}

impl GpuRepl {
    /// Boots the session: allocates the interpreter state in "device
    /// memory" and launches one persistent kernel per configured device.
    pub fn launch(spec: DeviceSpec, config: GpuReplConfig) -> Self {
        let mut interp = Interp::new(config.interp.clone());
        interp.host_io = config.host_io.clone();
        let devices = (0..config.device_count.max(1))
            .map(|_| GpuDevice {
                kernel: PersistentKernel::launch(spec, config.kernel),
                cmdbuf: CommandBuffer::new(config.cmdbuf_capacity),
            })
            .collect();
        Self {
            interp,
            devices,
            config,
            scratch_cycles: Vec::new(),
            next_device: 0,
            degraded_slots: Vec::new(),
            fingerprint: FingerprintTracker::new(),
            pending_store: HashMap::new(),
        }
    }

    /// The device model this session runs on (all shards are identical).
    pub fn spec(&self) -> DeviceSpec {
        *self.devices[0].kernel.spec()
    }

    /// Number of simulated devices behind this session.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Workers a single device's grid offers to `|||`.
    pub fn worker_count(&self) -> usize {
        self.devices[0].kernel.worker_count()
    }

    /// Direct access to the interpreter (tests/diagnostics).
    pub fn interp_mut(&mut self) -> &mut Interp {
        &mut self.interp
    }

    /// Submits one command line through the full host→device→host path
    /// (device 0).
    ///
    /// Lisp-level errors come back as a printed reply with `ok == false`
    /// (the REPL prints them, it does not die); device-level failures
    /// (livelock, protocol violations) are [`RuntimeError`]s.
    pub fn submit(&mut self, input: &str) -> Result<Reply> {
        if !self.is_running() {
            return Err(RuntimeError::SessionClosed);
        }
        let transfer_before = self.devices[0].cmdbuf.transfer_ns();
        self.devices[0].cmdbuf.host_write(input.as_bytes())?;
        let taken = self.devices[0].cmdbuf.device_take()?;
        debug_assert_eq!(taken, input.as_bytes());
        let overhead = self.spec().command_overhead_cycles;
        let mut reply = self.process_command(0, input, overhead)?;
        self.devices[0]
            .cmdbuf
            .device_reply(reply.output.as_bytes())?;
        let echoed = self.devices[0].cmdbuf.host_read()?;
        debug_assert_eq!(echoed, reply.output.as_bytes());
        reply.phases.transfer_ns = self.devices[0].cmdbuf.transfer_ns() - transfer_before;
        Ok(reply)
    }

    /// Session-server routing hook, mirroring `CpuRepl::submit_reference`:
    /// GPU sessions have no master-side shortcut — every command already
    /// rides the session's *own* simulated devices (per-tenant state, no
    /// shared pool to contend on or to avoid forking), so the reference
    /// route and the ordinary route coincide and this delegates to
    /// [`GpuRepl::submit`].
    pub fn submit_reference(&mut self, input: &str) -> Result<Reply> {
        self.submit(input)
    }

    /// Session-server routing hook, mirroring `CpuRepl::release_warm_forks`:
    /// a GPU session's persistent kernels are its tenant state, not a
    /// shared-resource cache, so there is nothing to evict; always 0.
    pub fn release_warm_forks(&mut self) -> usize {
        0
    }

    /// Submits a stream of commands through the shared
    /// [`BatchScheduler`]: maximal runs of commands the effect analysis
    /// ([`culi_core::effects::stageable_parallel_section`]) marks
    /// stageable coalesce into *batched command buffers* — one
    /// host→device upload and one device→host reply handshake per run,
    /// with the per-command spin-wake dispatch overhead charged once per
    /// run — and consecutive runs round-robin across the session's
    /// devices, overlapping in modeled time. Any other command (defines,
    /// host I/O, impure operands, parse errors) is a barrier shipped
    /// through the ordinary [`GpuRepl::submit`] handshake on device 0
    /// after the pipeline drains.
    ///
    /// Outputs and per-command [`CommandCounters`] are identical to a
    /// `submit` loop at **any** device count (evaluation is untouched —
    /// batching only amortizes transfer latency and dispatch overhead,
    /// sharding only splits which clock the time lands on); per-command
    /// [`crate::PhaseBreakdown::transfer_ns`] differs by construction,
    /// with a run's upload attributed to its first command and its reply
    /// handshake to its last.
    pub fn submit_batch(&mut self, inputs: &[&str]) -> Result<Vec<Reply>> {
        if !self.is_running() {
            return Err(RuntimeError::SessionClosed);
        }
        // Store tickets never outlive their batch (slot numbers are only
        // meaningful within one).
        self.pending_store.clear();
        BatchScheduler::submit_batch(self, inputs)
    }

    /// Commands coalesced into one uploaded command buffer at most
    /// (mirrors the CPU pool's `MAX_RUN_SECTIONS`).
    pub const MAX_RUN_COMMANDS: usize = 16;

    /// How many times a batched run is re-driven after a dropped reply
    /// handshake before its commands are written off for the scheduler's
    /// sequential fallback.
    pub const HANDSHAKE_RETRIES: usize = 2;

    /// Charge-free host-side classification: parse (unmetered, the
    /// garbage is collected before the run is processed) and apply the
    /// same [`culi_core::effects`] rule the CPU pipeline stages under.
    fn classify_stageable(&mut self, input: &str) -> bool {
        let global = self.interp.global;
        self.interp.unmetered(
            |interp| match culi_core::parser::parse(interp, input.as_bytes()) {
                Ok(forms) => {
                    forms.len() == 1
                        && culi_core::effects::stageable_parallel_section(interp, global, forms[0])
                }
                Err(_) => false,
            },
        )
    }

    /// Consumes `slot`'s reply-tier store ticket if its command really
    /// produced the successful reply the ticket anticipated (mirrors
    /// `CpuRepl::maybe_cache_store`). Error and degraded replies drop
    /// through; their tickets die with the batch.
    fn maybe_cache_store(&mut self, slot: usize, reply: &Reply) {
        if !reply.ok || reply.code != ErrorCode::Ok {
            return;
        }
        let Some(t) = self.pending_store.remove(&slot) else {
            return;
        };
        if let Some(cache) = &self.config.cache {
            debug_assert_eq!(self.interp.envs.sync_epoch(), t.epoch);
            cache.reply_insert(t.key, &t.text, t.epoch, reply.clone());
        }
    }

    /// Parse/evaluate/print one already-uploaded command on device
    /// `dev`'s master thread, charging `dispatch_overhead` extra cycles
    /// for the REPL spin-wake. Produces a [`Reply`] with
    /// `transfer_ns == 0` — the caller owns the handshake and attributes
    /// transfer time. Lisp-level errors become `ok == false` replies;
    /// device-level failures are [`RuntimeError`]s.
    fn process_command(
        &mut self,
        dev: usize,
        input: &str,
        dispatch_overhead: u64,
    ) -> Result<Reply> {
        let costs = self.spec_costs();
        // Containment is per command: each command gets the session's full
        // fuel budget, so the paper-model counters stay valid up to an
        // abort and one runaway command cannot starve the next.
        self.interp.meter.arm_fuel(self.config.interp.fuel_budget);
        let m0 = self.interp.meter.snapshot();
        let parse_result = culi_core::parser::parse(&mut self.interp, input.as_bytes());
        let parse_counters = self.interp.meter.snapshot().delta_since(&m0);
        self.devices[dev]
            .kernel
            .master_compute(counters_to_cycles(&costs, &parse_counters))?;
        let forms = match parse_result {
            Ok(forms) => forms,
            Err(e) => {
                return Ok(self.error_reply(
                    e,
                    CommandCounters {
                        parse: parse_counters,
                        ..Default::default()
                    },
                ));
            }
        };

        // --- Evaluate (master + workers) --------------------------------
        let m1 = self.interp.meter.snapshot();
        let global = self.interp.global;
        let mut hook = GpuHook {
            kernel: &mut self.devices[dev].kernel,
            costs,
            job_counters: Counters::default(),
            sections: Vec::new(),
            sim_error: None,
            job_cycles: std::mem::take(&mut self.scratch_cycles),
        };
        let mut last: Option<NodeId> = None;
        let mut eval_error: Option<CuliError> = None;
        for form in forms {
            match eval(&mut self.interp, &mut hook, form, global, 0) {
                Ok(v) => last = Some(v),
                Err(e) => {
                    eval_error = Some(e);
                    break;
                }
            }
        }
        self.scratch_cycles = hook.job_cycles;
        let sections = hook.sections;
        let job_counters = hook.job_counters;
        if let Some(sim) = hook.sim_error {
            return Err(RuntimeError::Device(sim));
        }
        let eval_total = self.interp.meter.snapshot().delta_since(&m1);
        // Master-side evaluation work excludes what the workers executed
        // (that time lives inside the sections' execute phase). The REPL
        // dispatch overhead (spin wake, loop re-entry, signalling) is
        // charged here too — the paper folds all device time into the
        // three phases; batched runs pay it once, on their first command.
        let eval_master = eval_total.delta_since(&job_counters);
        let section_cycles: u64 =
            sections.iter().map(|s| s.total_cycles()).sum::<u64>() + dispatch_overhead;
        self.devices[dev]
            .kernel
            .master_compute(counters_to_cycles(&costs, &eval_master) + dispatch_overhead)?;
        if let Some(e) = eval_error {
            return Ok(self.error_reply(
                e,
                CommandCounters {
                    parse: parse_counters,
                    eval_master,
                    jobs: job_counters,
                    ..Default::default()
                },
            ));
        }

        // --- Print (master thread) ---------------------------------------
        let m2 = self.interp.meter.snapshot();
        let output = match last {
            Some(node) => match culi_core::printer::print_to_string(&mut self.interp, node) {
                Ok(s) => s,
                Err(e) => {
                    let print_counters = self.interp.meter.snapshot().delta_since(&m2);
                    return Ok(self.error_reply(
                        e,
                        CommandCounters {
                            parse: parse_counters,
                            eval_master,
                            jobs: job_counters,
                            print: print_counters,
                        },
                    ));
                }
            },
            None => String::new(),
        };
        let print_counters = self.interp.meter.snapshot().delta_since(&m2);
        self.devices[dev]
            .kernel
            .master_compute(counters_to_cycles(&costs, &print_counters))?;

        if self.config.gc_between_commands {
            culi_core::gc::collect(&mut self.interp, &[]);
        }

        let phases = breakdown(
            &self.spec(),
            &parse_counters,
            &eval_master,
            &print_counters,
            section_cycles,
            0,
        );
        Ok(Reply {
            output,
            ok: true,
            code: ErrorCode::Ok,
            phases,
            counters: CommandCounters {
                parse: parse_counters,
                eval_master,
                jobs: job_counters,
                print: print_counters,
            },
            sections,
            wall_ns: 0,
        })
    }

    fn spec_costs(&self) -> CostTable {
        self.devices[0].kernel.spec().costs
    }

    /// Renders a Lisp error as a printed reply (the REPL survives). The
    /// caller owns the command-buffer handshake and transfer attribution.
    fn error_reply(&mut self, e: CuliError, counters: CommandCounters) -> Reply {
        let code = e.code();
        let output = format!("error: {e}");
        if self.config.gc_between_commands {
            culi_core::gc::collect(&mut self.interp, &[]);
        }
        let phases = breakdown(
            &self.spec(),
            &counters.parse,
            &counters.eval_master,
            &counters.print,
            0,
            0,
        );
        Reply {
            output,
            ok: false,
            code,
            phases,
            counters,
            sections: Vec::new(),
            wall_ns: 0,
        }
    }

    /// Modeled session makespan so far: the **maximum** over the
    /// per-device clocks (sharded runs overlap in modeled time; a
    /// single-device session reduces to that device's clock).
    pub fn elapsed_device_ns(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.kernel.elapsed_device_ns())
            .fold(0.0, f64::max)
    }

    /// Per-device elapsed nanoseconds, in device order (benchmarks
    /// measure sharded-batch makespans from deltas of this).
    pub fn device_elapsed_ns(&self) -> Vec<f64> {
        self.devices
            .iter()
            .map(|d| d.kernel.elapsed_device_ns())
            .collect()
    }

    /// Synchronization statistics so far, summed across devices.
    pub fn stats(&self) -> SimStats {
        let mut total = SimStats::default();
        for d in &self.devices {
            total.add(&d.kernel.stats());
        }
        total
    }

    /// Base latency of this device: launch plus graceful stop, in
    /// milliseconds (paper Fig. 14). Measured by booting and immediately
    /// stopping a scratch kernel.
    pub fn measure_base_latency_ms(spec: DeviceSpec) -> f64 {
        let mut k = PersistentKernel::launch(spec, KernelConfig::default());
        k.shutdown();
        k.overhead_ns() as f64 / 1e6
    }

    /// Graceful stop: host clears `dev_active` on every device, each
    /// master deactivates its workers, the contexts are torn down.
    /// Returns the summed setup+teardown milliseconds.
    pub fn shutdown(&mut self) -> f64 {
        let mut overhead_ns = 0u64;
        for d in &mut self.devices {
            d.cmdbuf.host_terminate();
            d.kernel.shutdown();
            overhead_ns += d.kernel.overhead_ns();
        }
        overhead_ns as f64 / 1e6
    }

    /// `true` until shutdown.
    pub fn is_running(&self) -> bool {
        self.devices[0].kernel.is_running()
    }
}

/// One stageable GPU batch command: raw input text awaiting upload, plus
/// its reply slot. Opaque scheduler token — see [`ExecQueue::Staged`].
#[derive(Debug)]
pub struct GpuStaged<'i> {
    input: &'i str,
    slot: usize,
}

/// One dispatched (and, in the simulation, already-processed) GPU run:
/// the replies awaiting re-sequenced delivery. Opaque scheduler token —
/// see [`ExecQueue::Run`].
#[derive(Debug)]
pub struct GpuRun(Vec<(usize, Reply)>);

impl<'i> ExecQueue<'i> for GpuRepl {
    type Staged = GpuStaged<'i>;
    type Barrier = &'i str;
    type Run = GpuRun;

    fn max_run_len(&self) -> usize {
        Self::MAX_RUN_COMMANDS
    }

    fn pipeline_depth(&self) -> usize {
        // One run in flight per device: consecutive runs land on
        // consecutive devices before the oldest's replies are delivered.
        self.devices.len()
    }

    fn admits(&self, run_len: usize, run_bytes: usize, input: &str) -> bool {
        // Keep runs small enough that the joined reply string has ample
        // room too (outputs are not known until evaluated; a section's
        // print is on the order of its operand lists). `run_len` counts
        // the joining newlines already in the blob.
        run_bytes + run_len + input.len() <= self.devices[0].cmdbuf.capacity() / 4
    }

    fn classify_and_stage(
        &mut self,
        input: &'i str,
        slot: usize,
    ) -> Result<Verdict<GpuStaged<'i>, &'i str>> {
        let Some(cache) = self.config.cache.clone() else {
            return Ok(if self.classify_stageable(input) {
                Verdict::Stage(GpuStaged { input, slot })
            } else {
                Verdict::Barrier(input)
            });
        };
        // Cached classification (charge-free, like classify_stageable:
        // the look-ahead parse is unmetered and its garbage is collected
        // before the run is processed). The epoch captured here is
        // exactly the environment state this command executes against —
        // earlier barriers already ran, in-flight staged commands are
        // pure.
        enum Classified {
            Hit(Box<Reply>),
            Miss {
                stageable: bool,
                ticket: Option<ReplyTicket>,
            },
        }
        let global = self.interp.global;
        let fingerprint = &mut self.fingerprint;
        let outcome = self.interp.unmetered(|interp| {
            let Ok(forms) = culi_core::parser::parse(interp, input.as_bytes()) else {
                // The parse error itself replays through the barrier path.
                return Classified::Miss {
                    stageable: false,
                    ticket: None,
                };
            };
            let key = StructKey::of_forms(interp, &forms);
            let epoch = interp.envs.sync_epoch();
            if let Some(reply) = cache.reply_lookup(&key, input, epoch) {
                return Classified::Hit(Box::new(reply));
            }
            let classify = |interp: &Interp, f| {
                culi_core::effects::stageable_parallel_section(interp, global, f)
            };
            let stageable = forms.len() == 1
                && match fingerprint
                    .fingerprint(interp, BatchClassifier::EffectAnalysis.fingerprint_tag())
                {
                    Some(fp) => {
                        // Slice the single-form key out of the command key
                        // instead of re-walking the tree.
                        let fkey = key
                            .single_form()
                            .unwrap_or_else(|| StructKey::of(interp, forms[0]));
                        match cache.verdict_lookup(&fkey, fp) {
                            Some(v) => v,
                            None => {
                                let v = classify(interp, forms[0]);
                                cache.verdict_insert(fkey, fp, v);
                                v
                            }
                        }
                    }
                    None => classify(interp, forms[0]),
                };
            let pure = stageable
                || forms
                    .iter()
                    .all(|&f| culi_core::effects::expr_is_pure(interp, global, f));
            Classified::Miss {
                stageable,
                ticket: pure.then(|| ReplyTicket {
                    key,
                    text: input.to_string(),
                    epoch,
                }),
            }
        });
        Ok(match outcome {
            Classified::Hit(reply) => {
                // The served reply replaces a whole run: collect the
                // probe's parse garbage the way dispatch would have.
                culi_core::gc::collect(&mut self.interp, &[]);
                Verdict::Done(reply)
            }
            Classified::Miss { stageable, ticket } => {
                if let Some(ticket) = ticket {
                    self.pending_store.insert(slot, ticket);
                }
                if stageable {
                    Verdict::Stage(GpuStaged { input, slot })
                } else {
                    Verdict::Barrier(input)
                }
            }
        })
    }

    fn dispatch(&mut self, run: Vec<GpuStaged<'i>>) -> Result<GpuRun> {
        if let [lone] = run.as_slice() {
            // A run of one has no rendezvous to amortize: the plain
            // submit handshake is cheaper than the batched machinery
            // (blob join, pre-run GC, joined reply) and behaves
            // identically — PR 4's rule, preserved.
            let reply = self.submit(lone.input)?;
            return Ok(GpuRun(vec![(lone.slot, reply)]));
        }
        // Round-robin device assignment per run.
        let dev = self.next_device;
        self.next_device = (self.next_device + 1) % self.devices.len();
        // Classification parsed look-ahead trees unmetered; collect that
        // garbage — even when between-command GC is off — so a batch's
        // extra arena pressure stays bounded by one run's parse trees
        // instead of the whole stream's.
        culi_core::gc::collect(&mut self.interp, &[]);
        let blob = run.iter().map(|s| s.input).collect::<Vec<_>>().join("\n");
        let overhead = self.spec().command_overhead_cycles;
        // Bounded retry: a dropped reply handshake leaves the buffer
        // host-owned, so the host re-drives the whole run. Staged
        // commands are provably pure, so re-evaluating them is invisible
        // and their replies (output and counters) are bit-identical —
        // only the modeled transfer time records the extra round trips.
        // Past the retry budget the run's slots are written off for the
        // scheduler's sequential fallback.
        let mut attempts = 0usize;
        loop {
            let t0 = self.devices[dev].cmdbuf.transfer_ns();
            self.devices[dev].cmdbuf.host_write(blob.as_bytes())?;
            let taken = self.devices[dev].cmdbuf.device_take()?;
            debug_assert_eq!(taken, blob.as_bytes());
            let upload_ns = self.devices[dev].cmdbuf.transfer_ns() - t0;
            let mut replies: Vec<(usize, Reply)> = Vec::with_capacity(run.len());
            for (k, staged) in run.iter().enumerate() {
                // One spin wake per run: charge the dispatch overhead on
                // the run's first command only.
                let o = if k == 0 { overhead } else { 0 };
                let reply = self.process_command(dev, staged.input, o)?;
                replies.push((staged.slot, reply));
            }
            let mut joined = replies
                .iter()
                .map(|(_, r)| r.output.as_str())
                .collect::<Vec<_>>()
                .join("\n");
            // Individual outputs are bounded by the interpreter's output
            // capacity, but a whole run's joined reply may still overrun
            // the command buffer — and a failed `device_reply` would
            // leave the device owning the buffer forever. Ship a short
            // overflow notice instead: the per-command replies are
            // already complete device-side (a real host would re-fetch
            // them one by one), and the session stays live.
            if joined.len() > self.devices[dev].cmdbuf.capacity() {
                joined = format!("!culi:batch-reply-overflow:{}", joined.len());
            }
            if self
                .config
                .fault_plan
                .poll(FaultSite::DeviceReply)
                .is_some()
            {
                self.devices[dev].cmdbuf.arm_reply_drop();
            }
            let t1 = self.devices[dev].cmdbuf.transfer_ns();
            match self.devices[dev].cmdbuf.device_reply(joined.as_bytes()) {
                Ok(()) => {
                    let echoed = self.devices[dev].cmdbuf.host_read()?;
                    debug_assert_eq!(echoed, joined.as_bytes());
                    let reply_ns = self.devices[dev].cmdbuf.transfer_ns() - t1;
                    replies[0].1.phases.transfer_ns += upload_ns;
                    let last = replies.len() - 1;
                    replies[last].1.phases.transfer_ns += reply_ns;
                    return Ok(GpuRun(replies));
                }
                Err(SimError::ReplyDropped) if attempts < Self::HANDSHAKE_RETRIES => {
                    attempts += 1;
                }
                Err(SimError::ReplyDropped) => {
                    self.degraded_slots.extend(run.iter().map(|s| s.slot));
                    return Err(SimError::ReplyDropped.into());
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn collect(&mut self, run: GpuRun, replies: &mut [Option<Reply>]) -> Result<()> {
        for (slot, reply) in run.0 {
            self.maybe_cache_store(slot, &reply);
            replies[slot] = Some(reply);
        }
        Ok(())
    }

    fn run_barrier(
        &mut self,
        barrier: &'i str,
        slot: usize,
        replies: &mut [Option<Reply>],
    ) -> Result<()> {
        let reply = self.submit(barrier)?;
        self.maybe_cache_store(slot, &reply);
        replies[slot] = Some(reply);
        Ok(())
    }

    fn take_failed(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.degraded_slots)
    }

    fn run_sequential(
        &mut self,
        input: &'i str,
        slot: usize,
        replies: &mut [Option<Reply>],
    ) -> Result<()> {
        // The sequential reference is the plain interactive handshake on
        // device 0 — exactly what an unbatched submit loop would do, so
        // output and counters are byte-identical to the healthy path.
        let mut reply = self.submit(input)?;
        if reply.ok {
            reply.code = ErrorCode::Degraded;
        }
        replies[slot] = Some(reply);
        Ok(())
    }
}

/// The `|||` backend bridging the interpreter to one device's simulated
/// kernel. `job_cycles` is lent by the repl and reused across sections
/// and commands.
struct GpuHook<'k> {
    kernel: &'k mut PersistentKernel,
    costs: CostTable,
    /// All counters consumed inside worker jobs (for master/worker cost
    /// separation).
    job_counters: Counters,
    sections: Vec<SectionReport>,
    sim_error: Option<SimError>,
    job_cycles: Vec<u64>,
}

impl ParallelHook for GpuHook<'_> {
    fn execute(
        &mut self,
        interp: &mut Interp,
        jobs: &[NodeId],
        parent_env: culi_core::EnvId,
        results: &mut Vec<NodeId>,
    ) -> culi_core::Result<()> {
        // Swap the pooled buffer out for this section: a nested ||| inside
        // a job re-enters execute and must not clobber the outer section's
        // cycles (the nested level starts from a fresh buffer instead).
        let mut cycles = std::mem::take(&mut self.job_cycles);
        cycles.clear();
        for (w, &job) in jobs.iter().enumerate() {
            let env = interp.envs.push(Some(parent_env));
            let before = interp.meter.snapshot();
            let nested_before = self.job_counters;
            let value = match eval(interp, self, job, env, 0) {
                Ok(v) => v,
                Err(e) => {
                    self.job_cycles = cycles;
                    return Err(CuliError::WorkerFailed {
                        worker: w,
                        message: e.to_string(),
                    });
                }
            };
            let delta = interp.meter.snapshot().delta_since(&before);
            // A nested ||| inside this job already accounted its own
            // workers; bill only this job's own operations.
            let nested = self.job_counters.delta_since(&nested_before);
            let own = delta.delta_since(&nested);
            self.job_counters.add(&own);
            cycles.push(counters_to_cycles(&self.costs, &own));
            results.push(value);
        }
        let outcome = self.kernel.parallel_section(&cycles);
        self.job_cycles = cycles;
        match outcome {
            Ok(report) => {
                self.sections.push(report);
                Ok(())
            }
            Err(e) => {
                let msg = e.to_string();
                self.sim_error = Some(e);
                Err(CuliError::Backend(msg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culi_gpu_sim::device::{gtx1080, tesla_c2075};
    use culi_gpu_sim::LivelockCause;

    fn repl() -> GpuRepl {
        GpuRepl::launch(gtx1080(), GpuReplConfig::default())
    }

    fn sharded(devices: usize) -> GpuRepl {
        GpuRepl::launch(
            gtx1080(),
            GpuReplConfig {
                device_count: devices,
                ..Default::default()
            },
        )
    }

    #[test]
    fn arithmetic_end_to_end() {
        let mut r = repl();
        let reply = r.submit("(* 2 (+ 4 3) 6)").unwrap();
        assert!(reply.ok);
        assert_eq!(reply.output, "84");
        assert!(reply.phases.parse_cycles > 0);
        assert!(reply.phases.eval_cycles > 0);
        assert!(reply.phases.print_cycles > 0);
        assert!(reply.phases.transfer_ns > 0);
    }

    #[test]
    fn environment_persists_across_commands() {
        let mut r = repl();
        r.submit("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
            .unwrap();
        let reply = r.submit("(fib 10)").unwrap();
        assert_eq!(reply.output, "55");
    }

    #[test]
    fn parallel_section_reports_appear() {
        let mut r = repl();
        let reply = r.submit("(||| 3 + (1 2 3) (4 5 6))").unwrap();
        assert_eq!(reply.output, "(5 7 9)");
        assert_eq!(reply.sections.len(), 1);
        assert_eq!(reply.sections[0].blocks_used, 1);
        assert!(reply.sections[0].execute_cycles > 0);
    }

    #[test]
    fn lisp_errors_are_printed_not_fatal() {
        let mut r = repl();
        let reply = r.submit("(/ 1 0)").unwrap();
        assert!(!reply.ok);
        assert!(reply.output.contains("division"));
        // Session survives.
        assert_eq!(r.submit("(+ 1 1)").unwrap().output, "2");
    }

    #[test]
    fn parse_errors_are_printed_not_fatal() {
        let mut r = repl();
        let reply = r.submit("(+ 1").unwrap();
        assert!(!reply.ok);
        assert!(reply.output.contains("unclosed"));
        assert_eq!(r.submit("(+ 1 2)").unwrap().output, "3");
    }

    #[test]
    fn livelock_is_a_device_error() {
        let cfg = GpuReplConfig {
            kernel: KernelConfig {
                mask_master_block: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut r = GpuRepl::launch(gtx1080(), cfg);
        match r.submit("(||| 2 + (1 2) (3 4))") {
            Err(RuntimeError::Device(SimError::Livelock {
                cause: LivelockCause::MasterBlockUnmasked,
                ..
            })) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn worker_time_not_double_billed_to_master() {
        let mut r = repl();
        r.submit("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
            .unwrap();
        let par = r
            .submit(
                "(||| 32 fib (5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5 5))",
            )
            .unwrap();
        // 32 identical jobs in one warp: execute time ≈ one job, while the
        // master's own eval share stays far below 32× a single job.
        let single = {
            let mut r2 = repl();
            r2.submit("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
                .unwrap();
            r2.submit("(fib 5)").unwrap()
        };
        assert!(
            par.phases.eval_cycles < 32 * single.phases.eval_cycles,
            "master billed {} vs 32×{}",
            par.phases.eval_cycles,
            single.phases.eval_cycles
        );
        assert_eq!(par.output.matches('5').count(), 32);
    }

    #[test]
    fn batched_commands_match_submit_loop_and_amortize_transfer() {
        let prelude = "(defun sq (x) (* x x))";
        let inputs = [
            "(||| 4 sq (1 2 3 4))",
            "(||| (+ 2 2) sq (list 5 6 7 8))",
            "(setq g 3)", // barrier
            "(||| 2 + (1 2) (list g g))",
            "(||| 2 + (1 2) (3 4))",
        ];
        let mut loop_repl = repl();
        let mut batch_repl = repl();
        loop_repl.submit(prelude).unwrap();
        batch_repl.submit(prelude).unwrap();
        let batched = batch_repl.submit_batch(&inputs).unwrap();
        assert_eq!(batched.len(), inputs.len());
        let mut loop_transfer = 0u64;
        let mut batch_transfer = 0u64;
        for (src, got) in inputs.iter().zip(&batched) {
            let want = loop_repl.submit(src).unwrap();
            assert_eq!(want.output, got.output, "{src}");
            assert_eq!(want.ok, got.ok, "{src}");
            assert_eq!(want.counters, got.counters, "{src}");
            loop_transfer += want.phases.transfer_ns;
            batch_transfer += got.phases.transfer_ns;
        }
        assert!(
            batch_transfer < loop_transfer,
            "coalesced command buffers must cut transfer time: {batch_transfer} vs {loop_transfer}"
        );
    }

    #[test]
    fn batched_runs_amortize_dispatch_overhead() {
        // Same workload, batched vs looped: the run charges the spin-wake
        // dispatch overhead once, so the device clock advances less.
        let inputs: Vec<&str> = vec!["(||| 2 + (1 2) (list 3 4))"; 8];
        let mut loop_repl = repl();
        for i in &inputs {
            loop_repl.submit(i).unwrap();
        }
        let mut batch_repl = repl();
        batch_repl.submit_batch(&inputs).unwrap();
        assert!(
            batch_repl.elapsed_device_ns() < loop_repl.elapsed_device_ns(),
            "batched {} ns vs loop {} ns",
            batch_repl.elapsed_device_ns(),
            loop_repl.elapsed_device_ns()
        );
    }

    #[test]
    fn batched_errors_and_barriers_stay_in_order() {
        let mut r = repl();
        let replies = r
            .submit_batch(&[
                "(||| 2 / (4 6) (2 2))",
                "(||| 2 / (4 6) (0 2))", // worker error inside a run
                "(+ 1",                  // parse-error barrier
                "(||| 2 + (1 2) (1 1))",
            ])
            .unwrap();
        assert_eq!(replies[0].output, "(2 3)");
        assert!(!replies[1].ok);
        assert!(!replies[2].ok);
        assert_eq!(replies[3].output, "(2 3)");
        // Session survives the whole batch.
        assert_eq!(r.submit("(+ 1 1)").unwrap().output, "2");
    }

    #[test]
    fn oversized_batched_reply_does_not_wedge_the_session() {
        // Inputs fit the upload budget but the run's joined outputs
        // overrun the command buffer: the reply handshake degrades to an
        // overflow notice and the session (and replies) stay intact.
        let mut r = GpuRepl::launch(
            gtx1080(),
            GpuReplConfig {
                cmdbuf_capacity: 512,
                ..Default::default()
            },
        );
        r.submit("(setq xs (list 11 12 13 14 15 16 17 18 19 20))")
            .unwrap();
        let inputs: Vec<&str> = vec!["(||| 2 append (xs xs) (xs xs))"; 6];
        let replies = r.submit_batch(&inputs).unwrap();
        assert_eq!(replies.len(), 6);
        let want = r.submit(inputs[0]).unwrap();
        assert!(want.output.len() * 6 > 512, "workload must overflow");
        for reply in &replies {
            assert_eq!(reply.output, want.output);
            assert!(reply.ok);
        }
        assert_eq!(r.submit("(+ 1 1)").unwrap().output, "2");
    }

    #[test]
    fn sharded_batches_match_single_device_bit_for_bit() {
        // The multi-device path must change *only* which clock the time
        // lands on: outputs, ok flags and per-command counters stay
        // bit-identical across 1, 2 and 4 devices — barriers, worker
        // errors and computed operands included.
        let prelude = "(defun sq (x) (* x x))";
        let inputs = [
            "(||| 4 sq (1 2 3 4))",
            "(||| 2 sq (5 6))",
            "(setq g 2)", // barrier mid-stream
            "(||| 2 + (1 2) (list g g))",
            "(||| 2 / (4 6) (0 2))", // worker error inside a run
            "(||| 3 sq (7 8 9))",
            "(||| (+ 1 1) sq (list g g))",
        ];
        let run = |devices: usize| {
            let mut r = sharded(devices);
            r.submit(prelude).unwrap();
            r.submit_batch(&inputs).unwrap()
        };
        let one = run(1);
        for devices in [2, 4] {
            let many = run(devices);
            for (k, (a, b)) in one.iter().zip(&many).enumerate() {
                assert_eq!(a.output, b.output, "{devices} devices, cmd {k}");
                assert_eq!(a.ok, b.ok, "{devices} devices, cmd {k}");
                assert_eq!(a.counters, b.counters, "{devices} devices, cmd {k}");
            }
        }
    }

    #[test]
    fn sharded_runs_overlap_in_modeled_time() {
        // Four device-bound runs over four devices: the modeled makespan
        // (max over device clocks) must undercut the single-device batch,
        // because round-robined runs advance different clocks.
        let prelude = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";
        let section = "(||| 8 fib (8 8 8 8 8 8 8 8))";
        let inputs: Vec<&str> = vec![section; 4 * GpuRepl::MAX_RUN_COMMANDS];
        let makespan = |devices: usize| {
            let mut r = sharded(devices);
            r.submit(prelude).unwrap();
            let before = r.device_elapsed_ns();
            r.submit_batch(&inputs).unwrap();
            let after = r.device_elapsed_ns();
            after
                .iter()
                .zip(&before)
                .map(|(a, b)| a - b)
                .fold(0.0, f64::max)
        };
        let one = makespan(1);
        let four = makespan(4);
        assert!(
            four * 2.0 < one,
            "4-device makespan {four} ns must be well under the single-device {one} ns"
        );
    }

    #[test]
    fn sharded_round_robin_touches_every_device() {
        let mut r = sharded(3);
        let inputs: Vec<&str> = vec!["(||| 2 + (1 2) (3 4))"; 3 * GpuRepl::MAX_RUN_COMMANDS];
        let before = r.device_elapsed_ns();
        r.submit_batch(&inputs).unwrap();
        let after = r.device_elapsed_ns();
        for (d, (a, b)) in after.iter().zip(&before).enumerate() {
            assert!(a > b, "device {d} never advanced");
        }
    }

    fn faulted(plan: FaultPlan) -> GpuRepl {
        GpuRepl::launch(
            gtx1080(),
            GpuReplConfig {
                fault_plan: plan,
                ..Default::default()
            },
        )
    }

    #[test]
    fn dropped_batched_reply_is_retried_transparently() {
        use culi_core::fault::FaultKind;
        let inputs = ["(||| 2 + (1 2) (3 4))", "(||| 2 * (1 2) (3 4))"];
        let plan = FaultPlan::single(FaultSite::DeviceReply, FaultKind::DropReply, 0);
        let mut r = faulted(plan.clone());
        let got = r.submit_batch(&inputs).unwrap();
        assert_eq!(plan.injected_count(), 1, "the drop must actually fire");
        let mut clean = repl();
        for (src, g) in inputs.iter().zip(&got) {
            let want = clean.submit(src).unwrap();
            assert_eq!(want.output, g.output, "{src}");
            assert_eq!(want.counters, g.counters, "{src}");
            assert_eq!(g.code, ErrorCode::Ok, "a retried run is not degraded");
        }
    }

    #[test]
    fn persistent_reply_drops_degrade_to_sequential_fallback() {
        use culi_core::fault::FaultKind;
        let inputs = [
            "(||| 2 + (1 2) (3 4))",
            "(||| 2 * (1 2) (3 4))",
            "(||| 2 - (9 9) (3 4))",
        ];
        // Every attempt of the first run drops its reply: initial + all
        // retries, forcing the write-off.
        let plan = FaultPlan::burst(
            FaultSite::DeviceReply,
            FaultKind::DropReply,
            0,
            1 + GpuRepl::HANDSHAKE_RETRIES as u64,
        );
        let mut r = faulted(plan.clone());
        let got = r.submit_batch(&inputs).unwrap();
        assert_eq!(
            plan.injected_count(),
            1 + GpuRepl::HANDSHAKE_RETRIES as u64,
            "every retry must re-fault"
        );
        let mut clean = repl();
        for (src, g) in inputs.iter().zip(&got) {
            let want = clean.submit(src).unwrap();
            assert_eq!(want.output, g.output, "{src}");
            assert_eq!(want.counters, g.counters, "{src}");
            assert!(g.ok, "{src}");
            assert_eq!(
                g.code,
                ErrorCode::Degraded,
                "fallback replies carry the degradation marker: {src}"
            );
        }
        // The session survives degradation.
        assert_eq!(r.submit("(+ 1 1)").unwrap().output, "2");
    }

    #[test]
    fn shutdown_closes_the_session() {
        let mut r = repl();
        let base = r.shutdown();
        assert!(base > 0.0);
        assert!(matches!(r.submit("1"), Err(RuntimeError::SessionClosed)));
        assert!(matches!(
            r.submit_batch(&["1"]),
            Err(RuntimeError::SessionClosed)
        ));
    }

    #[test]
    fn base_latency_matches_spec() {
        let ms = GpuRepl::measure_base_latency_ms(gtx1080());
        assert!((ms - gtx1080().base_latency_ms()).abs() < 1e-9);
    }

    #[test]
    fn gc_keeps_long_sessions_alive() {
        let mut cfg = GpuReplConfig::default();
        cfg.interp.arena_capacity = 2048;
        let mut r = GpuRepl::launch(gtx1080(), cfg);
        for _ in 0..100 {
            let reply = r.submit("(+ 1 2 3 4 5 6 7 8 9)").unwrap();
            assert_eq!(reply.output, "45");
        }
    }

    #[test]
    fn fermi_parses_faster_than_pascal() {
        let input = format!("(+ {})", "1 ".repeat(500));
        let mut fermi = GpuRepl::launch(tesla_c2075(), GpuReplConfig::default());
        let mut pascal = repl();
        let pf = fermi.submit(&input).unwrap().phases;
        let pp = pascal.submit(&input).unwrap().phases;
        assert!(
            pf.parse_ms() < pp.parse_ms(),
            "Fermi {} ms vs Pascal {} ms",
            pf.parse_ms(),
            pp.parse_ms()
        );
    }
}
