//! The unified REPL reply type shared by all backends.

use crate::phases::{CommandCounters, PhaseBreakdown};
use culi_core::ErrorCode;
use culi_gpu_sim::SectionReport;

/// Result of submitting one line to any CuLi backend.
///
/// `Default` (empty output, `ok == false`, all counters zero) exists for
/// tests and mock queues that need a base to build replies from; real
/// backends always construct every field.
#[derive(Debug, Clone, Default)]
pub struct Reply {
    /// The printed output (or a rendered error message).
    pub output: String,
    /// `false` when `output` is an error message rather than a value.
    pub ok: bool,
    /// Stable classification of how this command ended: [`ErrorCode::Ok`]
    /// for plain successes, the error's code for `ok == false` replies,
    /// and [`ErrorCode::Degraded`] for successes produced by the
    /// scheduler's sequential fallback after a backend failure (output
    /// and counters are still byte-identical to the reference; only this
    /// marker differs). Lets clients distinguish user error / fuel
    /// exhaustion / backend degradation without string matching.
    pub code: ErrorCode,
    /// Per-phase simulated timing (zeroed sections the backend does not
    /// model; the real-threads backend reports only master-side phases).
    pub phases: PhaseBreakdown,
    /// Raw paper-model operation counters behind `phases`, split by
    /// phase and by master-vs-worker. Backend-independent for successful
    /// commands (the differential harness asserts it); error commands
    /// stop at backend-dependent points, so only `parse` is comparable
    /// there.
    pub counters: CommandCounters,
    /// One report per `|||` section the command executed (modeled
    /// backends only).
    pub sections: Vec<SectionReport>,
    /// Real wall-clock nanoseconds (real-threads backend only; 0 for
    /// modeled backends, whose time is simulated).
    pub wall_ns: u64,
}

impl Reply {
    /// Shorthand used by tests: panics unless the reply is a success.
    pub fn expect_ok(self) -> String {
        assert!(self.ok, "REPL error: {}", self.output);
        self.output
    }

    /// A server-constructed refusal: the command was never executed (all
    /// counters zero), `ok == false`, and `code` says why — the session
    /// server's structured backpressure ([`ErrorCode::Overloaded`],
    /// [`ErrorCode::QueueFull`]) in place of a silent drop.
    pub fn refusal(code: ErrorCode, why: &str) -> Self {
        Self {
            output: format!("error: {why}"),
            ok: false,
            code,
            ..Default::default()
        }
    }
}
