//! Host-side file services for device sessions.
//!
//! Implements the host half of the paper's future-work file API (§III-D:
//! file I/O realized "by using the buffer for exchanging messages between
//! host and device"). Two backends:
//!
//! * [`VirtualFs`] — an in-memory, thread-safe file map. Deterministic,
//!   used by tests, benches and the examples; safe to share across the
//!   real-threads worker pool.
//! * [`DirFs`] — a real directory on the host, path-jailed to its root.

use culi_core::hostio::{HostIo, HostIoHandle};
use std::collections::HashMap;
use std::path::{Component, Path, PathBuf};
use std::sync::Mutex;

/// In-memory host filesystem.
#[derive(Default)]
pub struct VirtualFs {
    files: Mutex<HashMap<Vec<u8>, Vec<u8>>>,
}

impl VirtualFs {
    /// Locks the map; a poisoned lock (a panicked worker) is recovered
    /// since the map itself is always left in a consistent state.
    fn files(&self) -> std::sync::MutexGuard<'_, HashMap<Vec<u8>, Vec<u8>>> {
        self.files.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl VirtualFs {
    /// Empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-populates a file (test/bench setup).
    pub fn preload(&self, path: &[u8], data: &[u8]) {
        self.files().insert(path.to_vec(), data.to_vec());
    }

    /// Number of stored files.
    pub fn file_count(&self) -> usize {
        self.files().len()
    }

    /// Wraps into the handle the interpreter consumes.
    pub fn into_handle(self) -> HostIoHandle {
        HostIoHandle::new(self)
    }
}

impl HostIo for VirtualFs {
    fn read_file(&self, path: &[u8]) -> Result<Vec<u8>, String> {
        self.files()
            .get(path)
            .cloned()
            .ok_or_else(|| format!("no such file: {}", String::from_utf8_lossy(path)))
    }

    fn write_file(&self, path: &[u8], data: &[u8]) -> Result<(), String> {
        self.files().insert(path.to_vec(), data.to_vec());
        Ok(())
    }

    fn exists(&self, path: &[u8]) -> bool {
        self.files().contains_key(path)
    }
}

/// Real-directory host filesystem, jailed to a root directory: device
/// paths may not escape via `..` or absolute components.
pub struct DirFs {
    root: PathBuf,
}

impl DirFs {
    /// Serves files under `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// Wraps into the handle the interpreter consumes.
    pub fn into_handle(self) -> HostIoHandle {
        HostIoHandle::new(self)
    }

    fn resolve(&self, path: &[u8]) -> Result<PathBuf, String> {
        let rel = String::from_utf8(path.to_vec()).map_err(|_| "non-UTF8 path".to_string())?;
        let rel = Path::new(&rel);
        for comp in rel.components() {
            match comp {
                Component::Normal(_) | Component::CurDir => {}
                _ => return Err(format!("path escapes the I/O root: {}", rel.display())),
            }
        }
        Ok(self.root.join(rel))
    }
}

impl HostIo for DirFs {
    fn read_file(&self, path: &[u8]) -> Result<Vec<u8>, String> {
        let p = self.resolve(path)?;
        std::fs::read(&p).map_err(|e| format!("{}: {e}", p.display()))
    }

    fn write_file(&self, path: &[u8], data: &[u8]) -> Result<(), String> {
        let p = self.resolve(path)?;
        if let Some(parent) = p.parent() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
        std::fs::write(&p, data).map_err(|e| format!("{}: {e}", p.display()))
    }

    fn exists(&self, path: &[u8]) -> bool {
        self.resolve(path).map(|p| p.exists()).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_fs_roundtrip() {
        let fs = VirtualFs::new();
        fs.write_file(b"dir/a.txt", b"abc").unwrap();
        assert!(fs.exists(b"dir/a.txt"));
        assert_eq!(fs.read_file(b"dir/a.txt").unwrap(), b"abc");
        assert!(!fs.exists(b"dir/b.txt"));
        assert!(fs.read_file(b"dir/b.txt").is_err());
        assert_eq!(fs.file_count(), 1);
    }

    #[test]
    fn virtual_fs_is_shareable() {
        let handle = VirtualFs::new().into_handle();
        let clone = handle.clone();
        handle.0.write_file(b"x", b"1").unwrap();
        assert_eq!(clone.0.read_file(b"x").unwrap(), b"1");
    }

    #[test]
    fn dir_fs_reads_and_writes_under_root() {
        let root = std::env::temp_dir().join(format!("culi-dirfs-{}", std::process::id()));
        let fs = DirFs::new(&root);
        fs.write_file(b"sub/file.txt", b"hello").unwrap();
        assert!(fs.exists(b"sub/file.txt"));
        assert_eq!(fs.read_file(b"sub/file.txt").unwrap(), b"hello");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn dir_fs_rejects_escapes() {
        let fs = DirFs::new("/tmp/culi-jail");
        assert!(fs.read_file(b"../etc/passwd").is_err());
        assert!(fs.read_file(b"/etc/passwd").is_err());
        assert!(!fs.exists(b"../x"));
    }
}
