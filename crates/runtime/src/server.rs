//! Multi-tenant session server: fair-share admission over the shared
//! runtime, with structured backpressure and noisy-neighbor quarantine.
//!
//! Everything below PR 7 drives a single [`Session`]; the paper's north
//! star — *"serving heavy lisp traffic from millions of users"* — needs
//! the multiplexing layer above the [`crate::scheduler::BatchScheduler`]:
//! many tenants, each with its **own** interpreter/environment/sync
//! state, sharing one host. [`SessionServer`] is that layer.
//!
//! # Fairness contract
//!
//! Admission is **deficit round-robin** over per-tenant FIFO command
//! queues. Each [`SessionServer::pump_round`] visits every tenant once in
//! rotation; a tenant with queued work earns [`ServerConfig::quantum`]
//! deficit credits, executes up to `min(deficit, queued, max_inflight)`
//! commands, and pays one credit per command **that actually reached the
//! runtime** — refusals (quarantine rejection, session-level failures)
//! never cost credit, so a backpressured tenant is not doubly penalized
//! for commands that never executed. A tenant whose queue goes idle
//! forfeits its accumulated deficit (classic DRR), so credit cannot be
//! hoarded. Consequences, asserted by the property suite:
//!
//! * **No starvation:** every tenant with queued work executes at least
//!   one command within one round.
//! * **Fair share:** over any window, a backlogged tenant's service is
//!   bounded by `quantum` per round regardless of how much it enqueues.
//! * **Per-tenant FIFO:** replies come back in submission order (the
//!   queue is FIFO and every dequeued command is replied to in order).
//! * **In-flight cap:** no more than [`ServerConfig::max_inflight`]
//!   commands of one tenant are ever dispatched into its session at
//!   once.
//!
//! # Backpressure contract
//!
//! Queues are bounded and refusals are **structured, never silent**: a
//! submit past the tenant's queue bound returns a
//! [`culi_core::ErrorCode::QueueFull`] reply, a submit past the server's
//! global bound returns [`culi_core::ErrorCode::Overloaded`], and a
//! quarantine-rejected command returns [`culi_core::ErrorCode::Overloaded`]
//! with a quarantine message. Refused commands are never executed (all
//! counters zero) and are counted per tenant in [`TenantStats`].
//!
//! # Quarantine contract (noisy-neighbor isolation)
//!
//! Per-tenant containment knobs — fuel budget, heap limit, watchdog
//! deadline — are fixed at admission ([`Session::tenant`]). On top, the
//! server keeps a per-tenant **failure score**: resource-class failures
//! (fuel, limits: +2; device/internal: +3) raise it, successes decay it
//! by 1. At [`ServerConfig::quarantine_threshold`] the tenant is demoted
//! to **degradation-only** service: commands still execute (sequential
//! reference route, never the shared pool) and otherwise-ok replies are
//! marked [`culi_core::ErrorCode::Degraded`]; sustained good behaviour
//! decays the score back below the threshold, but degraded successes
//! decay at **half rate** (one point per two ok replies) so a hostile
//! tenant interleaving cheap successes with runaways cannot oscillate
//! straight back out of quarantine. At
//! [`ServerConfig::reject_threshold`] the tenant is **rejected** outright
//! — commands are refused unexecuted and the score no longer decays, so
//! rejection is terminal for the session's lifetime.
//!
//! # Byte-identity guarantee
//!
//! A healthy tenant's replies are byte-identical — output, ok flag,
//! error code and [`CommandCounters`] — to the same command stream fed
//! through an isolated [`Session::tenant`] submit loop, regardless of
//! how the server routes it. The routes themselves carry the invariant:
//! the cold route is [`Session::submit_reference`] (pinned byte-identical
//! to the pooled path), the warm route is [`Session::submit_batch`]
//! (pinned identical to a submit loop), and quarantine only ever touches
//! the `Degraded` marker of an *offending* tenant. The differential
//! fault sweep asserts this under scripted hostile-tenant plans.
//!
//! # Warm-set economics
//!
//! Forking a worker pool per tenant costs threads × an interpreter clone
//! — ruinous at hundreds of tenants, which is exactly the naive baseline
//! `bench_pr7` measures. The server instead serves **cold** tenants
//! through the sequential reference (no pool, no forks) and promotes a
//! tenant to the **warm** route only after
//! [`ServerConfig::promote_after`] executed commands. The warm set is
//! LRU-bounded ([`ServerConfig::warm_limit`] pools,
//! [`ServerConfig::warm_retained_bytes`] of retained dispatch buffers —
//! the same `RETAINED_MSG_BYTES` discipline the pool's shrink policy
//! enforces per buffer); evicted tenants fall back to the cold route and
//! transparently re-fork if promoted again.

use crate::cache::{CacheConfig, CacheStats, CommandCache};
use crate::phases::CommandCounters;
use crate::reply::Reply;
use crate::session::{Session, TenantSessionConfig};
use culi_core::fault::{FaultKind, FaultSite};
use culi_core::ErrorCode;
use culi_gpu_sim::DeviceSpec;
use std::collections::VecDeque;

/// Handle to one admitted tenant (index into the server's tenant table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(usize);

impl TenantId {
    /// The tenant's index in [`ServerStats::tenants`].
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant {}", self.0)
    }
}

/// Server-wide tuning knobs. `Default` suits tests and moderate fleets;
/// the bench scales them with tenant count.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bound of each tenant's FIFO command queue; submits past it are
    /// refused with [`ErrorCode::QueueFull`].
    pub queue_capacity: usize,
    /// Bound of queued commands across all tenants; submits past it are
    /// refused with [`ErrorCode::Overloaded`].
    pub global_queue_capacity: usize,
    /// Deficit credits a tenant with queued work earns per round.
    pub quantum: usize,
    /// Most commands of one tenant dispatched into its session at once.
    pub max_inflight: usize,
    /// Most tenants holding a warm (forked) worker pool at once.
    pub warm_limit: usize,
    /// Total dispatch-buffer bytes the warm set may retain before LRU
    /// eviction kicks in (the pool's `RETAINED_MSG_BYTES` discipline,
    /// summed across tenants).
    pub warm_retained_bytes: usize,
    /// Executed commands before a tenant is promoted off the cold
    /// (sequential-reference) route onto the pooled route.
    pub promote_after: u64,
    /// Failure score at which service degrades (sequential-only, replies
    /// marked [`ErrorCode::Degraded`]).
    pub quarantine_threshold: u32,
    /// Failure score at which commands are refused outright (terminal).
    pub reject_threshold: u32,
    /// Structural-hash command cache shared across the fleet
    /// ([`crate::cache`]): verdict/template tiers are shared between
    /// tenants, each tenant gets a private reply tier
    /// ([`CommandCache::tenant_view`]). `None` disables caching. On by
    /// default — cache-served replies are bit-identical to uncached ones.
    pub cache: Option<CacheConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            global_queue_capacity: 4096,
            quantum: 8,
            max_inflight: crate::pool::WorkerPool::PIPELINE_DEPTH
                * crate::pool::WorkerPool::MAX_RUN_SECTIONS,
            warm_limit: 4,
            warm_retained_bytes: 4 * 4 * crate::pool::WorkerPool::RETAINED_MSG_BYTES,
            promote_after: 32,
            quarantine_threshold: 8,
            reject_threshold: 16,
            cache: Some(CacheConfig::default()),
        }
    }
}

/// Per-tenant metering, aggregated from every reply the tenant received.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Commands accepted into the queue.
    pub enqueued: u64,
    /// Submits refused with [`ErrorCode::QueueFull`].
    pub shed_queue_full: u64,
    /// Submits refused with [`ErrorCode::Overloaded`] (global bound).
    pub shed_overloaded: u64,
    /// Dequeued commands refused unexecuted by quarantine rejection.
    pub shed_quarantined: u64,
    /// Commands actually executed (successes and user errors alike).
    pub executed: u64,
    /// Executed commands with `ok == true`.
    pub ok: u64,
    /// Executed commands with `ok == false`.
    pub failed: u64,
    /// Ok replies demoted to [`ErrorCode::Degraded`] under quarantine.
    pub degraded: u64,
    /// Warm-fork evictions this tenant absorbed.
    pub evictions: u64,
    /// Largest single dispatch into the session (must stay within
    /// [`ServerConfig::max_inflight`]; the proptest suite asserts it).
    pub max_inflight_seen: usize,
    /// Paper-model charges summed over every executed command's
    /// [`CommandCounters`].
    pub counters: CommandCounters,
}

/// One tenant's row in a [`ServerStats`] snapshot.
#[derive(Debug, Clone)]
pub struct TenantSnapshot {
    /// The aggregated meters.
    pub stats: TenantStats,
    /// Current failure score (0 = spotless).
    pub failure_score: u32,
    /// `true` while the tenant holds a warm worker pool.
    pub warm: bool,
    /// Commands currently queued.
    pub queued: usize,
}

/// Point-in-time server metering ([`SessionServer::server_stats`]).
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Pump rounds completed.
    pub rounds: u64,
    /// Commands queued across all tenants right now.
    pub queued: usize,
    /// Tenants currently holding a warm pool.
    pub warm_tenants: usize,
    /// Dispatch-buffer bytes retained by the warm set right now.
    pub retained_warm_bytes: usize,
    /// Command-cache hit/miss/evict counters (all zero when the cache is
    /// disabled). Verdict/template counters are fleet-wide; reply
    /// counters aggregate every tenant's private tier.
    pub cache: CacheStats,
    /// Per-tenant rows, indexed by [`TenantId::index`].
    pub tenants: Vec<TenantSnapshot>,
}

#[derive(Debug)]
struct Tenant {
    session: Session,
    cfg: TenantSessionConfig,
    queue: VecDeque<String>,
    deficit: u64,
    /// Monotonic serve-clock stamp of this tenant's most recent service
    /// (LRU stamp for warm-set eviction). A per-serve clock, not the
    /// round number: round-granular stamps tie within a round and break
    /// by tenant index, which re-evicted freshly re-warmed tenants.
    served_stamp: u64,
    failure_score: u32,
    /// Consecutive [`ErrorCode::Degraded`] ok replies since the last
    /// score decay (degraded successes decay at half rate).
    degraded_ok_streak: u32,
    stats: TenantStats,
}

/// The multi-tenant session server. See the module docs for the
/// fairness, backpressure, quarantine and byte-identity contracts.
#[derive(Debug)]
pub struct SessionServer {
    spec: DeviceSpec,
    config: ServerConfig,
    tenants: Vec<Tenant>,
    rr_cursor: usize,
    round: u64,
    /// Monotonic per-serve clock backing the warm-set LRU stamps.
    serve_clock: u64,
    queued_total: usize,
    /// The fleet's shared command cache (`None` when disabled); tenants
    /// receive [`CommandCache::tenant_view`]s of it at admission.
    cache: Option<CommandCache>,
}

impl SessionServer {
    /// A server admitting tenants onto `spec`-class sessions.
    pub fn new(spec: DeviceSpec, config: ServerConfig) -> Self {
        let config = ServerConfig {
            quantum: config.quantum.max(1),
            max_inflight: config.max_inflight.max(1),
            queue_capacity: config.queue_capacity.max(1),
            global_queue_capacity: config.global_queue_capacity.max(1),
            ..config
        };
        let cache = config.cache.clone().map(CommandCache::new);
        Self {
            spec,
            config,
            tenants: Vec::new(),
            rr_cursor: 0,
            round: 0,
            serve_clock: 0,
            queued_total: 0,
            cache,
        }
    }

    /// Admits a tenant: boots its isolated session with every containment
    /// knob from `cfg` fixed now ([`Session::tenant`]). When the server
    /// runs a command cache, the tenant receives its own
    /// [`CommandCache::tenant_view`] (shared verdict/template tiers,
    /// private reply tier) unless `cfg` already pinned one.
    pub fn admit(&mut self, mut cfg: TenantSessionConfig) -> TenantId {
        if cfg.cache.is_none() {
            cfg.cache = self.cache.as_ref().map(CommandCache::tenant_view);
        }
        let id = TenantId(self.tenants.len());
        let session = Session::tenant(self.spec, &cfg);
        self.tenants.push(Tenant {
            session,
            cfg,
            queue: VecDeque::new(),
            deficit: 0,
            served_stamp: 0,
            failure_score: 0,
            degraded_ok_streak: 0,
            stats: TenantStats::default(),
        });
        id
    }

    /// Number of admitted tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Queues one command for `id`. Returns `None` when accepted, or the
    /// structured backpressure reply ([`ErrorCode::Overloaded`] /
    /// [`ErrorCode::QueueFull`]) when refused — the command is then *not*
    /// queued and will never execute. Never drops silently.
    pub fn enqueue(&mut self, id: TenantId, input: &str) -> Option<Reply> {
        let t = &mut self.tenants[id.0];
        if self.queued_total >= self.config.global_queue_capacity {
            t.stats.shed_overloaded += 1;
            return Some(Reply::refusal(
                ErrorCode::Overloaded,
                "server overloaded: global admission queue full",
            ));
        }
        if t.queue.len() >= self.config.queue_capacity {
            t.stats.shed_queue_full += 1;
            return Some(Reply::refusal(
                ErrorCode::QueueFull,
                "tenant command queue full",
            ));
        }
        t.queue.push_back(input.to_string());
        t.stats.enqueued += 1;
        self.queued_total += 1;
        None
    }

    /// One deficit-round-robin round: visits every tenant once, executes
    /// each backlogged tenant's share and returns the replies in
    /// dispatch order (per-tenant submission order is preserved).
    pub fn pump_round(&mut self) -> Vec<(TenantId, Reply)> {
        let n = self.tenants.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        self.round += 1;
        for k in 0..n {
            let idx = (self.rr_cursor + k) % n;
            if self.tenants[idx].queue.is_empty() {
                // Classic DRR: an idle queue forfeits its credit.
                self.tenants[idx].deficit = 0;
                continue;
            }
            self.tenants[idx].deficit += self.config.quantum as u64;
            let take = (self.tenants[idx].deficit.min(usize::MAX as u64) as usize)
                .min(self.tenants[idx].queue.len())
                .min(self.config.max_inflight);
            let (replies, executed) = self.execute_for(idx, take);
            // Deficit pays only for commands that reached the runtime:
            // refusals (quarantine rejection, session-level failure)
            // never executed, so they cost no credit.
            self.tenants[idx].deficit -= executed as u64;
            out.extend(replies.into_iter().map(|r| (TenantId(idx), r)));
        }
        self.rr_cursor = (self.rr_cursor + 1) % n;
        self.maintain_warm_set();
        out
    }

    /// Pumps rounds until every queue is empty, returning all replies.
    pub fn drain(&mut self) -> Vec<(TenantId, Reply)> {
        let mut out = Vec::new();
        while self.queued_total > 0 {
            out.extend(self.pump_round());
        }
        out
    }

    /// Executes `take` queued commands of tenant `idx` through the route
    /// its state selects (rejected / degraded / cold / warm), returning
    /// one reply per command in submission order plus the count of
    /// commands that actually reached the runtime (the deficit charge).
    fn execute_for(&mut self, idx: usize, take: usize) -> (Vec<Reply>, usize) {
        let quarantine_threshold = self.config.quarantine_threshold;
        let reject_threshold = self.config.reject_threshold;
        let promote_after = self.config.promote_after;
        self.serve_clock += 1;
        let stamp = self.serve_clock;
        let t = &mut self.tenants[idx];
        t.served_stamp = stamp;
        t.stats.max_inflight_seen = t.stats.max_inflight_seen.max(take);

        let mut cmds = Vec::with_capacity(take);
        for _ in 0..take {
            let cmd = t.queue.pop_front().expect("take bounded by queue len");
            // Tenant-site fault injection. The plan lives in this
            // tenant's admission config only, so a trigger can never
            // leak into a healthy tenant's stream.
            let cmd = match t.cfg.fault_plan.poll(FaultSite::TenantCommand) {
                Some(kind) => hostile_command(kind).to_string(),
                None => cmd,
            };
            cmds.push(cmd);
        }
        self.queued_total -= take;

        let rejected = t.failure_score >= reject_threshold;
        let quarantined = t.failure_score >= quarantine_threshold;
        let warm_route = !quarantined && t.stats.executed >= promote_after;

        // Each reply is paired with whether the command actually reached
        // the runtime; refusals stay out of the deficit charge and the
        // executed/ok/failed meters.
        let mut replies: Vec<(Reply, bool)> = Vec::with_capacity(cmds.len());
        if rejected {
            // Terminal shedding: never executed, never silent.
            for _ in &cmds {
                t.stats.shed_quarantined += 1;
                replies.push((
                    Reply::refusal(
                        ErrorCode::Overloaded,
                        "tenant quarantined: repeated resource-limit offenses",
                    ),
                    false,
                ));
            }
        } else if warm_route {
            let refs: Vec<&str> = cmds.iter().map(String::as_str).collect();
            match t.session.submit_batch(&refs) {
                Ok(batch) => replies.extend(batch.into_iter().map(|r| (r, true))),
                // A session-level failure (device lost, closed): one
                // structured error reply per command keeps the tenant's
                // FIFO accounting intact instead of wedging the stream.
                Err(e) => {
                    let msg = e.to_string();
                    for _ in &cmds {
                        replies.push((Reply::refusal(e.code(), &msg), false));
                    }
                }
            }
        } else {
            for cmd in &cmds {
                match t.session.submit_reference(cmd) {
                    Ok(mut reply) => {
                        if quarantined && reply.ok {
                            // Degradation-only service: executed (output
                            // and counters intact), marked so clients see
                            // the quarantine structurally.
                            reply.code = ErrorCode::Degraded;
                            t.stats.degraded += 1;
                        }
                        replies.push((reply, true));
                    }
                    Err(e) => replies.push((Reply::refusal(e.code(), &e.to_string()), false)),
                }
            }
        }

        let mut executed = 0usize;
        for (reply, ran) in &replies {
            if !*ran {
                // A refusal never reached the runtime: no deficit charge,
                // no executed/ok/failed accounting. Session-level
                // failures still feed the failure score — a broken
                // session is exactly the noisy-neighbor signal.
                match reply.code {
                    ErrorCode::Device | ErrorCode::Internal | ErrorCode::Closed => {
                        t.failure_score += 3
                    }
                    _ => {}
                }
                continue;
            }
            executed += 1;
            t.stats.executed += 1;
            add_counters(&mut t.stats.counters, &reply.counters);
            if reply.ok {
                t.stats.ok += 1;
                if reply.code == ErrorCode::Degraded {
                    // Half-rate decay under quarantine: one score point
                    // per two degraded successes, so cheap interleaved
                    // successes cannot oscillate a hostile tenant back
                    // out of degradation-only service.
                    t.degraded_ok_streak += 1;
                    if t.degraded_ok_streak >= 2 {
                        t.degraded_ok_streak = 0;
                        t.failure_score = t.failure_score.saturating_sub(1);
                    }
                } else {
                    t.degraded_ok_streak = 0;
                    t.failure_score = t.failure_score.saturating_sub(1);
                }
            } else {
                t.stats.failed += 1;
                // Resource-class failures are the noisy-neighbor signal;
                // plain user/parse errors are not (a buggy-but-cheap
                // program is not an isolation threat).
                match reply.code {
                    ErrorCode::Fuel | ErrorCode::Limit => t.failure_score += 2,
                    ErrorCode::Device | ErrorCode::Internal | ErrorCode::Closed => {
                        t.failure_score += 3
                    }
                    _ => {}
                }
            }
        }
        (replies.into_iter().map(|(r, _)| r).collect(), executed)
    }

    /// LRU-evicts warm forks until both warm-set bounds hold: at most
    /// [`ServerConfig::warm_limit`] warm tenants, retaining at most
    /// [`ServerConfig::warm_retained_bytes`] of dispatch buffers.
    fn maintain_warm_set(&mut self) {
        loop {
            let warm: Vec<usize> = (0..self.tenants.len())
                .filter(|&i| self.tenants[i].session.has_warm_forks())
                .collect();
            let retained: usize = warm
                .iter()
                .map(|&i| self.tenants[i].session.retained_warm_bytes())
                .sum();
            if warm.len() <= self.config.warm_limit && retained <= self.config.warm_retained_bytes {
                return;
            }
            let Some(&lru) = warm.iter().min_by_key(|&&i| self.tenants[i].served_stamp) else {
                return;
            };
            self.tenants[lru].session.release_warm_forks();
            self.tenants[lru].stats.evictions += 1;
        }
    }

    /// Point-in-time metering snapshot across every tenant.
    pub fn server_stats(&self) -> ServerStats {
        let tenants: Vec<TenantSnapshot> = self
            .tenants
            .iter()
            .map(|t| TenantSnapshot {
                stats: t.stats,
                failure_score: t.failure_score,
                warm: t.session.has_warm_forks(),
                queued: t.queue.len(),
            })
            .collect();
        ServerStats {
            rounds: self.round,
            queued: self.queued_total,
            warm_tenants: tenants.iter().filter(|t| t.warm).count(),
            retained_warm_bytes: self
                .tenants
                .iter()
                .map(|t| t.session.retained_warm_bytes())
                .sum(),
            cache: self
                .cache
                .as_ref()
                .map(CommandCache::stats)
                .unwrap_or_default(),
            tenants,
        }
    }

    /// Shuts every tenant session down (queued commands are discarded —
    /// callers wanting lossless teardown drain first).
    pub fn shutdown(&mut self) {
        for t in &mut self.tenants {
            t.session.shutdown();
            self.queued_total -= t.queue.len();
            t.queue.clear();
        }
    }
}

/// The misbehaving command substituted when a tenant-scoped fault fires.
/// Every shape is contained by the admission-time budgets: the runaways
/// exhaust fuel (or the heap/arena cap for the allocator), and a mid-run
/// "hang" is an unbounded loop the fuel ring converts into a bounded
/// [`ErrorCode::Fuel`] abort — worker-*site* hangs (a stuck thread, past
/// the watchdog deadline) are a different failure class exercised by
/// [`FaultSite::WorkerSection`] plans.
fn hostile_command(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::OversizedPayload => "(dotimes (k 100000000) (setq payload (cons k payload)))",
        FaultKind::Hang => "(while T 0)",
        // RunawayFuel, and any worker/device kind a hand-built plan
        // scripts at the tenant site, model a compute-bound runaway.
        _ => "(dotimes (k 100000000) (* k k))",
    }
}

fn add_counters(total: &mut CommandCounters, c: &CommandCounters) {
    total.parse.add(&c.parse);
    total.eval_master.add(&c.eval_master);
    total.jobs.add(&c.jobs);
    total.print.add(&c.print);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use culi_core::fault::FaultPlan;
    use culi_gpu_sim::device::intel_e5_2620;

    fn tenant_cfg() -> TenantSessionConfig {
        TenantSessionConfig {
            fuel_budget: 200_000,
            ..Default::default()
        }
    }

    fn small_server(config: ServerConfig) -> SessionServer {
        SessionServer::new(intel_e5_2620(), config)
    }

    #[test]
    fn backpressure_is_structured_never_silent() {
        let mut srv = small_server(ServerConfig {
            queue_capacity: 2,
            global_queue_capacity: 3,
            ..Default::default()
        });
        let a = srv.admit(tenant_cfg());
        let b = srv.admit(tenant_cfg());
        assert!(srv.enqueue(a, "1").is_none());
        assert!(srv.enqueue(a, "2").is_none());
        // Per-tenant bound.
        let refused = srv.enqueue(a, "3").expect("queue full");
        assert!(!refused.ok);
        assert_eq!(refused.code, ErrorCode::QueueFull);
        assert!(refused.output.contains("queue full"));
        // Global bound.
        assert!(srv.enqueue(b, "1").is_none());
        let refused = srv.enqueue(b, "2").expect("overloaded");
        assert_eq!(refused.code, ErrorCode::Overloaded);
        let stats = srv.server_stats();
        assert_eq!(stats.tenants[a.index()].stats.shed_queue_full, 1);
        assert_eq!(stats.tenants[b.index()].stats.shed_overloaded, 1);
        assert_eq!(stats.queued, 3);
        // Accepted commands all execute and reply.
        let replies = srv.drain();
        assert_eq!(replies.len(), 3);
        assert!(replies.iter().all(|(_, r)| r.ok));
        srv.shutdown();
    }

    #[test]
    fn drr_round_serves_every_backlogged_tenant() {
        let mut srv = small_server(ServerConfig {
            quantum: 2,
            ..Default::default()
        });
        let a = srv.admit(tenant_cfg());
        let b = srv.admit(tenant_cfg());
        for k in 0..8 {
            assert!(srv.enqueue(a, &format!("(+ {k} 1)")).is_none());
        }
        assert!(srv.enqueue(b, "(* 2 3)").is_none());
        assert!(srv.enqueue(b, "(* 4 5)").is_none());
        let round = srv.pump_round();
        // The backlogged tenant cannot crowd out the small one: both get
        // exactly their quantum this round.
        let served_a = round.iter().filter(|(id, _)| *id == a).count();
        let served_b = round.iter().filter(|(id, _)| *id == b).count();
        assert_eq!(served_a, 2);
        assert_eq!(served_b, 2);
        // Per-tenant FIFO: replies in submission order.
        let a_outputs: Vec<&str> = round
            .iter()
            .filter(|(id, _)| *id == a)
            .map(|(_, r)| r.output.as_str())
            .collect();
        assert_eq!(a_outputs, ["1", "2"]);
        srv.drain();
        srv.shutdown();
    }

    #[test]
    fn tenant_containment_knobs_arm_at_admission() {
        let mut s = Session::tenant(
            intel_e5_2620(),
            &TenantSessionConfig {
                fuel_budget: 10_000,
                ..Default::default()
            },
        );
        let r = s.submit("(dotimes (k 100000000) (* k k))").unwrap();
        assert!(!r.ok);
        assert_eq!(r.code, ErrorCode::Fuel);
        // The session survives the abort.
        assert_eq!(s.submit("(+ 1 2)").unwrap().expect_ok(), "3");
        s.shutdown();
    }

    #[test]
    fn quarantine_escalates_from_degraded_to_rejected() {
        let mut srv = small_server(ServerConfig {
            quarantine_threshold: 4,
            reject_threshold: 8,
            ..Default::default()
        });
        let noisy = srv.admit(TenantSessionConfig {
            fuel_budget: 10_000,
            ..Default::default()
        });
        let healthy = srv.admit(tenant_cfg());
        let runaway = "(dotimes (k 100000000) (* k k))";
        // Two runaways (+2 each) reach the quarantine threshold.
        for _ in 0..2 {
            assert!(srv.enqueue(noisy, runaway).is_none());
        }
        assert!(srv.enqueue(healthy, "(+ 1 1)").is_none());
        let replies = srv.drain();
        for (id, r) in &replies {
            if *id == noisy {
                assert_eq!(r.code, ErrorCode::Fuel, "{}", r.output);
            } else {
                assert!(r.ok);
            }
        }
        assert_eq!(srv.server_stats().tenants[noisy.index()].failure_score, 4);
        // Quarantined-but-executing: an innocuous command still runs,
        // marked Degraded; output stays correct.
        assert!(srv.enqueue(noisy, "(+ 2 3)").is_none());
        let replies = srv.drain();
        let (_, r) = replies.iter().find(|(id, _)| *id == noisy).unwrap();
        assert!(r.ok);
        assert_eq!(r.code, ErrorCode::Degraded);
        assert_eq!(r.output, "5");
        // Two more runaways cross the reject threshold (3 + 2 + 2 = 7…
        // plus one more to be safe); rejected commands never execute.
        for _ in 0..3 {
            assert!(srv.enqueue(noisy, runaway).is_none());
        }
        srv.drain();
        assert!(srv.server_stats().tenants[noisy.index()].failure_score >= 8);
        assert!(srv.enqueue(noisy, "(+ 1 1)").is_none());
        let replies = srv.drain();
        let (_, r) = replies.iter().find(|(id, _)| *id == noisy).unwrap();
        assert!(!r.ok);
        assert_eq!(r.code, ErrorCode::Overloaded);
        assert!(r.output.contains("quarantined"));
        assert!(
            srv.server_stats().tenants[noisy.index()]
                .stats
                .shed_quarantined
                >= 1
        );
        // The healthy tenant is untouched throughout.
        assert!(srv.enqueue(healthy, "(* 6 7)").is_none());
        let replies = srv.drain();
        let (_, r) = replies.iter().find(|(id, _)| *id == healthy).unwrap();
        assert!(r.ok);
        assert_eq!(r.output, "42");
        assert_eq!(r.code, ErrorCode::Ok);
        srv.shutdown();
    }

    #[test]
    fn refusal_heavy_round_leaves_deficit_intact() {
        // Regression: the deficit used to be decremented by
        // `replies.len()` including refusals, so a quarantine-rejected
        // tenant paid quantum credit for commands that never executed.
        let mut srv = small_server(ServerConfig {
            quantum: 8,
            reject_threshold: 4,
            quarantine_threshold: 2,
            ..Default::default()
        });
        let a = srv.admit(tenant_cfg());
        srv.tenants[a.index()].failure_score = 16; // force terminal rejection
        for _ in 0..3 {
            assert!(srv.enqueue(a, "(+ 1 1)").is_none());
        }
        let replies = srv.pump_round();
        assert_eq!(replies.len(), 3);
        assert!(replies.iter().all(|(_, r)| r.code == ErrorCode::Overloaded));
        let stats = srv.server_stats();
        assert_eq!(stats.tenants[a.index()].stats.shed_quarantined, 3);
        assert_eq!(stats.tenants[a.index()].stats.executed, 0);
        // Nothing executed, so the full quantum credit is still there.
        assert_eq!(srv.tenants[a.index()].deficit, 8);
        srv.shutdown();
    }

    #[test]
    fn warm_set_is_lru_bounded_with_transparent_rewarm() {
        let mut srv = small_server(ServerConfig {
            warm_limit: 1,
            promote_after: 0, // every tenant rides the pooled route
            ..Default::default()
        });
        let a = srv.admit(tenant_cfg());
        let b = srv.admit(tenant_cfg());
        let section = "(||| 2 + (1 2) (3 4))";
        // Serve A's section: A warms.
        assert!(srv.enqueue(a, section).is_none());
        let replies = srv.drain();
        assert_eq!(replies[0].1.output, "(4 6)");
        assert!(srv.server_stats().tenants[a.index()].warm);
        // Serve B's section: B warms, A (the LRU) is evicted.
        assert!(srv.enqueue(b, section).is_none());
        let replies = srv.drain();
        assert_eq!(replies[0].1.output, "(4 6)");
        let stats = srv.server_stats();
        assert_eq!(stats.warm_tenants, 1);
        assert!(stats.tenants[b.index()].warm);
        assert!(!stats.tenants[a.index()].warm);
        assert_eq!(stats.tenants[a.index()].stats.evictions, 1);
        // A returns: transparent re-warm, identical behaviour.
        assert!(srv.enqueue(a, section).is_none());
        let replies = srv.drain();
        assert_eq!(replies[0].1.output, "(4 6)");
        assert_eq!(srv.server_stats().warm_tenants, 1);
        srv.shutdown();
    }

    #[test]
    fn metering_aggregates_reply_counters_exactly() {
        let mut srv = small_server(ServerConfig::default());
        let a = srv.admit(tenant_cfg());
        for cmd in ["(setq x 4)", "(* x x)", "(list x x x)"] {
            assert!(srv.enqueue(a, cmd).is_none());
        }
        let replies = srv.drain();
        let mut expect = CommandCounters::default();
        for (_, r) in &replies {
            add_counters(&mut expect, &r.counters);
        }
        let stats = srv.server_stats();
        assert_eq!(stats.tenants[a.index()].stats.counters, expect);
        assert_eq!(stats.tenants[a.index()].stats.executed, 3);
        assert_eq!(stats.tenants[a.index()].stats.ok, 3);
        assert_eq!(stats.rounds, 1);
        srv.shutdown();
    }

    #[test]
    fn healthy_tenants_stay_byte_identical_beside_a_scripted_hostile() {
        // The tenant-scoped fault plan substitutes hostile commands for
        // the noisy tenant only; the healthy tenant's replies must match
        // an isolated session byte-for-byte.
        let plan = FaultPlan::from_seed_tenant(7);
        let mut srv = small_server(ServerConfig::default());
        let noisy = srv.admit(TenantSessionConfig {
            fuel_budget: 50_000,
            fault_plan: plan.clone(),
            ..Default::default()
        });
        let healthy = srv.admit(tenant_cfg());
        let stream = ["(setq v 3)", "(+ v v)", "(||| 2 * (1 2) (3 4))", "(list v)"];
        for cmd in stream {
            assert!(srv.enqueue(noisy, cmd).is_none());
            assert!(srv.enqueue(healthy, cmd).is_none());
        }
        let replies = srv.drain();
        assert!(plan.injected_count() >= 1, "plan must have fired");
        let got: Vec<&Reply> = replies
            .iter()
            .filter(|(id, _)| *id == healthy)
            .map(|(_, r)| r)
            .collect();
        let mut isolated = Session::tenant(intel_e5_2620(), &tenant_cfg());
        for (k, cmd) in stream.iter().enumerate() {
            let want = isolated.submit(cmd).unwrap();
            assert_eq!(got[k].output, want.output, "{cmd}");
            assert_eq!(got[k].ok, want.ok, "{cmd}");
            assert_eq!(got[k].code, want.code, "{cmd}");
            assert_eq!(got[k].counters, want.counters, "{cmd}");
        }
        isolated.shutdown();
        srv.shutdown();
    }
}
