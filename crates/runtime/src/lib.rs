//! # culi-runtime — CuLi's execution runtimes
//!
//! Ties the interpreter (`culi-core`) to the machine models
//! (`culi-gpu-sim`):
//!
//! * [`gpu_repl::GpuRepl`] — the paper's system: host command buffer,
//!   persistent kernel, master-thread parse/eval/print, postbox-driven
//!   `|||` sections with warp-livelock mechanics.
//! * [`cpu_repl::CpuRepl`] — the comparison systems: a modeled pthread
//!   pool (figures) and a real std::thread persistent-pool backend
//!   (functional parallelism).
//! * [`pool::WorkerPool`] — the persistent real-threads `|||` backend:
//!   warm interpreter forks synchronized incrementally through the flat
//!   postbox codec.
//! * [`scheduler::BatchScheduler`] — the backend-agnostic batch
//!   dispatcher: classification, run coalescing, barrier/drain semantics
//!   and reply re-sequencing over the [`scheduler::ExecQueue`] trait that
//!   every backend implements.
//! * [`session::Session`] — one facade over every backend.
//! * [`server::SessionServer`] — the multi-tenant layer: fair-share
//!   admission (deficit round-robin), structured backpressure, per-tenant
//!   containment/quarantine and LRU warm-fork eviction over many
//!   concurrent sessions.
//! * [`phases`] — operation counts → cycles → per-phase milliseconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cpu_repl;
pub mod error;
pub mod gpu_repl;
pub mod phases;
pub mod pool;
pub mod reply;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod vfs;

pub use cache::{CacheConfig, CacheStats, CommandCache, TierStats};
pub use cpu_repl::{BatchClassifier, CpuMode, CpuRepl, CpuReplConfig};
pub use error::{Result, RuntimeError};
pub use gpu_repl::{GpuRepl, GpuReplConfig};
pub use phases::{counters_to_cycles, CommandCounters, PhaseBreakdown};
pub use pool::{ForkPerSectionHook, ThreadedHook, WorkerPool};
pub use reply::Reply;
pub use scheduler::{BatchScheduler, ExecQueue, Verdict};
pub use server::{ServerConfig, ServerStats, SessionServer, TenantId, TenantSnapshot, TenantStats};
pub use session::{Session, TenantSessionConfig};
pub use vfs::{DirFs, VirtualFs};
