//! The unified batch scheduler: one classify → stage → barrier → drain →
//! resume state machine for every backend.
//!
//! PR 3/4 grew two near-identical copies of the run-staging logic inside
//! [`crate::CpuRepl::submit_batch`] and [`crate::GpuRepl::submit_batch`]:
//! classify each command with the conservative effect analysis
//! ([`culi_core::effects`]), coalesce maximal runs of stageable `|||`
//! commands, keep a bounded number of runs in flight, drain everything at
//! a barrier, and re-sequence replies into submission order. This module
//! owns that state machine once, parameterized over a small [`ExecQueue`]
//! trait; the REPLs shrink to thin adapters that implement the trait (the
//! CPU worker pool and the fork-per-section baseline in
//! [`crate::cpu_repl`], the — possibly multi-device — simulated-GPU
//! command buffer in [`crate::gpu_repl`]).
//!
//! One layer above sits the multi-tenant [`crate::server::SessionServer`]
//! (PR 7): it owns *admission* — which tenant's commands enter the
//! runtime, in what share, and which are refused — while this scheduler
//! owns *execution order within one session's batch*. The split keeps
//! fairness policy (deficit round-robin, backpressure, quarantine) out of
//! the per-session pipeline: the server simply hands each warm tenant's
//! share to [`crate::Session::submit_batch`], which lands here unchanged.
//!
//! # Queue trait contract
//!
//! An [`ExecQueue`] presents the scheduler with three token types and six
//! operations. The tokens are opaque to the scheduler:
//!
//! * [`ExecQueue::Staged`] — one classified-stageable command, prepared
//!   up to (but not including) dispatch. For the CPU pool this is the
//!   command's built job expressions plus its parse/stage meter counters;
//!   for the GPU it is just the raw input text awaiting upload.
//! * [`ExecQueue::Barrier`] — the carried state of a command that must
//!   run synchronously: its parsed forms (so metered work is never
//!   repeated), or the error a parse/stage attempt already produced.
//! * [`ExecQueue::Run`] — one dispatched, in-flight run awaiting
//!   collection.
//!
//! The operations, and the ordering guarantees the scheduler provides:
//!
//! 1. [`ExecQueue::classify_and_stage`] is called **exactly once per
//!    command, in submission order**. It performs any metered per-command
//!    front work (parsing, classification, charge-exact stage mirroring)
//!    and rules the command stageable or barrier. Because classification
//!    is conservative — a staged command's operands are provably pure —
//!    the queue may evaluate staging work *ahead of* in-flight runs
//!    without observable difference.
//! 2. [`ExecQueue::dispatch`] ships a non-empty run of consecutive staged
//!    commands. Runs are dispatched in submission order and are bounded
//!    by [`ExecQueue::max_run_len`] commands and by
//!    [`ExecQueue::admits`] (byte budgets); at most
//!    [`ExecQueue::pipeline_depth`] dispatched runs exist before the
//!    oldest is collected.
//! 3. [`ExecQueue::collect`] retires the **oldest** dispatched run,
//!    writing each command's reply into its submission-order slot. Runs
//!    are collected strictly FIFO. Queue-internal recovery — worker
//!    refusals, poison re-arming, snapshot resync — happens entirely
//!    inside `collect` (see [`crate::pool`]) and never reorders replies.
//! 4. [`ExecQueue::run_barrier`] executes one barrier command through the
//!    queue's synchronous path. The scheduler guarantees the pipeline is
//!    **empty** at that point: every earlier command's reply has been
//!    collected, so the barrier may freely mutate persistent state, and
//!    commands after it are classified against the post-barrier state.
//!
//! # Barrier / drain / resume
//!
//! A barrier verdict flushes the run being assembled, collects every
//! in-flight run (drain), then runs the barrier command synchronously;
//! staging resumes with the next command. The same drain-then-reply
//! sequence serves parse errors and stage-time errors — the queue carries
//! the error in its `Barrier` token and renders it in `run_barrier`, so
//! failed commands surface their reply at exactly the position a
//! sequential `submit` loop would.
//!
//! # Re-sequencing rule
//!
//! Replies are delivered in **submission order** regardless of which run
//! (or, for a sharded GPU queue, which device) produced them: every
//! command owns a reply slot indexed by its position in the input stream,
//! `collect`/`run_barrier` fill slots, and the scheduler returns the
//! slots in order once the stream is exhausted.
//!
//! # Graceful degradation (fault model)
//!
//! Errors split into two classes by [`crate::RuntimeError::is_degradable`]:
//!
//! * **Program errors** (wrong types, division by zero, fuel/heap limits,
//!   parse errors) are deterministic properties of the command. They are
//!   rendered as `ok == false` replies by the queue and never retried —
//!   the sequential reference produces the identical reply.
//! * **Infrastructure errors** ([`culi_core::ErrorCode::Device`]: a
//!   worker seat lost to a panic, hang or corrupted reply; a device
//!   reply dropped past its retry budget) say nothing about the
//!   commands. The queue writes the affected commands off (exposing
//!   their slots via [`ExecQueue::take_failed`]) and the scheduler
//!   **degrades**: it drains every other in-flight run — later runs may
//!   write off more commands — then re-executes each written-off command
//!   on the queue's *sequential reference* path
//!   ([`ExecQueue::run_sequential`]), in submission order. This is sound
//!   because only provably-pure commands are ever staged: the master
//!   re-evaluating them observes exactly the state they were staged
//!   against, so the fallback replies (output, `ok`, counters) are
//!   byte-identical to what the healthy backend would have produced —
//!   only [`crate::Reply::code`] is marked
//!   [`culi_core::ErrorCode::Degraded`]. The differential fault harness
//!   asserts this equivalence.
//!
//! Non-degradable session/protocol failures still abort the whole batch
//! as a [`crate::RuntimeError`], exactly as the pre-unification
//! dispatchers did.

use crate::error::Result;
use crate::reply::Reply;
use std::collections::VecDeque;

/// Verdict of [`ExecQueue::classify_and_stage`] for one command.
#[derive(Debug)]
pub enum Verdict<S, B> {
    /// The command is stageable: it may join the run being assembled.
    Stage(S),
    /// The command must run synchronously after the pipeline drains
    /// (non-stageable command, parse error, or stage-time error).
    Barrier(B),
    /// The command's reply is already known — a reply-cache hit
    /// ([`crate::cache::CommandCache`]). The scheduler writes it straight
    /// into the command's slot: no run, no barrier, no pipeline
    /// interaction. Sound because queues only ever serve `Done` for
    /// commands whose cached execution was classified pure against the
    /// *current* env sync epoch, so neither the assembling run nor any
    /// in-flight run can observe a difference. Boxed so the common
    /// `Stage`/`Barrier` verdicts stay small.
    Done(Box<Reply>),
}

/// One backend execution queue the [`BatchScheduler`] can feed. See the
/// module docs for the full contract. The `'i` lifetime is the borrow of
/// the batch's input strings, so a queue token may hold `&'i str` without
/// copying.
pub trait ExecQueue<'i> {
    /// A classified-stageable command, prepared but not yet dispatched.
    type Staged;
    /// Carried state of a command that must run synchronously.
    type Barrier;
    /// One dispatched, in-flight run awaiting collection.
    type Run;

    /// Maximum commands one run may coalesce (≥ 1).
    fn max_run_len(&self) -> usize;

    /// Maximum dispatched-but-uncollected runs (≥ 1): the pool's postbox
    /// double-buffer depth, or the GPU session's device count.
    fn pipeline_depth(&self) -> usize;

    /// Whether `input` may still join a run currently holding `run_len`
    /// commands totalling `run_bytes` input bytes. Never called for an
    /// empty run — the first command always joins. Defaults to no byte
    /// budget.
    fn admits(&self, run_len: usize, run_bytes: usize, input: &str) -> bool {
        let _ = (run_len, run_bytes, input);
        true
    }

    /// Classifies one command and performs its front work. Called once
    /// per command, in submission order.
    fn classify_and_stage(
        &mut self,
        input: &'i str,
        slot: usize,
    ) -> Result<Verdict<Self::Staged, Self::Barrier>>;

    /// Ships a non-empty run of staged commands.
    fn dispatch(&mut self, run: Vec<Self::Staged>) -> Result<Self::Run>;

    /// Retires the oldest dispatched run, writing each command's reply
    /// into its slot.
    fn collect(&mut self, run: Self::Run, replies: &mut [Option<Reply>]) -> Result<()>;

    /// Runs one barrier command synchronously (the pipeline is empty).
    fn run_barrier(
        &mut self,
        barrier: Self::Barrier,
        slot: usize,
        replies: &mut [Option<Reply>],
    ) -> Result<()>;

    /// Reply slots written off by the most recent **degradable**
    /// `dispatch`/`collect` failure. The queue has already retired its
    /// internal pipeline state for them; the scheduler re-executes each
    /// on [`ExecQueue::run_sequential`] after draining the pipeline.
    /// Defaults to none (queues that never degrade).
    fn take_failed(&mut self) -> Vec<usize> {
        Vec::new()
    }

    /// Executes `input` on the queue's *sequential reference* path — the
    /// master interpreter alone, no pool or device batching — writing
    /// into `slot` the byte-identical reply the healthy path would have
    /// produced, with successes marked [`culi_core::ErrorCode::Degraded`].
    /// Only called after a degradable failure, with the pipeline drained.
    fn run_sequential(
        &mut self,
        input: &'i str,
        slot: usize,
        replies: &mut [Option<Reply>],
    ) -> Result<()>;
}

/// The backend-agnostic batch dispatcher: drives an [`ExecQueue`] over a
/// command stream, owning run coalescing, in-flight accounting,
/// barrier/drain semantics and reply re-sequencing.
#[derive(Debug)]
pub struct BatchScheduler<'i, Q: ExecQueue<'i>> {
    /// Dispatched runs, oldest first.
    pending: VecDeque<Q::Run>,
    /// The run currently being assembled.
    assembling: Vec<Q::Staged>,
    /// Input bytes of the assembling run (for [`ExecQueue::admits`]).
    run_bytes: usize,
    /// Submission-order reply slots.
    replies: Vec<Option<Reply>>,
}

impl<'i, Q: ExecQueue<'i>> BatchScheduler<'i, Q> {
    /// Submits a command stream through `queue`, returning one reply per
    /// input in submission order.
    pub fn submit_batch(queue: &mut Q, inputs: &[&'i str]) -> Result<Vec<Reply>> {
        debug_assert!(queue.max_run_len() >= 1);
        debug_assert!(queue.pipeline_depth() >= 1);
        let mut s = Self {
            pending: VecDeque::new(),
            assembling: Vec::new(),
            run_bytes: 0,
            replies: (0..inputs.len()).map(|_| None).collect(),
        };
        for (slot, &input) in inputs.iter().enumerate() {
            // Budget check first: a run-ending command starts the next
            // run instead of truncating it.
            if !s.assembling.is_empty() && !queue.admits(s.assembling.len(), s.run_bytes, input) {
                s.flush(queue, inputs)?;
            }
            match queue.classify_and_stage(input, slot)? {
                Verdict::Stage(staged) => {
                    s.assembling.push(staged);
                    s.run_bytes += input.len();
                    if s.assembling.len() >= queue.max_run_len() {
                        s.flush(queue, inputs)?;
                    }
                }
                Verdict::Barrier(b) => {
                    s.flush(queue, inputs)?;
                    s.drain(queue, inputs)?;
                    queue.run_barrier(b, slot, &mut s.replies)?;
                }
                // A cache hit neither joins nor flushes the assembling
                // run: stageable commands around it keep coalescing.
                Verdict::Done(reply) => s.replies[slot] = Some(*reply),
            }
        }
        s.flush(queue, inputs)?;
        s.drain(queue, inputs)?;
        Ok(s.replies
            .into_iter()
            .map(|r| r.expect("every batch slot replied"))
            .collect())
    }

    /// Dispatches the assembling run (if any), first collecting the
    /// oldest in-flight run(s) while the pipeline is at depth.
    fn flush(&mut self, queue: &mut Q, inputs: &[&'i str]) -> Result<()> {
        if self.assembling.is_empty() {
            return Ok(());
        }
        while self.pending.len() >= queue.pipeline_depth() {
            self.collect_oldest(queue, inputs)?;
        }
        let run = std::mem::take(&mut self.assembling);
        self.run_bytes = 0;
        match queue.dispatch(run) {
            Ok(dispatched) => self.pending.push_back(dispatched),
            Err(e) if e.is_degradable() => self.degrade(queue, inputs)?,
            Err(e) => return Err(e),
        }
        Ok(())
    }

    /// Collects every in-flight run, oldest first.
    fn drain(&mut self, queue: &mut Q, inputs: &[&'i str]) -> Result<()> {
        while !self.pending.is_empty() {
            self.collect_oldest(queue, inputs)?;
        }
        Ok(())
    }

    /// Retires the oldest in-flight run; a degradable backend failure
    /// routes through [`BatchScheduler::degrade`] instead of aborting.
    fn collect_oldest(&mut self, queue: &mut Q, inputs: &[&'i str]) -> Result<()> {
        let run = self.pending.pop_front().expect("pipeline non-empty");
        match queue.collect(run, &mut self.replies) {
            Ok(()) => Ok(()),
            Err(e) if e.is_degradable() => self.degrade(queue, inputs),
            Err(e) => Err(e),
        }
    }

    /// Graceful degradation: the queue wrote commands off after an
    /// infrastructure failure survived its internal retries. Drain every
    /// other in-flight run first — later runs may write off more
    /// commands — then re-execute every written-off command on the
    /// queue's sequential reference, in submission order (see the module
    /// docs for why the fallback replies are byte-identical).
    fn degrade(&mut self, queue: &mut Q, inputs: &[&'i str]) -> Result<()> {
        let mut failed = queue.take_failed();
        while let Some(run) = self.pending.pop_front() {
            match queue.collect(run, &mut self.replies) {
                Ok(()) => {}
                Err(e) if e.is_degradable() => failed.extend(queue.take_failed()),
                Err(e) => return Err(e),
            }
        }
        failed.sort_unstable();
        for slot in failed {
            queue.run_sequential(inputs[slot], slot, &mut self.replies)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(text: String) -> Reply {
        Reply {
            output: text,
            ok: true,
            ..Default::default()
        }
    }

    /// Scripted queue: inputs starting with `b` barrier, all else stage.
    /// Records the dispatch/collect/barrier order for the assertions.
    struct ScriptQueue {
        max_run: usize,
        depth: usize,
        /// Run byte budget for `admits`; `None` admits everything.
        byte_budget: Option<usize>,
        /// When set, collecting the run containing this slot fails
        /// degradably (one-shot): its slots land in `failed`.
        fail_collect_containing: Option<usize>,
        failed: Vec<usize>,
        events: Vec<String>,
        outstanding: usize,
        max_outstanding: usize,
    }

    impl ScriptQueue {
        fn new(max_run: usize, depth: usize) -> Self {
            Self {
                max_run,
                depth,
                byte_budget: None,
                fail_collect_containing: None,
                failed: Vec::new(),
                events: Vec::new(),
                outstanding: 0,
                max_outstanding: 0,
            }
        }
    }

    impl<'i> ExecQueue<'i> for ScriptQueue {
        type Staged = (usize, &'i str);
        type Barrier = &'i str;
        type Run = Vec<(usize, &'i str)>;

        fn max_run_len(&self) -> usize {
            self.max_run
        }

        fn pipeline_depth(&self) -> usize {
            self.depth
        }

        fn admits(&self, _run_len: usize, run_bytes: usize, input: &str) -> bool {
            match self.byte_budget {
                Some(budget) => run_bytes + input.len() <= budget,
                None => true,
            }
        }

        fn classify_and_stage(
            &mut self,
            input: &'i str,
            slot: usize,
        ) -> Result<Verdict<Self::Staged, Self::Barrier>> {
            Ok(if input.starts_with('b') {
                Verdict::Barrier(input)
            } else if input.starts_with('c') {
                // Scripted cache hit: the reply is already known.
                Verdict::Done(Box::new(reply(format!("C{slot}:{input}"))))
            } else {
                Verdict::Stage((slot, input))
            })
        }

        fn dispatch(&mut self, run: Vec<Self::Staged>) -> Result<Self::Run> {
            assert!(!run.is_empty() && run.len() <= self.max_run);
            self.events.push(format!("dispatch:{}", run.len()));
            self.outstanding += 1;
            self.max_outstanding = self.max_outstanding.max(self.outstanding);
            Ok(run)
        }

        fn collect(&mut self, run: Self::Run, replies: &mut [Option<Reply>]) -> Result<()> {
            self.outstanding -= 1;
            if let Some(bad) = self.fail_collect_containing {
                if run.iter().any(|&(slot, _)| slot == bad) {
                    self.fail_collect_containing = None;
                    self.events.push(format!("collect-fail:{}", run.len()));
                    self.failed.extend(run.iter().map(|&(slot, _)| slot));
                    return Err(crate::error::RuntimeError::Device(
                        culi_gpu_sim::SimError::ReplyDropped,
                    ));
                }
            }
            self.events.push(format!("collect:{}", run.len()));
            for (slot, input) in run {
                replies[slot] = Some(reply(format!("S{slot}:{input}")));
            }
            Ok(())
        }

        fn run_barrier(
            &mut self,
            barrier: Self::Barrier,
            slot: usize,
            replies: &mut [Option<Reply>],
        ) -> Result<()> {
            self.events.push(format!("barrier:{slot}"));
            // Drain guarantee: every earlier command already replied.
            assert!(
                replies[..slot].iter().all(Option::is_some),
                "barrier at slot {slot} ran with earlier replies missing"
            );
            assert_eq!(self.outstanding, 0, "barrier with runs in flight");
            replies[slot] = Some(reply(format!("B{slot}:{barrier}")));
            Ok(())
        }

        fn take_failed(&mut self) -> Vec<usize> {
            std::mem::take(&mut self.failed)
        }

        fn run_sequential(
            &mut self,
            input: &'i str,
            slot: usize,
            replies: &mut [Option<Reply>],
        ) -> Result<()> {
            self.events.push(format!("seq:{slot}"));
            assert_eq!(self.outstanding, 0, "fallback with runs in flight");
            let mut r = reply(format!("D{slot}:{input}"));
            r.code = culi_core::ErrorCode::Degraded;
            replies[slot] = Some(r);
            Ok(())
        }
    }

    #[test]
    fn replies_resequence_and_runs_cap() {
        let mut q = ScriptQueue::new(3, 2);
        let inputs = ["s", "s", "s", "s", "b1", "s", "b2", "b3", "s"];
        let replies = BatchScheduler::submit_batch(&mut q, &inputs).unwrap();
        for (slot, (got, src)) in replies.iter().zip(&inputs).enumerate() {
            let kind = if src.starts_with('b') { "B" } else { "S" };
            assert_eq!(got.output, format!("{kind}{slot}:{src}"));
        }
        assert!(q.max_outstanding <= 2);
        // 4 stageables: one full run of 3, then the singleton flushed by
        // the barrier.
        assert_eq!(
            q.events[..4],
            ["dispatch:3", "dispatch:1", "collect:3", "collect:1"]
        );
    }

    #[test]
    fn depth_one_serializes_runs() {
        let mut q = ScriptQueue::new(2, 1);
        let inputs = ["s"; 7];
        BatchScheduler::submit_batch(&mut q, &inputs).unwrap();
        assert_eq!(q.max_outstanding, 1);
        // Every dispatch beyond the first is preceded by the previous
        // run's collection.
        assert_eq!(
            q.events,
            [
                "dispatch:2",
                "collect:2",
                "dispatch:2",
                "collect:2",
                "dispatch:2",
                "collect:2",
                "dispatch:1",
                "collect:1"
            ]
        );
    }

    #[test]
    fn degradable_failure_drains_then_falls_back_sequentially() {
        let mut q = ScriptQueue::new(2, 2);
        q.fail_collect_containing = Some(0);
        // Runs: {0,1} (fails at collect), {2,3}, {4,5}.
        let inputs = ["s"; 6];
        let replies = BatchScheduler::submit_batch(&mut q, &inputs).unwrap();
        for (slot, r) in replies.iter().enumerate() {
            if slot < 2 {
                assert_eq!(r.output, format!("D{slot}:s"));
                assert_eq!(r.code, culi_core::ErrorCode::Degraded);
            } else {
                assert_eq!(r.output, format!("S{slot}:s"));
                assert_eq!(r.code, culi_core::ErrorCode::Ok);
            }
        }
        // The failed run's slots re-execute sequentially, in submission
        // order, only after the surviving in-flight run was drained;
        // later staging then proceeds normally.
        assert_eq!(
            q.events,
            [
                "dispatch:2",
                "dispatch:2",
                "collect-fail:2",
                "collect:2",
                "seq:0",
                "seq:1",
                "dispatch:2",
                "collect:2"
            ]
        );
    }

    #[test]
    fn done_verdicts_fill_slots_without_touching_the_pipeline() {
        let mut q = ScriptQueue::new(2, 2);
        // A cache hit between two stageables must not flush the
        // assembling run: the two `s` commands still coalesce.
        let inputs = ["s", "c", "s", "b", "c"];
        let replies = BatchScheduler::submit_batch(&mut q, &inputs).unwrap();
        assert_eq!(replies[0].output, "S0:s");
        assert_eq!(replies[1].output, "C1:c");
        assert_eq!(replies[2].output, "S2:s");
        assert_eq!(replies[3].output, "B3:b");
        assert_eq!(replies[4].output, "C4:c");
        assert_eq!(q.events, ["dispatch:2", "collect:2", "barrier:3"]);
    }

    #[test]
    fn byte_budget_starts_a_new_run() {
        let mut q = ScriptQueue::new(16, 2);
        q.byte_budget = Some(8);
        // 4+4 bytes fill a run; the third command starts the next one.
        let replies =
            BatchScheduler::submit_batch(&mut q, &["ssss", "ssss", "ssss", "ss"]).unwrap();
        assert_eq!(replies.len(), 4);
        assert_eq!(
            q.events,
            ["dispatch:2", "dispatch:2", "collect:2", "collect:2"]
        );
    }
}
