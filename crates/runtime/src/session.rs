//! Backend-polymorphic session facade.
//!
//! Examples and the figure harness talk to every backend through one type:
//! submit a line, get a [`Reply`], shut down. The facade also carries the
//! base-latency measurement used for paper Fig. 14.

use crate::cpu_repl::{CpuMode, CpuRepl, CpuReplConfig};
use crate::error::Result;
use crate::gpu_repl::{GpuRepl, GpuReplConfig};
use crate::reply::Reply;
use culi_core::fault::FaultPlan;
use culi_core::InterpConfig;
use culi_gpu_sim::{DeviceKind, DeviceSpec, KernelConfig};
use std::time::Duration;

/// A running CuLi session on any backend.
// Sessions are created a handful of times per process and live on the
// stack of whoever boots them; the variant size gap (the CPU repl embeds
// its machine model inline) is not worth an indirection on every access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Session {
    /// Simulated-GPU persistent kernel.
    Gpu(GpuRepl),
    /// Modeled or real-threads CPU.
    Cpu(CpuRepl),
}

/// Containment knobs for a server-managed tenant session, fixed once at
/// admission ([`Session::tenant`]) instead of threaded through every
/// call: per-command fuel and live-heap budgets, the worker-pool
/// watchdog deadline, the worker-thread count a promoted (warm) tenant
/// gets, and an optional tenant-scoped [`FaultPlan`] (the fault
/// harness's hostile-tenant hook; [`FaultPlan::none`] in production).
#[derive(Debug, Clone)]
pub struct TenantSessionConfig {
    /// Worker threads when the tenant's pool is warm.
    pub threads: usize,
    /// Per-command fuel budget (evaluator steps).
    pub fuel_budget: u64,
    /// Live-node heap cap for the tenant's interpreter.
    pub heap_limit: usize,
    /// Node-arena capacity — tenants default far smaller than the
    /// single-session default so hundreds fit in memory.
    pub arena_capacity: usize,
    /// Worker-pool watchdog deadline for one reply take.
    pub reply_deadline: Duration,
    /// Tenant-scoped fault script; shared with the server so it can poll
    /// [`culi_core::fault::FaultSite::TenantCommand`] for this tenant.
    pub fault_plan: FaultPlan,
    /// This tenant's view of the server's structural-hash command cache
    /// ([`crate::cache::CommandCache::tenant_view`]): verdict/template
    /// tiers shared across tenants, reply tier private. `None` (the
    /// default) disables caching for the session.
    pub cache: Option<crate::cache::CommandCache>,
}

impl Default for TenantSessionConfig {
    fn default() -> Self {
        let defaults = InterpConfig::default();
        Self {
            threads: 2,
            fuel_budget: 2_000_000,
            heap_limit: defaults.heap_limit,
            arena_capacity: 1 << 15,
            reply_deadline: Duration::from_secs(5),
            fault_plan: FaultPlan::none(),
            cache: None,
        }
    }
}

impl Session {
    /// Boots the appropriate backend for `spec` with default
    /// configuration: GPUs get the persistent kernel, CPUs the modeled
    /// pthread pool.
    pub fn for_device(spec: DeviceSpec) -> Self {
        match spec.kind {
            DeviceKind::Gpu => Self::Gpu(GpuRepl::launch(spec, GpuReplConfig::default())),
            DeviceKind::Cpu => Self::Cpu(CpuRepl::launch(spec, CpuReplConfig::default())),
        }
    }

    /// Boots a GPU session with explicit kernel switches (ablations).
    pub fn gpu_with_kernel_config(spec: DeviceSpec, kernel: KernelConfig) -> Self {
        Self::Gpu(GpuRepl::launch(
            spec,
            GpuReplConfig {
                kernel,
                ..Default::default()
            },
        ))
    }

    /// Boots a GPU session sharded across `devices` simulated devices:
    /// batched stageable runs round-robin across per-device kernels and
    /// command buffers (replies stay bit-identical to a single device;
    /// only the modeled time shards).
    pub fn gpu_sharded(spec: DeviceSpec, devices: usize) -> Self {
        Self::Gpu(GpuRepl::launch(
            spec,
            GpuReplConfig {
                device_count: devices,
                ..Default::default()
            },
        ))
    }

    /// Boots a real-threads CPU session.
    pub fn cpu_threaded(spec: DeviceSpec, threads: usize) -> Self {
        Self::Cpu(CpuRepl::launch(
            spec,
            CpuReplConfig {
                mode: CpuMode::Threaded { threads },
                ..Default::default()
            },
        ))
    }

    /// Boots a real-threads CPU session under runaway containment: a
    /// per-command fuel budget, a worker-pool watchdog `reply_deadline`,
    /// and a scripted [`FaultPlan`] (the differential fault harness's
    /// entry point; pass [`FaultPlan::none`] for just the containment).
    pub fn cpu_threaded_contained(
        spec: DeviceSpec,
        threads: usize,
        fuel_budget: u64,
        reply_deadline: Duration,
        fault_plan: FaultPlan,
    ) -> Self {
        Self::Cpu(CpuRepl::launch(
            spec,
            CpuReplConfig {
                interp: InterpConfig {
                    fuel_budget,
                    ..Default::default()
                },
                mode: CpuMode::Threaded { threads },
                reply_deadline,
                fault_plan,
                ..Default::default()
            },
        ))
    }

    /// Boots a GPU session with a scripted [`FaultPlan`] driving its
    /// reply-handshake fault injection (and a per-command fuel budget).
    pub fn gpu_faulted(spec: DeviceSpec, fuel_budget: u64, fault_plan: FaultPlan) -> Self {
        Self::Gpu(GpuRepl::launch(
            spec,
            GpuReplConfig {
                interp: InterpConfig {
                    fuel_budget,
                    ..Default::default()
                },
                fault_plan,
                ..Default::default()
            },
        ))
    }

    /// Boots a server-managed tenant session on `spec` with every
    /// containment knob from `cfg` set at admission: CPU tenants get a
    /// real-threads session whose pool stays *cold* until the server
    /// promotes them (commands route through
    /// [`Session::submit_reference`] until then), GPU tenants get their
    /// own simulated device. Used by `crate::server::SessionServer`.
    pub fn tenant(spec: DeviceSpec, cfg: &TenantSessionConfig) -> Self {
        let interp = InterpConfig {
            fuel_budget: cfg.fuel_budget,
            heap_limit: cfg.heap_limit,
            arena_capacity: cfg.arena_capacity,
            ..Default::default()
        };
        match spec.kind {
            DeviceKind::Gpu => Self::Gpu(GpuRepl::launch(
                spec,
                GpuReplConfig {
                    interp,
                    fault_plan: cfg.fault_plan.clone(),
                    cache: cfg.cache.clone(),
                    ..Default::default()
                },
            )),
            DeviceKind::Cpu => Self::Cpu(CpuRepl::launch(
                spec,
                CpuReplConfig {
                    interp,
                    mode: CpuMode::Threaded {
                        threads: cfg.threads,
                    },
                    reply_deadline: cfg.reply_deadline,
                    fault_plan: cfg.fault_plan.clone(),
                    cache: cfg.cache.clone(),
                    ..Default::default()
                },
            )),
        }
    }

    /// Boots the retained fork-per-section baseline CPU session.
    pub fn cpu_fork_per_section(spec: DeviceSpec, threads: usize) -> Self {
        Self::Cpu(CpuRepl::launch(
            spec,
            CpuReplConfig {
                mode: CpuMode::ForkPerSection { threads },
                ..Default::default()
            },
        ))
    }

    /// The device behind this session.
    pub fn spec(&self) -> DeviceSpec {
        match self {
            Self::Gpu(r) => r.spec(),
            Self::Cpu(r) => r.spec(),
        }
    }

    /// Submits one command line.
    pub fn submit(&mut self, input: &str) -> Result<Reply> {
        match self {
            Self::Gpu(r) => r.submit(input),
            Self::Cpu(r) => r.submit(input),
        }
    }

    /// Submits a stream of commands through the shared
    /// [`culi_runtime_scheduler`]: every backend classifies each command
    /// with the conservative effect analysis in [`culi_core::effects`]
    /// and coalesces maximal runs of stageable `|||` commands.
    /// Real-threads CPU sessions pipeline them through the worker pool's
    /// double-buffered postboxes ([`CpuRepl::submit_batch`]); GPU
    /// sessions batch them into shared command buffers with one
    /// host↔device handshake per run, round-robined across the session's
    /// simulated devices ([`GpuRepl::submit_batch`]); fork-per-section
    /// sessions run the same staging machine over eagerly-executed
    /// sections; modeled CPU sessions run the commands one by one.
    /// Replies always come back in input order and match a `submit` loop.
    ///
    /// [`culi_runtime_scheduler`]: crate::scheduler::BatchScheduler
    pub fn submit_batch(&mut self, inputs: &[&str]) -> Result<Vec<Reply>> {
        match self {
            Self::Gpu(r) => r.submit_batch(inputs),
            Self::Cpu(r) => r.submit_batch(inputs),
        }
    }

    /// Submits one command through the cold route: CPU sessions evaluate
    /// on the master-side sequential reference — byte-identical replies
    /// (output, ok, counters) to the pooled path, but no pool is forked
    /// or consulted ([`CpuRepl::submit_reference`]); GPU sessions have no
    /// shared pool to avoid, so this coincides with [`Session::submit`].
    pub fn submit_reference(&mut self, input: &str) -> Result<Reply> {
        match self {
            Self::Gpu(r) => r.submit_reference(input),
            Self::Cpu(r) => r.submit_reference(input),
        }
    }

    /// Drops warm worker forks (CPU pools), returning the retained
    /// dispatch-buffer bytes freed; the next pooled submit re-warms
    /// transparently. GPU sessions hold no evictable forks (0).
    pub fn release_warm_forks(&mut self) -> usize {
        match self {
            Self::Gpu(r) => r.release_warm_forks(),
            Self::Cpu(r) => r.release_warm_forks(),
        }
    }

    /// Dispatch-buffer bytes retained by warm forks (0 when cold/GPU).
    pub fn retained_warm_bytes(&self) -> usize {
        match self {
            Self::Gpu(_) => 0,
            Self::Cpu(r) => r.retained_warm_bytes(),
        }
    }

    /// `true` while the session holds a warm forked backend.
    pub fn has_warm_forks(&self) -> bool {
        match self {
            Self::Gpu(_) => false,
            Self::Cpu(r) => r.has_warm_forks(),
        }
    }

    /// Graceful stop; returns setup+teardown in ms (the Fig. 14 quantity).
    pub fn shutdown(&mut self) -> f64 {
        match self {
            Self::Gpu(r) => r.shutdown(),
            Self::Cpu(r) => r.shutdown(),
        }
    }

    /// Base latency of `spec`: boot a scratch session, stop it, report ms.
    pub fn measure_base_latency_ms(spec: DeviceSpec) -> f64 {
        let mut s = Self::for_device(spec);
        s.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culi_gpu_sim::device::{all_devices, gtx680, intel_e5_2620};

    #[test]
    fn every_catalog_device_boots_and_evaluates() {
        for spec in all_devices() {
            let mut s = Session::for_device(spec);
            let reply = s.submit("(* 2 (+ 4 3) 6)").unwrap();
            assert_eq!(reply.output, "84", "{}", spec.name);
            s.shutdown();
        }
    }

    #[test]
    fn base_latency_reflects_device_class() {
        let gpu = Session::measure_base_latency_ms(gtx680());
        let cpu = Session::measure_base_latency_ms(intel_e5_2620());
        assert!(gpu / cpu > 10.0, "gpu {gpu} ms vs cpu {cpu} ms");
    }

    #[test]
    fn every_backend_agrees_on_batched_computed_operand_streams() {
        // The effect-classified batch path (pipelined pool on CPU,
        // coalesced command buffers on GPU) must agree with the modeled
        // reference on streams mixing stageable sections and barriers.
        let inputs = [
            "(setq c 2)",
            "(||| 3 + (1 2 3) (list c c c))",
            "(||| (+ 1 2) * (1 2 3) (4 5 6))",
            "(setq c 10)",
            "(||| 2 + (1 2) (list c c))",
        ];
        let mut outputs: Vec<Vec<String>> = Vec::new();
        for mut s in [
            Session::for_device(gtx680()),
            Session::gpu_sharded(gtx680(), 4),
            Session::for_device(intel_e5_2620()),
            Session::cpu_threaded(intel_e5_2620(), 3),
            Session::cpu_fork_per_section(intel_e5_2620(), 3),
        ] {
            let replies = s.submit_batch(&inputs).unwrap();
            assert!(replies.iter().all(|r| r.ok));
            outputs.push(replies.into_iter().map(|r| r.output).collect());
            s.shutdown();
        }
        for other in &outputs[1..] {
            assert_eq!(&outputs[0], other);
        }
        assert_eq!(outputs[0][4], "(11 12)");
    }

    #[test]
    fn gpu_and_cpu_agree_on_results() {
        let prog = "(defun sq (x) (* x x))";
        let call = "(||| 5 sq (1 2 3 4 5))";
        let mut outputs = Vec::new();
        for spec in all_devices() {
            let mut s = Session::for_device(spec);
            s.submit(prog).unwrap();
            outputs.push(s.submit(call).unwrap().output);
        }
        assert!(outputs.iter().all(|o| o == "(1 4 9 16 25)"), "{outputs:?}");
    }
}
