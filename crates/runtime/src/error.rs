//! Runtime errors: interpreter failures plus device-simulation failures.

use core::fmt;
use culi_core::{CuliError, ErrorCode};
use culi_gpu_sim::SimError;

/// Anything that can stop a REPL session.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The interpreter rejected the input or failed evaluating it.
    Lisp(CuliError),
    /// The simulated device failed — livelock or protocol violation.
    Device(SimError),
    /// The session was already shut down.
    SessionClosed,
}

impl RuntimeError {
    /// The stable [`ErrorCode`] this error classifies under — the shared
    /// code space unifying interpreter, runtime and device errors (see
    /// [`culi_core::ErrorCode`]).
    pub fn code(&self) -> ErrorCode {
        match self {
            Self::Lisp(e) => e.code(),
            Self::Device(_) => ErrorCode::Device,
            Self::SessionClosed => ErrorCode::Closed,
        }
    }

    /// `true` for failures of the *infrastructure* rather than the user's
    /// program: backend/device errors the scheduler may retry or degrade
    /// around without changing user-visible results. User-program errors
    /// (wrong types, division by zero, fuel/heap limits) are never
    /// retried — they are deterministic properties of the command and the
    /// sequential reference reproduces them identically.
    pub fn is_degradable(&self) -> bool {
        matches!(self.code(), ErrorCode::Device)
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lisp(e) => write!(f, "lisp error: {e}"),
            Self::Device(e) => write!(f, "device error: {e}"),
            Self::SessionClosed => write!(f, "session already closed"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<CuliError> for RuntimeError {
    fn from(e: CuliError) -> Self {
        Self::Lisp(e)
    }
}

impl From<SimError> for RuntimeError {
    fn from(e: SimError) -> Self {
        Self::Device(e)
    }
}

/// Runtime result alias.
pub type Result<T> = core::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let l: RuntimeError = CuliError::DivByZero.into();
        assert!(l.to_string().contains("division"));
        let d: RuntimeError = SimError::KernelStopped.into();
        assert!(d.to_string().contains("kernel"));
        assert!(RuntimeError::SessionClosed.to_string().contains("closed"));
    }

    #[test]
    fn codes_unify_the_three_error_layers() {
        let l: RuntimeError = CuliError::DivByZero.into();
        assert_eq!(l.code(), ErrorCode::User);
        assert!(!l.is_degradable());
        let f: RuntimeError = CuliError::FuelExhausted { budget: 9 }.into();
        assert_eq!(f.code(), ErrorCode::Fuel);
        assert!(!f.is_degradable());
        let b: RuntimeError = CuliError::Backend("worker panicked".into()).into();
        assert_eq!(b.code(), ErrorCode::Device);
        assert!(b.is_degradable());
        let d: RuntimeError = SimError::ReplyDropped.into();
        assert_eq!(d.code(), ErrorCode::Device);
        assert!(d.is_degradable());
        assert_eq!(RuntimeError::SessionClosed.code(), ErrorCode::Closed);
        assert!(!RuntimeError::SessionClosed.is_degradable());
    }
}
