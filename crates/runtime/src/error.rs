//! Runtime errors: interpreter failures plus device-simulation failures.

use core::fmt;
use culi_core::CuliError;
use culi_gpu_sim::SimError;

/// Anything that can stop a REPL session.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The interpreter rejected the input or failed evaluating it.
    Lisp(CuliError),
    /// The simulated device failed — livelock or protocol violation.
    Device(SimError),
    /// The session was already shut down.
    SessionClosed,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lisp(e) => write!(f, "lisp error: {e}"),
            Self::Device(e) => write!(f, "device error: {e}"),
            Self::SessionClosed => write!(f, "session already closed"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<CuliError> for RuntimeError {
    fn from(e: CuliError) -> Self {
        Self::Lisp(e)
    }
}

impl From<SimError> for RuntimeError {
    fn from(e: SimError) -> Self {
        Self::Device(e)
    }
}

/// Runtime result alias.
pub type Result<T> = core::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let l: RuntimeError = CuliError::DivByZero.into();
        assert!(l.to_string().contains("division"));
        let d: RuntimeError = SimError::KernelStopped.into();
        assert!(d.to_string().contains("kernel"));
        assert!(RuntimeError::SessionClosed.to_string().contains("closed"));
    }
}
