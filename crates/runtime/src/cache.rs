//! The structural-hash command cache: memoization for repeated traffic.
//!
//! Production command streams are heavily repetitive — many tenants
//! submit the same preludes, defuns and query shapes — yet every arrival
//! used to pay full classification and dispatch-encoding costs again.
//! [`CommandCache`] memoizes three tiers, keyed on the
//! [`culi_core::structhash::StructKey`] of the parsed trees (never on
//! `NodeId`s, which differ on every re-parse):
//!
//! 1. **Verdict tier** — the [`crate::BatchClassifier`] outcome
//!    (stageable or barrier) per command shape. The classifier resolves
//!    head symbols against the live global environment, so the key also
//!    carries a **classifier fingerprint**: a fold over the env
//!    sync-epoch log's records (symbol bytes + structural hash of the
//!    bound value). Two interpreters with the same mutation history —
//!    e.g. tenants that ran the same prelude — produce the same
//!    fingerprint, so verdict entries are shared across tenants; any
//!    redefinition changes the fingerprint and retires the old verdicts.
//! 2. **Template tier** — pre-encoded [`culi_core::postbox::TreeTemplate`]
//!    job payloads, spliced into the worker pool's dispatch buffers at
//!    `stage_run` time instead of re-walking the job trees
//!    ([`culi_core::postbox::FlatTree::push_template`] is byte-identical
//!    to a fresh encode). Job trees embed their resolved operands, so
//!    this tier keys on tree shape alone and is shared across tenants.
//! 3. **Reply tier** — whole replies for classified-pure commands, keyed
//!    on (structural hash, source text, **env sync epoch**). Any epoch
//!    advance — every `define`/`set` bumps it — invalidates the entry:
//!    lookups require an exact epoch match and drop entries recorded
//!    against an older epoch on sight, so a stale reply is never served
//!    (the proptest suite interleaves defines between repeats to prove
//!    it). Epochs and environments are tenant-private, so this tier is
//!    **strictly per-tenant**: [`CommandCache::tenant_view`] shares the
//!    verdict/template stores but gives each tenant its own reply store.
//!
//! # Charge-exactness guarantee
//!
//! Meter charges on every served-from-cache path are bit-identical to
//! the uncached run (the differential harness runs a cache-on arm):
//!
//! * Key hashing is charge-free by construction
//!   ([`culi_core::structhash`] reads the arena without metering).
//! * Verdict hits skip only the classifier walk, which was never metered.
//! * Template hits skip only the dispatch encode, which is deliberately
//!   unmetered (transfer is modeled at the simulated-device layer).
//! * Reply hits require the *source text* to match byte-for-byte (not
//!   just the structure), so the cached counters — parse included — are
//!   the counters the uncached run would recompute; the reply is served
//!   as a clone with fresh wall-clock time only.
//!
//! A hash collision (two shapes, one hash bucket) is caught by the
//! injective canonical encoding: every probe compares
//! [`culi_core::structhash::StructKey::canon`] byte-for-byte before
//! trusting an entry. Tests force collisions by narrowing the hash with
//! [`CacheConfig::hash_mask`] and assert no wrong reply is ever served.
//!
//! # Bounded memory
//!
//! Each store evicts least-recently-used entries under a byte budget —
//! the worker pool's `RETAINED_MSG_BYTES` discipline applied to cache
//! retention. Hit/miss/evict counters per tier surface in
//! [`crate::server::SessionServer::server_stats`].

use crate::reply::Reply;
use culi_core::postbox::{FlatTree, TreeTemplate};
use culi_core::structhash::StructKey;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Bucket keys are (masked) structural hashes — already high-quality
/// 64-bit mixes — so the bucket map only needs a cheap finalizer, not a
/// keyed byte hasher.
#[derive(Default)]
struct PrehashedKey(u64);

impl std::hash::Hasher for PrehashedKey {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type Prehashed = std::hash::BuildHasherDefault<PrehashedKey>;

/// Tuning for one [`CommandCache`]. `Default` suits tests and moderate
/// fleets; the bench scales budgets with stream size.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Byte budget of the shared verdict + template stores.
    pub shared_byte_budget: usize,
    /// Byte budget of each tenant view's private reply store.
    pub reply_byte_budget: usize,
    /// Mask applied to structural hashes before bucketing. `u64::MAX`
    /// for production; tests narrow it (down to `0`) to force bucket
    /// collisions and exercise the full-compare fallback.
    pub hash_mask: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            shared_byte_budget: 4 * crate::pool::WorkerPool::RETAINED_MSG_BYTES,
            reply_byte_budget: crate::pool::WorkerPool::RETAINED_MSG_BYTES,
            hash_mask: u64::MAX,
        }
    }
}

/// Hit/miss/evict counters for one tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Probes served from the tier.
    pub hits: u64,
    /// Probes that fell through to the uncached path.
    pub misses: u64,
    /// Entries evicted under the byte budget (epoch-invalidated reply
    /// entries count here too — they are dropped, not served).
    pub evictions: u64,
}

impl TierStats {
    fn add(&mut self, other: &TierStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// Counters for all three tiers ([`CommandCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Classification-verdict tier.
    pub verdict: TierStats,
    /// Staged-run template tier.
    pub template: TierStats,
    /// Whole-reply tier (aggregated across every tenant view).
    pub reply: TierStats,
}

/// One stored entry: the full key for the collision check, extra key
/// dimensions (fingerprint or epoch), the value and LRU bookkeeping.
#[derive(Debug)]
struct Entry<V> {
    key: StructKey,
    /// Verdict tier: classifier fingerprint. Reply tier: env sync epoch.
    /// Template tier: unused (0).
    extra: u64,
    value: V,
    touched: u64,
    bytes: usize,
}

/// One bounded LRU store bucketed on the masked structural hash.
#[derive(Debug)]
struct Store<V> {
    buckets: HashMap<u64, Vec<Entry<V>>, Prehashed>,
    bytes: usize,
    budget: usize,
    mask: u64,
    clock: u64,
    stats: TierStats,
    /// Epoch of the last [`Store::retire_stale`] sweep. The reply tier
    /// sweeps on every probe; this tag makes the no-advance case O(1).
    swept_epoch: u64,
}

impl<V> Store<V> {
    fn new(budget: usize, mask: u64) -> Self {
        Self {
            buckets: HashMap::default(),
            bytes: 0,
            budget,
            mask,
            clock: 0,
            stats: TierStats::default(),
            swept_epoch: 0,
        }
    }

    /// Finds the entry matching `(key, extra)` — full canonical compare,
    /// never hash-trust — touching it on hit. The miss is *not* counted
    /// here; callers count exactly one hit or miss per probe.
    fn lookup(&mut self, key: &StructKey, extra: u64) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        let bucket = self.buckets.get_mut(&key.masked(self.mask))?;
        let e = bucket
            .iter_mut()
            .find(|e| e.extra == extra && e.key.tree_equal(key))?;
        e.touched = clock;
        Some(&e.value)
    }

    /// Inserts (or replaces) the entry for `(key, extra)`, then evicts
    /// LRU entries until the byte budget holds again.
    fn insert(&mut self, key: StructKey, extra: u64, value: V, value_bytes: usize) {
        self.clock += 1;
        let bytes = key.retained_bytes() + value_bytes + 64;
        let bucket = self.buckets.entry(key.masked(self.mask)).or_default();
        if let Some(pos) = bucket
            .iter()
            .position(|e| e.extra == extra && e.key.tree_equal(&key))
        {
            self.bytes -= bucket[pos].bytes;
            bucket.remove(pos);
        }
        bucket.push(Entry {
            key,
            extra,
            value,
            touched: self.clock,
            bytes,
        });
        self.bytes += bytes;
        if self.bytes > self.budget {
            self.evict_to(self.budget - self.budget / 4);
        }
    }

    /// Batched LRU eviction with hysteresis: one sort of (recency, size)
    /// pairs finds the touch-clock cutoff below which entries must go to
    /// reach `target` bytes, then a single retain pass drops them in
    /// place. Evicting a quarter of the budget per sweep amortizes the
    /// scan — cold all-distinct traffic pays O(log n) per insert instead
    /// of a full scan per evicted entry. The newest entry always
    /// survives, even oversized.
    fn evict_to(&mut self, target: usize) {
        let mut ages: Vec<(u64, usize)> = self
            .buckets
            .values()
            .flat_map(|b| b.iter().map(|e| (e.touched, e.bytes)))
            .collect();
        ages.sort_unstable_by_key(|&(touched, _)| touched);
        let mut excess = self.bytes.saturating_sub(target);
        let mut drop_count = 0usize;
        for &(_, bytes) in &ages {
            if excess == 0 {
                break;
            }
            excess = excess.saturating_sub(bytes);
            drop_count += 1;
        }
        drop_count = drop_count.min(ages.len().saturating_sub(1));
        if drop_count == 0 {
            return;
        }
        // Touch clocks are unique (every lookup/insert ticks the clock),
        // so the cutoff selects exactly the `drop_count` oldest entries.
        let cutoff = ages[drop_count - 1].0;
        let mut freed = 0usize;
        let mut dropped = 0u64;
        for bucket in self.buckets.values_mut() {
            bucket.retain(|e| {
                if e.touched <= cutoff {
                    freed += e.bytes;
                    dropped += 1;
                    false
                } else {
                    true
                }
            });
        }
        self.buckets.retain(|_, b| !b.is_empty());
        self.bytes -= freed;
        self.stats.evictions += dropped;
    }

    /// Drops every entry whose `extra` (epoch) is not `current`,
    /// counting them as evictions. The reply tier calls this on every
    /// probe so stale entries never survive an epoch advance; the sweep
    /// tag makes the (overwhelmingly common) no-advance case free.
    fn retire_stale(&mut self, current: u64) {
        if current == self.swept_epoch {
            return;
        }
        self.swept_epoch = current;
        let mut dropped = 0u64;
        for bucket in self.buckets.values_mut() {
            bucket.retain(|e| {
                if e.extra == current {
                    true
                } else {
                    self.bytes -= e.bytes;
                    dropped += 1;
                    false
                }
            });
        }
        self.buckets.retain(|_, b| !b.is_empty());
        self.stats.evictions += dropped;
    }

    fn retained_bytes(&self) -> usize {
        self.bytes
    }
}

/// A reply-tier store decision deferred from classify time (where the
/// key, source text and epoch are in hand) to reply time (where success
/// is known). Repls keep these per batch slot and consume them only for
/// `Ok` replies.
#[derive(Debug)]
pub(crate) struct ReplyTicket {
    pub(crate) key: StructKey,
    pub(crate) text: String,
    pub(crate) epoch: u64,
}

/// Lazily folds the env sync log into the verdict tier's classifier
/// fingerprint: a FNV-1a fold over every logged mutation's kind, target
/// environment, symbol bytes and bound-value structural hash. Two
/// interpreters with the same post-boot mutation history fold to the
/// same fingerprint (so verdict entries shared through a
/// [`CommandCache::tenant_view`] hit across tenants); any divergence —
/// including the same symbol bound to a different value — changes it.
#[derive(Debug)]
pub(crate) struct FingerprintTracker {
    /// Sync epoch up to which the log has been folded.
    epoch: u64,
    /// Running fold over the records below `epoch`.
    hash: u64,
    /// Set when a folded record's value tree was already collected (its
    /// structure is unrecoverable): the fingerprint no longer describes
    /// the environment, so verdict caching is disabled for this session.
    poisoned: bool,
}

impl FingerprintTracker {
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;

    pub(crate) fn new() -> Self {
        Self {
            epoch: 0,
            hash: Self::SEED,
            poisoned: false,
        }
    }

    fn fold(h: u64, bytes: &[u8]) -> u64 {
        bytes.iter().fold(h, |h, &b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        })
    }

    /// The fingerprint for the interpreter's current environment state,
    /// folding any sync records logged since the last call.
    /// `classifier_tag` discriminates classifier flavours whose verdicts
    /// must not share entries. `None` once poisoned (callers fall back
    /// to uncached classification, which is always sound).
    pub(crate) fn fingerprint(
        &mut self,
        interp: &culi_core::Interp,
        classifier_tag: u8,
    ) -> Option<u64> {
        if self.poisoned {
            return None;
        }
        for r in interp.envs.sync_records_since(self.epoch) {
            if !interp.arena.is_live(r.value) {
                self.poisoned = true;
                return None;
            }
            let mut h = Self::fold(
                self.hash,
                &[match r.kind {
                    culi_core::env::SyncKind::Define => 0xD0,
                    culi_core::env::SyncKind::Set => 0x5E,
                }],
            );
            h = Self::fold(h, &(r.env.index() as u32).to_le_bytes());
            let sym = interp.strings.get(r.sym);
            h = Self::fold(h, &(sym.len() as u32).to_le_bytes());
            h = Self::fold(h, sym);
            h = Self::fold(h, &StructKey::of(interp, r.value).hash.to_le_bytes());
            self.hash = h;
        }
        self.epoch = interp.envs.sync_epoch();
        Some(Self::fold(self.hash, &[classifier_tag]))
    }
}

/// A cached reply plus the exact source text it was recorded for (the
/// charge-exactness condition: same bytes in, same counters out).
#[derive(Debug)]
struct ReplyEntry {
    text: String,
    reply: Reply,
}

/// The verdict/template stores shared by every tenant view.
#[derive(Debug)]
struct SharedTiers {
    verdict: Store<bool>,
    template: Store<TreeTemplate>,
}

/// Handle to the command cache. Cloning shares everything; a
/// [`CommandCache::tenant_view`] shares the verdict/template tiers but
/// holds its own private reply tier (see the module docs for why). An
/// `Option<CommandCache>` of `None` in a repl config disables caching
/// entirely — the uncached paths are untouched.
#[derive(Debug, Clone)]
pub struct CommandCache {
    shared: Arc<Mutex<SharedTiers>>,
    reply: Arc<Mutex<Store<ReplyEntry>>>,
    /// Reply-tier stats aggregated across every tenant view.
    reply_stats: Arc<Mutex<TierStats>>,
    config: CacheConfig,
}

impl CommandCache {
    /// A fresh cache with its own stores.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            shared: Arc::new(Mutex::new(SharedTiers {
                verdict: Store::new(config.shared_byte_budget / 2, config.hash_mask),
                template: Store::new(config.shared_byte_budget / 2, config.hash_mask),
            })),
            reply: Arc::new(Mutex::new(Store::new(
                config.reply_byte_budget,
                config.hash_mask,
            ))),
            reply_stats: Arc::new(Mutex::new(TierStats::default())),
            config,
        }
    }

    /// A tenant's view: verdict/template tiers shared with `self`, reply
    /// tier private (tenant epochs and environments are not comparable).
    pub fn tenant_view(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
            reply: Arc::new(Mutex::new(Store::new(
                self.config.reply_byte_budget,
                self.config.hash_mask,
            ))),
            reply_stats: Arc::clone(&self.reply_stats),
            config: self.config.clone(),
        }
    }

    /// Cached classification verdict for `(key, fingerprint)`.
    pub fn verdict_lookup(&self, key: &StructKey, fingerprint: u64) -> Option<bool> {
        let mut shared = self.shared.lock().expect("cache lock");
        match shared.verdict.lookup(key, fingerprint).copied() {
            Some(v) => {
                shared.verdict.stats.hits += 1;
                Some(v)
            }
            None => {
                shared.verdict.stats.misses += 1;
                None
            }
        }
    }

    /// Records a classification verdict.
    pub fn verdict_insert(&self, key: StructKey, fingerprint: u64, stageable: bool) {
        let mut shared = self.shared.lock().expect("cache lock");
        shared.verdict.insert(key, fingerprint, stageable, 1);
    }

    /// Cached pre-encoded job template for `key` (cloned out; splicing
    /// happens under no lock).
    pub fn template_lookup(&self, key: &StructKey) -> Option<TreeTemplate> {
        let mut shared = self.shared.lock().expect("cache lock");
        match shared.template.lookup(key, 0).cloned() {
            Some(t) => {
                shared.template.stats.hits += 1;
                Some(t)
            }
            None => {
                shared.template.stats.misses += 1;
                None
            }
        }
    }

    /// Splices the cached job template for `key` directly into `into`
    /// under the store lock — the hot-path variant of
    /// [`CommandCache::template_lookup`], sparing the clone-out of the
    /// template's buffers. Returns `true` on hit.
    pub fn template_splice(&self, key: &StructKey, into: &mut FlatTree) -> bool {
        let mut shared = self.shared.lock().expect("cache lock");
        match shared.template.lookup(key, 0) {
            Some(t) => {
                into.push_template(t);
                shared.template.stats.hits += 1;
                true
            }
            None => {
                shared.template.stats.misses += 1;
                false
            }
        }
    }

    /// Records a job template.
    pub fn template_insert(&self, key: StructKey, template: TreeTemplate) {
        let bytes = template.retained_bytes();
        let mut shared = self.shared.lock().expect("cache lock");
        shared.template.insert(key, 0, template, bytes);
    }

    /// Cached whole reply for `(key, text, epoch)`. Entries recorded
    /// against any other epoch are retired on sight — a reply never
    /// survives an env epoch advance. The returned clone carries the
    /// recorded counters (bit-identical by the source-text condition);
    /// the caller refreshes wall-clock time.
    pub fn reply_lookup(&self, key: &StructKey, text: &str, epoch: u64) -> Option<Reply> {
        let mut store = self.reply.lock().expect("cache lock");
        store.retire_stale(epoch);
        let hit = store
            .lookup(key, epoch)
            .filter(|e| e.text == text)
            .map(|e| e.reply.clone());
        let stale_evictions = std::mem::take(&mut store.stats.evictions);
        drop(store);
        let mut stats = self.reply_stats.lock().expect("cache lock");
        stats.evictions += stale_evictions;
        match hit {
            Some(r) => {
                stats.hits += 1;
                Some(r)
            }
            None => {
                stats.misses += 1;
                None
            }
        }
    }

    /// Records a classified-pure command's reply against `epoch`.
    pub fn reply_insert(&self, key: StructKey, text: &str, epoch: u64, reply: Reply) {
        let bytes = text.len() + reply.output.len() + std::mem::size_of::<Reply>();
        let mut store = self.reply.lock().expect("cache lock");
        store.retire_stale(epoch);
        store.insert(
            key,
            epoch,
            ReplyEntry {
                text: text.to_string(),
                reply,
            },
            bytes,
        );
        let stale_evictions = std::mem::take(&mut store.stats.evictions);
        drop(store);
        self.reply_stats.lock().expect("cache lock").evictions += stale_evictions;
    }

    /// Point-in-time counters for all tiers. Verdict/template counters
    /// are the shared stores'; reply counters aggregate every view.
    pub fn stats(&self) -> CacheStats {
        let shared = self.shared.lock().expect("cache lock");
        let mut reply = *self.reply_stats.lock().expect("cache lock");
        reply.add(&TierStats::default());
        CacheStats {
            verdict: shared.verdict.stats,
            template: shared.template.stats,
            reply,
        }
    }

    /// Bytes retained right now: shared stores plus this view's reply
    /// store (other views' reply stores are theirs to report).
    pub fn retained_bytes(&self) -> usize {
        let shared = self.shared.lock().expect("cache lock");
        shared.verdict.retained_bytes()
            + shared.template.retained_bytes()
            + self.reply.lock().expect("cache lock").retained_bytes()
    }

    /// The configured hash mask (propagated to key probes by callers
    /// that precompute masked buckets; tests narrow it).
    pub fn hash_mask(&self) -> u64 {
        self.config.hash_mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culi_core::{Interp, InterpConfig};

    fn key_of(src: &str) -> StructKey {
        let mut interp = Interp::new(InterpConfig::default());
        let forms = culi_core::parser::parse(&mut interp, src.as_bytes()).unwrap();
        StructKey::of_forms(&interp, &forms)
    }

    fn reply(text: &str) -> Reply {
        Reply {
            output: text.to_string(),
            ok: true,
            ..Default::default()
        }
    }

    #[test]
    fn reply_tier_hits_on_exact_text_and_epoch() {
        let cache = CommandCache::new(CacheConfig::default());
        let key = key_of("(+ 1 2)");
        assert!(cache.reply_lookup(&key, "(+ 1 2)", 5).is_none());
        cache.reply_insert(key.clone(), "(+ 1 2)", 5, reply("3"));
        let hit = cache.reply_lookup(&key, "(+ 1 2)", 5).expect("hit");
        assert_eq!(hit.output, "3");
        // Same structure, different source bytes: miss (charge-exactness
        // would otherwise break on whitespace-different parses).
        assert!(cache.reply_lookup(&key, "(+ 1  2)", 5).is_none());
    }

    #[test]
    fn reply_entries_never_survive_an_epoch_advance() {
        let cache = CommandCache::new(CacheConfig::default());
        let key = key_of("(+ 1 2)");
        cache.reply_insert(key.clone(), "(+ 1 2)", 5, reply("3"));
        // The advance itself retires the entry...
        assert!(cache.reply_lookup(&key, "(+ 1 2)", 6).is_none());
        // ...so even going back to the old epoch number cannot revive it.
        assert!(cache.reply_lookup(&key, "(+ 1 2)", 5).is_none());
        let stats = cache.stats();
        assert!(stats.reply.evictions >= 1);
        assert_eq!(stats.reply.hits, 0);
    }

    #[test]
    fn forced_hash_collision_falls_back_to_full_compare() {
        // mask 0: every key lands in one bucket.
        let cache = CommandCache::new(CacheConfig {
            hash_mask: 0,
            ..Default::default()
        });
        let a = key_of("(+ 1 2)");
        let b = key_of("(* 9 9)");
        assert_eq!(a.masked(0), b.masked(0), "collision must be forced");
        cache.reply_insert(a.clone(), "(+ 1 2)", 1, reply("3"));
        cache.reply_insert(b.clone(), "(* 9 9)", 1, reply("81"));
        // Both live in the same bucket; each probe still finds only its
        // own entry via the canonical compare.
        assert_eq!(cache.reply_lookup(&a, "(+ 1 2)", 1).unwrap().output, "3");
        assert_eq!(cache.reply_lookup(&b, "(* 9 9)", 1).unwrap().output, "81");
        cache.verdict_insert(a.clone(), 7, true);
        assert_eq!(cache.verdict_lookup(&a, 7), Some(true));
        assert_eq!(cache.verdict_lookup(&b, 7), None, "no false sharing");
    }

    #[test]
    fn verdict_tier_is_fingerprint_scoped_and_shared_across_views() {
        let cache = CommandCache::new(CacheConfig::default());
        let view_a = cache.tenant_view();
        let view_b = cache.tenant_view();
        let key = key_of("(||| 2 + (1 2) (3 4))");
        view_a.verdict_insert(key.clone(), 42, true);
        // Same fingerprint (same prelude history): shared across tenants.
        assert_eq!(view_b.verdict_lookup(&key, 42), Some(true));
        // Different fingerprint (diverged env): not shared.
        assert_eq!(view_b.verdict_lookup(&key, 43), None);
        // Reply tier is NOT shared between views.
        view_a.reply_insert(key.clone(), "x", 1, reply("r"));
        assert!(view_b.reply_lookup(&key, "x", 1).is_none());
        assert!(view_a.reply_lookup(&key, "x", 1).is_some());
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let cache = CommandCache::new(CacheConfig {
            reply_byte_budget: 600,
            ..Default::default()
        });
        let keys: Vec<StructKey> = (0..8).map(|k| key_of(&format!("(+ {k} {k})"))).collect();
        for (k, key) in keys.iter().enumerate() {
            cache.reply_insert(key.clone(), &format!("(+ {k} {k})"), 1, reply("x"));
        }
        let stats = cache.stats();
        assert!(stats.reply.evictions >= 1, "budget must have evicted");
        assert!(cache.retained_bytes() <= 600, "budget held");
        // The most recent key survived; the oldest was evicted.
        assert!(cache.reply_lookup(&keys[7], "(+ 7 7)", 1).is_some());
        assert!(cache.reply_lookup(&keys[0], "(+ 0 0)", 1).is_none());
    }
}
