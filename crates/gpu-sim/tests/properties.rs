//! Property-based tests for the machine models.

use culi_gpu_sim::device::{amd_6272, gtx1080, intel_e5_2620, tesla_c2075};
use culi_gpu_sim::{CpuMachine, JobSlot, KernelConfig, PersistentKernel, PostboxArray};
use proptest::prelude::*;

proptest! {
    /// Section reports obey structural invariants for arbitrary job mixes.
    #[test]
    fn gpu_section_invariants(jobs in prop::collection::vec(1u64..200_000, 1..600)) {
        let spec = gtx1080();
        let mut k = PersistentKernel::launch(spec, KernelConfig::default());
        let workers = k.worker_count();
        let r = k.parallel_section(&jobs).unwrap();

        // Execution covers at least the heaviest job plus protocol floor.
        let max_job = *jobs.iter().max().unwrap();
        prop_assert!(r.execute_cycles >= max_job, "{} < {max_job}", r.execute_cycles);

        // Rounds are exactly ceil(jobs / workers).
        prop_assert_eq!(r.rounds as usize, jobs.len().div_ceil(workers));

        // Distribution is one deposit per job plus one flag per touched
        // block (lower bound: job count × job_write).
        prop_assert!(r.distribute_cycles >= jobs.len() as u64 * spec.costs.job_write);
        prop_assert_eq!(r.collect_cycles, jobs.len() as u64 * spec.costs.job_collect);

        // Blocks used fit the warp arithmetic.
        let first_round = jobs.len().min(workers);
        prop_assert!(r.blocks_used as usize >= first_round.div_ceil(32));

        // Stats agree with the workload.
        let stats = k.stats();
        prop_assert_eq!(stats.jobs_executed, jobs.len() as u64);
        prop_assert!(stats.atomic_ops >= 6 * jobs.len() as u64, "6 atomics per job minimum");
    }

    /// More/heavier jobs never reduce section time (monotonicity).
    #[test]
    fn gpu_section_monotone(jobs in prop::collection::vec(1u64..50_000, 1..200), extra in 1u64..50_000) {
        let mut a = PersistentKernel::launch(tesla_c2075(), KernelConfig::default());
        let base = a.parallel_section(&jobs).unwrap().total_cycles();
        let mut grown = jobs.clone();
        grown.push(extra);
        let mut b = PersistentKernel::launch(tesla_c2075(), KernelConfig::default());
        let bigger = b.parallel_section(&grown).unwrap().total_cycles();
        prop_assert!(bigger >= base, "{bigger} < {base}");
    }

    /// CPU list scheduling: makespan is bounded below by max(job) and
    /// sum/cores, and above by the greedy 2-approximation bound.
    #[test]
    fn cpu_makespan_bounds(jobs in prop::collection::vec(1u64..100_000, 1..300)) {
        for spec in [intel_e5_2620(), amd_6272()] {
            let cores = spec.sm_count as u64;
            let mut m = CpuMachine::launch(spec);
            let r = m.parallel_section(&jobs).unwrap();
            let max_job = *jobs.iter().max().unwrap();
            let total: u64 = jobs.iter().sum();
            let lower = max_job.max(total.div_ceil(cores));
            prop_assert!(r.execute_cycles >= lower, "{} < {lower}", r.execute_cycles);
            // Greedy list scheduling ≤ avg-load + max-job.
            prop_assert!(
                r.execute_cycles <= total.div_ceil(cores) + max_job,
                "{} too big", r.execute_cycles
            );
        }
    }

    /// Without the block flag, livelock occurs iff some block gets a
    /// partial warp (pre-Volta).
    #[test]
    fn partial_warp_livelock_is_exact(njobs in 1usize..2048) {
        let cfg = KernelConfig { block_sync_flag: false, ..Default::default() };
        let mut k = PersistentKernel::launch(gtx1080(), cfg);
        let workers = k.worker_count();
        let result = k.parallel_section(&vec![100; njobs]);
        // Jobs fill blocks front-to-back; a partial warp exists iff the
        // last (or only) round's job count is not a multiple of 32.
        let mut remaining = njobs;
        let mut expect_livelock = false;
        while remaining > 0 {
            let round = remaining.min(workers);
            if round % 32 != 0 {
                expect_livelock = true;
                break;
            }
            remaining -= round;
        }
        prop_assert_eq!(result.is_err(), expect_livelock, "njobs={}", njobs);
    }

    /// Postboxes never lose or duplicate jobs under arbitrary
    /// deposit/complete interleavings.
    #[test]
    fn postboxes_conserve_jobs(order in prop::collection::vec(0usize..64, 1..200)) {
        let mut arr = PostboxArray::new(64);
        let mut live = std::collections::HashSet::new();
        let mut next_job = 0u32;
        for &t in &order {
            if live.contains(&t) {
                let done = arr.complete(t).expect("live slot must hold a job");
                prop_assert!(live.remove(&t));
                prop_assert!(done.job < next_job);
            } else {
                arr.deposit(t, JobSlot { job: next_job, cycles: 1 });
                next_job += 1;
                live.insert(t);
            }
        }
        for t in 0..64 {
            prop_assert_eq!(arr.peek(t).io.is_some(), live.contains(&t));
        }
    }
}
