//! # culi-gpu-sim — deterministic machine models for CuLi
//!
//! The paper ran CuLi on six NVIDIA GPUs and two x86 hosts. This crate is
//! the stand-in for that hardware: a deterministic simulation of the
//! persistent-kernel execution structure (warp-sized blocks, postbox
//! signalling, block barriers, busy-wait loops, SM scheduling) plus
//! per-device cost models that convert interpreter operation counts into
//! simulated time.
//!
//! What is *mechanical* here — not estimated:
//! * the host↔device command-buffer handshake ([`cmdbuf`], paper Figs. 8/9);
//! * the postbox protocol and its atomic traffic ([`postbox`], Figs. 10/11);
//! * the Algorithm-1 choreography, including both warp-divergence
//!   livelocks and the two mitigations that prevent them ([`kernel`],
//!   Figs. 12/13);
//! * multi-round distribution when jobs exceed the grid.
//!
//! What is *modelled*: time. Each device carries a calibrated cycle price
//! per primitive operation ([`device::CostTable`]); phase durations are
//! exact functions of exact operation counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cmdbuf;
pub mod cpu;
pub mod device;
pub mod error;
pub mod kernel;
pub mod postbox;
pub mod stats;

pub use cpu::CpuMachine;
pub use device::{
    all_cpus, all_devices, all_gpus, device_by_name, Arch, CostTable, DeviceKind, DeviceSpec,
};
pub use error::{LivelockCause, SimError};
pub use kernel::{KernelConfig, PersistentKernel, SectionReport};
pub use postbox::{JobSlot, Postbox, PostboxArray};
pub use stats::SimStats;
