//! The persistent CuLi kernel (paper §III-C/D), simulated.
//!
//! One grid of warp-sized blocks is launched once and lives until the REPL
//! terminates. Thread (0,0) is the *master*: it runs parse/eval/print and
//! distributes `|||` work through the postboxes. All other threads are
//! *workers* executing Algorithm 1: barrier → spin on the block sync flag →
//! evaluate own job if any → barrier → lane 0 resets the flag → repeat.
//!
//! ## Timing model
//!
//! The simulation is block-granular, which is exact here because the paper
//! fixes the block size to one warp: a block's threads move in lockstep
//! outside the (data-dependent) evaluation, and a warp's evaluation time is
//! the maximum over its lanes. Blocks are statically resident
//! (`block % sm_count` picks the SM, as a persistent kernel's blocks never
//! migrate); blocks sharing an SM serialize their evaluation phases, since
//! interpreter evaluation is issue-bound, giving the
//! plateau-then-linear runtime growth of paper Fig. 15.
//!
//! ## Livelock semantics
//!
//! Two configuration switches reproduce the paper's warp-divergence
//! hazards (§III-D d) as *mechanical* outcomes:
//!
//! * [`KernelConfig::mask_master_block`] **off** → any job assigned to a
//!   block-0 worker can never finish: those workers wait at
//!   `threadBlockBarrier` for the master, which never joins (it is busy
//!   being the REPL), so the master in turn spins forever on their sync
//!   flags (paper Fig. 12).
//! * [`KernelConfig::block_sync_flag`] **off** → a block whose warp holds
//!   a mix of jobbed and jobless threads livelocks: the jobless lanes
//!   busy-wait on their own `work` flags, and a pre-Volta warp executes one
//!   divergent path at a time, so the spinning group starves the group
//!   holding jobs (paper Fig. 13 / Alg. 1, "a number of workers unequal to
//!   a multiple of 32" is prohibited).

use crate::device::DeviceSpec;
use crate::error::{LivelockCause, SimError};
use crate::postbox::{JobSlot, PostboxArray};
use crate::stats::SimStats;

/// Toggleable mitigations; both default to the paper's (working) design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Disable the non-master threads of block 0 (paper Fig. 12).
    pub mask_master_block: bool,
    /// Use the per-block synchronization flag (paper Fig. 13 / Alg. 1).
    pub block_sync_flag: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            mask_master_block: true,
            block_sync_flag: true,
        }
    }
}

/// Cycle breakdown of one `|||` section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionReport {
    /// Master writing postboxes and setting block flags.
    pub distribute_cycles: u64,
    /// Worker evaluation (max over SM queues), including wake/barrier
    /// overhead.
    pub execute_cycles: u64,
    /// Master polling sync flags and collecting results.
    pub collect_cycles: u64,
    /// Distribution rounds (jobs may exceed the grid's worker count).
    pub rounds: u32,
    /// Worker blocks that received at least one job.
    pub blocks_used: u32,
}

impl SectionReport {
    /// Total device cycles the section occupied.
    pub fn total_cycles(&self) -> u64 {
        self.distribute_cycles + self.execute_cycles + self.collect_cycles
    }
}

/// The running persistent kernel.
#[derive(Debug, Clone)]
pub struct PersistentKernel {
    spec: DeviceSpec,
    config: KernelConfig,
    postboxes: PostboxArray,
    /// Device-side elapsed cycles.
    cycles: u64,
    /// Host-side overhead (launch + teardown) in nanoseconds.
    host_ns: u64,
    flag_atomics: u64,
    stats: SimStats,
    running: bool,
}

impl PersistentKernel {
    /// Launches the grid: one block per (SM × residency slot), 32 threads
    /// each, master in block 0. Charges the device's context-setup
    /// overhead.
    pub fn launch(spec: DeviceSpec, config: KernelConfig) -> Self {
        let threads = spec.grid_workers();
        Self {
            spec,
            config,
            postboxes: PostboxArray::new(threads),
            cycles: 0,
            host_ns: spec.launch_overhead_ns,
            flag_atomics: 0,
            stats: SimStats::default(),
            running: true,
        }
    }

    /// The device this kernel runs on.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The active configuration.
    pub fn config(&self) -> KernelConfig {
        self.config
    }

    /// Total blocks in the grid (including the master block).
    pub fn block_count(&self) -> u32 {
        self.spec.sm_count * self.spec.blocks_per_sm
    }

    /// Usable workers: all threads minus the master block (when masked) or
    /// minus just the master thread (when not).
    pub fn worker_count(&self) -> usize {
        let total = self.spec.grid_workers();
        if self.config.mask_master_block {
            total - self.spec.warp_size as usize
        } else {
            total - 1
        }
    }

    /// Maps a worker index to its (global block, lane).
    fn worker_position(&self, worker: usize) -> (u32, u32) {
        let ws = self.spec.warp_size as usize;
        if self.config.mask_master_block {
            let t = worker + ws; // skip block 0 entirely
            ((t / ws) as u32, (t % ws) as u32)
        } else {
            let t = worker + 1; // skip only the master thread
            ((t / ws) as u32, (t % ws) as u32)
        }
    }

    /// Master-thread serial compute (parse/eval/print segments). Advances
    /// device time; idle workers spin meanwhile (counted, not timed — they
    /// burn power, not wall clock).
    pub fn master_compute(&mut self, cycles: u64) -> Result<(), SimError> {
        if !self.running {
            return Err(SimError::KernelStopped);
        }
        self.cycles += cycles;
        let spinners = self.worker_count() as u64;
        self.stats.spin_iterations += spinners * (cycles / self.spec.costs.spin_iter.max(1));
        Ok(())
    }

    /// Runs one `|||` section: distributes `job_cycles` (one entry per
    /// job), simulates the Algorithm-1 choreography, and returns the cycle
    /// breakdown. Livelocks are detected structurally per the module
    /// documentation.
    pub fn parallel_section(&mut self, job_cycles: &[u64]) -> Result<SectionReport, SimError> {
        if !self.running {
            return Err(SimError::KernelStopped);
        }
        self.stats.sections += 1;
        let mut report = SectionReport::default();
        if job_cycles.is_empty() {
            return Ok(report);
        }
        // Volta-class devices schedule every lane independently: a spinning
        // lane no longer starves its warp siblings, and a worker parked at
        // a barrier no longer wedges the block the master lives in (the
        // runtime can use cooperative sync instead of a full-block
        // barrier). Both §III-D hazards are pre-Volta artifacts.
        let pre_volta = !self.spec.independent_thread_scheduling;
        if pre_volta && !self.config.mask_master_block {
            // The first jobs land on block-0 workers; they are parked at a
            // barrier the master never reaches.
            return Err(SimError::Livelock {
                cause: LivelockCause::MasterBlockUnmasked,
                at_cycles: self.cycles,
            });
        }

        let workers = self.worker_count();
        let costs = self.spec.costs;
        let mut touched_blocks = std::collections::BTreeSet::new();
        let mut next_job = 0usize;

        while next_job < job_cycles.len() {
            let batch = &job_cycles[next_job..(next_job + workers).min(job_cycles.len())];
            report.rounds += 1;
            self.stats.distribution_rounds += 1;

            // --- Distribution (master, serial) -------------------------
            // One postbox deposit per job; one block-flag atomic per block
            // that received work this round (paper Fig. 13: the flag fires
            // when the block is fully assigned or jobs run out).
            let mut per_block: std::collections::BTreeMap<u32, Vec<u64>> =
                std::collections::BTreeMap::new();
            for (i, &cyc) in batch.iter().enumerate() {
                let (block, lane) = self.worker_position(i);
                let thread = (block * self.spec.warp_size + lane) as usize;
                self.postboxes.deposit(
                    thread,
                    JobSlot {
                        job: (next_job + i) as u32,
                        cycles: cyc,
                    },
                );
                per_block.entry(block).or_default().push(cyc);
            }
            report.distribute_cycles += batch.len() as u64 * costs.job_write;
            if self.config.block_sync_flag {
                report.distribute_cycles += per_block.len() as u64 * costs.atomic_rmw;
                self.flag_atomics += per_block.len() as u64;
            } else if pre_volta {
                // Without the flag, a partially assigned warp livelocks:
                // its jobless lanes spin on their own `work` flags and the
                // serialized divergent path never yields to the lanes that
                // do hold jobs.
                for (&block, jobs) in &per_block {
                    let assigned = jobs.len() as u32;
                    if !assigned.is_multiple_of(self.spec.warp_size) {
                        return Err(SimError::Livelock {
                            cause: LivelockCause::PartialWarpWithoutBlockFlag { block, assigned },
                            at_cycles: self.cycles + report.distribute_cycles,
                        });
                    }
                }
            }

            // --- Execution (blocks in parallel, SMs serialize blocks) ---
            let mut per_sm: std::collections::BTreeMap<u32, u64> =
                std::collections::BTreeMap::new();
            for (&block, jobs) in &per_block {
                let lane_max = jobs.iter().copied().max().unwrap_or(0);
                // Wake: exit the spin loop (one last flag read), cross the
                // entry barrier; finish: result-write atomics happen in
                // lane-parallel, then the exit barrier and lane-0 flag
                // reset.
                let block_time = costs.spin_iter
                    + costs.barrier
                    + lane_max
                    + 2 * costs.atomic_rmw // complete(): work+sync writes
                    + costs.barrier
                    + costs.atomic_rmw; // lane-0 resets the block flag
                let sm = block % self.spec.sm_count;
                *per_sm.entry(sm).or_insert(0) += block_time;
                touched_blocks.insert(block);
                self.stats.barrier_crossings += 2 * self.spec.warp_size as u64;
                self.flag_atomics += 1; // the lane-0 flag reset
            }
            let round_exec = per_sm.values().copied().max().unwrap_or(0);
            report.execute_cycles += round_exec;

            // Workers drain their postboxes (counts the completion
            // atomics inside the array).
            for i in 0..batch.len() {
                let (block, lane) = self.worker_position(i);
                let thread = (block * self.spec.warp_size + lane) as usize;
                self.postboxes.complete(thread);
            }

            // --- Collection (master, serial) ----------------------------
            // One sync-flag poll plus one result read per job.
            for i in 0..batch.len() {
                let (block, lane) = self.worker_position(i);
                let thread = (block * self.spec.warp_size + lane) as usize;
                self.postboxes.poll_sync(thread);
            }
            report.collect_cycles += batch.len() as u64 * costs.job_collect;

            // Idle workers spun through the whole round.
            let idle = (workers - batch.len()) as u64;
            let round_cycles = report.total_cycles();
            self.stats.spin_iterations += idle * (round_cycles / costs.spin_iter.max(1));
            self.stats.jobs_executed += batch.len() as u64;
            if per_block.len() > 1 {
                self.stats.divergence_events += 1;
            }

            next_job += batch.len();
        }

        report.blocks_used = touched_blocks.len() as u32;
        self.stats.blocks_touched = self.stats.blocks_touched.max(touched_blocks.len() as u64);
        self.cycles += report.total_cycles();
        Ok(report)
    }

    /// Device-side elapsed time in cycles.
    pub fn elapsed_cycles(&self) -> u64 {
        self.cycles
    }

    /// Device-side elapsed time in nanoseconds.
    pub fn elapsed_device_ns(&self) -> f64 {
        self.spec.cycles_to_ns(self.cycles)
    }

    /// Host-side overhead (launch, and teardown once stopped) in ns.
    pub fn overhead_ns(&self) -> u64 {
        self.host_ns
    }

    /// Accumulated statistics (postbox atomics included).
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats;
        s.atomic_ops = self.postboxes.atomic_ops() + self.flag_atomics;
        s
    }

    /// `true` until [`PersistentKernel::shutdown`].
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Graceful stop: master clears every postbox `active` flag (paper:
    /// "The master thread sets the active flag of all threads to 0 when it
    /// terminates"), then the host tears the context down.
    pub fn shutdown(&mut self) {
        if self.running {
            self.postboxes.deactivate_all();
            self.host_ns += self.spec.teardown_ns;
            self.running = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{gtx1080, tesla_c2075};

    fn kernel() -> PersistentKernel {
        PersistentKernel::launch(gtx1080(), KernelConfig::default())
    }

    #[test]
    fn launch_and_shutdown_account_base_latency() {
        let mut k = kernel();
        assert_eq!(k.overhead_ns(), gtx1080().launch_overhead_ns);
        k.shutdown();
        assert_eq!(
            k.overhead_ns(),
            gtx1080().launch_overhead_ns + gtx1080().teardown_ns
        );
        assert!(!k.is_running());
        assert!(matches!(k.master_compute(1), Err(SimError::KernelStopped)));
        assert!(matches!(
            k.parallel_section(&[1]),
            Err(SimError::KernelStopped)
        ));
    }

    #[test]
    fn empty_section_is_free() {
        let mut k = kernel();
        let r = k.parallel_section(&[]).unwrap();
        assert_eq!(r.total_cycles(), 0);
        assert_eq!(k.elapsed_cycles(), 0);
    }

    #[test]
    fn single_job_section_has_all_three_phases() {
        let mut k = kernel();
        let r = k.parallel_section(&[10_000]).unwrap();
        assert!(r.distribute_cycles > 0);
        assert!(r.execute_cycles >= 10_000);
        assert!(r.collect_cycles > 0);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.blocks_used, 1);
        assert_eq!(k.elapsed_cycles(), r.total_cycles());
    }

    #[test]
    fn execution_plateau_within_one_block() {
        // 1 job vs 32 jobs in one block: same warp, execute time equal
        // (lanes run in lockstep; time = max lane).
        let mut k1 = kernel();
        let r1 = k1.parallel_section(&[5_000]).unwrap();
        let mut k32 = kernel();
        let r32 = k32.parallel_section(&vec![5_000; 32]).unwrap();
        assert_eq!(r1.execute_cycles, r32.execute_cycles);
        assert!(
            r32.distribute_cycles > r1.distribute_cycles,
            "serial master cost grows"
        );
    }

    #[test]
    fn execution_grows_once_sms_are_oversubscribed() {
        let spec = gtx1080(); // 20 SMs
        let one_wave_jobs = 32 * spec.sm_count as usize; // 1 block per SM
        let mut a = kernel();
        let ra = a.parallel_section(&vec![5_000; one_wave_jobs]).unwrap();
        let mut b = kernel();
        let rb = b.parallel_section(&vec![5_000; 3 * one_wave_jobs]).unwrap();
        assert!(
            rb.execute_cycles >= 2 * ra.execute_cycles,
            "3 blocks per SM must serialize: {} vs {}",
            rb.execute_cycles,
            ra.execute_cycles
        );
    }

    #[test]
    fn jobs_beyond_grid_capacity_take_multiple_rounds() {
        let spec = tesla_c2075(); // 14 SMs × 8 blocks = 3584 threads
        let mut k = PersistentKernel::launch(spec, KernelConfig::default());
        let workers = k.worker_count();
        let r = k.parallel_section(&vec![1_000; workers + 1]).unwrap();
        assert_eq!(r.rounds, 2);
        assert_eq!(k.stats().jobs_executed, workers as u64 + 1);
    }

    #[test]
    fn unmasked_master_block_livelocks() {
        let cfg = KernelConfig {
            mask_master_block: false,
            ..Default::default()
        };
        let mut k = PersistentKernel::launch(gtx1080(), cfg);
        match k.parallel_section(&[100]) {
            Err(SimError::Livelock {
                cause: LivelockCause::MasterBlockUnmasked,
                ..
            }) => {}
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    fn partial_warp_without_block_flag_livelocks() {
        let cfg = KernelConfig {
            block_sync_flag: false,
            ..Default::default()
        };
        let mut k = PersistentKernel::launch(gtx1080(), cfg);
        // 33 jobs: one full block + one lone job in the next block.
        match k.parallel_section(&vec![100; 33]) {
            Err(SimError::Livelock {
                cause: LivelockCause::PartialWarpWithoutBlockFlag { assigned: 1, .. },
                ..
            }) => {}
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    fn full_warps_survive_without_block_flag() {
        // Paper: "this is no problem as long as the number of jobs is a
        // multiple of 32".
        let cfg = KernelConfig {
            block_sync_flag: false,
            ..Default::default()
        };
        let mut k = PersistentKernel::launch(gtx1080(), cfg);
        let r = k.parallel_section(&vec![100; 64]).unwrap();
        assert_eq!(r.blocks_used, 2);
    }

    #[test]
    fn block_flag_fixes_the_partial_warp() {
        let mut k = kernel();
        let r = k.parallel_section(&vec![100; 33]).unwrap();
        assert_eq!(r.blocks_used, 2);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn atomics_and_barriers_counted() {
        let mut k = kernel();
        k.parallel_section(&vec![100; 64]).unwrap();
        let s = k.stats();
        // 64 deposits × 3 + 64 completes × 2 + 64 polls × 1 = 384 postbox
        // atomics, plus 2 block flags set + 2 resets.
        assert_eq!(s.atomic_ops, 384 + 4);
        assert_eq!(s.barrier_crossings, 2 * 2 * 32);
        assert_eq!(s.jobs_executed, 64);
    }

    #[test]
    fn master_compute_spins_the_workers() {
        let mut k = kernel();
        k.master_compute(1_000_000).unwrap();
        assert_eq!(k.elapsed_cycles(), 1_000_000);
        assert!(k.stats().spin_iterations > 0);
    }

    #[test]
    fn volta_survives_both_ablations() {
        // The paper's conclusion: the new threading model removes the
        // warp-divergence hazards. On the V100-class device, both
        // mitigations can be disabled without livelock.
        use crate::device::volta_sim;
        let cfg = KernelConfig {
            mask_master_block: false,
            block_sync_flag: false,
        };
        let mut k = PersistentKernel::launch(volta_sim(), cfg);
        let r = k.parallel_section(&vec![100; 33]).unwrap();
        assert_eq!(r.rounds, 1);
        assert!(r.execute_cycles > 0);
        // And the unmasked master block's 31 workers are now usable.
        assert_eq!(k.worker_count(), volta_sim().grid_workers() - 1);
    }

    #[test]
    fn heavier_jobs_take_longer() {
        let mut light = kernel();
        let rl = light.parallel_section(&[1_000; 16]).unwrap();
        let mut heavy = kernel();
        let rh = heavy.parallel_section(&[50_000; 16]).unwrap();
        assert!(rh.execute_cycles > rl.execute_cycles);
        assert_eq!(
            rh.distribute_cycles, rl.distribute_cycles,
            "master cost is size-independent"
        );
    }
}
