//! The host↔device command buffer (paper Fig. 8) and its handshake
//! protocol (paper Fig. 9).
//!
//! The C original allocates this struct with `cudaHostAlloc(...,
//! cudaHostAllocMapped)`, so host and device see the same memory and no
//! explicit `cudaMemcpy` is ever issued. The handshake:
//!
//! 1. host waits for `dev_sync == 0`, writes `command_buffer` +
//!    `buffer_length`, sets `dev_sync = 1`;
//! 2. device (master thread) spins on `dev_sync == 1`, consumes the input,
//!    runs parse/eval/print, writes the output string and its length back
//!    into the buffer, sets `dev_sync = 0`;
//! 3. host observes `dev_sync == 0` and prints the output.
//!
//! `dev_active = 0` (host side) terminates the device loop.
//!
//! This module implements the struct, the two endpoints' legal transitions
//! (violations are [`SimError::Protocol`] errors), the mapped-memory
//! transfer timing, and an event trace that tests assert on.

use crate::error::SimError;

/// Mapped pinned memory throughput in bytes per nanosecond. Zero-copy
/// access crosses PCIe per touch; ~1.3 GB/s effective is typical for the
/// paper's era.
const MAPPED_BYTES_PER_NS: f64 = 1.3;
/// Fixed cost of one flag update becoming visible to the other side (PCIe
/// round trip / write-combining flush).
const FLAG_VISIBILITY_NS: u64 = 900;

/// Which endpoint currently owns the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Owner {
    /// `dev_sync == 0`: host may write the next command.
    Host,
    /// `dev_sync == 1`: device is processing.
    Device,
}

/// Protocol trace events (for tests and diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Host uploaded `len` input bytes.
    HostWrote {
        /// Input length in bytes.
        len: usize,
    },
    /// Device picked the input up.
    DeviceTook {
        /// Input length in bytes.
        len: usize,
    },
    /// Device published `len` output bytes and released the buffer.
    DeviceReplied {
        /// Output length in bytes.
        len: usize,
    },
    /// Host read the reply.
    HostRead {
        /// Output length in bytes.
        len: usize,
    },
    /// Host cleared `dev_active`.
    HostTerminated,
    /// The device dropped its reply (injected fault); the host's
    /// handshake watchdog reclaimed the buffer.
    ReplyDropped,
}

/// The shared command buffer.
#[derive(Debug, Clone)]
pub struct CommandBuffer {
    /// `dev_active` flag: device loop runs while set.
    dev_active: bool,
    /// `dev_sync` flag: see [`Owner`].
    dev_sync: bool,
    /// `command_buffer` + `buffer_length`.
    data: Vec<u8>,
    capacity: usize,
    /// Nanoseconds spent in transfers/flag visibility so far.
    transfer_ns: u64,
    trace: Vec<Event>,
    /// Pending device-side input (set between host write and device take).
    pending_input: Option<Vec<u8>>,
    /// Fault injection: when armed, the next [`CommandBuffer::device_reply`]
    /// is dropped instead of published (one-shot).
    drop_next_reply: bool,
}

impl CommandBuffer {
    /// Allocates a buffer of `capacity` bytes (both sides mapped).
    pub fn new(capacity: usize) -> Self {
        Self {
            dev_active: true,
            dev_sync: false,
            data: Vec::new(),
            capacity,
            transfer_ns: 0,
            trace: Vec::new(),
            pending_input: None,
            drop_next_reply: false,
        }
    }

    /// Arms a one-shot injected fault: the next [`CommandBuffer::device_reply`]
    /// is *dropped* — the device's output never becomes visible, the
    /// host's handshake watchdog times out and forcibly reclaims the
    /// buffer (modeled as one flag-visibility round trip), and the call
    /// returns [`SimError::ReplyDropped`]. The buffer ends host-owned, so
    /// the caller can retry the whole upload.
    pub fn arm_reply_drop(&mut self) {
        self.drop_next_reply = true;
    }

    /// The buffer's capacity in bytes (either direction). Batch
    /// dispatchers budget coalesced uploads against this.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Who may touch the buffer right now.
    pub fn owner(&self) -> Owner {
        if self.dev_sync {
            Owner::Device
        } else {
            Owner::Host
        }
    }

    /// `dev_active` as the device sees it.
    pub fn device_active(&self) -> bool {
        self.dev_active
    }

    /// Nanoseconds of transfer/visibility cost accumulated.
    pub fn transfer_ns(&self) -> u64 {
        self.transfer_ns
    }

    /// The protocol trace so far.
    pub fn trace(&self) -> &[Event] {
        &self.trace
    }

    /// Host endpoint: upload one command. Fails when the device still owns
    /// the buffer or the input exceeds the buffer capacity.
    pub fn host_write(&mut self, input: &[u8]) -> Result<(), SimError> {
        if !self.dev_active {
            return Err(SimError::Protocol("host write after termination"));
        }
        if self.dev_sync {
            return Err(SimError::Protocol(
                "host write while device owns the buffer",
            ));
        }
        if input.len() > self.capacity {
            return Err(SimError::Protocol("input exceeds command buffer capacity"));
        }
        self.data = input.to_vec();
        self.pending_input = Some(input.to_vec());
        self.dev_sync = true;
        self.transfer_ns += (input.len() as f64 / MAPPED_BYTES_PER_NS) as u64 + FLAG_VISIBILITY_NS;
        self.trace.push(Event::HostWrote { len: input.len() });
        Ok(())
    }

    /// Device endpoint: take the pending input (master thread woke on
    /// `dev_sync == 1`).
    pub fn device_take(&mut self) -> Result<Vec<u8>, SimError> {
        if !self.dev_sync {
            return Err(SimError::Protocol("device take without pending command"));
        }
        let input = self
            .pending_input
            .take()
            .ok_or(SimError::Protocol("device take repeated for one command"))?;
        self.trace.push(Event::DeviceTook { len: input.len() });
        Ok(input)
    }

    /// Device endpoint: publish the output string and release the buffer.
    pub fn device_reply(&mut self, output: &[u8]) -> Result<(), SimError> {
        if !self.dev_sync {
            return Err(SimError::Protocol("device reply without owning the buffer"));
        }
        if self.pending_input.is_some() {
            return Err(SimError::Protocol("device reply before taking the input"));
        }
        if output.len() > self.capacity {
            return Err(SimError::Protocol("output exceeds command buffer capacity"));
        }
        if self.drop_next_reply {
            // Injected fault: the reply is lost in flight. The host's
            // watchdog reclaims the buffer (one extra flag round trip), so
            // the session can re-drive the handshake from the top.
            self.drop_next_reply = false;
            self.dev_sync = false;
            self.data = Vec::new();
            self.transfer_ns += FLAG_VISIBILITY_NS;
            self.trace.push(Event::ReplyDropped);
            return Err(SimError::ReplyDropped);
        }
        self.data = output.to_vec();
        self.dev_sync = false;
        self.transfer_ns += (output.len() as f64 / MAPPED_BYTES_PER_NS) as u64 + FLAG_VISIBILITY_NS;
        self.trace.push(Event::DeviceReplied { len: output.len() });
        Ok(())
    }

    /// Host endpoint: read the reply after the device released the buffer.
    pub fn host_read(&mut self) -> Result<Vec<u8>, SimError> {
        if self.dev_sync {
            return Err(SimError::Protocol("host read while device owns the buffer"));
        }
        let out = self.data.clone();
        self.trace.push(Event::HostRead { len: out.len() });
        Ok(out)
    }

    /// Host endpoint: clear `dev_active`, ending the device loop.
    pub fn host_terminate(&mut self) {
        self.dev_active = false;
        self.transfer_ns += FLAG_VISIBILITY_NS;
        self.trace.push(Event::HostTerminated);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_handshake_roundtrip() {
        let mut cb = CommandBuffer::new(1024);
        assert_eq!(cb.owner(), Owner::Host);
        cb.host_write(b"(+ 1 2)").unwrap();
        assert_eq!(cb.owner(), Owner::Device);
        let input = cb.device_take().unwrap();
        assert_eq!(input, b"(+ 1 2)");
        cb.device_reply(b"3").unwrap();
        assert_eq!(cb.owner(), Owner::Host);
        assert_eq!(cb.host_read().unwrap(), b"3");
        assert_eq!(
            cb.trace(),
            &[
                Event::HostWrote { len: 7 },
                Event::DeviceTook { len: 7 },
                Event::DeviceReplied { len: 1 },
                Event::HostRead { len: 1 },
            ]
        );
    }

    #[test]
    fn host_cannot_write_while_device_owns() {
        let mut cb = CommandBuffer::new(64);
        cb.host_write(b"x").unwrap();
        assert!(matches!(cb.host_write(b"y"), Err(SimError::Protocol(_))));
    }

    #[test]
    fn device_cannot_reply_before_taking() {
        let mut cb = CommandBuffer::new(64);
        cb.host_write(b"x").unwrap();
        assert!(matches!(cb.device_reply(b"y"), Err(SimError::Protocol(_))));
    }

    #[test]
    fn device_take_requires_pending_command() {
        let mut cb = CommandBuffer::new(64);
        assert!(matches!(cb.device_take(), Err(SimError::Protocol(_))));
    }

    #[test]
    fn capacity_enforced_both_ways() {
        let mut cb = CommandBuffer::new(4);
        assert!(matches!(
            cb.host_write(b"12345"),
            Err(SimError::Protocol(_))
        ));
        cb.host_write(b"123").unwrap();
        cb.device_take().unwrap();
        assert!(matches!(
            cb.device_reply(b"12345"),
            Err(SimError::Protocol(_))
        ));
    }

    #[test]
    fn termination_blocks_further_writes() {
        let mut cb = CommandBuffer::new(64);
        cb.host_terminate();
        assert!(!cb.device_active());
        assert!(matches!(cb.host_write(b"x"), Err(SimError::Protocol(_))));
    }

    #[test]
    fn dropped_reply_leaves_the_buffer_retryable() {
        let mut cb = CommandBuffer::new(64);
        cb.host_write(b"(+ 1 2)").unwrap();
        cb.device_take().unwrap();
        cb.arm_reply_drop();
        assert!(matches!(cb.device_reply(b"3"), Err(SimError::ReplyDropped)));
        // Host owns the buffer again: the whole handshake can be retried,
        // and the drop was one-shot.
        assert_eq!(cb.owner(), Owner::Host);
        cb.host_write(b"(+ 1 2)").unwrap();
        cb.device_take().unwrap();
        cb.device_reply(b"3").unwrap();
        assert_eq!(cb.host_read().unwrap(), b"3");
    }

    #[test]
    fn reply_drop_is_one_shot() {
        let mut cb = CommandBuffer::new(64);
        cb.arm_reply_drop();
        cb.host_write(b"x").unwrap();
        cb.device_take().unwrap();
        assert!(matches!(cb.device_reply(b"y"), Err(SimError::ReplyDropped)));
        cb.host_write(b"x").unwrap();
        cb.device_take().unwrap();
        cb.device_reply(b"y").unwrap();
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let mut small = CommandBuffer::new(1 << 20);
        small.host_write(&[b'a'; 17]).unwrap();
        let mut big = CommandBuffer::new(1 << 20);
        big.host_write(&vec![b'a'; 8207]).unwrap();
        assert!(big.transfer_ns() > small.transfer_ns());
        // Paper §IV: even the 8207-char inputs are nowhere near PCIe-bound —
        // the whole upload stays under ~10 µs.
        assert!(big.transfer_ns() < 10_000, "{}", big.transfer_ns());
    }
}
