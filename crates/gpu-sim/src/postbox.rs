//! Per-thread postboxes (paper Fig. 10).
//!
//! *"Each thread has its own, exclusive postbox which is stored in an array
//! in global memory."* A postbox carries `active`, `work`,
//! `synchronization` flags and the `io` slot holding the expression to
//! evaluate / the result. All flag traffic uses atomics — the paper
//! stresses that this defeats the transparent cache and is priced
//! accordingly by the cost model; the array counts every atomic so the
//! kernel can charge them.

/// One worker's postbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Postbox {
    /// Kernel-alive flag; master clears it to stop the worker loop.
    pub active: bool,
    /// Work available for this thread.
    pub work: bool,
    /// Handshake flag: master sets it with the job; worker clears it when
    /// the result is in `io`.
    pub sync: bool,
    /// The job slot: opaque job id and its compute budget in cycles.
    pub io: Option<JobSlot>,
}

/// What travels through the `io` pointer: which job, and how much compute
/// it represents (the simulator's stand-in for the actual expression tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSlot {
    /// Caller-side job index.
    pub job: u32,
    /// Evaluation cost in device cycles.
    pub cycles: u64,
}

impl Default for Postbox {
    fn default() -> Self {
        // Initial values per the paper: active=1, work=0, sync=0.
        Self {
            active: true,
            work: false,
            sync: false,
            io: None,
        }
    }
}

/// The global-memory postbox array, with atomic-operation accounting.
#[derive(Debug, Clone)]
pub struct PostboxArray {
    boxes: Vec<Postbox>,
    atomic_ops: u64,
}

impl PostboxArray {
    /// One postbox per thread.
    pub fn new(threads: usize) -> Self {
        Self {
            boxes: vec![Postbox::default(); threads],
            atomic_ops: 0,
        }
    }

    /// Number of postboxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// `true` when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Atomic RMWs performed so far.
    pub fn atomic_ops(&self) -> u64 {
        self.atomic_ops
    }

    /// Master deposits a job: writes `io`, then sets `work` and `sync`
    /// (three atomics, paper Fig. 11).
    pub fn deposit(&mut self, thread: usize, slot: JobSlot) {
        let b = &mut self.boxes[thread];
        debug_assert!(!b.work, "depositing into a busy postbox");
        b.io = Some(slot);
        b.work = true;
        b.sync = true;
        self.atomic_ops += 3;
    }

    /// Worker completes: clears `work`, publishes the result by clearing
    /// `sync` (two atomics). Returns the job it held.
    pub fn complete(&mut self, thread: usize) -> Option<JobSlot> {
        let b = &mut self.boxes[thread];
        let slot = b.io.take();
        b.work = false;
        b.sync = false;
        self.atomic_ops += 2;
        slot
    }

    /// Master polls a worker's `sync` flag (one atomic read).
    pub fn poll_sync(&mut self, thread: usize) -> bool {
        self.atomic_ops += 1;
        self.boxes[thread].sync
    }

    /// Master broadcasts termination: clears every `active` flag.
    pub fn deactivate_all(&mut self) {
        for b in &mut self.boxes {
            b.active = false;
        }
        self.atomic_ops += self.boxes.len() as u64;
    }

    /// Read-only view of one postbox (no atomic charged; diagnostics).
    pub fn peek(&self, thread: usize) -> &Postbox {
        &self.boxes[thread]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_matches_paper() {
        let arr = PostboxArray::new(4);
        for t in 0..4 {
            let b = arr.peek(t);
            assert!(b.active, "active=1 initially");
            assert!(!b.work, "work=0 initially");
            assert!(!b.sync, "synchronization=0 initially");
            assert!(b.io.is_none());
        }
    }

    #[test]
    fn deposit_complete_cycle() {
        let mut arr = PostboxArray::new(2);
        arr.deposit(
            1,
            JobSlot {
                job: 7,
                cycles: 500,
            },
        );
        assert!(arr.peek(1).work);
        assert!(arr.poll_sync(1), "sync set while work pending");
        let done = arr.complete(1).unwrap();
        assert_eq!(done.job, 7);
        assert!(!arr.poll_sync(1), "sync cleared after completion");
        assert!(!arr.peek(1).work);
    }

    #[test]
    fn atomic_ops_counted() {
        let mut arr = PostboxArray::new(2);
        arr.deposit(0, JobSlot { job: 0, cycles: 1 }); // 3 atomics
        arr.poll_sync(0); // 1
        arr.complete(0); // 2
        assert_eq!(arr.atomic_ops(), 6);
    }

    #[test]
    fn deactivate_reaches_everyone() {
        let mut arr = PostboxArray::new(3);
        arr.deactivate_all();
        for t in 0..3 {
            assert!(!arr.peek(t).active);
        }
        assert_eq!(arr.atomic_ops(), 3);
    }

    #[test]
    #[should_panic(expected = "busy postbox")]
    fn double_deposit_panics_in_debug() {
        let mut arr = PostboxArray::new(1);
        arr.deposit(0, JobSlot { job: 0, cycles: 1 });
        arr.deposit(0, JobSlot { job: 1, cycles: 1 });
    }
}
