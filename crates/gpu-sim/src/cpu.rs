//! The multicore-CPU machine model (the paper's pthreads build).
//!
//! The CPU comparison systems run the same interpreter with POSIX threads
//! as workers. There are no warps, barriers-per-block or busy-wait
//! postboxes here; jobs are list-scheduled onto hardware threads and the
//! section time is the makespan. Handing a job to a worker and collecting
//! its result still costs (queue operations, cache-line transfers), which
//! is what `job_write`/`job_collect` price.

use crate::device::{DeviceKind, DeviceSpec};
use crate::error::SimError;
use crate::kernel::SectionReport;
use crate::stats::SimStats;
use std::collections::BinaryHeap;

/// A running CPU "machine": the process hosting the interpreter plus its
/// worker pool.
#[derive(Debug, Clone)]
pub struct CpuMachine {
    spec: DeviceSpec,
    cycles: u64,
    host_ns: u64,
    stats: SimStats,
    running: bool,
}

impl CpuMachine {
    /// Starts the process/pool; charges process-setup overhead.
    pub fn launch(spec: DeviceSpec) -> Self {
        debug_assert_eq!(spec.kind, DeviceKind::Cpu, "CpuMachine wants a CPU spec");
        Self {
            spec,
            cycles: 0,
            host_ns: spec.launch_overhead_ns,
            stats: SimStats::default(),
            running: true,
        }
    }

    /// The device this machine models.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Hardware threads available as workers.
    pub fn worker_count(&self) -> usize {
        self.spec.sm_count as usize
    }

    /// Serial main-thread compute (parse/eval/print segments).
    pub fn serial_compute(&mut self, cycles: u64) -> Result<(), SimError> {
        if !self.running {
            return Err(SimError::KernelStopped);
        }
        self.cycles += cycles;
        Ok(())
    }

    /// Runs one `|||` section: list-schedules `job_cycles` onto the
    /// hardware threads and charges dispatch/collection per job.
    pub fn parallel_section(&mut self, job_cycles: &[u64]) -> Result<SectionReport, SimError> {
        if !self.running {
            return Err(SimError::KernelStopped);
        }
        self.stats.sections += 1;
        let mut report = SectionReport::default();
        if job_cycles.is_empty() {
            return Ok(report);
        }
        let cores = self.worker_count();
        let costs = self.spec.costs;

        report.distribute_cycles = job_cycles.len() as u64 * costs.job_write;
        report.collect_cycles = job_cycles.len() as u64 * costs.job_collect;

        // Greedy list scheduling: each job goes to the earliest-free core.
        // BinaryHeap is a max-heap, so store negated finish times.
        let mut heap: BinaryHeap<std::cmp::Reverse<u64>> = (0..cores.min(job_cycles.len()))
            .map(|_| std::cmp::Reverse(0u64))
            .collect();
        let mut makespan = 0u64;
        for &j in job_cycles {
            let std::cmp::Reverse(free_at) = heap.pop().expect("non-empty pool");
            let finish = free_at + j;
            makespan = makespan.max(finish);
            heap.push(std::cmp::Reverse(finish));
        }
        report.execute_cycles = makespan;
        report.rounds = job_cycles.len().div_ceil(cores) as u32;
        report.blocks_used = cores.min(job_cycles.len()) as u32;

        self.stats.jobs_executed += job_cycles.len() as u64;
        self.stats.distribution_rounds += report.rounds as u64;
        self.cycles += report.total_cycles();
        Ok(report)
    }

    /// Elapsed main-thread cycles.
    pub fn elapsed_cycles(&self) -> u64 {
        self.cycles
    }

    /// Elapsed main-thread time in nanoseconds.
    pub fn elapsed_device_ns(&self) -> f64 {
        self.spec.cycles_to_ns(self.cycles)
    }

    /// Setup/teardown overhead in nanoseconds.
    pub fn overhead_ns(&self) -> u64 {
        self.host_ns
    }

    /// Statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// `true` until [`CpuMachine::shutdown`].
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Stops the pool and charges teardown.
    pub fn shutdown(&mut self) {
        if self.running {
            self.host_ns += self.spec.teardown_ns;
            self.running = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{amd_6272, intel_e5_2620};

    #[test]
    fn makespan_is_ideal_for_identical_jobs() {
        let mut m = CpuMachine::launch(amd_6272()); // 64 cores
        let r = m.parallel_section(&vec![1_000; 64]).unwrap();
        assert_eq!(r.execute_cycles, 1_000, "one job per core");
        let r2 = CpuMachine::launch(amd_6272())
            .parallel_section(&vec![1_000; 128])
            .unwrap();
        assert_eq!(r2.execute_cycles, 2_000, "two rounds");
    }

    #[test]
    fn makespan_handles_skewed_jobs() {
        let mut m = CpuMachine::launch(intel_e5_2620()); // 12 threads
                                                         // One giant job dominates.
        let mut jobs = vec![100u64; 23];
        jobs.push(1_000_000);
        let r = m.parallel_section(&jobs).unwrap();
        assert!(r.execute_cycles >= 1_000_000);
        assert!(r.execute_cycles < 1_000_000 + 400);
    }

    #[test]
    fn dispatch_cost_scales_with_jobs() {
        let mut a = CpuMachine::launch(intel_e5_2620());
        let ra = a.parallel_section(&[10; 10]).unwrap();
        let mut b = CpuMachine::launch(intel_e5_2620());
        let rb = b.parallel_section(&vec![10; 100]).unwrap();
        assert_eq!(rb.distribute_cycles, 10 * ra.distribute_cycles);
    }

    #[test]
    fn base_latency_far_below_gpus() {
        let m = CpuMachine::launch(intel_e5_2620());
        assert!(m.overhead_ns() < 5_000);
    }

    #[test]
    fn shutdown_blocks_further_sections() {
        let mut m = CpuMachine::launch(intel_e5_2620());
        m.shutdown();
        assert!(matches!(
            m.parallel_section(&[1]),
            Err(SimError::KernelStopped)
        ));
    }

    #[test]
    fn empty_section_is_free() {
        let mut m = CpuMachine::launch(amd_6272());
        let r = m.parallel_section(&[]).unwrap();
        assert_eq!(r.total_cycles(), 0);
    }
}
