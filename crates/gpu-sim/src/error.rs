//! Simulator errors — most importantly, livelock detection.

use core::fmt;

/// Why a persistent-kernel simulation could not make progress.
///
/// Both causes are the warp-divergence hazards of paper §III-D d, and each
/// maps to the mitigation that prevents it (Fig. 12 / Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivelockCause {
    /// The master block's worker threads were not disabled (paper Fig. 12
    /// ablation): workers of block 0 wait at a block barrier the master
    /// never joins, so any job assigned to block 0 can never complete while
    /// the master spins on its result.
    MasterBlockUnmasked,
    /// The per-block synchronization flag was disabled (paper Fig. 13 /
    /// Alg. 1 ablation) and a block received jobs for only part of its
    /// warp: the jobless threads stay in their busy-wait loop, and because
    /// a pre-Volta warp serializes divergent paths, the spinning group
    /// monopolizes the warp — the threads holding jobs never run.
    PartialWarpWithoutBlockFlag {
        /// The block whose warp livelocked.
        block: u32,
        /// How many of its 32 threads held jobs.
        assigned: u32,
    },
}

impl fmt::Display for LivelockCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MasterBlockUnmasked => write!(
                f,
                "master block not masked: block-0 workers wait at a barrier the master never joins"
            ),
            Self::PartialWarpWithoutBlockFlag { block, assigned } => write!(
                f,
                "block {block} has {assigned}/32 threads with jobs and no block sync flag: \
                 the spinning jobless threads monopolize the warp"
            ),
        }
    }
}

/// Errors from the machine simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The kernel cannot make progress; the watchdog fired.
    Livelock {
        /// Structural diagnosis.
        cause: LivelockCause,
        /// Device cycles elapsed when detected.
        at_cycles: u64,
    },
    /// The command buffer protocol was violated.
    Protocol(&'static str),
    /// The device failed to publish a reply (injected fault): the host's
    /// handshake watchdog reclaimed the buffer. Unlike
    /// [`SimError::Protocol`], the buffer is left host-owned, so the run
    /// can be retried.
    ReplyDropped,
    /// A section was requested after shutdown.
    KernelStopped,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Livelock { cause, at_cycles } => {
                write!(f, "livelock detected at cycle {at_cycles}: {cause}")
            }
            Self::Protocol(what) => write!(f, "command-buffer protocol violation: {what}"),
            Self::ReplyDropped => {
                write!(f, "device reply dropped; host reclaimed the command buffer")
            }
            Self::KernelStopped => write!(f, "persistent kernel already stopped"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_diagnostic() {
        let e = SimError::Livelock {
            cause: LivelockCause::PartialWarpWithoutBlockFlag {
                block: 3,
                assigned: 17,
            },
            at_cycles: 1234,
        };
        let msg = e.to_string();
        assert!(msg.contains("block 3"));
        assert!(msg.contains("17/32"));
        assert!(msg.contains("1234"));
        let e2 = SimError::Livelock {
            cause: LivelockCause::MasterBlockUnmasked,
            at_cycles: 9,
        };
        assert!(e2.to_string().contains("master block"));
    }
}
