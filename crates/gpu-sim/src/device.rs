//! Device catalog and cost model.
//!
//! The paper evaluates CuLi on six NVIDIA GPUs spanning four architecture
//! generations, plus two x86 hosts. We reproduce each as a [`DeviceSpec`]:
//! real structural parameters (SM/core count, clock, L2 size, memory-bus
//! width) plus a [`CostTable`] assigning a cycle price to every primitive
//! operation the interpreter counts.
//!
//! ## Calibration
//!
//! Cost tables are calibrated so the regenerated figures reproduce the
//! paper's *shapes* (see `EXPERIMENTS.md` for the paper-vs-measured index):
//!
//! * **Fermi parses fast** (paper Fig. 16b / 17b): Fermi caches global
//!   loads in L1 by default; Kepler and later disabled that, and the paper
//!   additionally blames the narrower memory bus (384→256 bit) and smaller
//!   L2. Encoded as [`CostTable::char_scan`]: ~8× cheaper when
//!   `l1_cached_global_loads` is set.
//! * **Newer GPUs evaluate faster** (Fig. 16c): per-op costs shrink with
//!   the architecture generation while clocks rise.
//! * **Newer GPUs have higher base latency** (Fig. 14): context setup cost
//!   grew with driver/runtime complexity; encoded directly as
//!   `launch_overhead_ns`/`teardown_ns` per device.
//! * **CPUs win by ≥10×** (Fig. 15): single-thread op costs are 1–2 orders
//!   of magnitude cheaper on the out-of-order hosts.

/// GPU architecture generations appearing in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Tesla C2075, GeForce GTX 480.
    Fermi,
    /// Tesla K20, GeForce GTX 680.
    Kepler,
    /// Tesla M40.
    Maxwell,
    /// GeForce GTX 1080.
    Pascal,
    /// Post-paper generation (Tesla V100 class) used for the conclusion's
    /// projection: independent thread scheduling + configurable L1.
    Volta,
    /// x86 host (Intel/AMD).
    Host,
}

/// Device class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// CUDA-capable GPU running the persistent CuLi kernel.
    Gpu,
    /// Multicore CPU running the pthreads build.
    Cpu,
}

/// Cycle prices of the interpreter's primitive operations plus the
/// synchronization primitives of the persistent kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostTable {
    /// Per input byte examined by the tokenizer.
    pub char_scan: u64,
    /// Per node allocated from the arena (global-memory RMW on GPU).
    pub node_alloc: u64,
    /// Per node payload/link read.
    pub node_read: u64,
    /// Per environment binding probed.
    pub env_probe: u64,
    /// Per byte compared during symbol lookup (`strcmp`).
    pub sym_cmp_byte: u64,
    /// Per evaluator dispatch step.
    pub eval_step: u64,
    /// Per arithmetic/comparison primitive.
    pub arith: u64,
    /// Per built-in invocation.
    pub builtin_call: u64,
    /// Per user-form application (environment creation + binding).
    pub form_apply: u64,
    /// Per output byte appended by the printer.
    pub output_byte: u64,
    /// Per number formatted (itoa/dtoa).
    pub num_format: u64,
    /// Per atomic read-modify-write on a postbox flag. The paper notes
    /// atomically accessed flags bypass the transparent cache and are
    /// "slower than direct" accesses.
    pub atomic_rmw: u64,
    /// Per plain global-memory read of a flag (spin-loop body).
    pub spin_iter: u64,
    /// Block barrier (`__syncthreads`).
    pub barrier: u64,
    /// Master writing one job into a worker postbox (expression pointer +
    /// `work`/`sync` flags).
    pub job_write: u64,
    /// Master collecting one worker result from its postbox.
    pub job_collect: u64,
}

/// One evaluated device: identity, structure, and costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name as used in the paper's figures.
    pub name: &'static str,
    /// GPU or CPU.
    pub kind: DeviceKind,
    /// Architecture generation.
    pub arch: Arch,
    /// Streaming multiprocessors (GPU) or hardware threads (CPU).
    pub sm_count: u32,
    /// Threads per block; the paper fixes this to one warp (32). CPUs: 1.
    pub warp_size: u32,
    /// Resident worker blocks per SM for the persistent kernel grid.
    pub blocks_per_sm: u32,
    /// Core clock in MHz.
    pub clock_mhz: u32,
    /// L2 cache in KiB (paper cites the 768→512 KiB reduction).
    pub l2_kib: u32,
    /// Memory interface width in bits (paper cites 384→256).
    pub mem_bus_bits: u32,
    /// Fermi-style transparent L1 caching of global loads.
    pub l1_cached_global_loads: bool,
    /// Volta-style independent thread scheduling: every lane has its own
    /// program counter, so a spinning lane no longer starves divergent
    /// lanes of the same warp. The paper's conclusion anticipates exactly
    /// this ("New versions of NVidia GPUs provide a new threading model
    /// that is closer to the model provided on CPUs"); with it enabled,
    /// both livelock hazards of §III-D disappear mechanically. All eight
    /// evaluated devices predate it.
    pub independent_thread_scheduling: bool,
    /// CUDA context / process setup time in nanoseconds (Fig. 14).
    pub launch_overhead_ns: u64,
    /// Graceful stop time in nanoseconds (Fig. 14 includes the stop).
    pub teardown_ns: u64,
    /// Per-command REPL dispatch overhead in device cycles: the master
    /// waking from its `dev_sync` spin, re-entering the evaluation loop and
    /// signalling back. The paper folds all device time into the three
    /// phases (parse/eval/print), so runtimes charge this to the eval
    /// phase — it is why GPU runtimes plateau near half a millisecond for
    /// tiny inputs (Fig. 15, 1–64 threads).
    pub command_overhead_cycles: u64,
    /// Operation costs.
    pub costs: CostTable,
}

impl DeviceSpec {
    /// Converts device cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * 1000.0 / self.clock_mhz as f64
    }

    /// Converts device cycles to milliseconds.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        self.cycles_to_ns(cycles) / 1e6
    }

    /// Total worker threads the persistent kernel grid provides (the master
    /// block is excluded when masked; see `KernelConfig`).
    pub fn grid_workers(&self) -> usize {
        (self.sm_count * self.blocks_per_sm * self.warp_size) as usize
    }

    /// Base latency in milliseconds (launch + graceful stop), Fig. 14.
    pub fn base_latency_ms(&self) -> f64 {
        (self.launch_overhead_ns + self.teardown_ns) as f64 / 1e6
    }

    /// `true` for Fermi-generation GPUs (the parsing outliers).
    pub fn is_fermi(&self) -> bool {
        self.arch == Arch::Fermi
    }
}

fn gpu_costs(arch: Arch, l1_cached: bool) -> CostTable {
    // Generation scaling: later architectures dispatch interpreter ops
    // faster (better ILP, larger register files, faster atomics). The
    // byte-scan price is *not* generation-scaled — it is governed by
    // whether global loads are transparently cached (Fermi) or not.
    let gen = match arch {
        Arch::Fermi => 1.00,
        Arch::Kepler => 0.90,
        Arch::Maxwell => 0.75,
        Arch::Pascal => 0.60,
        Arch::Volta => 0.45,
        Arch::Host => unreachable!("host uses cpu_costs"),
    };
    let s = |base: f64| -> u64 { (base * gen).round().max(1.0) as u64 };
    CostTable {
        // Byte-stream scanning is the one place Fermi wins: transparent L1
        // caching of global loads makes the next sequential byte ~a cache
        // hit; Kepler+ pay an uncached global load per byte.
        char_scan: if l1_cached { 90 } else { 1650 },
        node_alloc: s(160.0),
        node_read: s(40.0),
        env_probe: s(80.0),
        sym_cmp_byte: s(8.0),
        eval_step: s(25.0),
        arith: s(8.0),
        builtin_call: s(40.0),
        form_apply: s(120.0),
        output_byte: s(700.0),
        num_format: s(500.0),
        atomic_rmw: s(120.0),
        spin_iter: s(40.0),
        barrier: s(50.0),
        job_write: s(400.0),
        job_collect: s(250.0),
    }
}

fn cpu_costs() -> CostTable {
    CostTable {
        char_scan: 2,
        node_alloc: 12,
        node_read: 2,
        env_probe: 4,
        sym_cmp_byte: 1,
        eval_step: 5,
        arith: 1,
        builtin_call: 8,
        form_apply: 24,
        output_byte: 3,
        num_format: 40,
        atomic_rmw: 40,
        spin_iter: 8,
        barrier: 30,
        // "job write/collect" on the CPU build is handing work to a pthread
        // worker: queue push/pop plus cache-line transfer.
        job_write: 120,
        job_collect: 80,
    }
}

/// Tesla C2075 (Fermi): 14 SMs @ 1150 MHz, 768 KiB L2, 384-bit bus.
pub fn tesla_c2075() -> DeviceSpec {
    DeviceSpec {
        name: "TeslaC2075",
        kind: DeviceKind::Gpu,
        arch: Arch::Fermi,
        sm_count: 14,
        warp_size: 32,
        blocks_per_sm: 8,
        clock_mhz: 1150,
        l2_kib: 768,
        mem_bus_bits: 384,
        l1_cached_global_loads: true,
        launch_overhead_ns: 90_000,
        teardown_ns: 30_000,
        independent_thread_scheduling: false,
        command_overhead_cycles: 500000,
        costs: gpu_costs(Arch::Fermi, true),
    }
}

/// Tesla K20 (Kepler): 13 SMX @ 706 MHz, 1.25 MiB L2, 320-bit bus.
pub fn tesla_k20() -> DeviceSpec {
    DeviceSpec {
        name: "TeslaK20",
        kind: DeviceKind::Gpu,
        arch: Arch::Kepler,
        sm_count: 13,
        warp_size: 32,
        blocks_per_sm: 16,
        clock_mhz: 706,
        l2_kib: 1280,
        mem_bus_bits: 320,
        l1_cached_global_loads: false,
        launch_overhead_ns: 150_000,
        teardown_ns: 50_000,
        independent_thread_scheduling: false,
        command_overhead_cycles: 550000,
        costs: gpu_costs(Arch::Kepler, false),
    }
}

/// Tesla M40 (Maxwell): 24 SMs @ 948 MHz, 3 MiB L2, 384-bit bus.
pub fn tesla_m40() -> DeviceSpec {
    DeviceSpec {
        name: "TeslaM40",
        kind: DeviceKind::Gpu,
        arch: Arch::Maxwell,
        sm_count: 24,
        warp_size: 32,
        blocks_per_sm: 16,
        clock_mhz: 948,
        l2_kib: 3072,
        mem_bus_bits: 384,
        l1_cached_global_loads: false,
        launch_overhead_ns: 230_000,
        teardown_ns: 70_000,
        independent_thread_scheduling: false,
        command_overhead_cycles: 450000,
        costs: gpu_costs(Arch::Maxwell, false),
    }
}

/// GeForce GTX 480 (Fermi): 15 SMs @ 1401 MHz, 768 KiB L2, 384-bit bus.
pub fn gtx480() -> DeviceSpec {
    DeviceSpec {
        name: "GTX480",
        kind: DeviceKind::Gpu,
        arch: Arch::Fermi,
        sm_count: 15,
        warp_size: 32,
        blocks_per_sm: 8,
        clock_mhz: 1401,
        l2_kib: 768,
        mem_bus_bits: 384,
        l1_cached_global_loads: true,
        launch_overhead_ns: 70_000,
        teardown_ns: 20_000,
        independent_thread_scheduling: false,
        command_overhead_cycles: 500000,
        costs: gpu_costs(Arch::Fermi, true),
    }
}

/// GeForce GTX 680 (Kepler): 8 SMX @ 1006 MHz, 512 KiB L2, 256-bit bus.
/// The paper's L2/bus-narrowing example (768→512 KiB, 384→256 bit).
pub fn gtx680() -> DeviceSpec {
    DeviceSpec {
        name: "GTX680",
        kind: DeviceKind::Gpu,
        arch: Arch::Kepler,
        sm_count: 8,
        warp_size: 32,
        blocks_per_sm: 16,
        clock_mhz: 1006,
        l2_kib: 512,
        mem_bus_bits: 256,
        l1_cached_global_loads: false,
        launch_overhead_ns: 40_000,
        teardown_ns: 12_000,
        independent_thread_scheduling: false,
        command_overhead_cycles: 500000,
        costs: gpu_costs(Arch::Kepler, false),
    }
}

/// GeForce GTX 1080 (Pascal): 20 SMs @ 1607 MHz, 2 MiB L2, 256-bit bus.
pub fn gtx1080() -> DeviceSpec {
    DeviceSpec {
        name: "GTX1080",
        kind: DeviceKind::Gpu,
        arch: Arch::Pascal,
        sm_count: 20,
        warp_size: 32,
        blocks_per_sm: 16,
        clock_mhz: 1607,
        l2_kib: 2048,
        mem_bus_bits: 256,
        l1_cached_global_loads: false,
        launch_overhead_ns: 240_000,
        teardown_ns: 70_000,
        independent_thread_scheduling: false,
        command_overhead_cycles: 400000,
        costs: gpu_costs(Arch::Pascal, false),
    }
}

/// Hypothetical next-generation GPU (Tesla V100 class) for the paper's
/// conclusion projection. Not part of the evaluated eight:
///
/// * **independent thread scheduling** — the "new threading model that is
///   closer to the model provided on CPUs" the paper expects to exploit;
///   both §III-D livelock hazards vanish on it;
/// * **configurable L1** — global loads cached again ("Another profitable
///   feature is the configurable cache of these devices which can help to
///   reduce the parsing penalties"), so `char_scan` returns to the cheap
///   Fermi-style price;
/// * one more generation of per-op cost scaling.
pub fn volta_sim() -> DeviceSpec {
    DeviceSpec {
        name: "V100sim",
        kind: DeviceKind::Gpu,
        arch: Arch::Volta,
        sm_count: 80,
        warp_size: 32,
        blocks_per_sm: 16,
        clock_mhz: 1370,
        l2_kib: 6144,
        mem_bus_bits: 4096, // HBM2
        l1_cached_global_loads: true,
        independent_thread_scheduling: true,
        launch_overhead_ns: 260_000,
        teardown_ns: 80_000,
        command_overhead_cycles: 380_000,
        costs: gpu_costs(Arch::Volta, true),
    }
}

/// Intel Xeon E5-2620: 6 cores + HT (12 hardware threads) @ 2.0 GHz.
pub fn intel_e5_2620() -> DeviceSpec {
    DeviceSpec {
        name: "Intel E5-2620",
        kind: DeviceKind::Cpu,
        arch: Arch::Host,
        sm_count: 12,
        warp_size: 1,
        blocks_per_sm: 1,
        clock_mhz: 2000,
        l2_kib: 1536,
        mem_bus_bits: 256,
        l1_cached_global_loads: true,
        launch_overhead_ns: 1_100,
        teardown_ns: 400,
        independent_thread_scheduling: false,
        command_overhead_cycles: 30000,
        costs: cpu_costs(),
    }
}

/// AMD Opteron 6272 (4 sockets): 64 cores @ 1.8 GHz.
pub fn amd_6272() -> DeviceSpec {
    DeviceSpec {
        name: "AMD 6272",
        kind: DeviceKind::Cpu,
        arch: Arch::Host,
        sm_count: 64,
        warp_size: 1,
        blocks_per_sm: 1,
        clock_mhz: 1800,
        l2_kib: 2048,
        mem_bus_bits: 256,
        l1_cached_global_loads: true,
        launch_overhead_ns: 950,
        teardown_ns: 350,
        independent_thread_scheduling: false,
        command_overhead_cycles: 30000,
        costs: cpu_costs(),
    }
}

/// All eight devices of the paper's evaluation, figure order.
pub fn all_devices() -> Vec<DeviceSpec> {
    vec![
        tesla_c2075(),
        tesla_k20(),
        tesla_m40(),
        gtx480(),
        gtx680(),
        gtx1080(),
        intel_e5_2620(),
        amd_6272(),
    ]
}

/// The six GPUs only.
pub fn all_gpus() -> Vec<DeviceSpec> {
    all_devices()
        .into_iter()
        .filter(|d| d.kind == DeviceKind::Gpu)
        .collect()
}

/// Devices for the conclusion's projection experiment: the evaluated GPUs
/// plus the hypothetical next generation, and the CPUs as the bar to clear.
pub fn projection_devices() -> Vec<DeviceSpec> {
    let mut d = all_devices();
    d.push(volta_sim());
    d
}

/// The two CPUs only.
pub fn all_cpus() -> Vec<DeviceSpec> {
    all_devices()
        .into_iter()
        .filter(|d| d.kind == DeviceKind::Cpu)
        .collect()
}

/// Looks a device up by its figure name (case-insensitive, ignoring spaces).
pub fn device_by_name(name: &str) -> Option<DeviceSpec> {
    let norm = |s: &str| s.to_ascii_lowercase().replace([' ', '-', '_'], "");
    all_devices()
        .into_iter()
        .find(|d| norm(d.name) == norm(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_eight_devices() {
        let d = all_devices();
        assert_eq!(d.len(), 8);
        assert_eq!(all_gpus().len(), 6);
        assert_eq!(all_cpus().len(), 2);
    }

    #[test]
    fn base_latency_ordering_matches_fig14() {
        // Newer GPU ⇒ higher base latency; GTX 680 lowest, ~6× below
        // GTX 1080 and M40; CPUs > 30× faster than the fastest GPU.
        let lat = |d: DeviceSpec| d.base_latency_ms();
        assert!(lat(gtx680()) < lat(gtx480()));
        assert!(lat(gtx480()) < lat(tesla_c2075()));
        assert!(lat(tesla_c2075()) < lat(tesla_k20()));
        assert!(lat(tesla_k20()) < lat(tesla_m40()));
        assert!(lat(tesla_m40()) <= lat(gtx1080()));
        let ratio = lat(gtx1080()) / lat(gtx680());
        assert!(
            (4.0..9.0).contains(&ratio),
            "GTX1080/GTX680 latency ratio {ratio}"
        );
        let fastest_gpu = lat(gtx680());
        for cpu in all_cpus() {
            assert!(fastest_gpu / cpu.base_latency_ms() > 30.0, "{}", cpu.name);
        }
    }

    #[test]
    fn fermi_scans_bytes_cheaper() {
        for gpu in all_gpus() {
            if gpu.is_fermi() {
                assert!(gpu.costs.char_scan < 150, "{}", gpu.name);
            } else {
                assert!(gpu.costs.char_scan >= 500, "{}", gpu.name);
            }
        }
    }

    #[test]
    fn cpu_ops_are_an_order_of_magnitude_cheaper() {
        let gpu = gtx1080().costs;
        let cpu = intel_e5_2620().costs;
        assert!(gpu.eval_step / cpu.eval_step >= 3);
        assert!(gpu.node_alloc / cpu.node_alloc >= 5);
        assert!(gpu.char_scan / cpu.char_scan >= 100);
    }

    #[test]
    fn eval_cost_decreases_with_generation() {
        let fermi = tesla_c2075().costs;
        let kepler = tesla_k20().costs;
        let maxwell = tesla_m40().costs;
        let pascal = gtx1080().costs;
        assert!(fermi.eval_step >= kepler.eval_step);
        assert!(kepler.eval_step >= maxwell.eval_step);
        assert!(maxwell.eval_step >= pascal.eval_step);
    }

    #[test]
    fn cycle_conversion() {
        let d = gtx1080(); // 1607 MHz
        let ns = d.cycles_to_ns(1607);
        assert!((ns - 1000.0).abs() < 1.0, "{ns}");
        assert!((d.cycles_to_ms(1_607_000_000) - 1000.0).abs() < 1.0);
    }

    #[test]
    fn grid_sizes_saturate_the_sms() {
        // Persistent kernels can only use co-resident blocks; Fermi's
        // 8-blocks/SM limit caps its grid below 4096 workers, which the
        // runtime covers with multi-round distribution.
        for gpu in all_gpus() {
            let w = gpu.grid_workers();
            assert!(w >= 2048, "{}: {} workers", gpu.name, w);
            assert_eq!(w % 32, 0, "{}: grid must be warp-aligned", gpu.name);
        }
    }

    #[test]
    fn device_lookup_by_name() {
        assert_eq!(device_by_name("GTX480").unwrap().name, "GTX480");
        assert_eq!(device_by_name("tesla c2075").unwrap().name, "TeslaC2075");
        assert_eq!(
            device_by_name("intel e5-2620").unwrap().name,
            "Intel E5-2620"
        );
        assert!(device_by_name("RTX9090").is_none());
    }

    #[test]
    fn warp_sized_blocks_as_in_the_paper() {
        for gpu in all_gpus() {
            assert_eq!(gpu.warp_size, 32, "{}: block = one warp", gpu.name);
        }
    }
}
