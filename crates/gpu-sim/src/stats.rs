//! Simulation statistics: synchronization traffic and scheduling facts.

/// Counters accumulated over a kernel's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Atomic read-modify-writes on postbox/flag words. The paper notes
    /// these bypass the transparent cache and carry a performance penalty.
    pub atomic_ops: u64,
    /// Block barrier crossings (`__syncthreads`), counted per thread.
    pub barrier_crossings: u64,
    /// Busy-wait loop iterations executed by spinning threads (the
    /// energy-hungry waiting the paper's §II-C laments).
    pub spin_iterations: u64,
    /// Warp divergence events (a warp splitting into groups).
    pub divergence_events: u64,
    /// Parallel sections executed (`|||` expressions reaching the device).
    pub sections: u64,
    /// Distribution rounds across all sections (jobs can exceed workers).
    pub distribution_rounds: u64,
    /// Jobs executed across all sections.
    pub jobs_executed: u64,
    /// Worker blocks that ever received work.
    pub blocks_touched: u64,
}

impl SimStats {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: &SimStats) {
        self.atomic_ops += other.atomic_ops;
        self.barrier_crossings += other.barrier_crossings;
        self.spin_iterations += other.spin_iterations;
        self.divergence_events += other.divergence_events;
        self.sections += other.sections;
        self.distribution_rounds += other.distribution_rounds;
        self.jobs_executed += other.jobs_executed;
        self.blocks_touched += other.blocks_touched;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut a = SimStats {
            atomic_ops: 5,
            sections: 1,
            ..Default::default()
        };
        let b = SimStats {
            atomic_ops: 3,
            jobs_executed: 7,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.atomic_ops, 8);
        assert_eq!(a.jobs_executed, 7);
        assert_eq!(a.sections, 1);
    }
}
