//! Index newtypes for the interpreter's arenas.
//!
//! Everything the interpreter touches lives in flat arrays ("global memory"
//! in the paper's GPU build): nodes, interned strings, environments and
//! bindings. These newtypes keep the index spaces from mixing and keep
//! `Option<Id>` at four bytes via `NonZeroU32`.

use core::fmt;
use core::num::NonZeroU32;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(NonZeroU32);

        impl $name {
            /// Wraps an arena index (0-based).
            #[inline]
            pub fn new(index: usize) -> Self {
                debug_assert!(index < u32::MAX as usize);
                Self(NonZeroU32::new(index as u32 + 1).expect("index + 1 overflowed"))
            }

            /// The 0-based arena index.
            #[inline]
            pub fn index(self) -> usize {
                self.0.get() as usize - 1
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.index())
            }
        }
    };
}

define_id!(
    /// Handle to a [`crate::node::Node`] in the node arena.
    NodeId,
    "n"
);
define_id!(
    /// Handle to an interned string or symbol.
    StrId,
    "s"
);
define_id!(
    /// Handle to an environment in the environment arena.
    EnvId,
    "e"
);
define_id!(
    /// Handle to a single `(symbol → node)` binding.
    BindingId,
    "b"
);
define_id!(
    /// Handle to a built-in function in the registry.
    BuiltinId,
    "f"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        for i in [0usize, 1, 42, 1_000_000] {
            assert_eq!(NodeId::new(i).index(), i);
            assert_eq!(StrId::new(i).index(), i);
        }
    }

    #[test]
    fn option_is_free() {
        assert_eq!(
            core::mem::size_of::<Option<NodeId>>(),
            core::mem::size_of::<u32>()
        );
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", NodeId::new(3)), "n3");
        assert_eq!(format!("{:?}", EnvId::new(0)), "e0");
    }
}
