//! Mark-and-sweep collection for the node arena.
//!
//! The paper names the fixed node array as CuLi's input-size limitation:
//! nodes are "marked as free" when no longer needed, but nothing in the C
//! original decides *when* that is safe. This module supplies that missing
//! piece: roots are every binding reachable from the environment tree (plus
//! any explicitly pinned nodes), everything else is swept back to the free
//! list. Running it between REPL inputs keeps long interactive sessions
//! from exhausting the arena — the extension the paper's §III-D "negative
//! point" paragraph calls for.

use crate::cost::Meter;
use crate::interp::Interp;
use crate::node::Payload;
use crate::types::NodeId;

/// Result of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Live nodes before the sweep.
    pub live_before: usize,
    /// Live nodes after the sweep.
    pub live_after: usize,
    /// Nodes returned to the free list.
    pub freed: usize,
}

/// Collects garbage: every node not reachable from an environment binding
/// or from `extra_roots` is freed. Returns sweep statistics.
///
/// Safety of the sweep relies on the interpreter's structural invariant
/// that environments only reference nodes (never the other way round), so
/// reachability from bindings + pinned roots is exactly liveness.
pub fn collect(interp: &mut Interp, extra_roots: &[NodeId]) -> GcStats {
    let live_before = interp.arena.live();
    let cap = interp.arena.capacity();
    let mut marked = vec![false; cap];

    // Roots: every binding in every environment, ever created. Environments
    // themselves are never collected (they are small and the paper keeps
    // them persistent for the interpreter's lifetime).
    let mut stack: Vec<NodeId> = Vec::new();
    for e in 0..interp.envs.env_count() {
        for (_, value) in interp.envs.local_bindings(crate::types::EnvId::new(e)) {
            stack.push(value);
        }
    }
    stack.extend_from_slice(extra_roots);

    while let Some(id) = stack.pop() {
        if marked[id.index()] {
            continue;
        }
        // A root may have been freed already by an explicit `free` misuse;
        // skip dead slots defensively rather than resurrecting them.
        if !interp.arena.is_live(id) {
            continue;
        }
        marked[id.index()] = true;
        let node = *interp.arena.get(id);
        if let Some(next) = node.next {
            stack.push(next);
        }
        match node.payload {
            Payload::List { first: Some(first), .. } => stack.push(first),
            Payload::Form { params, body } => {
                stack.push(params);
                stack.push(body);
            }
            _ => {}
        }
    }

    let mut scratch = Meter::new();
    let victims: Vec<NodeId> =
        interp.arena.iter_live().filter(|id| !marked[id.index()]).collect();
    for id in &victims {
        interp.arena.free(*id, &mut scratch);
    }
    GcStats { live_before, live_after: interp.arena.live(), freed: victims.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, InterpConfig};

    #[test]
    fn gc_frees_evaluation_temporaries() {
        let mut i = Interp::default();
        i.eval_str("(+ 1 2 3 4 5)").unwrap();
        let stats = collect(&mut i, &[]);
        assert!(stats.freed > 0, "temporaries should be collectable");
        assert!(stats.live_after < stats.live_before);
    }

    #[test]
    fn gc_preserves_global_definitions() {
        let mut i = Interp::default();
        i.eval_str("(defun sq (x) (* x x))").unwrap();
        i.eval_str("(setq v 9)").unwrap();
        collect(&mut i, &[]);
        assert_eq!(i.eval_str("(sq v)").unwrap(), "81");
    }

    #[test]
    fn gc_respects_extra_roots() {
        let mut i = Interp::default();
        let forms = crate::parser::parse(&mut i, b"(1 2 3)").unwrap();
        let pinned = forms[0];
        collect(&mut i, &[pinned]);
        // The pinned tree is intact and printable.
        assert_eq!(crate::printer::print_to_string(&mut i, pinned).unwrap(), "(1 2 3)");
    }

    #[test]
    fn gc_enables_long_sessions_in_small_arenas() {
        let mut i = Interp::new(InterpConfig { arena_capacity: 512, ..Default::default() });
        for round in 0..200 {
            i.eval_str("(+ 1 2 3 4 5 6 7 8)").unwrap_or_else(|e| {
                panic!("round {round}: arena should never exhaust with GC: {e}")
            });
            collect(&mut i, &[]);
        }
    }

    #[test]
    fn gc_without_gc_small_arena_exhausts() {
        // Control experiment for the test above: without collection the
        // same loop must hit ArenaFull — the paper's stated limitation.
        let mut i = Interp::new(InterpConfig { arena_capacity: 512, ..Default::default() });
        let mut failed = false;
        for _ in 0..200 {
            if i.eval_str("(+ 1 2 3 4 5 6 7 8)").is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "fixed arena without GC must eventually exhaust");
    }

    #[test]
    fn gc_keeps_shared_structure_correct() {
        let mut i = Interp::default();
        i.eval_str("(setq base (list 2 3))").unwrap();
        i.eval_str("(setq extended (cons 1 base))").unwrap();
        collect(&mut i, &[]);
        assert_eq!(i.eval_str("base").unwrap(), "(2 3)");
        assert_eq!(i.eval_str("extended").unwrap(), "(1 2 3)");
    }
}
