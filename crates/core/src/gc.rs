//! Mark-and-sweep collection for the node arena.
//!
//! The paper names the fixed node array as CuLi's input-size limitation:
//! nodes are "marked as free" when no longer needed, but nothing in the C
//! original decides *when* that is safe. This module supplies that missing
//! piece: roots are every binding reachable from the environment tree (plus
//! any explicitly pinned nodes), everything else is swept back to the free
//! list. Running it between REPL inputs keeps long interactive sessions
//! from exhausting the arena — the extension the paper's §III-D "negative
//! point" paragraph calls for.
//!
//! The collector itself is allocation-free in steady state: the mark
//! bitmap is a word-packed `Vec<u64>` held on [`Interp`] and reused across
//! collections (the original allocated `vec![false; capacity]` each time),
//! the root/traversal stack is likewise pooled, environments that never
//! bound anything are skipped during root scanning, and the sweep is a
//! single arena pass that rebuilds the free-list in place instead of
//! collecting victims into a vector first.

use crate::interp::Interp;
use crate::node::Payload;
use crate::types::{EnvId, NodeId};

/// Result of one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Live nodes before the sweep.
    pub live_before: usize,
    /// Live nodes after the sweep.
    pub live_after: usize,
    /// Nodes returned to the free list.
    pub freed: usize,
}

/// Collects garbage: transient environments (everything created during
/// evaluation — form applications, `let` blocks, `|||` workers) are
/// reclaimed first, then every node not reachable from a surviving
/// environment binding or from `extra_roots` is freed. Returns sweep
/// statistics.
///
/// Safety of the sweep relies on two structural invariants: environments
/// only reference nodes (never the other way round), so reachability from
/// bindings + pinned roots is exactly liveness; and no node captures an
/// environment (CuLi is dynamically scoped), so environments beyond the
/// interpreter's persistent set are dead between evaluations. Accordingly,
/// `collect` must only run **between** evaluations (as the REPL runtimes
/// do), and callers must not retain [`crate::types::EnvId`]s of transient
/// environments across a collection.
pub fn collect(interp: &mut Interp, extra_roots: &[NodeId]) -> GcStats {
    let live_before = interp.arena.live();

    // Environments created during evaluation are unreachable once it
    // returns (dynamic scoping: nothing captures an environment), so drop
    // them before rooting — this is what lets form-application temporaries
    // die, and it keeps the root scan proportional to the persistent set
    // instead of every environment ever created.
    interp.envs.reclaim_transient(interp.persistent_envs);

    // Fold the worker-sync replay log down to its replayable core before
    // rooting it (see below) so it cannot pin dead values indefinitely.
    interp.envs.maybe_compact_sync_log();

    // Reused word-packed mark bitmap (cleared, not reallocated), sized to
    // the highest slot ever allocated: both marking and the sweep are
    // bounded by peak arena usage, not capacity.
    let bound = interp.arena.high_slot();
    let mut marked = std::mem::take(&mut interp.scratch.gc_marks);
    marked.clear();
    marked.resize(bound.div_ceil(64), 0);

    // Roots: every binding in every environment ever created. Environments
    // themselves are never collected (they are small and the paper keeps
    // them persistent for the interpreter's lifetime) — but the many dead
    // call/worker environments that never bound anything are skipped
    // outright instead of being re-walked every collection.
    let mut stack = std::mem::take(&mut interp.scratch.gc_roots);
    stack.clear();
    for e in 0..interp.envs.env_count() {
        let env = EnvId::new(e);
        if !interp.envs.has_local_bindings(env) {
            continue;
        }
        for (_, value) in interp.envs.local_bindings(env) {
            stack.push(value);
        }
    }
    stack.extend_from_slice(extra_roots);
    // Sync-log records are roots: a stale worker replica may still need to
    // replay a value that the master has since overwritten (compaction
    // above keeps this set proportional to distinct global definitions).
    stack.extend(interp.envs.sync_log_values());

    while let Some(id) = stack.pop() {
        let idx = id.index();
        let (word, bit) = (idx >> 6, 1u64 << (idx & 63));
        if marked[word] & bit != 0 {
            continue;
        }
        // A root may have been freed already by an explicit `free` misuse;
        // skip dead slots defensively rather than resurrecting them.
        if !interp.arena.is_live(id) {
            continue;
        }
        marked[word] |= bit;
        let node = *interp.arena.get(id);
        if let Some(next) = node.next {
            stack.push(next);
        }
        match node.payload {
            Payload::List {
                first: Some(first), ..
            } => stack.push(first),
            Payload::Form { params, body } => {
                stack.push(params);
                stack.push(body);
            }
            _ => {}
        }
    }

    // One arena pass: free unmarked slots and rebuild the free-list.
    let freed = interp.arena.sweep_unmarked(&marked);

    interp.scratch.gc_marks = marked;
    interp.scratch.gc_roots = stack; // drained by the mark loop
    GcStats {
        live_before,
        live_after: interp.arena.live(),
        freed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, InterpConfig};

    #[test]
    fn gc_frees_evaluation_temporaries() {
        let mut i = Interp::default();
        i.eval_str("(+ 1 2 3 4 5)").unwrap();
        let stats = collect(&mut i, &[]);
        assert!(stats.freed > 0, "temporaries should be collectable");
        assert!(stats.live_after < stats.live_before);
    }

    #[test]
    fn gc_preserves_global_definitions() {
        let mut i = Interp::default();
        i.eval_str("(defun sq (x) (* x x))").unwrap();
        i.eval_str("(setq v 9)").unwrap();
        collect(&mut i, &[]);
        assert_eq!(i.eval_str("(sq v)").unwrap(), "81");
    }

    #[test]
    fn gc_respects_extra_roots() {
        let mut i = Interp::default();
        let forms = crate::parser::parse(&mut i, b"(1 2 3)").unwrap();
        let pinned = forms[0];
        collect(&mut i, &[pinned]);
        // The pinned tree is intact and printable.
        assert_eq!(
            crate::printer::print_to_string(&mut i, pinned).unwrap(),
            "(1 2 3)"
        );
    }

    #[test]
    fn gc_enables_long_sessions_in_small_arenas() {
        let mut i = Interp::new(InterpConfig {
            arena_capacity: 512,
            ..Default::default()
        });
        for round in 0..200 {
            i.eval_str("(+ 1 2 3 4 5 6 7 8)").unwrap_or_else(|e| {
                panic!("round {round}: arena should never exhaust with GC: {e}")
            });
            collect(&mut i, &[]);
        }
    }

    #[test]
    fn gc_without_gc_small_arena_exhausts() {
        // Control experiment for the test above: without collection the
        // same loop must hit ArenaFull — the paper's stated limitation.
        let mut i = Interp::new(InterpConfig {
            arena_capacity: 512,
            ..Default::default()
        });
        let mut failed = false;
        for _ in 0..200 {
            if i.eval_str("(+ 1 2 3 4 5 6 7 8)").is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "fixed arena without GC must eventually exhaust");
    }

    #[test]
    fn gc_keeps_shared_structure_correct() {
        let mut i = Interp::default();
        i.eval_str("(setq base (list 2 3))").unwrap();
        i.eval_str("(setq extended (cons 1 base))").unwrap();
        collect(&mut i, &[]);
        assert_eq!(i.eval_str("base").unwrap(), "(2 3)");
        assert_eq!(i.eval_str("extended").unwrap(), "(1 2 3)");
    }
}
