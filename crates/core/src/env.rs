//! Environments — the symbol-binding trees of paper Figs. 6 and 7.
//!
//! *"An environment contains a linked list of environment nodes and a link
//! to a parent environment. The only exception is the global environment
//! that has no link to other environments. Each environment node itself
//! contains a symbol for comparison and the node that the symbol points
//! to."*
//!
//! Lookup walks the local binding list, then the parent chain, up to the
//! global environment; the *first* match wins (late binding, locally
//! shadowing). `set` (the engine of `setq`) mutates the nearest existing
//! binding — the one sanctioned side effect, which the paper warns must be
//! used carefully under parallel evaluation.
//!
//! # Simulated cost vs. real data structure
//!
//! The C original resolves a symbol by `strcmp`ing its way down every
//! binding list — O(total bindings) per lookup, which is brutal in the
//! global environment (it holds every builtin plus everything `defun`/
//! `setq` ever defined). The cost model must keep charging exactly that
//! faithful walk (`env_probes` + `symbol_cmp_bytes`), but nothing forces us
//! to *perform* it. This module therefore splits the two concerns:
//!
//! * **Real structure.** Environments below a small binding count are
//!   scanned inline — the list is at most `INLINE_SCAN_MAX` (8) long, symbols
//!   compare as interned-id equality, and each binding caches its name
//!   length, so the walk is a handful of integer compares. Environments
//!   that grow past the threshold (in practice: the global environment) are
//!   *promoted* to an `EnvIndex`: a `HashMap<StrId, BindingId>` resolving
//!   a symbol to its newest binding in O(1).
//! * **Simulated cost.** For promoted environments the paper-model charges
//!   are *computed* instead of accumulated: a per-environment histogram of
//!   binding-name lengths prices a full miss scan in O(distinct lengths),
//!   and a per-symbol charge cache prices a hit in O(1) between defines.
//!   The cache is **epoch-stamped and lazily recomputed**: each entry
//!   remembers the environment's define count (`stamp_len`) and the
//!   histogram aggregate for its own name length (`stamp_base`) as of its
//!   last refresh, and a stale entry is brought current on its next hit
//!   from the difference of those aggregates — every define prepended
//!   since the stamp adds exactly one probe and `min(L, new_len) + 1`
//!   strcmp bytes, and the histogram (which only ever grows) recovers the
//!   byte sum without replaying the individual defines. `define` on a
//!   promoted environment is therefore O(distinct name lengths) instead of
//!   O(indexed symbols): 10k top-level defines no longer pay the old
//!   O(N²) eager reshift of every entry. The numbers stay bit-identical
//!   to what the faithful scan would have charged (debug builds
//!   cross-check every lookup; `env_equivalence` asserts it at 10k-define
//!   scale in release too).
//!
//! In debug builds every indexed lookup is cross-checked against
//! [`EnvArena::lookup_legacy`], the retained reference implementation of
//! the faithful scan — both the resolved node and the exact meter deltas
//! must agree.
//!
//! # Sync epochs (persistent worker pools)
//!
//! The real-threads `|||` backend keeps long-lived worker interpreters
//! that were forked from the master once and must observe everything the
//! master defines *afterwards*. To make that incremental, the arena keeps
//! a monotonically increasing **sync epoch** and a replay log: every
//! mutation of a *logged* environment (the persistent set, marked with
//! [`EnvArena::start_sync_log`] — in practice the global environment)
//! appends a [`SyncRecord`]. A worker that last synchronized at epoch `e`
//! replays exactly [`EnvArena::sync_records_since`]`(e)` instead of being
//! re-cloned. The log is compacted during GC (only the newest record per
//! `(environment, symbol)` is replayable — older ones are shadowed or
//! overwritten anyway), so it stays proportional to the number of
//! distinct global definitions, and surviving record values are GC roots
//! until then.
//!
//! # Replay faithfulness and the snapshot frontier
//!
//! Replicas must reproduce the master's binding lists *structurally*, not
//! just by visible value: the paper's cost model charges a lookup for
//! every binding the faithful scan walks past, so a replica missing a
//! shadowed (dead) binding would meter job evaluation differently than
//! the sequential reference. Replaying an **uncompacted** window is
//! always structure-faithful (defines prepend, sets overwrite in place —
//! the same operations the master performed). Compaction, however, drops
//! shadowed `Define` records, so a replica whose sync epoch predates a
//! dropped define can no longer be repaired incrementally. The arena
//! tracks that boundary as [`EnvArena::sync_replay_faithful_since`]: a
//! replica synced at an older epoch must be resynchronized with a whole-
//! environment snapshot ([`crate::postbox::EnvSnapshot`]) instead —
//! which also bounds the packet by the *live* environment size rather
//! than the mutation volume. Dropping superseded `Set` records never
//! moves the frontier: sets do not change list structure, and a replica
//! replaying only the newest set still converges to the right visible
//! values (intermediate values are unobservable between sync points).

use crate::cost::Meter;
use crate::strings::StrTable;
use crate::types::{BindingId, EnvId, NodeId, StrId};
use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply–xor–shift hasher for the 4-byte interned-id keys of the symbol
/// index. SipHash (std's default) costs more than the whole inline scan it
/// replaces; id keys need no DoS resistance.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct IdHasher(u64);

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        let mut x = self.0 ^ v as u64;
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 32;
        self.0 = x;
    }
}

type IdBuildHasher = BuildHasherDefault<IdHasher>;

/// Binding-count threshold above which an environment is promoted from
/// inline scanning to a hashed symbol index. Call environments (a few
/// parameters) stay inline and allocation-free; the global environment
/// promotes while the builtins are registered.
const INLINE_SCAN_MAX: u32 = 8;

/// One `(symbol → node)` pair in an environment's linked list.
#[derive(Debug, Clone, Copy)]
struct Binding {
    sym: StrId,
    /// Byte length of the symbol's name, cached at definition time so
    /// charge computation never re-touches the string table (interned text
    /// is immutable, so the length cannot go stale).
    sym_len: u32,
    value: NodeId,
    next: Option<BindingId>,
}

/// One entry of a promoted environment's symbol index: the newest binding
/// of a symbol (the one the faithful scan finds first) together with the
/// precomputed paper-model charge of that scan — the probes and strcmp
/// bytes the faithful walk pays before (and including) the first match.
///
/// The charge halves live in [`Cell`]s because they are **lazily
/// refreshed on access** (lookup is `&self`): `probes`/`bytes` are
/// current as of `stamp_len` defines in the owning environment, and
/// [`IndexEntry::refresh`] brings a stale entry current from the
/// histogram aggregate delta instead of every define eagerly touching
/// every entry (the old O(N²) bulk-define cost).
#[derive(Debug, Clone)]
struct IndexEntry {
    binding: BindingId,
    /// Name length of the indexed symbol (the charge refresh compares it
    /// against the lengths of bindings prepended since the stamp).
    sym_len: u32,
    /// Probes the faithful scan pays to reach this binding, as of
    /// `stamp_len`. Invariant: equals the binding's 1-based position from
    /// the list head at the stamp (refreshes preserve it).
    probes: Cell<u64>,
    /// Strcmp bytes of that same scan, as of `stamp_len`.
    bytes: Cell<u64>,
    /// Owning environment's define count (`Env::len`) at the last
    /// refresh — the staleness epoch.
    stamp_len: Cell<u32>,
    /// `min_len_sum(sym_len) + len` at the last refresh; the next
    /// refresh's byte delta is the growth of this aggregate.
    stamp_base: Cell<u64>,
}

impl IndexEntry {
    /// Brings the cached hit charge current: every define since the stamp
    /// prepended one binding the faithful scan now walks past first,
    /// costing one probe and `min(sym_len, new_len) + 1` strcmp bytes —
    /// recovered in aggregate from the (append-only) length histogram.
    fn refresh(&self, index: &EnvIndex, len_now: u32) {
        if self.stamp_len.get() == len_now {
            return;
        }
        let base_now = index.min_len_sum(self.sym_len as u64) + len_now as u64;
        self.probes
            .set(self.probes.get() + (len_now - self.stamp_len.get()) as u64);
        self.bytes
            .set(self.bytes.get() + (base_now - self.stamp_base.get()));
        self.stamp_len.set(len_now);
        self.stamp_base.set(base_now);
    }

    /// The binding's current 1-based position from the list head (equals
    /// a refreshed `probes`, without forcing a byte recompute).
    fn position(&self, len_now: u32) -> u64 {
        self.probes.get() + (len_now - self.stamp_len.get()) as u64
    }
}

/// The acceleration structure of a promoted (binding-heavy) environment.
#[derive(Debug, Clone)]
struct EnvIndex {
    /// Symbol → newest binding plus its precomputed hit charge. One cheap
    /// hash probe resolves both the value and the simulated cost.
    map: HashMap<StrId, IndexEntry, IdBuildHasher>,
    /// Histogram of binding-name lengths over *all* local bindings,
    /// shadowed ones included (a miss scans past them too): sorted
    /// `(length, count)` pairs.
    len_histogram: Vec<(u32, u32)>,
}

impl EnvIndex {
    fn add_len(&mut self, len: u32) {
        match self.len_histogram.binary_search_by_key(&len, |&(l, _)| l) {
            Ok(i) => self.len_histogram[i].1 += 1,
            Err(i) => self.len_histogram.insert(i, (len, 1)),
        }
    }

    /// Σ over all bindings of `min(sym_len, binding_len)` — the variable
    /// part of a full miss scan's strcmp bytes.
    fn min_len_sum(&self, sym_len: u64) -> u64 {
        self.len_histogram
            .iter()
            .map(|&(len, count)| sym_len.min(len as u64) * count as u64)
            .sum()
    }
}

/// One environment: head of its binding list, the parent link, and (for
/// promoted environments) the symbol index.
#[derive(Debug, Clone)]
struct Env {
    parent: Option<EnvId>,
    first: Option<BindingId>,
    /// Number of local bindings, shadowed ones included.
    len: u32,
    index: Option<Box<EnvIndex>>,
}

/// How a logged environment mutation reached the arena — replaying a
/// `Define` prepends a fresh (shadowing) binding, replaying a `Set`
/// overwrites the visible binding (falling back to a define when the
/// replica never saw the original definition, e.g. after log compaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    /// A new binding was prepended (`defun`, top-level `let`, `setq`
    /// fallback on an unbound symbol).
    Define,
    /// The nearest existing binding's value was overwritten (`setq`).
    Set,
}

/// One replayable mutation of a logged (persistent) environment. `value`
/// is a node in the *owning* interpreter's arena; replicas re-materialize
/// it through the flat codec in [`crate::postbox`].
#[derive(Debug, Clone, Copy)]
pub struct SyncRecord {
    /// The epoch this mutation was stamped with (strictly increasing
    /// within the log, gap-free until compaction).
    pub epoch: u64,
    /// The mutated environment (persistent, so its id is stable across
    /// clones and collections).
    pub env: EnvId,
    /// The bound symbol.
    pub sym: StrId,
    /// The bound value.
    pub value: NodeId,
    /// Define vs. set semantics for replay.
    pub kind: SyncKind,
}

/// Arena of environments and bindings.
#[derive(Debug, Clone, Default)]
pub struct EnvArena {
    envs: Vec<Env>,
    bindings: Vec<Binding>,
    /// Environments with index below this record their mutations in
    /// `sync_log` (0 until [`EnvArena::start_sync_log`]).
    logged_envs: usize,
    /// Next epoch to stamp (== number of mutations ever logged).
    epoch: u64,
    /// Replayable mutations of logged environments, epoch-ascending.
    sync_log: Vec<SyncRecord>,
    /// Log length right after the last compaction (irreducible records);
    /// compaction re-runs only once the log doubles past it, so repeated
    /// collections over an already-minimal log do no work.
    compacted_len: usize,
    /// Oldest epoch from which an incremental replay is still structure-
    /// faithful (see the module docs): one past the newest `Define`
    /// record ever dropped by compaction. Replicas synced before this
    /// must snapshot-resync instead of replaying.
    faithful_epoch: u64,
}

impl EnvArena {
    /// Empty arena; create the global environment with [`EnvArena::push`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new environment whose parent is `parent` (`None` for the
    /// global environment).
    pub fn push(&mut self, parent: Option<EnvId>) -> EnvId {
        let id = EnvId::new(self.envs.len());
        self.envs.push(Env {
            parent,
            first: None,
            len: 0,
            index: None,
        });
        id
    }

    /// The parent of `env`, `None` at the global environment.
    pub fn parent(&self, env: EnvId) -> Option<EnvId> {
        self.envs[env.index()].parent
    }

    /// Number of environments ever created.
    pub fn env_count(&self) -> usize {
        self.envs.len()
    }

    /// Number of bindings ever created.
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    /// `true` if `env` has at least one local binding. GC root scanning
    /// uses this to skip the (numerous) dead call/worker environments that
    /// never bound anything.
    pub fn has_local_bindings(&self, env: EnvId) -> bool {
        self.envs[env.index()].first.is_some()
    }

    /// `true` once `env` carries a hashed symbol index (diagnostics,
    /// benches).
    pub fn is_promoted(&self, env: EnvId) -> bool {
        self.envs[env.index()].index.is_some()
    }

    /// Prepends a new binding `sym → value` to `env`'s local list. New
    /// bindings shadow older ones with the same symbol (both locally and up
    /// the chain) because lookup takes the first match.
    pub fn define(&mut self, env: EnvId, sym: StrId, value: NodeId, strings: &StrTable) {
        let sym_len = strings.len_of(sym) as u32;
        let b = BindingId::new(self.bindings.len());
        let head = self.envs[env.index()].first;
        self.bindings.push(Binding {
            sym,
            sym_len,
            value,
            next: head,
        });
        let e = &mut self.envs[env.index()];
        e.first = Some(b);
        e.len += 1;
        match &mut e.index {
            Some(index) => {
                // Lazy reshift: existing entries are *not* touched here —
                // each one catches up on its next hit from the histogram
                // delta (IndexEntry::refresh). Only the defined symbol
                // itself is (re)indexed, now matching at the head.
                index.add_len(sym_len);
                let stamp_base = index.min_len_sum(sym_len as u64) + e.len as u64;
                index.map.insert(
                    sym,
                    IndexEntry {
                        binding: b,
                        sym_len,
                        probes: Cell::new(1),
                        bytes: Cell::new(sym_len as u64 + 1),
                        stamp_len: Cell::new(e.len),
                        stamp_base: Cell::new(stamp_base),
                    },
                );
            }
            None => {
                if e.len > INLINE_SCAN_MAX {
                    self.promote(env);
                }
            }
        }
        self.log_mutation(env, sym, value, SyncKind::Define);
    }

    /// Starts recording mutations of every environment that exists right
    /// now (the persistent set) into the sync log. Called once by
    /// [`crate::interp::Interp::new`] after the builtins are registered —
    /// worker replicas fork *after* that point, so boot-time definitions
    /// never need replaying.
    pub fn start_sync_log(&mut self) {
        self.logged_envs = self.envs.len();
    }

    /// The current sync epoch: stamp a replica with this after replaying
    /// (or cloning), then replay [`EnvArena::sync_records_since`] of that
    /// stamp to catch up later.
    pub fn sync_epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of records currently held in the sync log (replicas use the
    /// growth of their *own* log to detect that a parallel job mutated
    /// persistent state and their fork has diverged from the master).
    pub fn sync_log_len(&self) -> usize {
        self.sync_log.len()
    }

    /// All logged mutations stamped at `epoch` or later, oldest first.
    pub fn sync_records_since(&self, epoch: u64) -> &[SyncRecord] {
        let start = self.sync_log.partition_point(|r| r.epoch < epoch);
        &self.sync_log[start..]
    }

    #[inline]
    fn log_mutation(&mut self, env: EnvId, sym: StrId, value: NodeId, kind: SyncKind) {
        if env.index() < self.logged_envs {
            self.sync_log.push(SyncRecord {
                epoch: self.epoch,
                env,
                sym,
                value,
                kind,
            });
            self.epoch += 1;
        }
    }

    /// Drops log records that can never influence a replay again: any
    /// record for an `(environment, symbol)` pair that has a newer record
    /// is either shadowed (define) or overwritten (set), so replaying only
    /// the newest yields the same visible bindings. Epoch stamps are
    /// preserved, so replicas holding older epochs stay correct. Called by
    /// [`crate::gc::collect`] once the log outgrows a small threshold;
    /// afterwards every surviving record value equals a live binding value.
    pub(crate) fn maybe_compact_sync_log(&mut self) {
        const COMPACT_THRESHOLD: usize = 64;
        // Amortization: a log can be irreducible (every record is the
        // newest for its symbol) — re-scanning it on every collection
        // would be pure waste, so wait until it doubles past the last
        // compacted size.
        if self.sync_log.len() <= COMPACT_THRESHOLD || self.sync_log.len() < self.compacted_len * 2
        {
            return;
        }
        let mut seen: std::collections::HashSet<(EnvId, StrId)> =
            std::collections::HashSet::with_capacity(self.sync_log.len());
        let mut keep = vec![false; self.sync_log.len()];
        for (i, r) in self.sync_log.iter().enumerate().rev() {
            if seen.insert((r.env, r.sym)) {
                keep[i] = true;
            } else if r.kind == SyncKind::Define {
                // A dropped define was a (now shadowed) binding the master
                // still carries: replicas older than it can no longer be
                // repaired structure-faithfully by replay — advance the
                // snapshot frontier past it.
                self.faithful_epoch = self.faithful_epoch.max(r.epoch + 1);
            }
        }
        let mut i = 0;
        self.sync_log.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
        self.compacted_len = self.sync_log.len();
    }

    /// Oldest sync epoch from which [`crate::postbox::SyncPacket`] replay
    /// still reproduces the master's binding-list structure exactly.
    /// Replicas synced before this epoch must be resynchronized with a
    /// whole-environment snapshot (see the module docs).
    pub fn sync_replay_faithful_since(&self) -> u64 {
        self.faithful_epoch
    }

    /// Number of environments recording into the sync log (the persistent
    /// set; 0 until [`EnvArena::start_sync_log`]).
    pub fn logged_env_count(&self) -> usize {
        self.logged_envs
    }

    /// Total live bindings (shadowed ones included) across the logged
    /// environments — the record count of a whole-environment snapshot,
    /// used to price snapshot-resync against incremental replay.
    pub fn logged_binding_count(&self) -> usize {
        self.envs[..self.logged_envs.min(self.envs.len())]
            .iter()
            .map(|e| e.len as usize)
            .sum()
    }

    /// Drops every local binding of `env` (list head, count and symbol
    /// index). Used by snapshot-resync to rebuild a replica's persistent
    /// environment from a master dump; the orphaned binding slots are
    /// compacted away by the replica's next
    /// [`EnvArena::reclaim_transient`].
    pub(crate) fn reset_env_bindings(&mut self, env: EnvId) {
        let e = &mut self.envs[env.index()];
        e.first = None;
        e.len = 0;
        e.index = None;
    }

    /// Values held by sync-log records. They are GC roots: between
    /// compactions a record may reference an already-overwritten value
    /// that a stale replica still needs to replay.
    pub(crate) fn sync_log_values(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.sync_log.iter().map(|r| r.value)
    }

    /// Builds the symbol index for an environment that outgrew inline
    /// scanning, pricing every indexed symbol's faithful hit scan up front.
    fn promote(&mut self, env: EnvId) {
        let mut index = EnvIndex {
            map: HashMap::default(),
            len_histogram: Vec::new(),
        };
        // Lengths of the bindings already walked (head side), in order: the
        // prefix a faithful scan examines before reaching each binding.
        let mut prefix_lens: Vec<u32> = Vec::new();
        let mut cur = self.envs[env.index()].first;
        let len_now = self.envs[env.index()].len;
        while let Some(b) = cur {
            let binding = &self.bindings[b.index()];
            // Walking head-first, the first occurrence of a symbol is its
            // newest (visible) binding — only that one is indexed.
            if let std::collections::hash_map::Entry::Vacant(slot) = index.map.entry(binding.sym) {
                let sym_len = binding.sym_len as u64;
                let prefix_bytes: u64 =
                    prefix_lens.iter().map(|&l| sym_len.min(l as u64) + 1).sum();
                slot.insert(IndexEntry {
                    binding: b,
                    sym_len: binding.sym_len,
                    probes: Cell::new(prefix_lens.len() as u64 + 1),
                    bytes: Cell::new(prefix_bytes + sym_len + 1),
                    stamp_len: Cell::new(len_now),
                    stamp_base: Cell::new(0), // stamped below, once the histogram is complete
                });
            }
            index.add_len(binding.sym_len);
            prefix_lens.push(binding.sym_len);
            cur = binding.next;
        }
        // Stamp every entry's histogram aggregate now that the histogram
        // covers the whole binding list.
        for entry in index.map.values() {
            entry
                .stamp_base
                .set(index.min_len_sum(entry.sym_len as u64) + len_now as u64);
        }
        self.envs[env.index()].index = Some(Box::new(index));
    }

    /// Resolves `sym` from `env` outwards, returning the binding (if any)
    /// together with the environment that owns it, plus the exact
    /// probe/byte charges the paper's faithful scan would have paid for
    /// this resolution.
    fn find(&self, env: EnvId, sym: StrId, sym_len: u64) -> (Option<(BindingId, EnvId)>, u64, u64) {
        let mut probes = 0u64;
        let mut bytes = 0u64;
        let mut cur_env = Some(env);
        while let Some(e) = cur_env {
            let env_ref = &self.envs[e.index()];
            match &env_ref.index {
                Some(index) => {
                    if let Some(entry) = index.map.get(&sym) {
                        entry.refresh(index, env_ref.len);
                        return (
                            Some((entry.binding, e)),
                            probes + entry.probes.get(),
                            bytes + entry.bytes.get(),
                        );
                    }
                    // Miss: the faithful scan examines every local binding.
                    probes += env_ref.len as u64;
                    bytes += env_ref.len as u64 + index.min_len_sum(sym_len);
                }
                None => {
                    // Inline environment: the list is short; scan it with
                    // interned-id equality, accumulating charges as we go.
                    let mut cur = env_ref.first;
                    while let Some(b) = cur {
                        let binding = &self.bindings[b.index()];
                        probes += 1;
                        bytes += sym_len.min(binding.sym_len as u64) + 1;
                        if binding.sym == sym {
                            return (Some((b, e)), probes, bytes);
                        }
                        cur = binding.next;
                    }
                }
            }
            cur_env = env_ref.parent;
        }
        (None, probes, bytes)
    }

    /// Looks `sym` up, walking `env` then its ancestors; first match wins.
    /// Charges one probe plus a `strcmp`-equivalent byte count per binding
    /// the *faithful* scan would have examined, mirroring the C
    /// implementation's per-binding `strcmp` (see the module docs for how
    /// the charges are computed without performing that scan).
    pub fn lookup(
        &self,
        env: EnvId,
        sym: StrId,
        strings: &StrTable,
        meter: &mut Meter,
    ) -> Option<NodeId> {
        let sym_len = strings.len_of(sym) as u64;
        let (found, probes, bytes) = self.find(env, sym, sym_len);
        meter.env_probes_n(probes);
        meter.symbol_cmp_bytes(bytes);
        let result = found.map(|(b, _)| self.bindings[b.index()].value);
        #[cfg(debug_assertions)]
        self.crosscheck_against_legacy(env, sym, strings, result, probes, bytes);
        result
    }

    /// `setq` semantics: overwrites the nearest existing binding of `sym`
    /// walking outwards from `env`. Returns `true` when a binding was
    /// found and updated; the caller falls back to a global `define`
    /// otherwise. Charges exactly like [`EnvArena::lookup`].
    pub fn set_nearest(
        &mut self,
        env: EnvId,
        sym: StrId,
        value: NodeId,
        strings: &StrTable,
        meter: &mut Meter,
    ) -> bool {
        let sym_len = strings.len_of(sym) as u64;
        let (found, probes, bytes) = self.find(env, sym, sym_len);
        meter.env_probes_n(probes);
        meter.symbol_cmp_bytes(bytes);
        #[cfg(debug_assertions)]
        self.crosscheck_against_legacy(
            env,
            sym,
            strings,
            found.map(|(b, _)| self.bindings[b.index()].value),
            probes,
            bytes,
        );
        match found {
            Some((b, owner)) => {
                // Value mutation only: scan order, name lengths and the
                // symbol index are all unaffected.
                self.bindings[b.index()].value = value;
                self.log_mutation(owner, sym, value, SyncKind::Set);
                true
            }
            None => false,
        }
    }

    /// Reference implementation: the seed's faithful linear scan, charging
    /// the meter per binding examined exactly as the C original's `strcmp`
    /// walk would. Kept for the debug-mode cross-check and the equivalence
    /// property tests; the optimized [`EnvArena::lookup`] must return the
    /// same node *and* the same meter deltas.
    pub fn lookup_legacy(
        &self,
        env: EnvId,
        sym: StrId,
        strings: &StrTable,
        meter: &mut Meter,
    ) -> Option<NodeId> {
        let sym_len = strings.len_of(sym) as u64;
        let mut cur_env = Some(env);
        while let Some(e) = cur_env {
            let mut cur = self.envs[e.index()].first;
            while let Some(b) = cur {
                let binding = &self.bindings[b.index()];
                meter.env_probe();
                // The C code strcmp()s the two names; equal-length prefix
                // comparison is the dominant cost, so charge the shorter of
                // the two lengths plus the terminator check.
                let cmp_len = sym_len.min(strings.len_of(binding.sym) as u64) + 1;
                meter.symbol_cmp_bytes(cmp_len);
                if binding.sym == sym {
                    return Some(binding.value);
                }
                cur = binding.next;
            }
            cur_env = self.envs[e.index()].parent;
        }
        None
    }

    #[cfg(debug_assertions)]
    fn crosscheck_against_legacy(
        &self,
        env: EnvId,
        sym: StrId,
        strings: &StrTable,
        result: Option<NodeId>,
        probes: u64,
        bytes: u64,
    ) {
        let mut legacy_meter = Meter::new();
        let legacy = self.lookup_legacy(env, sym, strings, &mut legacy_meter);
        debug_assert_eq!(
            legacy, result,
            "indexed lookup result diverged from the legacy scan"
        );
        let counters = legacy_meter.snapshot();
        debug_assert_eq!(
            (counters.env_probes, counters.symbol_cmp_bytes),
            (probes, bytes),
            "indexed lookup charges diverged from the legacy scan"
        );
    }

    /// Iterates the local bindings of one environment (no parents), newest
    /// first. Used by GC root scanning and diagnostics.
    pub fn local_bindings(&self, env: EnvId) -> impl Iterator<Item = (StrId, NodeId)> + '_ {
        LocalIter {
            arena: self,
            cur: self.envs[env.index()].first,
        }
    }

    /// Drops every environment past the first `keep_envs` (the persistent
    /// set: the global environment and anything created before evaluation
    /// started) and compacts the binding arena down to the bindings those
    /// environments still reference.
    ///
    /// CuLi is dynamically scoped: no node ever captures an environment, so
    /// environments created *during* evaluation (form applications, `let`
    /// blocks, `|||` workers) are garbage the moment evaluation returns.
    /// [`crate::gc::collect`] calls this between evaluations — without it,
    /// every form application leaks an environment whose bindings pin
    /// otherwise-dead nodes forever, and root scanning re-walks an
    /// ever-growing environment list each collection.
    ///
    /// Callers must not retain [`EnvId`]s or [`BindingId`]s of transient
    /// environments across this call.
    pub(crate) fn reclaim_transient(&mut self, keep_envs: usize) {
        if self.envs.len() <= keep_envs
            && self.bindings.len() as u64 == self.persistent_binding_estimate(keep_envs)
        {
            return;
        }
        let mut new_bindings: Vec<Binding> = Vec::new();
        for e in 0..keep_envs.min(self.envs.len()) {
            // Rebuild this environment's chain, preserving order: the
            // binding at head-position p lands at `base + p`.
            let base = new_bindings.len();
            let mut cur = self.envs[e].first;
            let mut new_first: Option<BindingId> = None;
            let mut prev: Option<usize> = None;
            while let Some(b) = cur {
                let mut binding = self.bindings[b.index()];
                cur = binding.next;
                binding.next = None;
                let idx = new_bindings.len();
                new_bindings.push(binding);
                match prev {
                    None => new_first = Some(BindingId::new(idx)),
                    Some(p) => new_bindings[p].next = Some(BindingId::new(idx)),
                }
                prev = Some(idx);
            }
            self.envs[e].first = new_first;
            // Remap the symbol index positionally: a (refreshed) entry's
            // `probes` is exactly its binding's 1-based position from the
            // head, so the relocated id is `base + position - 1` — where
            // `position` accounts for defines the lazy entry has not yet
            // caught up with (charges are positional and unaffected by
            // the move).
            let len_now = self.envs[e].len;
            if let Some(index) = &mut self.envs[e].index {
                for entry in index.map.values_mut() {
                    entry.binding = BindingId::new(base + entry.position(len_now) as usize - 1);
                }
            }
        }
        self.envs.truncate(keep_envs);
        self.bindings = new_bindings;
    }

    fn persistent_binding_estimate(&self, keep_envs: usize) -> u64 {
        self.envs[..keep_envs.min(self.envs.len())]
            .iter()
            .map(|e| e.len as u64)
            .sum()
    }
}

struct LocalIter<'a> {
    arena: &'a EnvArena,
    cur: Option<BindingId>,
}

impl Iterator for LocalIter<'_> {
    type Item = (StrId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        let b = self.cur?;
        let binding = &self.arena.bindings[b.index()];
        self.cur = binding.next;
        Some((binding.sym, binding.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (EnvArena, StrTable, Meter) {
        (EnvArena::new(), StrTable::new(), Meter::new())
    }

    #[test]
    fn define_then_lookup() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let x = strs.intern(b"x");
        let n = NodeId::new(7);
        envs.define(g, x, n, &strs);
        assert_eq!(envs.lookup(g, x, &strs, &mut m), Some(n));
    }

    #[test]
    fn lookup_missing_returns_none() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let x = strs.intern(b"x");
        assert_eq!(envs.lookup(g, x, &strs, &mut m), None);
    }

    #[test]
    fn child_sees_parent_bindings() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let child = envs.push(Some(g));
        let x = strs.intern(b"x");
        let n = NodeId::new(1);
        envs.define(g, x, n, &strs);
        assert_eq!(envs.lookup(child, x, &strs, &mut m), Some(n));
    }

    #[test]
    fn local_binding_shadows_parent() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let child = envs.push(Some(g));
        let x = strs.intern(b"x");
        envs.define(g, x, NodeId::new(1), &strs);
        envs.define(child, x, NodeId::new(2), &strs);
        assert_eq!(envs.lookup(child, x, &strs, &mut m), Some(NodeId::new(2)));
        assert_eq!(
            envs.lookup(g, x, &strs, &mut m),
            Some(NodeId::new(1)),
            "parent unaffected"
        );
    }

    #[test]
    fn rebinding_locally_shadows_older_local() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let x = strs.intern(b"x");
        envs.define(g, x, NodeId::new(1), &strs);
        envs.define(g, x, NodeId::new(2), &strs);
        assert_eq!(envs.lookup(g, x, &strs, &mut m), Some(NodeId::new(2)));
    }

    #[test]
    fn set_nearest_updates_local_over_global() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let child = envs.push(Some(g));
        let x = strs.intern(b"x");
        envs.define(g, x, NodeId::new(1), &strs);
        envs.define(child, x, NodeId::new(2), &strs);
        assert!(envs.set_nearest(child, x, NodeId::new(9), &strs, &mut m));
        assert_eq!(envs.lookup(child, x, &strs, &mut m), Some(NodeId::new(9)));
        assert_eq!(envs.lookup(g, x, &strs, &mut m), Some(NodeId::new(1)));
    }

    #[test]
    fn set_nearest_reaches_global_when_no_local() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let child = envs.push(Some(g));
        let x = strs.intern(b"x");
        envs.define(g, x, NodeId::new(1), &strs);
        assert!(envs.set_nearest(child, x, NodeId::new(5), &strs, &mut m));
        assert_eq!(
            envs.lookup(g, x, &strs, &mut m),
            Some(NodeId::new(5)),
            "global mutated"
        );
    }

    #[test]
    fn set_nearest_misses_when_unbound() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let x = strs.intern(b"x");
        assert!(!envs.set_nearest(g, x, NodeId::new(5), &strs, &mut m));
    }

    #[test]
    fn sibling_environments_are_isolated() {
        // Paper §III-D b: each worker's environment chains to the |||
        // expression's env; workers cannot see each other's bindings.
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let w1 = envs.push(Some(g));
        let w2 = envs.push(Some(g));
        let x = strs.intern(b"x");
        envs.define(w1, x, NodeId::new(11), &strs);
        assert_eq!(envs.lookup(w2, x, &strs, &mut m), None);
    }

    #[test]
    fn lookup_charges_probe_and_cmp_costs() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let a = strs.intern(b"alpha");
        let b = strs.intern(b"beta");
        envs.define(g, a, NodeId::new(1), &strs);
        envs.define(g, b, NodeId::new(2), &strs);
        // Looking up `alpha` probes `beta` (head) first, then `alpha`.
        let before = m.snapshot();
        envs.lookup(g, a, &strs, &mut m).unwrap();
        let d = m.snapshot().delta_since(&before);
        assert_eq!(d.env_probes, 2);
        // min(5,4)+1 = 5 bytes vs beta, min(5,5)+1 = 6 vs alpha.
        assert_eq!(d.symbol_cmp_bytes, 11);
    }

    #[test]
    fn local_bindings_iterates_newest_first() {
        let (mut envs, mut strs, _m) = fixture();
        let g = envs.push(None);
        let x = strs.intern(b"x");
        let y = strs.intern(b"y");
        envs.define(g, x, NodeId::new(1), &strs);
        envs.define(g, y, NodeId::new(2), &strs);
        let names: Vec<StrId> = envs.local_bindings(g).map(|(s, _)| s).collect();
        assert_eq!(names, vec![y, x]);
    }

    /// Fills one environment past the promotion threshold with numbered
    /// symbols; returns the ids in definition order.
    fn populate(envs: &mut EnvArena, strs: &mut StrTable, env: EnvId, n: usize) -> Vec<StrId> {
        (0..n)
            .map(|i| {
                let sym = strs.intern(format!("sym-{i}").as_bytes());
                envs.define(env, sym, NodeId::new(i), strs);
                sym
            })
            .collect()
    }

    #[test]
    fn promotion_preserves_results_and_charges() {
        // A large environment promotes to the hashed index; every lookup
        // (hit at every scan depth, plus a miss) must agree with the legacy
        // scan in both value and charges. Debug builds assert this inside
        // lookup; assert it explicitly so release test runs cover it too.
        let (mut envs, mut strs, _m) = fixture();
        let g = envs.push(None);
        let syms = populate(&mut envs, &mut strs, g, 40);
        assert!(envs.is_promoted(g));
        let missing = strs.intern(b"missing-symbol");
        for &sym in syms.iter().chain([&missing]) {
            let mut fast = Meter::new();
            let mut slow = Meter::new();
            let a = envs.lookup(g, sym, &strs, &mut fast);
            let b = envs.lookup_legacy(g, sym, &strs, &mut slow);
            assert_eq!(a, b);
            assert_eq!(fast.snapshot(), slow.snapshot(), "charges for {sym:?}");
        }
    }

    #[test]
    fn charges_track_defines_after_caching() {
        // Cache a hit charge, then prepend more bindings (including a
        // shadowing one) and make sure the memoized charges update.
        let (mut envs, mut strs, _m) = fixture();
        let g = envs.push(None);
        let syms = populate(&mut envs, &mut strs, g, 20);
        let probe = syms[3];
        let mut before = Meter::new();
        envs.lookup(g, probe, &strs, &mut before); // populates the cache
        let longer = strs.intern(b"a-much-longer-symbol-name");
        envs.define(g, longer, NodeId::new(99), &strs);
        envs.define(g, syms[7], NodeId::new(98), &strs); // shadow another
        for &sym in &[probe, syms[7], longer] {
            let mut fast = Meter::new();
            let mut slow = Meter::new();
            assert_eq!(
                envs.lookup(g, sym, &strs, &mut fast),
                envs.lookup_legacy(g, sym, &strs, &mut slow)
            );
            assert_eq!(fast.snapshot(), slow.snapshot(), "charges for {sym:?}");
        }
    }

    #[test]
    fn sync_log_records_only_logged_envs() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let boot = strs.intern(b"boot");
        envs.define(g, boot, NodeId::new(0), &strs); // before logging starts
        envs.start_sync_log();
        assert_eq!(envs.sync_epoch(), 0);
        let x = strs.intern(b"x");
        envs.define(g, x, NodeId::new(1), &strs);
        let child = envs.push(Some(g));
        let y = strs.intern(b"y");
        envs.define(child, y, NodeId::new(2), &strs); // transient: unlogged
        assert!(envs.set_nearest(child, x, NodeId::new(3), &strs, &mut m));
        let records = envs.sync_records_since(0);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].sym, x);
        assert_eq!(records[0].kind, SyncKind::Define);
        assert_eq!(records[1].kind, SyncKind::Set);
        assert_eq!(records[1].env, g, "set logged against the owning env");
        assert_eq!(records[1].value, NodeId::new(3));
        assert_eq!(envs.sync_records_since(1).len(), 1);
        assert_eq!(envs.sync_records_since(2).len(), 0);
        assert_eq!(envs.sync_epoch(), 2);
    }

    #[test]
    fn sync_log_compaction_keeps_newest_per_symbol() {
        let (mut envs, mut strs, _m) = fixture();
        let g = envs.push(None);
        envs.start_sync_log();
        let syms: Vec<StrId> = (0..10)
            .map(|i| strs.intern(format!("s{i}").as_bytes()))
            .collect();
        for round in 0..10 {
            for (i, &sym) in syms.iter().enumerate() {
                envs.define(g, sym, NodeId::new(round * 10 + i), &strs);
            }
        }
        assert_eq!(envs.sync_log_len(), 100);
        envs.maybe_compact_sync_log();
        let records = envs.sync_records_since(0);
        assert_eq!(records.len(), 10, "one surviving record per symbol");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.value, NodeId::new(90 + i), "newest value survives");
        }
        // Epochs stay ascending so replica replay boundaries stay valid.
        assert!(records.windows(2).all(|w| w[0].epoch < w[1].epoch));
        assert_eq!(envs.sync_epoch(), 100);
    }

    #[test]
    fn compaction_tracks_the_faithfulness_frontier() {
        let (mut envs, mut strs, _m) = fixture();
        let g = envs.push(None);
        envs.start_sync_log();
        let x = strs.intern(b"x");
        envs.define(g, x, NodeId::new(1), &strs); // epoch 0: shadowed later
        envs.define(g, x, NodeId::new(2), &strs); // epoch 1: kept
        for i in 0..70 {
            let s = strs.intern(format!("q{i}").as_bytes());
            envs.define(g, s, NodeId::new(i), &strs);
        }
        assert_eq!(envs.sync_replay_faithful_since(), 0);
        envs.maybe_compact_sync_log();
        // The dropped shadowed define carried epoch 0: replicas synced at
        // epoch 0 can no longer be repaired by replay.
        assert_eq!(envs.sync_replay_faithful_since(), 1);
    }

    #[test]
    fn dropping_superseded_sets_keeps_replay_faithful() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let y = strs.intern(b"y");
        // The binding predates the log (a boot/builtin-era definition), so
        // the log holds only Set records for it.
        envs.define(g, y, NodeId::new(0), &strs);
        envs.start_sync_log();
        for i in 0..70 {
            assert!(envs.set_nearest(g, y, NodeId::new(i), &strs, &mut m));
        }
        envs.maybe_compact_sync_log();
        // Sets never change list structure, so collapsing them does not
        // move the snapshot frontier.
        assert_eq!(envs.sync_replay_faithful_since(), 0);
        assert_eq!(envs.sync_records_since(0).len(), 1, "newest set only");
        assert_eq!(envs.sync_records_since(0)[0].value, NodeId::new(69));
    }

    #[test]
    fn dropping_a_set_superseded_define_moves_the_frontier() {
        // define y → set y: compaction keeps only the newest set, and the
        // dropped *define* makes older replicas unrepairable by replay
        // (a fallback re-define would land at the wrong list position if
        // other defines interleaved), so the frontier must move.
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        envs.start_sync_log();
        let y = strs.intern(b"y");
        envs.define(g, y, NodeId::new(0), &strs); // epoch 0: dropped
        for i in 0..70 {
            assert!(envs.set_nearest(g, y, NodeId::new(i), &strs, &mut m));
        }
        envs.maybe_compact_sync_log();
        assert_eq!(envs.sync_replay_faithful_since(), 1);
    }

    #[test]
    fn reset_env_bindings_clears_list_and_index() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let syms = populate(&mut envs, &mut strs, g, 40);
        assert!(envs.is_promoted(g));
        assert_eq!(envs.logged_binding_count(), 0, "log not started");
        envs.reset_env_bindings(g);
        assert!(!envs.has_local_bindings(g));
        assert!(!envs.is_promoted(g));
        assert_eq!(envs.lookup(g, syms[0], &strs, &mut m), None);
        // Redefining re-promotes once the threshold is crossed again.
        let again = populate(&mut envs, &mut strs, g, 40);
        assert!(envs.is_promoted(g));
        assert_eq!(
            envs.lookup(g, again[5], &strs, &mut m),
            Some(NodeId::new(5))
        );
    }

    #[test]
    fn deep_chain_misses_price_every_environment() {
        // A lookup that misses everywhere charges the full scan of every
        // environment on the chain, exactly like the legacy walk.
        let (mut envs, mut strs, _m) = fixture();
        let g = envs.push(None);
        populate(&mut envs, &mut strs, g, 30);
        let mut env = g;
        for i in 0..6 {
            env = envs.push(Some(env));
            let sym = strs.intern(format!("local-{i}").as_bytes());
            envs.define(env, sym, NodeId::new(i), &strs);
        }
        let missing = strs.intern(b"nope");
        let mut fast = Meter::new();
        let mut slow = Meter::new();
        assert_eq!(envs.lookup(env, missing, &strs, &mut fast), None);
        assert_eq!(envs.lookup_legacy(env, missing, &strs, &mut slow), None);
        assert_eq!(fast.snapshot(), slow.snapshot());
    }
}
