//! Environments — the symbol-binding trees of paper Figs. 6 and 7.
//!
//! *"An environment contains a linked list of environment nodes and a link
//! to a parent environment. The only exception is the global environment
//! that has no link to other environments. Each environment node itself
//! contains a symbol for comparison and the node that the symbol points
//! to."*
//!
//! Lookup walks the local binding list, then the parent chain, up to the
//! global environment; the *first* match wins (late binding, locally
//! shadowing). `set` (the engine of `setq`) mutates the nearest existing
//! binding — the one sanctioned side effect, which the paper warns must be
//! used carefully under parallel evaluation.

use crate::cost::Meter;
use crate::strings::StrTable;
use crate::types::{BindingId, EnvId, NodeId, StrId};

/// One `(symbol → node)` pair in an environment's linked list.
#[derive(Debug, Clone, Copy)]
struct Binding {
    sym: StrId,
    value: NodeId,
    next: Option<BindingId>,
}

/// One environment: head of its binding list plus the parent link.
#[derive(Debug, Clone, Copy)]
struct Env {
    parent: Option<EnvId>,
    first: Option<BindingId>,
}

/// Arena of environments and bindings.
#[derive(Debug, Clone, Default)]
pub struct EnvArena {
    envs: Vec<Env>,
    bindings: Vec<Binding>,
}

impl EnvArena {
    /// Empty arena; create the global environment with [`EnvArena::push`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new environment whose parent is `parent` (`None` for the
    /// global environment).
    pub fn push(&mut self, parent: Option<EnvId>) -> EnvId {
        let id = EnvId::new(self.envs.len());
        self.envs.push(Env { parent, first: None });
        id
    }

    /// The parent of `env`, `None` at the global environment.
    pub fn parent(&self, env: EnvId) -> Option<EnvId> {
        self.envs[env.index()].parent
    }

    /// Number of environments ever created.
    pub fn env_count(&self) -> usize {
        self.envs.len()
    }

    /// Number of bindings ever created.
    pub fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    /// Prepends a new binding `sym → value` to `env`'s local list. New
    /// bindings shadow older ones with the same symbol (both locally and up
    /// the chain) because lookup takes the first match.
    pub fn define(&mut self, env: EnvId, sym: StrId, value: NodeId) {
        let b = BindingId::new(self.bindings.len());
        let head = self.envs[env.index()].first;
        self.bindings.push(Binding { sym, value, next: head });
        self.envs[env.index()].first = Some(b);
    }

    /// Looks `sym` up, walking `env` then its ancestors; first match wins.
    /// Charges one probe plus a `strcmp`-equivalent byte count per binding
    /// examined, mirroring the C implementation's per-binding `strcmp`.
    pub fn lookup(
        &self,
        env: EnvId,
        sym: StrId,
        strings: &StrTable,
        meter: &mut Meter,
    ) -> Option<NodeId> {
        let sym_len = strings.len_of(sym) as u64;
        let mut cur_env = Some(env);
        while let Some(e) = cur_env {
            let mut cur = self.envs[e.index()].first;
            while let Some(b) = cur {
                let binding = &self.bindings[b.index()];
                meter.env_probe();
                // The C code strcmp()s the two names; equal-length prefix
                // comparison is the dominant cost, so charge the shorter of
                // the two lengths plus the terminator check.
                let cmp_len = sym_len.min(strings.len_of(binding.sym) as u64) + 1;
                meter.symbol_cmp_bytes(cmp_len);
                if binding.sym == sym {
                    return Some(binding.value);
                }
                cur = binding.next;
            }
            cur_env = self.envs[e.index()].parent;
        }
        None
    }

    /// `setq` semantics: overwrites the nearest existing binding of `sym`
    /// walking outwards from `env`. Returns `true` when a binding was
    /// found and updated; the caller falls back to a global `define`
    /// otherwise.
    pub fn set_nearest(
        &mut self,
        env: EnvId,
        sym: StrId,
        value: NodeId,
        strings: &StrTable,
        meter: &mut Meter,
    ) -> bool {
        let sym_len = strings.len_of(sym) as u64;
        let mut cur_env = Some(env);
        while let Some(e) = cur_env {
            let mut cur = self.envs[e.index()].first;
            while let Some(b) = cur {
                meter.env_probe();
                let binding = self.bindings[b.index()];
                let cmp_len = sym_len.min(strings.len_of(binding.sym) as u64) + 1;
                meter.symbol_cmp_bytes(cmp_len);
                if binding.sym == sym {
                    self.bindings[b.index()].value = value;
                    return true;
                }
                cur = binding.next;
            }
            cur_env = self.envs[e.index()].parent;
        }
        false
    }

    /// Iterates the local bindings of one environment (no parents), newest
    /// first. Used by GC root scanning and diagnostics.
    pub fn local_bindings(&self, env: EnvId) -> impl Iterator<Item = (StrId, NodeId)> + '_ {
        LocalIter { arena: self, cur: self.envs[env.index()].first }
    }
}

struct LocalIter<'a> {
    arena: &'a EnvArena,
    cur: Option<BindingId>,
}

impl Iterator for LocalIter<'_> {
    type Item = (StrId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        let b = self.cur?;
        let binding = &self.arena.bindings[b.index()];
        self.cur = binding.next;
        Some((binding.sym, binding.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (EnvArena, StrTable, Meter) {
        (EnvArena::new(), StrTable::new(), Meter::new())
    }

    #[test]
    fn define_then_lookup() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let x = strs.intern(b"x");
        let n = NodeId::new(7);
        envs.define(g, x, n);
        assert_eq!(envs.lookup(g, x, &strs, &mut m), Some(n));
    }

    #[test]
    fn lookup_missing_returns_none() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let x = strs.intern(b"x");
        assert_eq!(envs.lookup(g, x, &strs, &mut m), None);
    }

    #[test]
    fn child_sees_parent_bindings() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let child = envs.push(Some(g));
        let x = strs.intern(b"x");
        let n = NodeId::new(1);
        envs.define(g, x, n);
        assert_eq!(envs.lookup(child, x, &strs, &mut m), Some(n));
    }

    #[test]
    fn local_binding_shadows_parent() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let child = envs.push(Some(g));
        let x = strs.intern(b"x");
        envs.define(g, x, NodeId::new(1));
        envs.define(child, x, NodeId::new(2));
        assert_eq!(envs.lookup(child, x, &strs, &mut m), Some(NodeId::new(2)));
        assert_eq!(envs.lookup(g, x, &strs, &mut m), Some(NodeId::new(1)), "parent unaffected");
    }

    #[test]
    fn rebinding_locally_shadows_older_local() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let x = strs.intern(b"x");
        envs.define(g, x, NodeId::new(1));
        envs.define(g, x, NodeId::new(2));
        assert_eq!(envs.lookup(g, x, &strs, &mut m), Some(NodeId::new(2)));
    }

    #[test]
    fn set_nearest_updates_local_over_global() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let child = envs.push(Some(g));
        let x = strs.intern(b"x");
        envs.define(g, x, NodeId::new(1));
        envs.define(child, x, NodeId::new(2));
        assert!(envs.set_nearest(child, x, NodeId::new(9), &strs, &mut m));
        assert_eq!(envs.lookup(child, x, &strs, &mut m), Some(NodeId::new(9)));
        assert_eq!(envs.lookup(g, x, &strs, &mut m), Some(NodeId::new(1)));
    }

    #[test]
    fn set_nearest_reaches_global_when_no_local() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let child = envs.push(Some(g));
        let x = strs.intern(b"x");
        envs.define(g, x, NodeId::new(1));
        assert!(envs.set_nearest(child, x, NodeId::new(5), &strs, &mut m));
        assert_eq!(envs.lookup(g, x, &strs, &mut m), Some(NodeId::new(5)), "global mutated");
    }

    #[test]
    fn set_nearest_misses_when_unbound() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let x = strs.intern(b"x");
        assert!(!envs.set_nearest(g, x, NodeId::new(5), &strs, &mut m));
    }

    #[test]
    fn sibling_environments_are_isolated() {
        // Paper §III-D b: each worker's environment chains to the |||
        // expression's env; workers cannot see each other's bindings.
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let w1 = envs.push(Some(g));
        let w2 = envs.push(Some(g));
        let x = strs.intern(b"x");
        envs.define(w1, x, NodeId::new(11));
        assert_eq!(envs.lookup(w2, x, &strs, &mut m), None);
    }

    #[test]
    fn lookup_charges_probe_and_cmp_costs() {
        let (mut envs, mut strs, mut m) = fixture();
        let g = envs.push(None);
        let a = strs.intern(b"alpha");
        let b = strs.intern(b"beta");
        envs.define(g, a, NodeId::new(1));
        envs.define(g, b, NodeId::new(2));
        // Looking up `alpha` probes `beta` (head) first, then `alpha`.
        let before = m.snapshot();
        envs.lookup(g, a, &strs, &mut m).unwrap();
        let d = m.snapshot().delta_since(&before);
        assert_eq!(d.env_probes, 2);
        // min(5,4)+1 = 5 bytes vs beta, min(5,5)+1 = 6 vs alpha.
        assert_eq!(d.symbol_cmp_bytes, 11);
    }

    #[test]
    fn local_bindings_iterates_newest_first() {
        let (mut envs, mut strs, _m) = fixture();
        let g = envs.push(None);
        let x = strs.intern(b"x");
        let y = strs.intern(b"y");
        envs.define(g, x, NodeId::new(1));
        envs.define(g, y, NodeId::new(2));
        let names: Vec<StrId> = envs.local_bindings(g).map(|(s, _)| s).collect();
        assert_eq!(names, vec![y, x]);
    }
}
