//! The evaluator — recursive traversal of the parse tree (paper §III-B c).
//!
//! The dispatch follows the paper to the letter:
//!
//! * `N_SYMBOL` — look the symbol up through the environment chain; the
//!   first occurrence replaces it ("late binding"). **If there is no
//!   matching symbol, the symbol is not replaced** — unbound symbols
//!   evaluate to themselves, a deliberate CuLi quirk we preserve.
//! * `N_LIST` — evaluate the first element to decide whether the list is an
//!   expression (head is a built-in `N_FUNCTION`) or a form application
//!   (head is an `N_FORM`); otherwise evaluate all elements and return the
//!   resulting list.
//! * Expression: children are handed to the built-in **unevaluated**
//!   ("built-in functions might use them without evaluation, e.g. `setq`").
//! * Form: arguments are evaluated, a fresh environment binds the
//!   parameters, and the stored body is evaluated there. The new
//!   environment's parent is the *caller's* environment — CuLi is
//!   dynamically scoped, which is what lets the paper say "functions can
//!   behave differently to the same parameters in different environments".
//! * Anything else is a primitive and evaluates to itself.
//!
//! # Hot-path discipline
//!
//! The recursive walk is heap-allocation-free in steady state: list
//! children are gathered by following the sibling chain into pooled
//! scratch buffers ([`Interp::take_node_buf`]), form application reuses
//! pooled buffers for argument values and parameter symbols, and symbol
//! resolution goes through the indexed environment (see [`crate::env`]).
//! Only arena nodes — the paper's one real allocation — are created per
//! step, and their allocator is O(1) (see [`crate::arena`]).

use crate::error::{CuliError, Result};
use crate::interp::Interp;
use crate::node::{Node, NodeType, Payload};
use crate::types::{EnvId, NodeId};

/// Backend for `|||` parallel sections.
///
/// The core evaluator is backend-agnostic: when it reaches a `|||`
/// expression it builds one expression per worker (paper §III-D a) and asks
/// the hook to evaluate them. `culi-runtime` provides the GPU postbox
/// implementation and a real-thread CPU implementation; the default
/// [`SequentialHook`] evaluates jobs in order, which is semantically
/// identical (CuLi workers are side-effect-isolated).
pub trait ParallelHook {
    /// Evaluates each job expression in its own child environment of
    /// `parent_env`, appending results to `results` in job order.
    ///
    /// `results` is a caller-provided (pooled) buffer: `|||` hands every
    /// backend the same recycled scratch so a warm section performs no
    /// per-section heap allocation for result collection. Implementations
    /// must push exactly one value per job on success; on error the buffer
    /// contents are unspecified (the caller discards them).
    fn execute(
        &mut self,
        interp: &mut Interp,
        jobs: &[NodeId],
        parent_env: EnvId,
        results: &mut Vec<NodeId>,
    ) -> Result<()>;

    /// The number of workers this backend can serve, if bounded. The GPU
    /// backend's grid has a fixed worker count; `|||` rejects requests
    /// beyond it with [`CuliError::TooManyWorkers`].
    fn max_workers(&self) -> Option<usize> {
        None
    }
}

/// Evaluates jobs one after another on the calling thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct SequentialHook;

impl ParallelHook for SequentialHook {
    fn execute(
        &mut self,
        interp: &mut Interp,
        jobs: &[NodeId],
        parent_env: EnvId,
        results: &mut Vec<NodeId>,
    ) -> Result<()> {
        for (w, &job) in jobs.iter().enumerate() {
            // Paper §III-D b: each worker's subtree is rooted in an
            // environment whose parent is the |||-expression's environment.
            let env = interp.envs.push(Some(parent_env));
            let value = eval(interp, self, job, env, 0).map_err(|e| CuliError::WorkerFailed {
                worker: w,
                message: e.to_string(),
            })?;
            results.push(value);
        }
        Ok(())
    }
}

/// Evaluates `node` in `env`. `depth` is the current recursion depth.
pub fn eval(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    node: NodeId,
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    if depth > interp.config.max_depth {
        return Err(CuliError::RecursionLimit {
            limit: interp.config.max_depth,
        });
    }
    interp.meter.eval_step();
    // Fuel is checked *after* charging, at the one point every unbounded
    // loop must pass through (any runaway program re-enters `eval`), so
    // counters stay identical to an un-limited run up to the abort.
    if interp.meter.fuel_exhausted() {
        return Err(CuliError::FuelExhausted {
            budget: interp.meter.fuel_budget(),
        });
    }
    let n = *interp.arena.read(node, &mut interp.meter);
    match n.ty {
        NodeType::Symbol => {
            let sid = match n.payload {
                Payload::Text(s) => s,
                _ => return Err(CuliError::Internal("symbol without text")),
            };
            match interp
                .envs
                .lookup(env, sid, &interp.strings, &mut interp.meter)
            {
                Some(bound) => Ok(bound),
                None => Ok(node), // unbound symbols evaluate to themselves
            }
        }
        NodeType::List | NodeType::Expression => {
            let head = match n.payload {
                Payload::List {
                    first: Some(first), ..
                } => first,
                Payload::List { first: None, .. } => {
                    return Ok(node); // () evaluates to itself (nil-valued)
                }
                _ => return Err(CuliError::Internal("list without list payload")),
            };
            // Collect the argument ids by walking the sibling chain into a
            // pooled buffer: no per-eval Vec, and builtins still see a
            // contiguous `&[NodeId]`.
            let mut args = interp.take_node_buf();
            let mut cur = interp.arena.get(head).next;
            while let Some(id) = cur {
                args.push(id);
                cur = interp.arena.get(id).next;
            }
            let head_val = match eval_head(interp, hook, head, env, depth) {
                Ok(v) => v,
                Err(e) => {
                    interp.put_node_buf(args);
                    return Err(e);
                }
            };
            let head_node = *interp.arena.read(head_val, &mut interp.meter);
            let result = match head_node.ty {
                NodeType::Function => match head_node.payload {
                    Payload::Builtin(b) => {
                        interp.meter.builtin_call();
                        let f = interp.builtins.func(b);
                        f(interp, hook, &args, env, depth)
                    }
                    _ => Err(CuliError::Internal("function without builtin id")),
                },
                NodeType::Form => apply_form(interp, hook, head_val, &args, env, depth),
                NodeType::Macro => apply_macro(interp, hook, head_val, &args, env, depth),
                _ => eval_plain_list(interp, hook, head_val, &args, env, depth),
            };
            interp.put_node_buf(args);
            result
        }
        // Primitives (and already-built functions/forms) are returned
        // unchanged.
        _ => Ok(node),
    }
}

/// Charges the meter exactly as [`eval`] does when dispatching a
/// `(sym …)` expression whose head resolves to a value — one eval step
/// and node read for the expression, the inlined symbol-head step, read
/// and environment lookup, the resolved head's read, and (for a builtin
/// head) the call charge — while collecting the operand ids into `args`.
/// Returns the resolved head value (or the head node itself when the
/// symbol is unbound, mirroring self-evaluation).
///
/// This exists for dispatchers that need to *take over* after the
/// evaluator's dispatch point without re-entering [`eval`] — the
/// pipelined `|||` REPL path in `culi-runtime` stages a section's jobs
/// through it so its meter charges stay bit-identical to the recursive
/// path (the cross-backend differential harness asserts this).
pub fn charge_symbol_head_dispatch(
    interp: &mut Interp,
    form: NodeId,
    env: EnvId,
    args: &mut Vec<NodeId>,
) -> Result<NodeId> {
    interp.meter.eval_step();
    let n = *interp.arena.read(form, &mut interp.meter);
    let first = match n.payload {
        Payload::List {
            first: Some(first), ..
        } => first,
        _ => return Err(CuliError::Internal("symbol-head dispatch on a non-list")),
    };
    let mut cur = interp.arena.get(first).next;
    while let Some(id) = cur {
        args.push(id);
        cur = interp.arena.get(id).next;
    }
    interp.meter.eval_step();
    let h = *interp.arena.read(first, &mut interp.meter);
    let sid = match h.payload {
        Payload::Text(s) if h.ty == NodeType::Symbol => s,
        _ => {
            return Err(CuliError::Internal(
                "symbol-head dispatch on a non-symbol head",
            ))
        }
    };
    let head_val = interp
        .envs
        .lookup(env, sid, &interp.strings, &mut interp.meter)
        .unwrap_or(first);
    let head_node = *interp.arena.read(head_val, &mut interp.meter);
    if head_node.ty == NodeType::Function {
        interp.meter.builtin_call();
    }
    Ok(head_val)
}

/// Evaluates the head position of a list. Symbol heads — the common case:
/// every `(f …)` call — resolve inline instead of re-entering [`eval`],
/// with metering identical to the recursive path (one eval step, one node
/// read, the lookup's charges, and the same recursion-limit check).
#[inline]
fn eval_head(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    head: NodeId,
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    if interp.arena.get(head).ty == NodeType::Symbol {
        if depth + 1 > interp.config.max_depth {
            return Err(CuliError::RecursionLimit {
                limit: interp.config.max_depth,
            });
        }
        interp.meter.eval_step();
        let n = *interp.arena.read(head, &mut interp.meter);
        let sid = match n.payload {
            Payload::Text(s) => s,
            _ => return Err(CuliError::Internal("symbol without text")),
        };
        return Ok(
            match interp
                .envs
                .lookup(env, sid, &interp.strings, &mut interp.meter)
            {
                Some(bound) => bound,
                None => head, // unbound symbols evaluate to themselves
            },
        );
    }
    eval(interp, hook, head, env, depth + 1)
}

/// "Not an expression or form": evaluate all elements and return the
/// resulting list. `head_val` is the already-evaluated first element.
fn eval_plain_list(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    head_val: NodeId,
    rest: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let result = interp.alloc(Node::empty_list())?;
    let first = interp.copy_for_list(head_val)?;
    interp.arena.list_append(result, first);
    for &kid in rest {
        let v = eval(interp, hook, kid, env, depth + 1)?;
        let v = interp.copy_for_list(v)?;
        interp.arena.list_append(result, v);
    }
    Ok(result)
}

/// Applies a user-defined form: evaluate arguments, bind parameters in a
/// fresh environment chained to the caller's, evaluate the stored body.
/// Argument values and parameter symbols live in pooled scratch buffers,
/// so steady-state application is heap-allocation-free.
pub fn apply_form(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    form: NodeId,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let (params, body) = match interp.arena.get(form).payload {
        Payload::Form { params, body } => (params, body),
        _ => return Err(CuliError::Internal("apply_form on non-form")),
    };
    let mut param_syms = interp.take_sym_buf();
    if let Err(e) = param_symbols_into(interp, params, &mut param_syms) {
        interp.put_sym_buf(param_syms);
        return Err(e);
    }
    if param_syms.len() != args.len() {
        let expected = arity_name(param_syms.len());
        interp.put_sym_buf(param_syms);
        return Err(CuliError::Arity {
            builtin: "form application",
            expected,
            got: args.len(),
        });
    }
    // Evaluate arguments in the caller's environment first …
    let mut values = interp.take_node_buf();
    for &a in args {
        match eval(interp, hook, a, env, depth + 1) {
            Ok(v) => values.push(v),
            Err(e) => {
                interp.put_sym_buf(param_syms);
                interp.put_node_buf(values);
                return Err(e);
            }
        }
    }
    // … then bind them in a fresh environment and evaluate the body there.
    interp.meter.form_apply();
    let call_env = interp.envs.push(Some(env));
    for (&sym, &value) in param_syms.iter().zip(values.iter()) {
        interp.envs.define(call_env, sym, value, &interp.strings);
    }
    interp.put_sym_buf(param_syms);
    interp.put_node_buf(values);
    eval(interp, hook, body, call_env, depth + 1)
}

/// Applies a macro: bind the *unevaluated* argument nodes, evaluate the body
/// to obtain the expansion, then evaluate the expansion in the caller's
/// environment.
fn apply_macro(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    mac: NodeId,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let (params, body) = match interp.arena.get(mac).payload {
        Payload::Form { params, body } => (params, body),
        _ => return Err(CuliError::Internal("apply_macro on non-macro")),
    };
    let mut param_syms = interp.take_sym_buf();
    if let Err(e) = param_symbols_into(interp, params, &mut param_syms) {
        interp.put_sym_buf(param_syms);
        return Err(e);
    }
    if param_syms.len() != args.len() {
        let expected = arity_name(param_syms.len());
        interp.put_sym_buf(param_syms);
        return Err(CuliError::Arity {
            builtin: "macro application",
            expected,
            got: args.len(),
        });
    }
    interp.meter.form_apply();
    let expand_env = interp.envs.push(Some(env));
    for (&sym, &arg) in param_syms.iter().zip(args) {
        interp.envs.define(expand_env, sym, arg, &interp.strings);
    }
    interp.put_sym_buf(param_syms);
    let expansion = eval(interp, hook, body, expand_env, depth + 1)?;
    eval(interp, hook, expansion, env, depth + 1)
}

/// Collects the parameter symbols of a form's parameter list into a
/// caller-provided (pooled) buffer, walking the sibling chain directly.
fn param_symbols_into(
    interp: &Interp,
    params: NodeId,
    out: &mut Vec<crate::types::StrId>,
) -> Result<()> {
    for kid in interp.arena.iter_list(params) {
        match interp.arena.get(kid).payload {
            Payload::Text(s) if interp.arena.get(kid).ty == NodeType::Symbol => out.push(s),
            _ => {
                return Err(CuliError::Type {
                    builtin: "form application",
                    expected: "parameter list of symbols",
                })
            }
        }
    }
    Ok(())
}

fn arity_name(n: usize) -> &'static str {
    // Only used in error messages; avoids allocating in the common path.
    match n {
        0 => "exactly 0",
        1 => "exactly 1",
        2 => "exactly 2",
        3 => "exactly 3",
        4 => "exactly 4",
        _ => "the declared parameter count",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::InterpConfig;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    fn run_err(src: &str) -> CuliError {
        Interp::default().eval_str(src).unwrap_err()
    }

    #[test]
    fn paper_headline_example() {
        // Paper §III-A: (* 2 (+ 4 3) 6) = 84
        assert_eq!(run("(* 2 (+ 4 3) 6)"), "84");
    }

    #[test]
    fn primitives_self_evaluate() {
        assert_eq!(run("5"), "5");
        assert_eq!(run("1.25"), "1.25");
        assert_eq!(run("nil"), "nil");
        assert_eq!(run("T"), "T");
        assert_eq!(run("\"s\""), "\"s\"");
    }

    #[test]
    fn unbound_symbols_evaluate_to_themselves() {
        // Paper: "If there is no matching symbol, the symbol is not
        // replaced."
        assert_eq!(run("frobnicate"), "frobnicate");
    }

    #[test]
    fn non_function_list_evaluates_elements() {
        assert_eq!(run("(1 2 3)"), "(1 2 3)");
        assert_eq!(run("(1 (+ 1 1) 3)"), "(1 2 3)");
    }

    #[test]
    fn empty_list_evaluates_to_itself() {
        assert_eq!(run("()"), "()");
    }

    #[test]
    fn defun_and_recursion() {
        let mut i = Interp::default();
        i.eval_str("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
            .unwrap();
        assert_eq!(i.eval_str("(fib 5)").unwrap(), "5");
        assert_eq!(i.eval_str("(fib 10)").unwrap(), "55");
    }

    #[test]
    fn recursion_limit_enforced() {
        let mut i = Interp::new(InterpConfig {
            max_depth: 64,
            ..Default::default()
        });
        i.eval_str("(defun inf (n) (inf (+ n 1)))").unwrap();
        assert!(matches!(
            i.eval_str("(inf 0)").unwrap_err(),
            CuliError::RecursionLimit { limit: 64 }
        ));
    }

    #[test]
    fn form_arity_checked() {
        let mut i = Interp::default();
        i.eval_str("(defun two (a b) (+ a b))").unwrap();
        assert!(matches!(
            i.eval_str("(two 1)").unwrap_err(),
            CuliError::Arity { got: 1, .. }
        ));
    }

    #[test]
    fn dynamic_scoping_visible_through_call_chain() {
        // Callee sees the caller's let-binding: CuLi environments chain to
        // the caller, not the definition site.
        let mut i = Interp::default();
        i.eval_str("(defun get-x () x)").unwrap();
        i.eval_str("(defun with-x () (progn (let x 99) (get-x)))")
            .unwrap();
        assert_eq!(i.eval_str("(with-x)").unwrap(), "99");
    }

    #[test]
    fn lambda_applies_inline() {
        assert_eq!(run("((lambda (x y) (* x y)) 6 7)"), "42");
    }

    #[test]
    fn worker_failure_reports_index() {
        let err = run_err("(||| 2 / (1 2) (1 0))");
        match err {
            CuliError::WorkerFailed { worker, message } => {
                assert_eq!(worker, 1);
                assert!(message.contains("zero"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eval_steps_counted() {
        let mut i = Interp::default();
        let before = i.meter.snapshot();
        i.eval_str("(+ 1 2)").unwrap();
        let d = i.meter.snapshot().delta_since(&before);
        assert!(d.eval_steps >= 4, "eval steps {}", d.eval_steps);
        assert_eq!(d.builtin_calls, 1);
    }
}
