//! Order-sensitive structural hashing and equality over parsed trees.
//!
//! The cache layer (`culi_runtime::cache` in the runtime crate) keys on
//! the *shape and content* of a parsed command, not its [`NodeId`]s:
//! repeated traffic re-parses into fresh arena slots every time, so node
//! identity is useless as a key while structure repeats exactly. This
//! module produces that key.
//!
//! # Canonical encoding
//!
//! [`StructKey::of`] walks a tree (charge-free — it reads the arena and
//! string table directly and never touches the meter) and emits a
//! **canonical byte encoding**: one tag byte per node, payloads serialized
//! by value (integers/floats little-endian, symbol and string *bytes*
//! rather than intern ids, builtin registry indices — stable across
//! interpreters because the registry is populated in a fixed order at
//! boot), children in order with an explicit end marker. The encoding is
//! injective: two trees produce the same byte string iff they are
//! structurally equal, including order. Equality of keys is therefore a
//! *full tree compare*, and the 64-bit FNV-1a hash over the encoding is
//! only an accelerator — a hash collision between different trees is
//! caught by the byte compare and never produces a false "equal"
//! ([`StructKey::tree_equal`]). Cache tests force collisions by narrowing
//! the hash with a mask ([`StructKey::masked`]) and rely on exactly this
//! fallback.
//!
//! # Charge-exactness
//!
//! Hashing is free by construction: the walk uses [`crate::arena::NodeArena::get`]
//! (unmetered) and [`crate::strings::StrTable::get`], so a cache layer
//! built on these keys cannot perturb the paper-model meter, which must
//! stay bit-identical with caching on or off.

use crate::interp::Interp;
use crate::node::{NodeType, Payload};
use crate::types::NodeId;

const TAG_NIL: u8 = 0;
const TAG_TRUE: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_SYMBOL: u8 = 5;
const TAG_FUNCTION: u8 = 6;
const TAG_LIST: u8 = 7;
const TAG_EXPRESSION: u8 = 8;
const TAG_FORM: u8 = 9;
const TAG_MACRO: u8 = 10;
/// Closes a `LIST`/`EXPRESSION` child sequence; no node tag collides.
const TAG_END: u8 = 0xF7;
/// Separates the top-level forms of a multi-form command.
const TAG_FORM_SEP: u8 = 0xF8;

/// Structural identity of a parsed tree: a canonical byte encoding plus
/// its FNV-1a hash. See the module docs for the encoding contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructKey {
    /// FNV-1a over `canon`. Accelerator only — never trusted alone.
    pub hash: u64,
    /// The injective canonical encoding; equality here *is* full
    /// structural tree equality.
    pub canon: Vec<u8>,
}

impl StructKey {
    /// The key of the tree rooted at `root`. Charge-free.
    pub fn of(interp: &Interp, root: NodeId) -> Self {
        let mut canon = Vec::with_capacity(64);
        encode_tree(interp, root, &mut canon);
        let hash = fnv1a(&canon);
        Self { hash, canon }
    }

    /// The key of a whole command: its top-level forms in order, with a
    /// form count prefix so `(a)(b)` never aliases `(a b)`. Charge-free.
    pub fn of_forms(interp: &Interp, roots: &[NodeId]) -> Self {
        let mut canon = Vec::with_capacity(64 * roots.len().max(1));
        canon.extend_from_slice(&(roots.len() as u32).to_le_bytes());
        for &root in roots {
            encode_tree(interp, root, &mut canon);
            canon.push(TAG_FORM_SEP);
        }
        let hash = fnv1a(&canon);
        Self { hash, canon }
    }

    /// Full structural equality (the collision check): compares the
    /// canonical encodings byte for byte.
    pub fn tree_equal(&self, other: &StructKey) -> bool {
        self.canon == other.canon
    }

    /// For a single-form command key (produced by [`StructKey::of_forms`]
    /// over exactly one root), the key of that form alone — recovered by
    /// slicing the count prefix and form separator off the canonical
    /// encoding instead of re-walking the tree. `None` when the key
    /// holds zero or several forms.
    pub fn single_form(&self) -> Option<StructKey> {
        let count = u32::from_le_bytes(self.canon.get(..4)?.try_into().ok()?);
        if count != 1 || *self.canon.last()? != TAG_FORM_SEP {
            return None;
        }
        let canon = self.canon[4..self.canon.len() - 1].to_vec();
        Some(StructKey {
            hash: fnv1a(&canon),
            canon,
        })
    }

    /// The hash narrowed by `mask`. Caches bucket on this so tests can
    /// force collisions (e.g. `mask = 0`) and prove the byte-compare
    /// fallback serves no wrong reply.
    pub fn masked(&self, mask: u64) -> u64 {
        self.hash & mask
    }

    /// Heap bytes this key retains (for cache byte budgets).
    pub fn retained_bytes(&self) -> usize {
        self.canon.len()
    }
}

/// FNV-1a over `bytes` (the postbox's sibling hash discipline: simple,
/// deterministic, dependency-free).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One step of the explicit-stack preorder walk.
enum Step {
    Node(NodeId),
    Byte(u8),
}

fn encode_tree(interp: &Interp, root: NodeId, out: &mut Vec<u8>) {
    let mut stack = vec![Step::Node(root)];
    while let Some(step) = stack.pop() {
        let id = match step {
            Step::Byte(b) => {
                out.push(b);
                continue;
            }
            Step::Node(id) => id,
        };
        let node = interp.arena.get(id);
        match (node.ty, node.payload) {
            (NodeType::Nil, _) => out.push(TAG_NIL),
            (NodeType::True, _) => out.push(TAG_TRUE),
            (NodeType::Int, Payload::Int(v)) => {
                out.push(TAG_INT);
                out.extend_from_slice(&v.to_le_bytes());
            }
            (NodeType::Float, Payload::Float(v)) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            (NodeType::Str, Payload::Text(s)) | (NodeType::Symbol, Payload::Text(s)) => {
                out.push(if node.ty == NodeType::Str {
                    TAG_STR
                } else {
                    TAG_SYMBOL
                });
                let text = interp.strings.get(s);
                out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                out.extend_from_slice(text);
            }
            (NodeType::Function, Payload::Builtin(f)) => {
                out.push(TAG_FUNCTION);
                out.extend_from_slice(&(f.index() as u32).to_le_bytes());
            }
            (NodeType::List, _) | (NodeType::Expression, _) => {
                out.push(if node.ty == NodeType::List {
                    TAG_LIST
                } else {
                    TAG_EXPRESSION
                });
                stack.push(Step::Byte(TAG_END));
                // Children must pop in list order: extend forward, then
                // reverse the just-pushed range in place (no per-node
                // scratch allocation — this walk is on the cache's probe
                // hot path).
                let start = stack.len();
                stack.extend(interp.arena.iter_list(id).map(Step::Node));
                stack[start..].reverse();
            }
            (NodeType::Form, Payload::Form { params, body })
            | (NodeType::Macro, Payload::Form { params, body }) => {
                out.push(if node.ty == NodeType::Form {
                    TAG_FORM
                } else {
                    TAG_MACRO
                });
                stack.push(Step::Node(body));
                stack.push(Step::Node(params));
            }
            // A tag/payload mismatch cannot come out of the parser or
            // the evaluator's constructors; encode defensively as nil so
            // the walk never panics on a foreign tree.
            _ => out.push(TAG_NIL),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::InterpConfig;
    use crate::parser;

    fn parse_one(interp: &mut Interp, src: &str) -> NodeId {
        let forms = parser::parse(interp, src.as_bytes()).expect("parse");
        assert_eq!(forms.len(), 1, "{src}");
        forms[0]
    }

    fn key_of(src: &str) -> StructKey {
        let mut interp = Interp::new(InterpConfig::default());
        let root = parse_one(&mut interp, src);
        StructKey::of(&interp, root)
    }

    #[test]
    fn identical_sources_hash_identically_across_interps() {
        // Fresh interpreters, fresh arenas, different NodeIds — same key.
        let a = key_of("(+ 1 (list 2.5 \"x\") 'sym)");
        let b = key_of("(+ 1 (list 2.5 \"x\") 'sym)");
        assert_eq!(a, b);
        assert!(a.tree_equal(&b));
    }

    #[test]
    fn structure_is_order_sensitive() {
        assert_ne!(key_of("(+ 1 2)").canon, key_of("(+ 2 1)").canon);
        assert_ne!(key_of("(list 1 2)").canon, key_of("(list (1 2))").canon);
        assert_ne!(key_of("(a (b) c)").canon, key_of("(a (b c))").canon);
    }

    #[test]
    fn value_kinds_do_not_alias() {
        // Same printed digits, different node types.
        assert_ne!(key_of("1").canon, key_of("1.0").canon);
        assert_ne!(key_of("\"x\"").canon, key_of("'x").canon);
        assert_ne!(key_of("()").canon, key_of("nil").canon);
    }

    #[test]
    fn multi_form_commands_do_not_alias_merged_forms() {
        let mut interp = Interp::new(InterpConfig::default());
        let two = parser::parse(&mut interp, b"(a) (b)").expect("parse");
        let one = parser::parse(&mut interp, b"(a (b))").expect("parse");
        let k2 = StructKey::of_forms(&interp, &two);
        let k1 = StructKey::of_forms(&interp, &one);
        assert_ne!(k2.canon, k1.canon);
        assert!(!k2.tree_equal(&k1));
    }

    #[test]
    fn masked_hash_collides_but_tree_compare_distinguishes() {
        let a = key_of("(+ 1 2)");
        let b = key_of("(+ 1 3)");
        assert_ne!(a.hash, b.hash);
        // Narrow to nothing: forced collision...
        assert_eq!(a.masked(0), b.masked(0));
        // ...yet the full compare still tells them apart.
        assert!(!a.tree_equal(&b));
    }

    #[test]
    fn single_form_key_matches_direct_encode() {
        let mut interp = Interp::new(InterpConfig::default());
        let forms = parser::parse(&mut interp, b"(+ 1 (list 2 3))").expect("parse");
        let command = StructKey::of_forms(&interp, &forms);
        let derived = command.single_form().expect("one form");
        assert_eq!(derived, StructKey::of(&interp, forms[0]));
        let multi = parser::parse(&mut interp, b"(a) (b)").expect("parse");
        assert!(StructKey::of_forms(&interp, &multi).single_form().is_none());
    }

    #[test]
    fn hashing_is_charge_free() {
        let mut interp = Interp::new(InterpConfig::default());
        let root = parse_one(&mut interp, "(defun f (x) (* x (+ x 1)))");
        let before = interp.meter.snapshot();
        let _k = StructKey::of(&interp, root);
        assert_eq!(
            interp.meter.snapshot(),
            before,
            "struct hashing must never charge"
        );
    }
}
