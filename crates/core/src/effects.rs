//! Conservative side-effect analysis over parsed expressions.
//!
//! The pipelined REPL dispatchers (`culi-runtime`) may evaluate a
//! command's `|||` operands *ahead of time* — while earlier sections are
//! still in flight — and ship whole runs of sections as one rendezvous.
//! That reordering is only invisible when evaluating the operands can
//! neither change persistent interpreter state nor observe state that an
//! in-flight command could still change. This module answers exactly that
//! question: [`expr_is_pure`] classifies an expression as **pure** when
//! its evaluation provably has no effect beyond allocating nodes and
//! producing a value, and [`stageable_parallel_section`] applies the rule
//! to a whole top-level `(||| …)` command.
//!
//! # Classification rules
//!
//! * **Atoms** (numbers, strings, `nil`, `T`, already-built values)
//!   self-evaluate — pure.
//! * **Symbols** evaluate to an environment lookup (or to themselves when
//!   unbound) — a read-only probe, pure.
//! * **Lists** dispatch on their head:
//!   * head symbol resolving to a **known-pure builtin** (arithmetic,
//!     comparisons, list constructors and accessors, predicates, logic,
//!     control flow, string operations — see [`builtin_effect`]): pure iff
//!     every operand is pure. `quote` and `lambda` never evaluate their
//!     operands, so they are pure regardless of operand content.
//!     `cond`, `dotimes` and `dolist` carry structured operands (clause
//!     lists, `(var source)` headers) and are analyzed structurally.
//!   * head symbol resolving to the **`quasiquote`** builtin: the
//!     template is walked with the same quotation-level tracking the
//!     expander uses (`builtins::quasi::expand`). Template structure
//!     copies purely; an `unquote`/`unquote-splicing` hole that *fires*
//!     (reaches level 1) evaluates its expression for real, so the
//!     expression must itself be pure; a hole protected by a nested
//!     backquote stays literal at this expansion and only its own
//!     re-expansion depth is checked. Marker symbols in data positions
//!     (non-head) are inert. Malformed holes (wrong marker arity) and a
//!     top-level `,@` are barriers.
//!   * head symbol resolving to anything that **defines or mutates**
//!     (`setq`, `defun`, `let`, …), performs **host I/O** (`read-file`,
//!     …), evaluates arbitrary structure (`eval`, a quasiquote template
//!     with unquote holes), invokes user code (`mapcar`, `apply`,
//!     `funcall`, any user form or macro) or opens a nested parallel
//!     section (`|||`): **impure**.
//!   * head symbol resolving to a plain value, or unbound, or a non-symbol
//!     atom head: the list evaluates element-wise — pure iff every element
//!     is pure.
//!   * a computed head (the head is itself a list): impure. Its value
//!     cannot be known without evaluating it, and it might be callable.
//!
//! # Why conservative
//!
//! The classifier must never call an expression pure that is not; the
//! reverse (calling a pure expression impure) merely costs a pipeline
//! drain. Two deliberate sources of imprecision:
//!
//! * **Rebindable heads.** A head symbol is resolved against the
//!   environment *at classification time*. That resolution is stable for
//!   everything the dispatchers stage — staged commands are themselves
//!   pure, and defining commands act as barriers that drain the pipeline
//!   first — with one exception: the pure looping builtins bind their loop
//!   variable at runtime, possibly to a callable value the static lookup
//!   cannot see (`(dolist (f (list some-form)) (f 1))`). The analysis
//!   therefore tracks loop-shadowed symbols and refuses any application
//!   whose head is one of them.
//! * **Value-dependent behaviour.** Anything whose effect depends on a
//!   computed value (computed heads, `eval`, higher-order builtins
//!   applying a function argument) is rejected wholesale instead of
//!   approximated.
//!
//! Errors are *not* effects: a pure expression may still fail (division by
//! zero, type errors, recursion limits). Staging such an expression early
//! produces the identical error at the identical meter charge, which is
//! all the dispatchers need.
//!
//! # Charge-exactness contract
//!
//! Classification is bookkeeping, not interpreter work: it charges
//! **nothing** to the session meter (environment probes go through a
//! scratch [`Meter`]), allocates no nodes, and leaves the interpreter
//! untouched. The dispatchers that act on a verdict reproduce the
//! evaluator's charges separately (see
//! [`crate::eval::charge_symbol_head_dispatch`] and
//! [`crate::builtins::prepare_section`]); the cross-backend differential
//! harness asserts the resulting per-command counters stay bit-identical
//! to the recursive evaluator's.

use crate::cost::Meter;
use crate::interp::Interp;
use crate::node::{NodeType, Payload};
use crate::types::{EnvId, NodeId, StrId};

/// How evaluating one builtin behaves for the purposes of staging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinEffect {
    /// A function of its evaluated operands: the application is pure iff
    /// every operand is pure.
    Pure,
    /// Never evaluates its operands (`quote`, `lambda`): always pure.
    PureUnevaluated,
    /// Defines, mutates, performs host I/O, runs arbitrary code or opens
    /// a parallel section: never stageable.
    Impure,
}

/// The known-pure builtins table. Unknown names default to
/// [`BuiltinEffect::Impure`] so future builtins are conservative until
/// someone classifies them deliberately.
pub fn builtin_effect(name: &str) -> BuiltinEffect {
    match name {
        // Arithmetic & extended math.
        "+" | "-" | "*" | "/" | "mod" | "abs" | "min" | "max" | "1+" | "1-" | "sqrt" | "expt"
        | "floor" | "ceiling" | "truncate" | "float" => BuiltinEffect::Pure,
        // Comparisons & predicates.
        "=" | "/=" | "<" | ">" | "<=" | ">=" | "eq" | "equal" | "atom" | "null" | "listp"
        | "consp" | "numberp" | "symbolp" | "stringp" | "zerop" | "integerp" | "floatp"
        | "evenp" | "oddp" => BuiltinEffect::Pure,
        // List construction and traversal (no user code runs).
        "car" | "cdr" | "cons" | "list" | "append" | "length" | "reverse" | "nth" | "assoc"
        | "member" | "last" | "butlast" => BuiltinEffect::Pure,
        // Control flow and logic over already-classified operands.
        // `cond`/`dotimes`/`dolist` are structurally re-checked in
        // `application_is_pure` (clause lists, loop-variable shadowing).
        "if" | "cond" | "progn" | "when" | "unless" | "while" | "and" | "or" | "not"
        | "dotimes" | "dolist" => BuiltinEffect::Pure,
        // String operations (interning is not an observable effect).
        "concat" | "string-length" | "substring" | "string=" | "number-to-string"
        | "string-to-number" => BuiltinEffect::Pure,
        // Operands are never evaluated; the produced value is inert until
        // somebody *applies* it, which classification rejects separately.
        "quote" | "lambda" => BuiltinEffect::PureUnevaluated,
        // Everything that defines/mutates (`setq`, `defun`, `defmacro`,
        // `let`, `let*`), performs host I/O, evaluates arbitrary structure
        // (`eval`; `quasiquote` stays impure *here* but templates whose
        // firing holes are all pure are re-admitted level-tracked in
        // `application_is_pure`), applies function values (`mapcar`,
        // `apply`, `funcall`) or opens a section (`|||`) — plus any name
        // this table has never heard of.
        _ => BuiltinEffect::Impure,
    }
}

/// `true` when evaluating `expr` in `env` provably has no effect on
/// persistent interpreter state (no defines, no mutation, no host I/O, no
/// user code, no nested `|||`). Charges nothing to the session meter.
pub fn expr_is_pure(interp: &Interp, env: EnvId, expr: NodeId) -> bool {
    let mut shadowed = Vec::new();
    pure_rec(interp, env, expr, &mut shadowed)
}

/// `true` when `form` is a top-level `(sym …)` command whose head symbol
/// resolves to the `|||` builtin in `env` and whose operands — worker
/// count, function and every argument list — are all [`expr_is_pure`].
/// Such a command's master-side preparation can run ahead of in-flight
/// sections and its section can be staged into a pipelined run.
pub fn stageable_parallel_section(interp: &Interp, env: EnvId, form: NodeId) -> bool {
    let n = *interp.arena.get(form);
    let first = match (n.ty, n.payload) {
        (
            NodeType::List | NodeType::Expression,
            Payload::List {
                first: Some(first), ..
            },
        ) => first,
        _ => return false,
    };
    let head = *interp.arena.get(first);
    let sid = match (head.ty, head.payload) {
        (NodeType::Symbol, Payload::Text(s)) => s,
        _ => return false,
    };
    let Some(resolved) = lookup_quiet(interp, env, sid) else {
        return false;
    };
    let r = interp.arena.get(resolved);
    match (r.ty, r.payload) {
        (NodeType::Function, Payload::Builtin(b)) if interp.builtins.name(b) == "|||" => {}
        _ => return false,
    }
    let mut shadowed = Vec::new();
    siblings_pure(interp, env, interp.arena.get(first).next, &mut shadowed)
}

/// Environment lookup against a scratch meter: classification must not
/// charge interpreter work.
fn lookup_quiet(interp: &Interp, env: EnvId, sid: StrId) -> Option<NodeId> {
    let mut scratch = Meter::new();
    interp.envs.lookup(env, sid, &interp.strings, &mut scratch)
}

/// Walks a sibling chain, requiring every element pure.
fn siblings_pure(
    interp: &Interp,
    env: EnvId,
    mut cur: Option<NodeId>,
    shadowed: &mut Vec<StrId>,
) -> bool {
    while let Some(id) = cur {
        if !pure_rec(interp, env, id, shadowed) {
            return false;
        }
        cur = interp.arena.get(id).next;
    }
    true
}

fn pure_rec(interp: &Interp, env: EnvId, expr: NodeId, shadowed: &mut Vec<StrId>) -> bool {
    let n = *interp.arena.get(expr);
    let first = match n.ty {
        // A bare symbol is a read-only lookup (or self-evaluation).
        NodeType::Symbol => return true,
        NodeType::List | NodeType::Expression => match n.payload {
            Payload::List { first, .. } => first,
            _ => return false,
        },
        // Every other node type self-evaluates.
        _ => return true,
    };
    let Some(first) = first else {
        return true; // () evaluates to itself
    };
    let rest = interp.arena.get(first).next;
    let head = *interp.arena.get(first);
    match (head.ty, head.payload) {
        (NodeType::Symbol, Payload::Text(sid)) => {
            if shadowed.contains(&sid) {
                // An enclosing pure loop rebinds this symbol at runtime;
                // the static lookup below cannot see what it will hold, so
                // an application through it is not classifiable.
                return false;
            }
            match lookup_quiet(interp, env, sid) {
                Some(v) => {
                    let vn = *interp.arena.get(v);
                    match (vn.ty, vn.payload) {
                        (NodeType::Function, Payload::Builtin(b)) => {
                            let name = interp.builtins.name(b);
                            application_is_pure(interp, env, name, rest, shadowed)
                        }
                        // A Function without a builtin id is corrupt;
                        // forms and macros run arbitrary user code.
                        (NodeType::Function | NodeType::Form | NodeType::Macro, _) => false,
                        // Head bound to a plain value: element-wise list
                        // evaluation (the head's own lookup is pure).
                        _ => siblings_pure(interp, env, rest, shadowed),
                    }
                }
                // Unbound head evaluates to itself: element-wise list.
                None => siblings_pure(interp, env, rest, shadowed),
            }
        }
        // A computed head could evaluate to anything callable.
        (NodeType::List | NodeType::Expression, _) => false,
        // Non-symbol atom head: element-wise list evaluation.
        _ => siblings_pure(interp, env, rest, shadowed),
    }
}

/// Purity of one builtin application, given the operand chain starting at
/// `args`. Structured builtins (`cond`, `dotimes`, `dolist`) are analyzed
/// against their actual evaluation shape; everything else defers to the
/// [`builtin_effect`] table plus operand recursion.
fn application_is_pure(
    interp: &Interp,
    env: EnvId,
    name: &str,
    args: Option<NodeId>,
    shadowed: &mut Vec<StrId>,
) -> bool {
    match name {
        // (cond (test body…) …): each clause is a list whose elements
        // evaluate individually — the clause list itself never does.
        "cond" => {
            let mut cur = args;
            while let Some(clause) = cur {
                let c = *interp.arena.get(clause);
                let kids = match (c.ty, c.payload) {
                    (NodeType::List, Payload::List { first, .. }) => first,
                    _ => return false, // malformed clause: barrier
                };
                if !siblings_pure(interp, env, kids, shadowed) {
                    return false;
                }
                cur = c.next;
            }
            true
        }
        // (dotimes (var count) body…) / (dolist (var list) body…): the
        // source expression and every body form must be pure, and the
        // loop variable is runtime-bound — poison it for the body so an
        // application through it is refused (it may hold a callable).
        "dotimes" | "dolist" => {
            let Some(header) = args else {
                return false; // malformed loop: barrier
            };
            let h = *interp.arena.get(header);
            let kids = match (h.ty, h.payload) {
                (NodeType::List, Payload::List { first, .. }) => first,
                _ => return false,
            };
            let Some(var_node) = kids else {
                return false;
            };
            let v = *interp.arena.get(var_node);
            let (var, source) = match (v.ty, v.payload, v.next) {
                (NodeType::Symbol, Payload::Text(s), Some(src)) => (s, src),
                _ => return false,
            };
            if interp.arena.get(source).next.is_some() {
                return false; // more than (var source): barrier
            }
            if !pure_rec(interp, env, source, shadowed) {
                return false;
            }
            shadowed.push(var);
            let ok = siblings_pure(interp, env, h.next, shadowed);
            shadowed.pop();
            ok
        }
        // (mapcar fn list…) / (funcall fn arg…): the higher-order builtins
        // stay impure in the table (they apply an arbitrary function
        // value), but an application whose function operand is *visibly*
        // pure — a symbol resolving to a known-pure builtin, or a literal
        // `(lambda …)` with a pure body — runs no unclassified code, so it
        // is re-admitted structurally when every other operand is pure.
        // `apply` stays impure: its trailing spread list makes the
        // callable's arity/shape value-dependent.
        "mapcar" | "funcall" => {
            let Some(fn_operand) = args else {
                return false; // malformed: no function operand
            };
            if !callable_operand_is_pure(interp, env, fn_operand, shadowed) {
                return false;
            }
            siblings_pure(interp, env, interp.arena.get(fn_operand).next, shadowed)
        }
        // (quasiquote template): template structure expands by pure node
        // copying (exactly like `quote` plus allocation); only the holes
        // that *fire* — reach quotation level 1 — evaluate anything. The
        // walk below tracks levels exactly as `builtins::quasi::expand`
        // does, so `` `(a ,g) `` stages when `g`'s lookup is pure while
        // `` `(a ,(f 1)) `` barriers on the user call, and a hole under a
        // nested backquote is checked at the level its own re-expansion
        // would fire at.
        "quasiquote" => {
            let Some(template) = args else {
                return false; // malformed (quasiquote): barrier
            };
            if interp.arena.get(template).next.is_some() {
                return false; // more than one template: barrier
            }
            // A top-level `,@` errors after evaluating its expression
            // ("no top-level ,@"); barrier it like the malformed shapes.
            if template_head_name(interp, template) == Some(b"unquote-splicing".as_slice()) {
                return false;
            }
            template_is_pure(interp, env, template, 1, shadowed)
        }
        _ => match builtin_effect(name) {
            BuiltinEffect::Pure => siblings_pure(interp, env, args, shadowed),
            BuiltinEffect::PureUnevaluated => true,
            BuiltinEffect::Impure => false,
        },
    }
}

/// `true` when the function operand of a higher-order builtin
/// (`mapcar`/`funcall`) is provably a pure callable: a non-shadowed
/// symbol resolving to a [`BuiltinEffect::Pure`] builtin, or a literal
/// `(lambda (params…) body…)` whose body is pure with the parameters
/// shadowed (they are runtime-bound, so applications *through* them are
/// refused exactly like loop variables). Anything else — user forms,
/// macros, unbound symbols, computed callables — is rejected.
fn callable_operand_is_pure(
    interp: &Interp,
    env: EnvId,
    f: NodeId,
    shadowed: &mut Vec<StrId>,
) -> bool {
    let n = *interp.arena.get(f);
    let first = match (n.ty, n.payload) {
        (NodeType::Symbol, Payload::Text(sid)) => {
            if shadowed.contains(&sid) {
                return false; // runtime-rebound: could hold anything
            }
            let Some(v) = lookup_quiet(interp, env, sid) else {
                return false; // unbound: nothing known about the callable
            };
            let vn = *interp.arena.get(v);
            return matches!(
                (vn.ty, vn.payload),
                (NodeType::Function, Payload::Builtin(b))
                    if builtin_effect(interp.builtins.name(b)) == BuiltinEffect::Pure
            );
        }
        (
            NodeType::List | NodeType::Expression,
            Payload::List {
                first: Some(first), ..
            },
        ) => first,
        _ => return false,
    };
    // Literal (lambda (params…) body…): the head must resolve to the
    // `lambda` builtin itself.
    let h = *interp.arena.get(first);
    match (h.ty, h.payload) {
        (NodeType::Symbol, Payload::Text(sid)) if !shadowed.contains(&sid) => {
            let Some(v) = lookup_quiet(interp, env, sid) else {
                return false;
            };
            let vn = *interp.arena.get(v);
            match (vn.ty, vn.payload) {
                (NodeType::Function, Payload::Builtin(b))
                    if interp.builtins.name(b) == "lambda" => {}
                _ => return false,
            }
        }
        _ => return false,
    }
    let Some(params) = h.next else {
        return false; // malformed lambda: no parameter list
    };
    let p = *interp.arena.get(params);
    let mut cur = match (p.ty, p.payload) {
        (NodeType::List, Payload::List { first, .. }) => first,
        _ => return false,
    };
    let mut pushed = 0usize;
    let mut params_ok = true;
    while let Some(k) = cur {
        let kn = *interp.arena.get(k);
        match (kn.ty, kn.payload) {
            (NodeType::Symbol, Payload::Text(s)) => {
                shadowed.push(s);
                pushed += 1;
            }
            _ => {
                params_ok = false;
                break;
            }
        }
        cur = kn.next;
    }
    let ok = params_ok && siblings_pure(interp, env, p.next, shadowed);
    shadowed.truncate(shadowed.len() - pushed);
    ok
}

/// The head-position symbol name of a list node, if it has one — the
/// shape `builtins::quasi::head_symbol_is` keys expansion on. Non-lists
/// and lists with a non-symbol head return `None`.
fn template_head_name(interp: &Interp, id: NodeId) -> Option<&[u8]> {
    let n = *interp.arena.get(id);
    let first = match (n.ty, n.payload) {
        (NodeType::List | NodeType::Expression, Payload::List { first, .. }) => first?,
        _ => return None,
    };
    let h = *interp.arena.get(first);
    match (h.ty, h.payload) {
        (NodeType::Symbol, Payload::Text(s)) => Some(interp.strings.get(s)),
        _ => None,
    }
}

/// `true` when expanding the subtree under `id` at quotation `level`
/// provably has no effect. Mirrors `builtins::quasi::expand` exactly:
///
/// * non-lists (marker symbols in data positions included) copy inertly;
/// * an `(unquote e)` / `(unquote-splicing e)` head at level 1 **fires**
///   — `e` is evaluated for real, so it must pass [`pure_rec`] under the
///   current shadow set; at a deeper level the form is kept as data and
///   its hole re-checked one level shallower;
/// * a nested `(quasiquote …)` head deepens the level for its children;
/// * any other list recurses element-wise at the same level.
///
/// A marker form with the wrong arity errors at expansion time before
/// any copying; it is rejected here (a barrier) rather than reasoned
/// about.
fn template_is_pure(
    interp: &Interp,
    env: EnvId,
    id: NodeId,
    level: u32,
    shadowed: &mut Vec<StrId>,
) -> bool {
    let n = *interp.arena.get(id);
    let first = match (n.ty, n.payload) {
        (NodeType::List | NodeType::Expression, Payload::List { first, .. }) => first,
        (NodeType::List | NodeType::Expression, _) => return false, // corrupt list: barrier
        _ => return true,                                           // atoms copy as data
    };
    let Some(first) = first else {
        return true; // () copies as data
    };
    let h = *interp.arena.get(first);
    match template_head_name(interp, id) {
        Some(b"unquote") | Some(b"unquote-splicing") => {
            // Exactly (marker expr); any other arity errors at expansion.
            let Some(expr) = h.next else {
                return false;
            };
            if interp.arena.get(expr).next.is_some() {
                return false;
            }
            if level == 1 {
                // The hole fires: its expression evaluates for real.
                pure_rec(interp, env, expr, shadowed)
            } else {
                // Protected: kept as data, the hole re-expands one level
                // shallower (the marker symbol itself is inert).
                template_is_pure(interp, env, expr, level - 1, shadowed)
            }
        }
        // Nested backquote: children rebuild one level deeper (the
        // `quasiquote` marker symbol is inert; expansion applies no
        // arity check at nested positions, so none is applied here).
        Some(b"quasiquote") => template_kids_pure(interp, env, h.next, level + 1, shadowed),
        _ => template_kids_pure(interp, env, Some(first), level, shadowed),
    }
}

/// Walks a template sibling chain, requiring every element
/// [`template_is_pure`] at `level`.
fn template_kids_pure(
    interp: &Interp,
    env: EnvId,
    mut cur: Option<NodeId>,
    level: u32,
    shadowed: &mut Vec<StrId>,
) -> bool {
    while let Some(id) = cur {
        if !template_is_pure(interp, env, id, level, shadowed) {
            return false;
        }
        cur = interp.arena.get(id).next;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::all_builtins;
    use crate::parser::parse;

    fn interp_with_prelude() -> Interp {
        let mut i = Interp::default();
        for line in [
            "(setq g 7)",
            "(setq xs (list 1 2 3))",
            "(defun f (x) (setq g (+ g x)))",
            "(defmacro m (x) x)",
        ] {
            i.eval_str(line).unwrap();
        }
        i
    }

    fn classify(i: &mut Interp, src: &str) -> bool {
        let forms = parse(i, src.as_bytes()).unwrap();
        assert_eq!(forms.len(), 1, "{src}");
        expr_is_pure(i, i.global, forms[0])
    }

    fn stageable(i: &mut Interp, src: &str) -> bool {
        let forms = parse(i, src.as_bytes()).unwrap();
        assert_eq!(forms.len(), 1, "{src}");
        stageable_parallel_section(i, i.global, forms[0])
    }

    #[test]
    fn every_builtin_has_a_deliberate_classification() {
        // The table covers the whole registry; the definers, I/O, code
        // runners and ||| itself must be impure.
        for def in all_builtins() {
            let effect = builtin_effect(def.name);
            let must_be_impure = matches!(
                def.name,
                "setq"
                    | "defun"
                    | "defmacro"
                    | "let"
                    | "let*"
                    | "eval"
                    | "quasiquote"
                    | "unquote"
                    | "unquote-splicing"
                    | "mapcar"
                    | "apply"
                    | "funcall"
                    | "read-file"
                    | "write-file"
                    | "file-exists"
                    | "|||"
            );
            if must_be_impure {
                assert_eq!(effect, BuiltinEffect::Impure, "{}", def.name);
            } else {
                assert_ne!(effect, BuiltinEffect::Impure, "{}", def.name);
            }
        }
        assert_eq!(builtin_effect("no-such-builtin"), BuiltinEffect::Impure);
    }

    #[test]
    fn atoms_and_symbols_are_pure() {
        let mut i = interp_with_prelude();
        for src in ["5", "1.25", "\"s\"", "nil", "T", "g", "unbound", "()"] {
            assert!(classify(&mut i, src), "{src}");
        }
    }

    #[test]
    fn pure_builtin_trees_are_pure() {
        let mut i = interp_with_prelude();
        for src in [
            "(+ 1 (* 2 3))",
            "(list g g (car xs))",
            "(cons (length xs) (reverse xs))",
            "(if (< g 0) (list 1 2) (list 3 4))",
            "(cond ((< g 0) 1) (T (append xs xs)))",
            "(concat \"a\" (number-to-string g))",
            "(dotimes (k (length xs)) (+ k 1))",
            "(dolist (x xs) (* x x))",
            "(quote (setq g 1))",
            "(lambda (x) (setq g x))",
            "(progn (and T (not nil)) (nth 1 xs))",
            // Unquote-free quasiquote templates expand by pure copying.
            "`(a b (c d))",
            "`(1 (2 (3)) \"s\")",
            "(quasiquote (setq g 1))", // a *template*, never evaluated
            "`(a `(b c))",             // nested backquote, still no holes
        ] {
            assert!(classify(&mut i, src), "{src}");
        }
    }

    #[test]
    fn quasiquote_holes_are_level_tracked() {
        let mut i = interp_with_prelude();
        // Firing holes with pure expressions: the whole template is pure.
        for src in [
            "`(a ,g)",                   // hole is a read-only lookup
            "`(1 ,(+ g 1) 3)",           // hole is a pure application
            "`(1 ,@xs 5)",               // splice of a pure list value
            "`(,@(append xs xs))",       // splice of a pure application
            "`(a ,(car `(b ,g)))",       // pure hole inside a pure hole
            "`(a `(b ,(+ 1 2)))",        // protected hole, pure when it fires
            "`(a `(b ,,g))",             // double comma: inner fires now
            "`(a (b unquote-splicing))", // marker in data position: inert
            "(quasiquote (unquote g))",  // `,g` spelled out
            "`(a ,(if (< g 0) xs nil))", // conditional hole
        ] {
            assert!(classify(&mut i, src), "{src}");
        }
        // Impure firing holes, malformed markers, top-level splices:
        // barrier.
        for src in [
            "`(a ,(f 1))",                  // hole runs user code
            "`(a ,(setq g 2))",             // hole mutates
            "`(a `(b ,,(f 1)))",            // inner comma fires user code now
            "`(a ,(eval (quote g)))",       // arbitrary evaluation in a hole
            "`(1 ,@(f 1) 5)",               // impure splice
            "(quasiquote (unquote (f 1)))", // `,(f 1)` spelled out
            "`(a (unquote))",               // malformed hole: wrong arity
            "`(a (unquote g extra))",       // malformed hole: wrong arity
            "`,@xs",                        // top-level splice errors
            "(quasiquote)",                 // malformed: no template
            "(quasiquote 1 2)",             // malformed: two templates
        ] {
            assert!(!classify(&mut i, src), "{src}");
        }
        // And as section operands: templates whose firing holes are pure
        // stage; user-code holes barrier.
        assert!(stageable(&mut i, "(||| 2 + (1 2) `(3 4))"));
        assert!(stageable(&mut i, "(||| 2 + (1 2) `(,g 4))"));
        assert!(stageable(&mut i, "(||| 2 + (1 2) `(,(+ g 1) ,@xs))"));
        assert!(!stageable(&mut i, "(||| 2 + (1 2) `(,(f 1) 4))"));
    }

    #[test]
    fn quasiquote_classification_agrees_with_expansion() {
        // Every template the classifier calls pure must actually expand
        // without touching persistent state: snapshot `g`, evaluate,
        // re-check.
        let mut i = interp_with_prelude();
        for src in ["`(a ,g)", "`(1 ,@xs 5)", "`(a `(b ,,g))", "`(a ,(car xs))"] {
            assert!(classify(&mut i, src), "{src}");
            let out = i.eval_str(src).unwrap();
            assert!(!out.is_empty());
            assert_eq!(i.eval_str("g").unwrap(), "7", "{src} mutated g");
        }
        // Shadowed loop variables poison holes exactly like other
        // expression positions: `x` may hold a callable at runtime.
        assert!(!classify(&mut i, "(dolist (x xs) `(a ,(x 1)))"));
        assert!(classify(&mut i, "(dolist (x xs) `(a ,x))"));
    }

    #[test]
    fn effects_are_rejected() {
        let mut i = interp_with_prelude();
        for src in [
            "(setq g 1)",
            "(defun h (x) x)",
            "(let y 5)",
            "(let* ((y 5)) y)",
            "(f 1)",                     // user form mutates g
            "(m (setq g 1))",            // macro expansion
            "(+ 1 (f 2))",               // impurity below a pure head
            "(list (f 1))",              // … and inside a constructor
            "(eval (quote (setq g 1)))", // arbitrary evaluation
            "(mapcar f xs)",             // applies a function value
            "(funcall f 1)",
            "(read-file \"x\")",     // host I/O
            "(||| 2 + (1 2) (3 4))", // nested section
            "((lambda (x) x) 5)",    // computed head
            "((f 1) 2)",             // computed head
            "(quasiquote (unquote (f 1)))",
        ] {
            assert!(!classify(&mut i, src), "{src}");
        }
    }

    #[test]
    fn mapcar_funcall_over_pure_callables_are_pure() {
        let mut i = interp_with_prelude();
        // The table keeps mapcar/funcall impure; these are the structural
        // re-admissions: visibly-pure callable + pure operands.
        for src in [
            "(mapcar 1+ xs)",
            "(mapcar abs (list -1 g))",
            "(mapcar (lambda (x) (* x x)) xs)",
            "(funcall + 1 2)",
            "(funcall (lambda (a b) (+ a b)) 1 g)",
            "(mapcar (lambda (x) (mapcar 1+ x)) (list xs xs))",
        ] {
            assert!(classify(&mut i, src), "{src}");
        }
        for src in [
            "(mapcar f xs)", // user form mutates g
            "(funcall f 1)",
            "(mapcar (lambda (x) (f x)) xs)", // impure lambda body
            "(mapcar (lambda (x) (x 1)) xs)", // application through a param
            "(mapcar nosuchfn xs)",           // unbound callable
            "(funcall (f 1) 2)",              // computed callable
            "(mapcar 1+ (f 1))",              // impure list operand
            "(funcall quote 1)",              // PureUnevaluated is not Pure
            "(apply + xs)",                   // apply stays unclassified
            "(mapcar)",                       // malformed: no operands
            "(mapcar (lambda) xs)",           // malformed lambda
            "(dolist (h (list f)) (funcall h 1))", // shadowed callable
        ] {
            assert!(!classify(&mut i, src), "{src}");
        }
        // As section operands: the pure shapes stage, the rest barrier.
        assert!(stageable(&mut i, "(||| 2 + (mapcar 1+ xs) (3 4))"));
        assert!(stageable(
            &mut i,
            "(||| 2 + (funcall (lambda (a) (list a a)) g) (3 4))"
        ));
        assert!(!stageable(&mut i, "(||| 2 + (mapcar f xs) (3 4))"));
    }

    #[test]
    fn loop_variables_poison_head_positions() {
        let mut i = interp_with_prelude();
        // x may be rebound to a callable at runtime: reject applications
        // through it, keep plain value uses.
        assert!(!classify(&mut i, "(dolist (x (list f)) (x 1))"));
        assert!(classify(&mut i, "(dolist (x xs) (+ x 1))"));
        // Nested loops restore the outer shadow set.
        assert!(!classify(
            &mut i,
            "(progn (dotimes (k 2) k) (dolist (x (list f)) (x 1)))"
        ));
        assert!(!classify(&mut i, "(progn (dotimes (k 2) (k)) 1)"));
    }

    #[test]
    fn redefined_pure_names_are_respected() {
        // Once `+` resolves to a user form, applications of it stop being
        // pure — resolution goes through the live environment, not the
        // name.
        let mut i = interp_with_prelude();
        assert!(classify(&mut i, "(+ 1 2)"));
        i.eval_str("(defun + (a b) (f a))").unwrap();
        assert!(!classify(&mut i, "(+ 1 2)"));
    }

    #[test]
    fn stageable_sections() {
        let mut i = interp_with_prelude();
        // Previously-barriered shapes: computed worker counts, list
        // constructors, conditionals, global reads.
        for src in [
            "(||| 2 + (1 2) (3 4))",
            "(||| (+ 1 1) + (1 2) (3 4))",
            "(||| 2 + (1 2) (list g g))",
            "(||| 2 f (1 2))", // impure *jobs* run isolated on workers
            "(||| 2 + (if (< g 0) (list 1 2) (list 3 4)) (5 6))",
            "(||| 2 (lambda (x) (* x x)) (1 2))",
        ] {
            assert!(stageable(&mut i, src), "{src}");
        }
        // Operand impurity, non-section commands, shadowed heads: barrier.
        for src in [
            "(setq g 1)",
            "(+ 1 2)",
            "(||| 2 + ((f 1) 2) (3 4))",
            "(||| (f 1) + (1 2) (3 4))",
            "(||| 2 + (mapcar f xs) (3 4))",
        ] {
            assert!(!stageable(&mut i, src), "{src}");
        }
    }

    #[test]
    fn classification_charges_nothing() {
        let mut i = interp_with_prelude();
        let forms = parse(&mut i, b"(||| (+ 1 1) + (list g g) (3 4))").unwrap();
        let before = i.meter.snapshot();
        assert!(stageable_parallel_section(&i, i.global, forms[0]));
        // As a nested *expression* the section itself is impure; both
        // verdicts must come back charge-free.
        assert!(!expr_is_pure(&i, i.global, forms[0]));
        let delta = i.meter.snapshot().delta_since(&before);
        assert_eq!(delta, Default::default(), "classifier charged the meter");
    }
}
