//! Interpreter error type.

use core::fmt;

/// Everything that can go wrong while parsing or evaluating CuLi input.
#[derive(Debug, Clone, PartialEq)]
pub enum CuliError {
    /// Input ended inside a string literal.
    UnterminatedString {
        /// Byte offset of the opening quote.
        at: usize,
    },
    /// A `)` with no matching `(`.
    UnbalancedClose {
        /// Byte offset of the stray parenthesis.
        at: usize,
    },
    /// Input ended with unclosed `(`s.
    UnbalancedOpen {
        /// How many lists remained open.
        depth: usize,
    },
    /// The fixed node arena is exhausted (the paper's stated input-size
    /// limitation: *"the size of the possible inputs is currently limited
    /// ... by the organization of the nodes"*).
    ArenaFull {
        /// The arena capacity that was exceeded.
        capacity: usize,
    },
    /// Evaluation exceeded the configured recursion depth.
    RecursionLimit {
        /// The configured limit.
        limit: usize,
    },
    /// A built-in was applied to a value of the wrong type.
    Type {
        /// The built-in that complained.
        builtin: &'static str,
        /// Human-readable description of the expectation.
        expected: &'static str,
    },
    /// A built-in received the wrong number of arguments.
    Arity {
        /// The built-in that complained.
        builtin: &'static str,
        /// Human-readable arity description (e.g. "exactly 2").
        expected: &'static str,
        /// How many arguments arrived.
        got: usize,
    },
    /// Integer division or modulo by zero.
    DivByZero,
    /// Integer arithmetic overflowed `i64`.
    IntOverflow,
    /// The fixed output buffer overflowed while printing.
    OutputFull {
        /// Configured output capacity in bytes.
        capacity: usize,
    },
    /// `|||` was asked for more workers than the device provides.
    TooManyWorkers {
        /// Workers requested.
        requested: usize,
        /// Workers available.
        available: usize,
    },
    /// `|||`'s argument lists were shorter than the worker count.
    ParallelArgShort {
        /// Index (0-based) of the offending argument list.
        arg_index: usize,
        /// Its length.
        len: usize,
        /// Workers requested.
        requested: usize,
    },
    /// A worker failed; carries the worker index and the underlying error.
    WorkerFailed {
        /// Which worker.
        worker: usize,
        /// What went wrong, pre-rendered (keeps the type `Sized` + cheap).
        message: String,
    },
    /// Host-side file I/O failed (missing file, no host services attached).
    Io(String),
    /// A parallel backend failed (e.g. the simulated device livelocked).
    /// Carries the backend's rendered diagnosis; runtimes re-map this to
    /// their own error types.
    Backend(String),
    /// The command's fuel budget ([`crate::interp::InterpConfig::fuel_budget`])
    /// ran out mid-evaluation. The interpreter is left GC-consistent and the
    /// meter counters are valid up to the abort point.
    FuelExhausted {
        /// The per-command budget (in evaluator steps) that was exceeded.
        budget: u64,
    },
    /// The arena's live-node cap
    /// ([`crate::interp::InterpConfig::heap_limit`]) was hit. Unlike
    /// [`CuliError::ArenaFull`] (physical capacity), this is a configured
    /// policy limit containing runaway allocation.
    HeapLimitExceeded {
        /// The configured live-node limit that was exceeded.
        limit: usize,
    },
    /// Internal invariant violation — always a bug, never user error.
    Internal(&'static str),
}

/// Stable, string-free classification of every error a CuLi session can
/// report, carried on [`crate::Result`]-adjacent reply types so clients
/// (and the coming session server) can branch on failure class without
/// matching rendered messages. Shared by all three layers: `culi_core`
/// errors, `culi_runtime` errors and `culi-gpu-sim` device errors all
/// map into these codes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Not an error (successful reply). `Default` so zero-initialized
    /// replies classify as failed-unclassified only via `ok == false`.
    #[default]
    Ok,
    /// The input did not parse (unbalanced parens, unterminated string).
    Parse,
    /// A user-program error: wrong types/arity, division by zero,
    /// overflow, `|||` misuse, a failed worker job, host I/O.
    User,
    /// The per-command fuel budget ran out ([`CuliError::FuelExhausted`]).
    Fuel,
    /// A configured resource cap was hit (heap limit, arena capacity,
    /// recursion depth, output buffer).
    Limit,
    /// A parallel backend failed but the scheduler degraded gracefully:
    /// the reply was produced by the sequential reference instead.
    Degraded,
    /// A device-level failure (livelock, protocol violation) that could
    /// not be recovered.
    Device,
    /// The session was already shut down.
    Closed,
    /// The session server shed the command before execution: the global
    /// admission queue was full, or the tenant is quarantined for
    /// repeated resource-limit offenses. Structured backpressure — the
    /// client sees this reply instead of a silent drop and should retry
    /// later (or repair its program, if quarantined).
    Overloaded,
    /// The tenant's own bounded command queue was full. Unlike
    /// [`ErrorCode::Overloaded`] this is per-tenant backpressure: the
    /// server as a whole has capacity, but this tenant is submitting
    /// faster than its fair share drains.
    QueueFull,
    /// Internal invariant violation — always a bug.
    Internal,
}

impl CuliError {
    /// The stable [`ErrorCode`] this error classifies under.
    pub fn code(&self) -> ErrorCode {
        match self {
            Self::UnterminatedString { .. }
            | Self::UnbalancedClose { .. }
            | Self::UnbalancedOpen { .. } => ErrorCode::Parse,
            Self::ArenaFull { .. }
            | Self::RecursionLimit { .. }
            | Self::OutputFull { .. }
            | Self::HeapLimitExceeded { .. } => ErrorCode::Limit,
            Self::FuelExhausted { .. } => ErrorCode::Fuel,
            Self::Type { .. }
            | Self::Arity { .. }
            | Self::DivByZero
            | Self::IntOverflow
            | Self::TooManyWorkers { .. }
            | Self::ParallelArgShort { .. }
            | Self::WorkerFailed { .. }
            | Self::Io(_) => ErrorCode::User,
            Self::Backend(_) => ErrorCode::Device,
            Self::Internal(_) => ErrorCode::Internal,
        }
    }
}

impl fmt::Display for CuliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnterminatedString { at } => {
                write!(f, "unterminated string literal starting at byte {at}")
            }
            Self::UnbalancedClose { at } => {
                write!(f, "unmatched ')' at byte {at}")
            }
            Self::UnbalancedOpen { depth } => {
                write!(f, "input ended with {depth} unclosed '('")
            }
            Self::ArenaFull { capacity } => {
                write!(f, "node arena exhausted (capacity {capacity})")
            }
            Self::RecursionLimit { limit } => {
                write!(f, "recursion depth limit {limit} exceeded")
            }
            Self::Type { builtin, expected } => {
                write!(f, "{builtin}: expected {expected}")
            }
            Self::Arity {
                builtin,
                expected,
                got,
            } => {
                write!(f, "{builtin}: expected {expected} argument(s), got {got}")
            }
            Self::DivByZero => write!(f, "division by zero"),
            Self::IntOverflow => write!(f, "integer overflow"),
            Self::OutputFull { capacity } => {
                write!(f, "output buffer exhausted (capacity {capacity})")
            }
            Self::TooManyWorkers {
                requested,
                available,
            } => {
                write!(
                    f,
                    "||| requested {requested} workers, device has {available}"
                )
            }
            Self::ParallelArgShort {
                arg_index,
                len,
                requested,
            } => {
                write!(
                    f,
                    "||| argument list {arg_index} has {len} element(s) but {requested} workers were requested"
                )
            }
            Self::WorkerFailed { worker, message } => {
                write!(f, "worker {worker} failed: {message}")
            }
            Self::Io(msg) => write!(f, "file i/o error: {msg}"),
            Self::Backend(msg) => write!(f, "parallel backend error: {msg}"),
            Self::FuelExhausted { budget } => {
                write!(f, "fuel budget exhausted ({budget} steps)")
            }
            Self::HeapLimitExceeded { limit } => {
                write!(f, "heap limit exceeded ({limit} live nodes)")
            }
            Self::Internal(what) => write!(f, "internal interpreter error: {what}"),
        }
    }
}

impl std::error::Error for CuliError {}

/// Convenience alias used throughout the interpreter.
pub type Result<T> = core::result::Result<T, CuliError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(CuliError, &str)> = vec![
            (CuliError::UnterminatedString { at: 4 }, "byte 4"),
            (CuliError::UnbalancedClose { at: 9 }, "byte 9"),
            (CuliError::UnbalancedOpen { depth: 2 }, "2 unclosed"),
            (CuliError::ArenaFull { capacity: 128 }, "128"),
            (CuliError::RecursionLimit { limit: 64 }, "64"),
            (
                CuliError::Type {
                    builtin: "car",
                    expected: "a list",
                },
                "car",
            ),
            (
                CuliError::Arity {
                    builtin: "cons",
                    expected: "exactly 2",
                    got: 3,
                },
                "got 3",
            ),
            (CuliError::DivByZero, "zero"),
            (CuliError::OutputFull { capacity: 16 }, "16"),
            (
                CuliError::TooManyWorkers {
                    requested: 99,
                    available: 32,
                },
                "99",
            ),
            (CuliError::FuelExhausted { budget: 1000 }, "1000"),
            (CuliError::HeapLimitExceeded { limit: 512 }, "512"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_codes_classify_by_failure_class() {
        assert_eq!(
            CuliError::UnbalancedOpen { depth: 1 }.code(),
            ErrorCode::Parse
        );
        assert_eq!(CuliError::DivByZero.code(), ErrorCode::User);
        assert_eq!(
            CuliError::WorkerFailed {
                worker: 0,
                message: String::new()
            }
            .code(),
            ErrorCode::User
        );
        assert_eq!(
            CuliError::FuelExhausted { budget: 1 }.code(),
            ErrorCode::Fuel
        );
        assert_eq!(
            CuliError::HeapLimitExceeded { limit: 1 }.code(),
            ErrorCode::Limit
        );
        assert_eq!(
            CuliError::ArenaFull { capacity: 1 }.code(),
            ErrorCode::Limit
        );
        assert_eq!(CuliError::Backend(String::new()).code(), ErrorCode::Device);
        assert_eq!(CuliError::Internal("x").code(), ErrorCode::Internal);
        assert_eq!(ErrorCode::default(), ErrorCode::Ok);
        // The backpressure codes are server-constructed (no CuliError maps
        // to them) but must stay distinct so clients can branch on them.
        assert_ne!(ErrorCode::Overloaded, ErrorCode::QueueFull);
        assert_ne!(ErrorCode::Overloaded, ErrorCode::User);
    }
}
