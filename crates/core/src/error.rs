//! Interpreter error type.

use core::fmt;

/// Everything that can go wrong while parsing or evaluating CuLi input.
#[derive(Debug, Clone, PartialEq)]
pub enum CuliError {
    /// Input ended inside a string literal.
    UnterminatedString {
        /// Byte offset of the opening quote.
        at: usize,
    },
    /// A `)` with no matching `(`.
    UnbalancedClose {
        /// Byte offset of the stray parenthesis.
        at: usize,
    },
    /// Input ended with unclosed `(`s.
    UnbalancedOpen {
        /// How many lists remained open.
        depth: usize,
    },
    /// The fixed node arena is exhausted (the paper's stated input-size
    /// limitation: *"the size of the possible inputs is currently limited
    /// ... by the organization of the nodes"*).
    ArenaFull {
        /// The arena capacity that was exceeded.
        capacity: usize,
    },
    /// Evaluation exceeded the configured recursion depth.
    RecursionLimit {
        /// The configured limit.
        limit: usize,
    },
    /// A built-in was applied to a value of the wrong type.
    Type {
        /// The built-in that complained.
        builtin: &'static str,
        /// Human-readable description of the expectation.
        expected: &'static str,
    },
    /// A built-in received the wrong number of arguments.
    Arity {
        /// The built-in that complained.
        builtin: &'static str,
        /// Human-readable arity description (e.g. "exactly 2").
        expected: &'static str,
        /// How many arguments arrived.
        got: usize,
    },
    /// Integer division or modulo by zero.
    DivByZero,
    /// Integer arithmetic overflowed `i64`.
    IntOverflow,
    /// The fixed output buffer overflowed while printing.
    OutputFull {
        /// Configured output capacity in bytes.
        capacity: usize,
    },
    /// `|||` was asked for more workers than the device provides.
    TooManyWorkers {
        /// Workers requested.
        requested: usize,
        /// Workers available.
        available: usize,
    },
    /// `|||`'s argument lists were shorter than the worker count.
    ParallelArgShort {
        /// Index (0-based) of the offending argument list.
        arg_index: usize,
        /// Its length.
        len: usize,
        /// Workers requested.
        requested: usize,
    },
    /// A worker failed; carries the worker index and the underlying error.
    WorkerFailed {
        /// Which worker.
        worker: usize,
        /// What went wrong, pre-rendered (keeps the type `Sized` + cheap).
        message: String,
    },
    /// Host-side file I/O failed (missing file, no host services attached).
    Io(String),
    /// A parallel backend failed (e.g. the simulated device livelocked).
    /// Carries the backend's rendered diagnosis; runtimes re-map this to
    /// their own error types.
    Backend(String),
    /// Internal invariant violation — always a bug, never user error.
    Internal(&'static str),
}

impl fmt::Display for CuliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnterminatedString { at } => {
                write!(f, "unterminated string literal starting at byte {at}")
            }
            Self::UnbalancedClose { at } => {
                write!(f, "unmatched ')' at byte {at}")
            }
            Self::UnbalancedOpen { depth } => {
                write!(f, "input ended with {depth} unclosed '('")
            }
            Self::ArenaFull { capacity } => {
                write!(f, "node arena exhausted (capacity {capacity})")
            }
            Self::RecursionLimit { limit } => {
                write!(f, "recursion depth limit {limit} exceeded")
            }
            Self::Type { builtin, expected } => {
                write!(f, "{builtin}: expected {expected}")
            }
            Self::Arity {
                builtin,
                expected,
                got,
            } => {
                write!(f, "{builtin}: expected {expected} argument(s), got {got}")
            }
            Self::DivByZero => write!(f, "division by zero"),
            Self::IntOverflow => write!(f, "integer overflow"),
            Self::OutputFull { capacity } => {
                write!(f, "output buffer exhausted (capacity {capacity})")
            }
            Self::TooManyWorkers {
                requested,
                available,
            } => {
                write!(
                    f,
                    "||| requested {requested} workers, device has {available}"
                )
            }
            Self::ParallelArgShort {
                arg_index,
                len,
                requested,
            } => {
                write!(
                    f,
                    "||| argument list {arg_index} has {len} element(s) but {requested} workers were requested"
                )
            }
            Self::WorkerFailed { worker, message } => {
                write!(f, "worker {worker} failed: {message}")
            }
            Self::Io(msg) => write!(f, "file i/o error: {msg}"),
            Self::Backend(msg) => write!(f, "parallel backend error: {msg}"),
            Self::Internal(what) => write!(f, "internal interpreter error: {what}"),
        }
    }
}

impl std::error::Error for CuliError {}

/// Convenience alias used throughout the interpreter.
pub type Result<T> = core::result::Result<T, CuliError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(CuliError, &str)> = vec![
            (CuliError::UnterminatedString { at: 4 }, "byte 4"),
            (CuliError::UnbalancedClose { at: 9 }, "byte 9"),
            (CuliError::UnbalancedOpen { depth: 2 }, "2 unclosed"),
            (CuliError::ArenaFull { capacity: 128 }, "128"),
            (CuliError::RecursionLimit { limit: 64 }, "64"),
            (
                CuliError::Type {
                    builtin: "car",
                    expected: "a list",
                },
                "car",
            ),
            (
                CuliError::Arity {
                    builtin: "cons",
                    expected: "exactly 2",
                    got: 3,
                },
                "got 3",
            ),
            (CuliError::DivByZero, "zero"),
            (CuliError::OutputFull { capacity: 16 }, "16"),
            (
                CuliError::TooManyWorkers {
                    requested: 99,
                    available: 32,
                },
                "99",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }
}
