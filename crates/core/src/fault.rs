//! Deterministic fault injection for the parallel backends.
//!
//! A [`FaultPlan`] is a seeded, shared script of failures to inject into
//! the runtime's fault *sites* — the CPU worker pool's section execution
//! and the simulated GPU's batched reply handshake. Each site polls the
//! plan with a monotone event counter; a trigger fires when its site's
//! counter reaches the scripted event index, then disarms (one-shot), so
//! the recovery machinery's retries converge instead of re-faulting
//! forever.
//!
//! The plan lives in `culi_core` (not `culi_runtime`) only because both
//! the runtime and `culi-gpu-sim` must see the same type without a
//! dependency cycle; the core interpreter itself never consults it.
//!
//! The empty plan is a `None` and costs one branch per poll — sessions
//! without fault injection (every production path) pay nothing else.

use std::sync::{Arc, Mutex};

/// A failure kind the runtime knows how to inject and recover from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The worker thread panics mid-run (exercises PR 3's poison path).
    Panic,
    /// The worker stalls past the watchdog deadline (exercises the
    /// deadline → hard-poison → detach-respawn path).
    Hang,
    /// The worker garbles its reply payload (exercises the master's
    /// defensive decode).
    Garbage,
    /// The simulated device drops a batched reply handshake (exercises
    /// the scheduler's retry-then-fallback).
    DropReply,
    /// A tenant submits a compute-bound runaway that must be cut down by
    /// its per-command fuel budget ([`FaultSite::TenantCommand`] only).
    RunawayFuel,
    /// A tenant submits an allocation-bound runaway (oversized payload)
    /// that must be cut down by its heap limit or fuel budget
    /// ([`FaultSite::TenantCommand`] only).
    OversizedPayload,
}

/// Where a fault is injected. Every site keeps its own monotone event
/// counter; a trigger's `at` indexes events *at its site*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// One event per section-run message a CPU pool worker executes.
    WorkerSection,
    /// One event per batched reply handshake on a simulated GPU device.
    DeviceReply,
    /// One event per command the session server dequeues for a tenant
    /// that carries this plan. A firing substitutes a misbehaving command
    /// (runaway fuel burn, oversized allocation, or a hang that the fuel
    /// ring bounds) for the tenant's real one — modeling a hostile or
    /// buggy tenant rather than a broken backend. Tenant-scoped by
    /// construction: only the offending tenant's session ever holds the
    /// plan, so healthy tenants cannot observe the trigger.
    TenantCommand,
}

#[derive(Debug)]
struct Trigger {
    site: FaultSite,
    kind: FaultKind,
    /// 0-based event index at `site` on which to fire.
    at: u64,
    /// One-shot: armed until the first firing.
    armed: bool,
}

#[derive(Debug, Default)]
struct PlanState {
    triggers: Vec<Trigger>,
    worker_events: u64,
    device_events: u64,
    tenant_events: u64,
    injected: u64,
}

/// A deterministic, shareable fault script. Clones share state: the
/// session hands clones to its pool and devices, and the test harness
/// observes [`FaultPlan::injected_count`] through its own handle.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<Mutex<PlanState>>>,
}

impl FaultPlan {
    /// The empty plan: polls are a single `None` branch.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan injecting exactly one `kind` fault on the `at`-th event
    /// (0-based) at `site`.
    pub fn single(site: FaultSite, kind: FaultKind, at: u64) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(PlanState {
                triggers: vec![Trigger {
                    site,
                    kind,
                    at,
                    armed: true,
                }],
                ..Default::default()
            }))),
        }
    }

    /// A plan injecting `count` consecutive `kind` faults starting at the
    /// `at`-th event at `site` — enough to outlast a bounded retry and
    /// force the scheduler's degradation path.
    pub fn burst(site: FaultSite, kind: FaultKind, at: u64, count: u64) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(PlanState {
                triggers: (0..count)
                    .map(|k| Trigger {
                        site,
                        kind,
                        at: at + k,
                        armed: true,
                    })
                    .collect(),
                ..Default::default()
            }))),
        }
    }

    /// Derives a small scripted plan from `seed` (splitmix64): one or two
    /// one-shot faults of seed-chosen kinds at seed-chosen early event
    /// indices. The CI fault sweep feeds consecutive seeds through this.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        let count = 1 + (splitmix64(&mut s) % 2);
        let triggers = (0..count)
            .map(|_| {
                let kind = match splitmix64(&mut s) % 4 {
                    0 => FaultKind::Panic,
                    1 => FaultKind::Hang,
                    2 => FaultKind::Garbage,
                    _ => FaultKind::DropReply,
                };
                let site = match kind {
                    FaultKind::DropReply => FaultSite::DeviceReply,
                    _ => FaultSite::WorkerSection,
                };
                Trigger {
                    site,
                    kind,
                    at: splitmix64(&mut s) % 8,
                    armed: true,
                }
            })
            .collect();
        Self {
            inner: Some(Arc::new(Mutex::new(PlanState {
                triggers,
                ..Default::default()
            }))),
        }
    }

    /// Derives a misbehaving-tenant burst from `seed` (splitmix64,
    /// independent stream from [`FaultPlan::from_seed`]): one to three
    /// one-shot [`FaultSite::TenantCommand`] triggers of seed-chosen
    /// kinds — runaway fuel burns, oversized payloads, or hangs the fuel
    /// ring bounds — at seed-chosen early command indices. The server arm
    /// of the CI fault sweep feeds consecutive seeds through this.
    pub fn from_seed_tenant(seed: u64) -> Self {
        // Offset the stream so seed N's tenant plan does not mirror seed
        // N's worker/device plan when a test combines both.
        let mut s = seed ^ 0xA5A5_5A5A_F00D_BEEF;
        let count = 1 + (splitmix64(&mut s) % 3);
        let triggers = (0..count)
            .map(|_| {
                let kind = match splitmix64(&mut s) % 3 {
                    0 => FaultKind::RunawayFuel,
                    1 => FaultKind::OversizedPayload,
                    _ => FaultKind::Hang,
                };
                Trigger {
                    site: FaultSite::TenantCommand,
                    kind,
                    at: splitmix64(&mut s) % 8,
                    armed: true,
                }
            })
            .collect();
        Self {
            inner: Some(Arc::new(Mutex::new(PlanState {
                triggers,
                ..Default::default()
            }))),
        }
    }

    /// `true` when the plan can never fire (the production fast path).
    pub fn is_empty(&self) -> bool {
        self.inner.is_none()
    }

    /// Records one event at `site` and returns the fault to inject now,
    /// if any scripted trigger matches. Each firing disarms its trigger.
    pub fn poll(&self, site: FaultSite) -> Option<FaultKind> {
        let inner = self.inner.as_ref()?;
        let mut st = inner.lock().unwrap();
        let event = match site {
            FaultSite::WorkerSection => {
                let e = st.worker_events;
                st.worker_events += 1;
                e
            }
            FaultSite::DeviceReply => {
                let e = st.device_events;
                st.device_events += 1;
                e
            }
            FaultSite::TenantCommand => {
                let e = st.tenant_events;
                st.tenant_events += 1;
                e
            }
        };
        let hit = st
            .triggers
            .iter_mut()
            .find(|t| t.armed && t.site == site && t.at == event)?;
        hit.armed = false;
        let kind = hit.kind;
        st.injected += 1;
        Some(kind)
    }

    /// Faults fired so far (shared across clones) — harness checks use
    /// this to assert an injection actually happened.
    pub fn injected_count(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.lock().unwrap().injected)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        for _ in 0..100 {
            assert_eq!(p.poll(FaultSite::WorkerSection), None);
            assert_eq!(p.poll(FaultSite::DeviceReply), None);
        }
        assert_eq!(p.injected_count(), 0);
    }

    #[test]
    fn single_fires_once_at_its_event_index() {
        let p = FaultPlan::single(FaultSite::WorkerSection, FaultKind::Panic, 2);
        assert_eq!(p.poll(FaultSite::WorkerSection), None); // event 0
        assert_eq!(p.poll(FaultSite::DeviceReply), None); // other site
        assert_eq!(p.poll(FaultSite::WorkerSection), None); // event 1
        assert_eq!(p.poll(FaultSite::WorkerSection), Some(FaultKind::Panic)); // 2
                                                                              // One-shot: the retried event does not re-fault.
        assert_eq!(p.poll(FaultSite::WorkerSection), None);
        assert_eq!(p.injected_count(), 1);
    }

    #[test]
    fn clones_share_counters() {
        let p = FaultPlan::single(FaultSite::DeviceReply, FaultKind::DropReply, 0);
        let q = p.clone();
        assert_eq!(q.poll(FaultSite::DeviceReply), Some(FaultKind::DropReply));
        assert_eq!(p.injected_count(), 1, "observer handle sees the firing");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        for seed in 0..64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert!(!a.is_empty());
            // Drain both identically: same firings in the same order.
            let mut fired_a = Vec::new();
            let mut fired_b = Vec::new();
            for e in 0..16 {
                for site in [FaultSite::WorkerSection, FaultSite::DeviceReply] {
                    if let Some(k) = a.poll(site) {
                        fired_a.push((e, site, k));
                    }
                    if let Some(k) = b.poll(site) {
                        fired_b.push((e, site, k));
                    }
                }
            }
            assert_eq!(fired_a, fired_b, "seed {seed}");
            assert!(a.injected_count() <= 2);
        }
    }

    #[test]
    fn tenant_site_keeps_its_own_event_counter() {
        let p = FaultPlan::single(FaultSite::TenantCommand, FaultKind::RunawayFuel, 1);
        // Worker/device events must not advance the tenant counter.
        assert_eq!(p.poll(FaultSite::WorkerSection), None);
        assert_eq!(p.poll(FaultSite::DeviceReply), None);
        assert_eq!(p.poll(FaultSite::TenantCommand), None); // tenant event 0
        assert_eq!(
            p.poll(FaultSite::TenantCommand),
            Some(FaultKind::RunawayFuel)
        );
        assert_eq!(p.poll(FaultSite::TenantCommand), None); // one-shot
        assert_eq!(p.injected_count(), 1);
    }

    #[test]
    fn seeded_tenant_plans_are_deterministic_tenant_scoped_bursts() {
        for seed in 0..64 {
            let a = FaultPlan::from_seed_tenant(seed);
            let b = FaultPlan::from_seed_tenant(seed);
            assert!(!a.is_empty());
            let mut fired_a = Vec::new();
            let mut fired_b = Vec::new();
            for e in 0..16 {
                // Only the tenant site may ever fire.
                assert_eq!(a.poll(FaultSite::WorkerSection), None);
                assert_eq!(a.poll(FaultSite::DeviceReply), None);
                if let Some(k) = a.poll(FaultSite::TenantCommand) {
                    assert!(matches!(
                        k,
                        FaultKind::RunawayFuel | FaultKind::OversizedPayload | FaultKind::Hang
                    ));
                    fired_a.push((e, k));
                }
                if let Some(k) = b.poll(FaultSite::TenantCommand) {
                    fired_b.push((e, k));
                }
            }
            assert_eq!(fired_a, fired_b, "seed {seed}");
            assert!(!fired_a.is_empty(), "seed {seed} must fire at least once");
            assert!(a.injected_count() <= 3);
        }
    }
}
