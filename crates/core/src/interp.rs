//! The interpreter object: arenas, environments, builtin registry, meter.
//!
//! One [`Interp`] corresponds to one running CuLi instance — on the real
//! system, the state living in GPU global memory for the lifetime of the
//! persistent kernel. It is deliberately `Clone` so the CPU-threaded
//! runtime can fork isolated workers, and so tests can snapshot state.

use crate::arena::NodeArena;
use crate::builtins::Registry;
use crate::cost::Meter;
use crate::env::EnvArena;
use crate::error::Result;
use crate::eval::{eval, ParallelHook, SequentialHook};
use crate::node::Node;
use crate::parser::parse;
use crate::printer::print_to_string;
use crate::strings::StrTable;
use crate::types::{EnvId, NodeId, StrId};
use culi_strlib::StrBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Construction-time limits, the analogue of CuLi's compile-time constants.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Node arena slots (the paper's fixed node array length).
    pub arena_capacity: usize,
    /// Output buffer bytes (the device side of the command buffer).
    pub output_capacity: usize,
    /// Maximum parse nesting and evaluation recursion depth.
    pub max_depth: usize,
    /// Per-command fuel budget in evaluator steps: evaluation aborts with
    /// [`crate::CuliError::FuelExhausted`] once a command has charged this
    /// many. [`crate::cost::FUEL_UNLIMITED`] (the default) disables the
    /// budget; the check is then a single never-true compare.
    pub fuel_budget: u64,
    /// Live-node cap (policy limit, distinct from `arena_capacity`'s
    /// physical bound): allocation fails with
    /// [`crate::CuliError::HeapLimitExceeded`] once this many nodes are
    /// live. `usize::MAX` (the default) disables the cap.
    pub heap_limit: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        Self {
            arena_capacity: 1 << 20,
            output_capacity: 1 << 16,
            max_depth: 512,
            fuel_budget: crate::cost::FUEL_UNLIMITED,
            heap_limit: usize::MAX,
        }
    }
}

/// Reusable buffers for the evaluator's steady-state hot path and the
/// collector. Buffers are taken, used, cleared and returned; after the
/// first few evaluations every `eval` step, builtin call and GC cycle runs
/// without touching the heap allocator.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    node_bufs: Vec<Vec<NodeId>>,
    sym_bufs: Vec<Vec<StrId>>,
    /// Reusable printer output buffers (capacity = configured output
    /// capacity), so repeated printing never re-allocates the output
    /// string (the paper's Fig. 16d print phase).
    print_bufs: Vec<StrBuf>,
    /// Word-packed GC mark bitmap, reused across collections.
    pub(crate) gc_marks: Vec<u64>,
    /// GC root/traversal stack, reused across collections.
    pub(crate) gc_roots: Vec<NodeId>,
}

/// A complete CuLi interpreter instance.
#[derive(Debug)]
pub struct Interp {
    /// Limits this instance was built with.
    pub config: InterpConfig,
    /// Node storage.
    pub arena: NodeArena,
    /// Interned strings and symbols.
    pub strings: StrTable,
    /// Environment tree storage.
    pub envs: EnvArena,
    /// Built-in function registry.
    pub builtins: Registry,
    /// The global environment (root of the environment tree; holds the
    /// built-in functions and everything `defun`/`setq` made global).
    pub global: EnvId,
    /// Operation counters for the cost model.
    pub meter: Meter,
    /// Host-side I/O services (the paper's future-work file API, routed
    /// over the command buffer). `None` until a runtime attaches one.
    pub host_io: Option<crate::hostio::HostIoHandle>,
    /// Reusable hot-path buffers (see [`Scratch`]).
    pub(crate) scratch: Scratch,
    /// Environments created before any evaluation (the global environment):
    /// everything beyond this watermark is transient and reclaimed by
    /// [`crate::gc::collect`] between evaluations.
    pub(crate) persistent_envs: usize,
    /// Whole-interpreter clones performed in this instance's lineage
    /// (shared by every clone). Worker pools fork interpreters exactly
    /// once at warm-up; tests and benches assert that a warm session's
    /// count stays flat.
    clone_counter: Arc<AtomicU64>,
}

/// Cloning an interpreter is a *fork*: a deep copy of the arena, strings,
/// environments and registry. It is deliberately supported (the CPU
/// backends fork workers, tests snapshot state) but expensive — the shared
/// [`Interp::clone_count`] ticks on every clone so the parallel runtime
/// can prove it only forks at pool warm-up.
impl Clone for Interp {
    fn clone(&self) -> Self {
        self.clone_counter.fetch_add(1, Ordering::Relaxed);
        Self {
            config: self.config.clone(),
            arena: self.arena.clone(),
            strings: self.strings.clone(),
            envs: self.envs.clone(),
            builtins: self.builtins.clone(),
            global: self.global,
            meter: self.meter.clone(),
            host_io: self.host_io.clone(),
            scratch: self.scratch.clone(),
            persistent_envs: self.persistent_envs,
            clone_counter: Arc::clone(&self.clone_counter),
        }
    }
}

impl Interp {
    /// Builds an interpreter: allocates the arenas, creates the global
    /// environment and registers every built-in function in it (the paper
    /// stores builtins like `+` and `defun` in the global environment).
    pub fn new(config: InterpConfig) -> Self {
        let mut interp = Self {
            arena: NodeArena::with_capacity(config.arena_capacity),
            strings: StrTable::new(),
            envs: EnvArena::new(),
            builtins: Registry::new(),
            global: EnvId::new(0), // placeholder, replaced below
            meter: Meter::new(),
            host_io: None,
            scratch: Scratch::default(),
            persistent_envs: 0,
            clone_counter: Arc::new(AtomicU64::new(0)),
            config,
        };
        interp.global = interp.envs.push(None);
        interp.persistent_envs = interp.envs.env_count();
        let defs = crate::builtins::all_builtins();
        for def in defs {
            let id = interp.builtins.register(def);
            let sym = interp.strings.intern(def.name.as_bytes());
            let node = interp
                .arena
                .alloc(Node::function(id), &mut interp.meter)
                .expect("arena must fit the builtin table");
            interp
                .envs
                .define(interp.global, sym, node, &interp.strings);
        }
        // Boot definitions never need replaying: worker replicas are
        // forked from a fully-booted instance. Start the sync log here so
        // only post-boot mutations travel to warm worker forks.
        interp.envs.start_sync_log();
        // The heap cap is a *policy* limit on user programs; applying it
        // only after boot means builtin registration can never trip it.
        interp.arena.set_node_limit(interp.config.heap_limit);
        interp
    }

    /// Number of whole-interpreter clones ever performed in this
    /// instance's lineage (the counter is shared between an instance and
    /// every fork made from it).
    pub fn clone_count(&self) -> u64 {
        self.clone_counter.load(Ordering::Relaxed)
    }

    /// Number of persistent environments (created before evaluation
    /// started — the global environment). Everything beyond this watermark
    /// is transient; the postbox chain codec uses it to find where a `|||`
    /// expression's environment chain leaves replica-stable ground.
    pub fn persistent_env_count(&self) -> usize {
        self.persistent_envs
    }

    /// Takes a cleared [`NodeId`] buffer from the scratch pool (or a fresh
    /// one while the pool warms up). Return it with
    /// [`Interp::put_node_buf`] so its capacity is reused; steady-state
    /// evaluation then performs zero heap allocations for list traversal
    /// and argument collection.
    #[inline]
    pub fn take_node_buf(&mut self) -> Vec<NodeId> {
        self.scratch.node_bufs.pop().unwrap_or_default()
    }

    /// Returns a buffer taken with [`Interp::take_node_buf`] to the pool.
    /// Outsized buffers (one huge list evaluated once) are dropped rather
    /// than pooled, so a single large expression cannot pin its peak
    /// capacity — multiplied by recursion depth and per-worker clones —
    /// for the interpreter's lifetime.
    #[inline]
    pub fn put_node_buf(&mut self, mut buf: Vec<NodeId>) {
        const POOL_CAPACITY_LIMIT: usize = 1 << 16;
        if buf.capacity() <= POOL_CAPACITY_LIMIT {
            buf.clear();
            self.scratch.node_bufs.push(buf);
        }
    }

    /// Takes a cleared [`StrId`] buffer from the scratch pool (parameter
    /// symbol collection during form application).
    #[inline]
    pub(crate) fn take_sym_buf(&mut self) -> Vec<StrId> {
        self.scratch.sym_bufs.pop().unwrap_or_default()
    }

    /// Returns a buffer taken with [`Interp::take_sym_buf`] to the pool.
    #[inline]
    pub(crate) fn put_sym_buf(&mut self, mut buf: Vec<StrId>) {
        buf.clear();
        self.scratch.sym_bufs.push(buf);
    }

    /// Takes a cleared printer output buffer of the configured output
    /// capacity from the scratch pool (or builds one while the pool warms
    /// up). Return it with [`Interp::put_print_buf`]; after the first
    /// print, printing re-allocates nothing.
    #[inline]
    pub fn take_print_buf(&mut self) -> StrBuf {
        self.scratch
            .print_bufs
            .pop()
            .unwrap_or_else(|| StrBuf::with_capacity(self.config.output_capacity))
    }

    /// Returns a buffer taken with [`Interp::take_print_buf`] to the pool.
    #[inline]
    pub fn put_print_buf(&mut self, mut buf: StrBuf) {
        buf.clear();
        self.scratch.print_bufs.push(buf);
    }

    /// Runs `f` with the meter swapped out for a scratch one, discarding
    /// whatever `f` charged. Used by the parallel runtimes for protocol
    /// work that is *not* paper-model interpreter work — decoding worker
    /// results or importing fork trees allocates real nodes, but the
    /// modeled backends never perform those operations, so charging them
    /// would make the real-threads backends' counters diverge from the
    /// sequential reference.
    pub fn unmetered<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let saved = std::mem::take(&mut self.meter);
        let result = f(self);
        self.meter = saved;
        result
    }

    /// Allocates a node, charging the meter.
    pub fn alloc(&mut self, node: Node) -> Result<NodeId> {
        self.arena.alloc(node, &mut self.meter)
    }

    /// Allocates a symbol node for `name`.
    pub fn symbol(&mut self, name: &[u8]) -> Result<NodeId> {
        let sid = self.strings.intern(name);
        self.alloc(Node::symbol(sid))
    }

    /// Shallow-copies a node for insertion into a freshly built list.
    ///
    /// Nodes are immutable once visible, but their `next` link is the list
    /// chain they already sit in — linking an existing node into a second
    /// list would corrupt the first. The copy shares any child structure
    /// (safe: children are immutable), exactly as cheap as the C original's
    /// fresh result nodes.
    pub fn copy_for_list(&mut self, id: NodeId) -> Result<NodeId> {
        let n = *self.arena.get(id);
        self.alloc(Node {
            ty: n.ty,
            payload: n.payload,
            next: None,
        })
    }

    /// Deep-copies a node tree from another interpreter instance into this
    /// one, re-interning text and preserving structure. Used by the
    /// real-threads CPU backend: workers evaluate in forked instances and
    /// their results are imported back (the forks share builtin registry
    /// order, so `Builtin` payloads transfer unchanged).
    pub fn import_tree(&mut self, src: &Interp, node: NodeId) -> Result<NodeId> {
        let n = *src.arena.get(node);
        let payload = match n.payload {
            crate::node::Payload::Text(sid) => {
                let text = src.strings.get(sid).to_vec();
                crate::node::Payload::Text(self.strings.intern(&text))
            }
            crate::node::Payload::List { first, .. } => {
                let list = self.alloc(Node::new(
                    n.ty,
                    crate::node::Payload::List {
                        first: None,
                        last: None,
                    },
                ))?;
                let mut cur = first;
                while let Some(child) = cur {
                    let copied = self.import_tree(src, child)?;
                    self.arena.list_append(list, copied);
                    cur = src.arena.get(child).next;
                }
                return Ok(list);
            }
            crate::node::Payload::Form { params, body } => {
                let params = self.import_tree(src, params)?;
                let body = self.import_tree(src, body)?;
                crate::node::Payload::Form { params, body }
            }
            other => other,
        };
        self.alloc(Node {
            ty: n.ty,
            payload,
            next: None,
        })
    }

    /// Looks `name` up in the global environment without charging lookup
    /// costs (diagnostics/tests).
    pub fn lookup_global(&mut self, name: &[u8]) -> Option<NodeId> {
        let sym = self.strings.intern(name);
        let mut scratch = Meter::new();
        self.envs
            .lookup(self.global, sym, &self.strings, &mut scratch)
    }

    /// Parses, evaluates and prints one input line against the persistent
    /// global environment, sequentially (no parallel backend). This is the
    /// plain-CPU read–eval–print used by tests and the quickstart; the
    /// runtimes in `culi-runtime` drive the same pieces phase by phase.
    pub fn eval_str(&mut self, src: &str) -> Result<String> {
        self.eval_str_with(src, &mut SequentialHook)
    }

    /// Like [`Interp::eval_str`] but with an explicit parallel backend for
    /// `|||` expressions.
    pub fn eval_str_with(&mut self, src: &str, hook: &mut dyn ParallelHook) -> Result<String> {
        self.meter.arm_fuel(self.config.fuel_budget);
        let forms = parse(self, src.as_bytes())?;
        let mut last = None;
        for form in forms {
            last = Some(eval(self, hook, form, self.global, 0)?);
        }
        match last {
            Some(node) => print_to_string(self, node),
            None => Ok(String::new()),
        }
    }
}

impl Default for Interp {
    fn default() -> Self {
        Self::new(InterpConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_interp_registers_builtins_globally() {
        let mut i = Interp::default();
        for name in [
            "+", "-", "*", "/", "car", "cdr", "defun", "let", "setq", "|||",
        ] {
            assert!(
                i.lookup_global(name.as_bytes()).is_some(),
                "builtin {name} missing from global environment"
            );
        }
    }

    #[test]
    fn eval_str_empty_input() {
        let mut i = Interp::default();
        assert_eq!(i.eval_str("").unwrap(), "");
        assert_eq!(i.eval_str("   \n ").unwrap(), "");
    }

    #[test]
    fn eval_str_multiple_forms_returns_last() {
        let mut i = Interp::default();
        assert_eq!(i.eval_str("(+ 1 1) (+ 2 2)").unwrap(), "4");
    }

    #[test]
    fn global_environment_persists_between_inputs() {
        // Paper §I: "the successively created environment on the GPU is
        // persistent until the interpreter is terminated".
        let mut i = Interp::default();
        i.eval_str("(setq x 41)").unwrap();
        assert_eq!(i.eval_str("(+ x 1)").unwrap(), "42");
    }

    #[test]
    fn copy_for_list_detaches_next() {
        let mut i = Interp::default();
        let forms = crate::parser::parse(&mut i, b"(1 2)").unwrap();
        let kids = i.arena.list_children(forms[0]);
        assert!(i.arena.get(kids[0]).next.is_some());
        let copy = i.copy_for_list(kids[0]).unwrap();
        assert!(i.arena.get(copy).next.is_none());
        assert_eq!(i.arena.get(copy).payload, i.arena.get(kids[0]).payload);
    }

    #[test]
    fn fuel_budget_aborts_runaway_loops_and_interp_survives() {
        let mut i = Interp::new(InterpConfig {
            fuel_budget: 50_000,
            ..Default::default()
        });
        // A deliberate runaway: a billion iterations would spin forever
        // without the budget.
        match i.eval_str("(dotimes (i 1000000000) (+ i i))") {
            Err(crate::CuliError::FuelExhausted { budget: 50_000 }) => {}
            other => panic!("expected FuelExhausted, got {other:?}"),
        }
        // The abort leaves the interpreter reusable: the next command gets
        // a fresh budget and evaluates normally.
        assert_eq!(i.eval_str("(+ 1 2)").unwrap(), "3");
        crate::gc::collect(&mut i, &[]);
        assert_eq!(i.eval_str("(* 6 7)").unwrap(), "42");
    }

    #[test]
    fn heap_limit_contains_runaway_allocation() {
        let mut i = Interp::new(InterpConfig {
            heap_limit: 4096,
            ..Default::default()
        });
        match i.eval_str("(dotimes (i 1000000) (list i i i i))") {
            Err(crate::CuliError::HeapLimitExceeded { limit: 4096 }) => {}
            other => panic!("expected HeapLimitExceeded, got {other:?}"),
        }
        // GC reclaims the aborted command's garbage and the session lives.
        crate::gc::collect(&mut i, &[]);
        assert_eq!(i.eval_str("(+ 1 2)").unwrap(), "3");
    }

    #[test]
    fn interp_is_cloneable_for_worker_forks() {
        let mut i = Interp::default();
        i.eval_str("(setq x 7)").unwrap();
        let mut fork = i.clone();
        assert_eq!(fork.eval_str("x").unwrap(), "7");
        fork.eval_str("(setq x 8)").unwrap();
        assert_eq!(
            i.eval_str("x").unwrap(),
            "7",
            "fork must not affect original"
        );
    }
}
